package core

import (
	"testing"

	"repro/internal/corpus"
)

// cloneFixture builds a small unfolded model plus a frozen byte-copy of
// its factors for mutation checks.
func cloneFixture(t *testing.T) (*corpus.Collection, *Model, []float64, []float64, []float64) {
	t.Helper()
	coll := corpus.MED()
	m, err := BuildCollection(coll, Config{K: 2, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	u := append([]float64(nil), m.U.Data...)
	v := append([]float64(nil), m.V.Data...)
	s := append([]float64(nil), m.S...)
	return coll, m, u, v, s
}

func sliceEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //lsilint:ignore floatcmp — byte-identity is the property under test
			return false
		}
	}
	return true
}

// TestSharedCloneSharesFactors pins the cheapness contract: U and V are
// the same backing storage, while S and the global-weight table are
// independent copies.
func TestSharedCloneSharesFactors(t *testing.T) {
	_, m, _, _, _ := cloneFixture(t)
	c := m.SharedClone()
	if c.U != m.U || c.V != m.V {
		t.Fatal("SharedClone must share the factor matrices")
	}
	if &c.S[0] == &m.S[0] {
		t.Fatal("SharedClone must copy S")
	}
	if len(c.global) > 0 && &c.global[0] == &m.global[0] {
		t.Fatal("SharedClone must copy the global weight table")
	}
	if c.NumDocs() != m.NumDocs() || c.NumTerms() != m.NumTerms() || c.FoldedDocs() != 0 {
		t.Fatalf("clone shape diverged: %d docs %d terms", c.NumDocs(), c.NumTerms())
	}
}

// TestSharedCloneFoldInLeavesOriginal folds documents into the clone and
// asserts the original model is byte-identical afterwards — the property
// that makes a published snapshot safe to keep serving while the updater
// mutates a clone.
func TestSharedCloneFoldInLeavesOriginal(t *testing.T) {
	coll, m, u0, v0, s0 := cloneFixture(t)
	c := m.SharedClone()
	c.FoldInDocs(coll.DocVectors(corpus.MEDUpdateTopics))
	if c.NumDocs() != m.NumDocs()+len(corpus.MEDUpdateTopics) {
		t.Fatalf("clone has %d docs", c.NumDocs())
	}
	if m.NumDocs() != len(v0)/m.K {
		t.Fatalf("original doc count moved to %d", m.NumDocs())
	}
	if !sliceEq(m.U.Data, u0) || !sliceEq(m.V.Data, v0) || !sliceEq(m.S, s0) {
		t.Fatal("fold-in on clone mutated the original factors")
	}
	// The shared prefix of the clone's V is bit-identical too (fold-in
	// never moves existing coordinates).
	if !sliceEq(c.V.Data[:len(v0)], v0) {
		t.Fatal("fold-in moved existing document coordinates")
	}
}

// TestSharedCloneUpdateDocsLeavesOriginal runs the document SVD-update
// phase — which rotates every coordinate — on a clone and asserts the
// original is untouched: the update writes freshly allocated factors and
// only sign-fixes those.
func TestSharedCloneUpdateDocsLeavesOriginal(t *testing.T) {
	coll, m, u0, v0, s0 := cloneFixture(t)
	c := m.SharedClone()
	if err := c.UpdateDocs(coll.DocVectors(corpus.MEDUpdateTopics)); err != nil {
		t.Fatal(err)
	}
	if !sliceEq(m.U.Data, u0) || !sliceEq(m.V.Data, v0) || !sliceEq(m.S, s0) {
		t.Fatal("UpdateDocs on clone mutated the original factors")
	}
	if c.FoldedDocs() != 0 {
		t.Fatalf("updated clone reports %d folded docs", c.FoldedDocs())
	}
	if got := c.DocOrthogonality(); got > 1e-8 {
		t.Fatalf("updated clone orthogonality %g", got)
	}
	// And the results of the update match the same update on a deep clone:
	// sharing changed nothing about the algebra.
	d := m.Clone()
	if err := d.UpdateDocs(coll.DocVectors(corpus.MEDUpdateTopics)); err != nil {
		t.Fatal(err)
	}
	if !sliceEq(c.V.Data, d.V.Data) || !sliceEq(c.U.Data, d.U.Data) || !sliceEq(c.S, d.S) {
		t.Fatal("SharedClone update diverged from deep-clone update")
	}
}

// TestSharedCloneRankingParity: rankings computed through a clone equal
// the original's, byte for byte.
func TestSharedCloneRankingParity(t *testing.T) {
	coll, m, _, _, _ := cloneFixture(t)
	c := m.SharedClone()
	raw := coll.QueryVector("age blood abnormalities culture")
	a := m.RankTop(raw, 5)
	b := c.RankTop(raw, 5)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
