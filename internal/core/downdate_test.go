package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/weight"
)

// TestDowndateDocsExactRankK pins the downdate algebra: removing rows
// and re-diagonalizing must reproduce the exact rank-k SVD of the
// reduced approximation — U·Σ·Ṽᵀ is preserved, the new V is orthonormal
// again, and the singular values are sorted.
func TestDowndateDocsExactRankK(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randomCounts(rng, 50, 30, 0.25)
	m, err := Build(a, Config{K: 6, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	live := []int{0, 2, 3, 5, 8, 9, 11, 14, 15, 16, 19, 20, 22, 25, 26, 28, 29}
	// Reference: the reduced approximation before re-diagonalization.
	bt := m.ReconstructAk().T() // docs×terms
	want := dense.New(len(live), bt.Cols)
	for i, r := range live {
		copy(want.Row(i), bt.Row(r))
	}
	if err := m.DowndateDocs(live); err != nil {
		t.Fatal(err)
	}
	if m.NumDocs() != len(live) {
		t.Fatalf("NumDocs %d want %d", m.NumDocs(), len(live))
	}
	if m.FoldedDocs() != 0 {
		t.Fatalf("downdated model has %d folded docs", m.FoldedDocs())
	}
	after := m.ReconstructAk().T()
	if d := after.Sub(want).FrobeniusNorm(); d > 1e-10*(1+want.FrobeniusNorm()) {
		t.Fatalf("reconstruction drifted by %g", d)
	}
	if e := dense.OrthogonalityError(m.V); e > 1e-10 {
		t.Fatalf("downdated V orthogonality error %g", e)
	}
	if e := dense.OrthogonalityError(m.U); e > 1e-10 {
		t.Fatalf("downdated U orthogonality error %g", e)
	}
	for i := 1; i < len(m.S); i++ {
		if m.S[i] > m.S[i-1]+1e-12 {
			t.Fatalf("singular values unsorted at %d: %v", i, m.S)
		}
	}
}

// TestDowndateThenUpdateMatchesRebuildRetrieval: delete + re-add via the
// projection machinery should retrieve like a model that never saw the
// deleted docs and absorbed the new ones exactly.
func TestDowndateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomCounts(rng, 40, 25, 0.3)
	live := []int{1, 2, 4, 5, 7, 8, 10, 12, 13, 15, 17, 18, 20, 21, 23}
	run := func() *Model {
		m, err := Build(a, Config{K: 5, Scheme: weight.LogEntropy})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DowndateDocs(live); err != nil {
			t.Fatal(err)
		}
		return m
	}
	x, y := run(), run()
	for i := range x.V.Data {
		if x.V.Data[i] != y.V.Data[i] {
			t.Fatal("downdate V differs between identical runs")
		}
	}
	for i := range x.U.Data {
		if x.U.Data[i] != y.U.Data[i] {
			t.Fatal("downdate U differs between identical runs")
		}
	}
}

// TestPlanDocsDowndateDistributedBitParity: one global plan applied to
// per-shard row blocks must be byte-identical to the single-model
// DowndateDocs — the property the coordinated cross-shard fold-out
// relies on.
func TestPlanDocsDowndateDistributedBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	a := randomCounts(rng, 45, 28, 0.25)
	single, err := Build(a, Config{K: 5, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	live := []int{0, 1, 3, 4, 6, 7, 9, 10, 12, 14, 16, 17, 19, 21, 22, 24, 26, 27}
	want := single.Clone()
	if err := want.DowndateDocs(live); err != nil {
		t.Fatal(err)
	}
	// Shards hold interleaved rows; each keeps its live subset.
	shardRows := [][]int{evens(28), odds(28)}
	liveSet := map[int]bool{}
	for _, r := range live {
		liveSet[r] = true
	}
	// The global plan is computed over live rows in canonical (ordinal)
	// order, assembled from the shards.
	vlive := dense.New(len(live), single.V.Cols)
	for i, r := range live {
		copy(vlive.Row(i), single.V.Row(r))
	}
	plan, err := single.PlanDocsDowndate(vlive)
	if err != nil {
		t.Fatal(err)
	}
	// pos[r] = position of global row r in the live ordering.
	pos := map[int]int{}
	for i, r := range live {
		pos[r] = i
	}
	var cands [][]SignCandidate
	rots := make([]*dense.Matrix, len(shardRows))
	locals := make([][]int, len(shardRows))
	for s, rows := range shardRows {
		var mine []int
		for _, r := range rows {
			if liveSet[r] {
				mine = append(mine, r)
			}
		}
		locals[s] = mine
		block := dense.New(len(mine), single.V.Cols)
		for i, r := range mine {
			copy(block.Row(i), single.V.Row(r))
		}
		rots[s] = plan.RotateDocs(block)
		ords := make([]int64, len(mine))
		for i, r := range mine {
			ords[i] = int64(pos[r])
		}
		cands = append(cands, SignCandidates(rots[s], ords))
	}
	flip := CombineSignFlips(cands...)
	plan.ApplySigns(flip)
	for s := range rots {
		dense.FlipColumns(rots[s], flip)
		for i, r := range locals[s] {
			requireRowEqual(t, want.V.Row(pos[r]), rots[s].Row(i), "shard row")
		}
	}
	for i := range plan.U.Data {
		if plan.U.Data[i] != want.U.Data[i] {
			t.Fatal("plan U differs from single-model downdate")
		}
	}
	for i := range plan.S {
		if plan.S[i] != want.S[i] {
			t.Fatal("plan S differs from single-model downdate")
		}
	}
}

// TestDowndateDegenerate: fewer live rows than k has no rank-k downdate.
func TestDowndateDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	a := randomCounts(rng, 30, 20, 0.3)
	m, err := Build(a, Config{K: 6, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	err = m.DowndateDocs([]int{0, 1, 2})
	if err == nil {
		t.Fatal("expected degenerate downdate to fail")
	}
	// Invalid live lists are rejected too.
	if err := m.DowndateDocs([]int{3, 1}); err == nil {
		t.Fatal("unsorted live list accepted")
	}
	if err := m.DowndateDocs([]int{0, 1, 2, 99}); err == nil {
		t.Fatal("out-of-range live row accepted")
	}
	// Folded models are rejected.
	m2, _ := Build(a, Config{K: 4, Scheme: weight.LogEntropy})
	m2.FoldInDocs(randomCounts(rng, 30, 2, 0.3))
	if err := m2.DowndateDocs([]int{0, 1, 2, 3, 4, 5}); err != ErrFoldedModel {
		t.Fatalf("folded model: got %v want ErrFoldedModel", err)
	}
}

// TestDowndateThenQueryMatchesRebuildLoosely: retrieval over the
// downdated model should agree with a fresh build over the surviving
// columns on the dominant structure (tolerance-bounded, since downdating
// maintains the *approximation* A_k minus rows, not A minus rows).
func TestDowndateThenQueryCloseToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// Block-structured counts (5 topic blocks) plus sparse noise, so the
	// dominant subspace is stable enough for a rebuild comparison.
	b := sparse.NewBuilder(60, 40)
	for j := 0; j < 40; j++ {
		topic := j % 5
		for i := 0; i < 60; i++ {
			switch {
			case i/12 == topic && rng.Float64() < 0.6:
				b.Add(i, j, float64(2+rng.Intn(3)))
			case rng.Float64() < 0.05:
				b.Add(i, j, 1)
			}
		}
	}
	a := b.Build()
	m, err := Build(a, Config{K: 8, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	var live []int
	for j := 0; j < 40; j++ {
		if j%7 != 0 {
			live = append(live, j)
		}
	}
	if err := m.DowndateDocs(live); err != nil {
		t.Fatal(err)
	}
	ad := a.Dense()
	kb := sparse.NewBuilder(a.Rows, len(live))
	for i := 0; i < a.Rows; i++ {
		for jj, j := range live {
			if ad[i][j] != 0 {
				kb.Add(i, jj, ad[i][j])
			}
		}
	}
	rebuilt, err := Build(kb.Build(), Config{K: 8, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	// Topic-pure queries: a few terms from one topic's block each.
	var overlap float64
	const trials = 5
	for topic := 0; topic < trials; topic++ {
		q := make([]float64, 60)
		for i := topic * 12; i < topic*12+6; i++ {
			q[i] = 1
		}
		overlap += overlapAt(rankedIDs(m.Rank(q)), rankedIDs(rebuilt.Rank(q)), 5)
	}
	if overlap/trials < 0.5 {
		t.Fatalf("mean top-5 overlap vs rebuild %.3f < 0.5", overlap/trials)
	}
	if math.IsNaN(overlap) {
		t.Fatal("NaN overlap")
	}
}
