package core

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// This file implements the Vecharynski–Saad fast SVD-updating strategy
// (PAPERS.md, arXiv:1310.2008) as a drop-in alternative to O'Brien's
// dense inner SVD in PlanDocsUpdate. Instead of diagonalizing
// F = (Σ_k | U_kᵀW(D)) — a k×(k+p) problem that grows with the pending
// batch size p — the projected block C = U_kᵀW(D) is compressed first by
// an l-step Golub–Kahan bidiagonalization C ≈ X_l·B_l·Q_lᵀ, and the
// dense SVD runs on G = (Σ_k | X_l·B_l), k×(k+l) with l ≤ k fixed. Since
// F ≈ G·diag(I_k, Q_l)ᵀ and diag(I_k, Q_l) has orthonormal columns, the
// singular triplets of G lift to those of F:
//
//	U_F = U_G,  Σ_F = Σ_G,  V_F = diag(I_k, Q_l)·V_G,
//
// so the strategy emits a standard DocsUpdatePlan and every downstream
// consumer (RotateDocs, sign resolution, sharded distribution) is
// untouched. The approximation is exact when l ≥ rank(C); otherwise the
// error is governed by the discarded tail σ_{l+1}(C), the bound of the
// paper's residual analysis — see docs/ALGORITHMS.md.

// UpdateStrategy selects the algorithm PlanDocsUpdateOpts uses for the
// inner spectral problem of a document SVD-update.
type UpdateStrategy int

const (
	// StrategyOBrien is the exact dense inner SVD of F = (Σ_k | U_kᵀW(D))
	// (O'Brien's derivation, §4.2) — the default and the parity reference.
	StrategyOBrien UpdateStrategy = iota
	// StrategyGK replaces the dense inner SVD with an l-step Golub–Kahan
	// bidiagonalization of the projected block (Vecharynski–Saad).
	StrategyGK
)

// DefaultGKRank is the Golub–Kahan projection rank used when
// UpdateOptions.GKRank is zero. It bounds the inner dense SVD at
// k×(k+DefaultGKRank) regardless of how many documents a compaction
// absorbs.
const DefaultGKRank = 32

// String returns the flag spelling of the strategy.
func (s UpdateStrategy) String() string {
	switch s {
	case StrategyGK:
		return "gk"
	default:
		return "obrien"
	}
}

// ParseUpdateStrategy maps a flag value to a strategy: "" or "obrien"
// (exact dense inner SVD) and "gk" (Golub–Kahan projections).
func ParseUpdateStrategy(s string) (UpdateStrategy, error) {
	switch s {
	case "", "obrien":
		return StrategyOBrien, nil
	case "gk":
		return StrategyGK, nil
	}
	return StrategyOBrien, fmt.Errorf("core: unknown update strategy %q (want obrien or gk)", s)
}

// UpdateOptions parameterizes PlanDocsUpdateOpts/UpdateDocsOpts. The
// zero value is the exact O'Brien update.
type UpdateOptions struct {
	// Strategy selects the inner algorithm; StrategyOBrien by default.
	Strategy UpdateStrategy
	// GKRank is the Golub–Kahan projection rank l for StrategyGK
	// (ignored otherwise); 0 means DefaultGKRank. It is clamped to
	// min(k, p) — at that point the strategy is exact up to roundoff.
	GKRank int
}

// PlanDocsUpdateOpts computes a document SVD-update plan under the given
// strategy. Both strategies share validation, weighting, and the
// projected block U_kᵀW(D); they differ only in how the inner spectral
// problem is solved. The returned plan is interchangeable between
// strategies — same shape, same downstream machinery, same sign-
// resolution protocol.
func (m *Model) PlanDocsUpdateOpts(d *sparse.CSR, opts UpdateOptions) (*DocsUpdatePlan, error) {
	if opts.Strategy != StrategyGK {
		return m.PlanDocsUpdate(d)
	}
	utd, err := m.projectedDocsBlock(d)
	if err != nil {
		return nil, err
	}
	k := m.K
	l := opts.GKRank
	if l <= 0 {
		l = DefaultGKRank
	}
	// GKBidiag clamps l to min(k, p) internally and may stop earlier on
	// rank deficiency; use the realized rank everywhere below.
	gk := dense.GKBidiag(utd, l)
	l = gk.B.Rows
	// G = (Σ_k | X_l·B_l), k×(k+l): the compressed analogue of F.
	g := dense.Diag(m.S).AugmentCols(dense.Mul(gk.X, gk.B))
	sg := dense.SVD(g).Truncate(k)
	kp := sg.U.Cols // k' = k unless G was rank-deficient
	// V_F = diag(I_k, Q_l)·V_G: the top k rows pass through, the bottom p
	// rows lift through Q_l.
	return &DocsUpdatePlan{
		U:    dense.Mul(m.U, sg.U),
		S:    sg.S,
		VTop: sg.V.Slice(0, k, 0, kp),
		VNew: dense.Mul(gk.Q, sg.V.Slice(k, k+l, 0, kp)),
	}, nil
}
