package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/weight"
)

func TestModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomCounts(rng, 25, 15, 0.3)
	m, err := Build(a, Config{K: 5, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != m.K || got.NumTerms() != m.NumTerms() || got.NumDocs() != m.NumDocs() {
		t.Fatal("shape mismatch after round trip")
	}
	if got.Scheme != m.Scheme {
		t.Fatal("scheme mismatch")
	}
	for i := range m.S {
		if got.S[i] != m.S[i] {
			t.Fatal("singular values differ")
		}
	}
	if !got.U.Equal(m.U, 0) || !got.V.Equal(m.V, 0) {
		t.Fatal("factors differ")
	}
	// Behavioural equivalence: same ranking for the same query.
	raw := make([]float64, 25)
	raw[3], raw[8] = 1, 2
	r1, r2 := m.Rank(raw), got.Rank(raw)
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-15 {
			t.Fatal("loaded model ranks differently")
		}
	}
}

func TestModelRoundTripAfterFoldAndUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomCounts(rng, 25, 15, 0.3)
	m, err := Build(a, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateDocs(randomCounts(rng, 25, 2, 0.3)); err != nil {
		t.Fatal(err)
	}
	m.FoldInDocs(randomCounts(rng, 25, 3, 0.3))
	m.FoldInTerms(randomCounts(rng, 2, 20, 0.3))

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Fold bookkeeping survives, so the ErrFoldedModel guard still works.
	if got.FoldedDocs() != m.FoldedDocs() || got.FoldedTerms() != m.FoldedTerms() {
		t.Fatalf("fold counters lost: docs %d/%d terms %d/%d",
			got.FoldedDocs(), m.FoldedDocs(), got.FoldedTerms(), m.FoldedTerms())
	}
	if err := got.UpdateDocs(randomCounts(rng, got.NumTerms(), 1, 0.3)); err != ErrFoldedModel {
		t.Fatalf("expected ErrFoldedModel after reload, got %v", err)
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("not a model at all, nope"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadModelRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomCounts(rng, 10, 8, 0.4)
	m, err := Build(a, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, 80, len(full) / 2, len(full) - 1} {
		if _, err := ReadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("expected error for truncation at %d bytes", cut)
		}
	}
}

func TestReadModelRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomCounts(rng, 10, 8, 0.4)
	m, err := Build(a, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 99 // version field (second uint64, little-endian low byte)
	if _, err := ReadModel(bytes.NewReader(b)); err == nil {
		t.Fatal("expected version error")
	}
}
