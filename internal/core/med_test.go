package core

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dense"
)

// medModel builds the §3 example model at the given k.
func medModel(t *testing.T, k int) (*corpus.Collection, *Model) {
	t.Helper()
	c := corpus.MED()
	m, err := BuildCollection(c, Config{K: k, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func docIndex(c *corpus.Collection, id string) int {
	for j, d := range c.Docs {
		if d.ID == id {
			return j
		}
	}
	return -1
}

// Figure 4 / Figure 5: the k=2 factorization of the Table 3 matrix. The
// paper prints σ₁ = 3.5919, σ₂ = 2.6471; the matrix exactly derived from
// Table 2's topic texts yields σ₁ = 3.5071, σ₂ = 2.6587 (the paper's
// figure numbers come from a slightly different revision of the example —
// no 0/1 matrix within two row-edits of Table 3 reproduces them, see
// EXPERIMENTS.md). We assert the values are stable and within 3% of the
// published ones.
func TestMEDSingularValuesNearPublished(t *testing.T) {
	_, m := medModel(t, 2)
	if math.Abs(m.S[0]-3.5071) > 1e-3 {
		t.Fatalf("σ1 = %v want 3.5071 (paper prints 3.5919)", m.S[0])
	}
	if math.Abs(m.S[1]-2.6587) > 1e-3 {
		t.Fatalf("σ2 = %v want 2.6587 (paper prints 2.6471)", m.S[1])
	}
	if math.Abs(m.S[0]-3.5919)/3.5919 > 0.03 {
		t.Fatalf("σ1 drifted more than 3%% from published value")
	}
	if math.Abs(m.S[1]-2.6471)/2.6471 > 0.03 {
		t.Fatalf("σ2 drifted more than 3%% from published value")
	}
}

// The semantic clustering of Figure 4: hormone/behaviour topics cluster on
// one side of the second factor, blood-disease/fasting topics on the other.
func TestMEDFigure4Clustering(t *testing.T) {
	c, m := medModel(t, 2)
	coords := m.DocCoords()
	y := func(id string) float64 { return coords.At(docIndex(c, id), 1) }
	// Sign of factor 2 is fixed by FixSigns; group separation is what the
	// figure shows: {M1..M6} on one side, {M10..M14} on the other.
	behaviourSide := y("M1")
	for _, id := range []string{"M2", "M3", "M4", "M5", "M6"} {
		if y(id)*behaviourSide < 0 {
			t.Fatalf("%s not on the behaviour side of factor 2", id)
		}
	}
	for _, id := range []string{"M10", "M12", "M13", "M14"} {
		if y(id)*behaviourSide > 0 {
			t.Fatalf("%s not on the fasting/blood side of factor 2", id)
		}
	}
}

// Figure 5: the query "age blood abnormalities" is located at the weighted
// sum of its term vectors scaled by Σ⁻¹ (Eq 6) — self-consistency plus the
// published sanity check that q̂ ≈ (qᵀU₂Σ₂⁻¹).
func TestMEDFigure5QueryProjection(t *testing.T) {
	c, m := medModel(t, 2)
	q := c.QueryVector(corpus.MEDQuery)
	qhat := m.ProjectQuery(q)
	idx := c.Vocab.Index
	for f := 0; f < 2; f++ {
		want := (m.U.At(idx["age"], f) + m.U.At(idx["blood"], f) + m.U.At(idx["abnormalities"], f)) / m.S[f]
		if math.Abs(qhat[f]-want) > 1e-12 {
			t.Fatalf("q̂[%d] = %v want %v", f, qhat[f], want)
		}
	}
}

// Figure 6 and §3.2: LSI's top-ranked document for the query is M9
// (christmas disease — zero word overlap with the query), and {M8, M9,
// M12} all score very high; lexical matching returns exactly
// {M1, M8, M10, M11, M12}, missing M9 and including the irrelevant M1/M10.
func TestMEDFigure6RetrievalStory(t *testing.T) {
	c, m := medModel(t, 2)
	q := c.QueryVector(corpus.MEDQuery)
	ranked := m.Rank(q)
	if c.Docs[ranked[0].Doc].ID != "M9" {
		t.Fatalf("top doc = %s want M9", c.Docs[ranked[0].Doc].ID)
	}
	scores := map[string]float64{}
	for _, r := range ranked {
		scores[c.Docs[r.Doc].ID] = r.Score
	}
	for _, id := range []string{"M8", "M9", "M12"} {
		if scores[id] < 0.79 {
			t.Fatalf("%s cosine %v, expected ≥ 0.79", id, scores[id])
		}
	}
	// M9 shares no indexed word with the query.
	m9 := c.TD.Col(docIndex(c, "M9"))
	for i, qi := range q {
		if qi > 0 && m9[i] > 0 {
			t.Fatal("M9 unexpectedly shares a term with the query")
		}
	}
	// Lexical matching: docs sharing at least one query term.
	var lexical []string
	for j := range c.Docs {
		col := c.TD.Col(j)
		for i, qi := range q {
			if qi > 0 && col[i] > 0 {
				lexical = append(lexical, c.Docs[j].ID)
				break
			}
		}
	}
	want := []string{"M1", "M8", "M10", "M11", "M12"}
	if len(lexical) != len(want) {
		t.Fatalf("lexical set %v want %v", lexical, want)
	}
	for i := range want {
		if lexical[i] != want[i] {
			t.Fatalf("lexical set %v want %v", lexical, want)
		}
	}
}

// Table 4's qualitative content: the returned set shrinks and reorders as k
// grows, and M9's advantage (pure latent association) fades at high k as
// LSI approaches lexical behaviour (§5.2).
func TestMEDTable4KSweep(t *testing.T) {
	c := corpus.MED()
	rankOf := func(k int, id string) int {
		m, err := BuildCollection(c, Config{K: k, Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		ranked := m.Rank(c.QueryVector(corpus.MEDQuery))
		for pos, r := range ranked {
			if c.Docs[r.Doc].ID == id {
				return pos
			}
		}
		return -1
	}
	if r := rankOf(2, "M9"); r != 0 {
		t.Fatalf("k=2 M9 rank %d want 0", r)
	}
	// At k=8 the word-overlap docs dominate and M9 falls out of the top 3
	// (Table 4 shows M9 absent from the k=8 return set).
	if r := rankOf(8, "M9"); r <= 2 {
		t.Fatalf("k=8 M9 rank %d, expected to fall below top 3", r)
	}
	// M8 (shares two query terms) stays in the top 4 at every k and is the
	// single best document at k=4 and k=8 (Table 4's leading rows).
	for _, k := range []int{2, 4, 8} {
		if r := rankOf(k, "M8"); r > 3 {
			t.Fatalf("k=%d M8 rank %d", k, r)
		}
	}
	// At k=8 lexical overlap dominates: the top two are word-sharing docs
	// (M8/M10 here; Table 4 lists M8 first on the paper's matrix revision).
	if r := rankOf(8, "M8"); r > 1 {
		t.Fatalf("k=8 M8 rank %d want ≤ 1", r)
	}
	if r := rankOf(8, "M10"); r > 1 {
		t.Fatalf("k=8 M10 rank %d want ≤ 1", r)
	}
}

// Figure 7: folding in M15/M16 leaves every original coordinate bit-exact.
func TestMEDFigure7FoldingIn(t *testing.T) {
	c, m := medModel(t, 2)
	before := m.DocCoords()
	m.FoldInDocs(c.DocVectors(corpus.MEDUpdateTopics))
	after := m.DocCoords()
	for j := 0; j < 14; j++ {
		for f := 0; f < 2; f++ {
			if before.At(j, f) != after.At(j, f) {
				t.Fatal("folding-in moved an original topic")
			}
		}
	}
	if m.NumDocs() != 16 {
		t.Fatalf("NumDocs = %d", m.NumDocs())
	}
}

// Figures 8 vs 7: recomputing the SVD of the 18×16 matrix forms the rats
// cluster {M13, M14, M15} — the folded-in model cannot, because the
// association of "behavior" with "rats" (topic M15) postdates its SVD.
// We compare the mean pairwise cosine of the cluster under both methods.
func TestMEDFigure8RecomputeFormsRatsCluster(t *testing.T) {
	c, folded := medModel(t, 2)
	folded.FoldInDocs(c.DocVectors(corpus.MEDUpdateTopics))

	ext := c.Extend(corpus.MEDUpdateTopics, corpus.MEDParseOptions())
	recomputed, err := BuildCollection(ext, Config{K: 2, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}

	cluster := func(m *Model, c *corpus.Collection, ids []string) float64 {
		var sum float64
		var n int
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				sum += dense.Cosine(m.DocVector(docIndex(c, ids[i])), m.DocVector(docIndex(c, ids[j])))
				n++
			}
		}
		return sum / float64(n)
	}
	ids := []string{"M13", "M14", "M15"}
	// M15 has index 14 in both collections (appended after M14).
	recomputedCohesion := cluster(recomputed, ext, ids)
	foldedCohesion := clusterFolded(folded, c, ids)
	if recomputedCohesion <= foldedCohesion {
		t.Fatalf("recompute cohesion %v should exceed fold-in cohesion %v",
			recomputedCohesion, foldedCohesion)
	}
	if recomputedCohesion < 0.9 {
		t.Fatalf("rats cluster not tight after recompute: %v", recomputedCohesion)
	}
}

// clusterFolded computes mean pairwise cosine where M15/M16 live at indices
// 14/15 of the folded model.
func clusterFolded(m *Model, c *corpus.Collection, ids []string) float64 {
	pos := func(id string) int {
		switch id {
		case "M15":
			return 14
		case "M16":
			return 15
		}
		return docIndex(c, id)
	}
	var sum float64
	var n int
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += dense.Cosine(m.DocVector(pos(ids[i])), m.DocVector(pos(ids[j])))
			n++
		}
	}
	return sum / float64(n)
}

// Figure 9: SVD-updating reproduces the recompute clustering far better
// than folding-in ("notice the similar clustering of terms and titles in
// Figures 9 and 8 … and the difference with Figure 7").
func TestMEDFigure9UpdateApproximatesRecompute(t *testing.T) {
	c, updated := medModel(t, 2)
	if err := updated.UpdateDocs(c.DocVectors(corpus.MEDUpdateTopics)); err != nil {
		t.Fatal(err)
	}
	if updated.NumDocs() != 16 {
		t.Fatalf("NumDocs = %d", updated.NumDocs())
	}
	// Orthogonality is preserved by updating (§4.3)…
	if e := updated.DocOrthogonality(); e > 1e-9 {
		t.Fatalf("SVD-update broke orthogonality: %v", e)
	}
	// …and destroyed by folding-in.
	_, folded := medModel(t, 2)
	folded.FoldInDocs(c.DocVectors(corpus.MEDUpdateTopics))
	if e := folded.DocOrthogonality(); e < 1e-6 {
		t.Fatalf("folding-in kept orthogonality: %v", e)
	}
	// Under folding-in "the new data has no effect on the representation of
	// the pre-existing terms and documents" — term coordinates are frozen.
	// SVD-updating moves them (the animated transition of §4.5).
	_, orig := medModel(t, 2)
	foldTerms := folded.TermCoords()
	origTerms := orig.TermCoords()
	if !foldTerms.Equal(origTerms, 0) {
		t.Fatal("folding-in moved term coordinates")
	}
	updTerms := updated.TermCoords()
	moved := 0
	for i := 0; i < updTerms.Rows; i++ {
		for f := 0; f < 2; f++ {
			if math.Abs(updTerms.At(i, f)-origTerms.At(i, f)) > 1e-6 {
				moved++
				break
			}
		}
	}
	if moved < updTerms.Rows/2 {
		t.Fatalf("SVD-update moved only %d/%d terms", moved, updTerms.Rows)
	}
	// The singular values respond to the new documents under updating but
	// not under folding-in.
	if math.Abs(updated.S[0]-orig.S[0]) < 1e-9 {
		t.Fatal("updated σ1 did not change")
	}
	if folded.S[0] != orig.S[0] {
		t.Fatal("folding-in changed σ1")
	}
}

// §4.3: the orthogonality loss of folding-in grows monotonically with the
// number of folded-in documents.
func TestMEDOrthogonalityLossGrowsWithFolds(t *testing.T) {
	c, m := medModel(t, 2)
	d := c.DocVectors(corpus.MEDUpdateTopics)
	prev := m.DocOrthogonality()
	for round := 0; round < 4; round++ {
		m.FoldInDocs(d)
		cur := m.DocOrthogonality()
		if cur <= prev {
			t.Fatalf("round %d: loss %v did not grow from %v", round, cur, prev)
		}
		prev = cur
	}
}
