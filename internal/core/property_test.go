package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Property: folding in documents in two batches equals folding them in at
// once — fold-in is per-column and order-independent.
func TestFoldInBatchingIrrelevantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCounts(rng, 20, 12, 0.3)
		d := randomCounts(rng, 20, 4, 0.3)
		m1, err := Build(a, Config{K: 4, Method: MethodDense})
		if err != nil {
			return true // degenerate sample
		}
		m2, err := Build(a, Config{K: 4, Method: MethodDense})
		if err != nil {
			return true
		}
		m1.FoldInDocs(d)
		// Split d into two column batches.
		left := sparse.NewBuilder(20, 2)
		right := sparse.NewBuilder(20, 2)
		for i := 0; i < 20; i++ {
			d.Row(i, func(j int, v float64) {
				if j < 2 {
					left.Add(i, j, v)
				} else {
					right.Add(i, j-2, v)
				}
			})
		}
		m2.FoldInDocs(left.Build())
		m2.FoldInDocs(right.Build())
		return m1.V.Equal(m2.V, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: document-phase updating preserves the singular-value ordering
// and never shrinks σ₁ (appending columns cannot reduce the spectral norm
// of the maintained approximation).
func TestUpdateDocsSigmaMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCounts(rng, 15, 10, 0.4)
		m, err := Build(a, Config{K: 5, Method: MethodDense})
		if err != nil {
			return true
		}
		s1Before := m.S[0]
		if err := m.UpdateDocs(randomCounts(rng, 15, 3, 0.4)); err != nil {
			return false
		}
		for i := 1; i < len(m.S); i++ {
			if m.S[i] > m.S[i-1]+1e-12 {
				return false
			}
		}
		return m.S[0] >= s1Before-1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the projected query of any single term i equals row i of
// U_kΣ_k⁻¹ up to the term's weight — and therefore its top-ranked document
// under RankReconstruction at full rank is the document where the term
// scores highest in the raw matrix... we assert the weaker, always-true
// fact: ranking a one-term query is deterministic under both conventions.
func TestSingleTermQueriesDeterministicQuick(t *testing.T) {
	f := func(seed int64, term8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCounts(rng, 18, 11, 0.35)
		m, err := Build(a, Config{K: 4, Method: MethodDense})
		if err != nil {
			return true
		}
		raw := make([]float64, 18)
		raw[int(term8)%18] = 1
		r1 := m.Rank(raw)
		r2 := m.Rank(raw)
		for i := range r1 {
			if r1[i] != r2[i] {
				return false
			}
		}
		rr1 := m.RankReconstruction(raw)
		rr2 := m.RankReconstruction(raw)
		for i := range rr1 {
			if rr1[i] != rr2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the rank-k reconstruction error never exceeds the rank-(k−1)
// error (Eckart–Young monotonicity carried through Build).
func TestBuildReconstructionMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := randomCounts(rng, 25, 18, 0.3)
	ad := dense.NewFromRows(a.Dense())
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		m, err := Build(a, Config{K: k, Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		res := ad.Sub(m.ReconstructAk()).FrobeniusNorm()
		if res > prev+1e-10 {
			t.Fatalf("k=%d reconstruction error %v exceeds smaller-k error %v", k, res, prev)
		}
		prev = res
	}
}

// Property: CorrectWeights with a zero delta is the identity (up to signs).
func TestCorrectWeightsZeroDeltaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	a := randomCounts(rng, 12, 9, 0.4)
	m, err := Build(a, Config{K: 4, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	before := m.ReconstructAk()
	if err := m.CorrectWeights([]int{1, 3}, dense.New(9, 2)); err != nil {
		t.Fatal(err)
	}
	if !m.ReconstructAk().Equal(before, 1e-10) {
		t.Fatal("zero-delta correction changed the model")
	}
}

// Property: UpdateDocs twice (batches D1, D2) reconstructs the same matrix
// as one update with (D1|D2) whenever both batches lie in span(U_k) — here
// guaranteed by using duplicated columns of A.
func TestUpdateDocsBatchConsistencyInSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := randomCounts(rng, 14, 9, 0.5)
	mOnce, err := Build(a, Config{K: 9, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if mOnce.K != 9 {
		t.Skipf("rank-deficient sample (K=%d)", mOnce.K)
	}
	mTwice, err := Build(a, Config{K: 9, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	dup := func(cols ...int) *sparse.CSR {
		b := sparse.NewBuilder(14, len(cols))
		for c, src := range cols {
			for i := 0; i < 14; i++ {
				if v := a.At(i, src); v != 0 {
					b.Add(i, c, v)
				}
			}
		}
		return b.Build()
	}
	if err := mOnce.UpdateDocs(dup(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := mTwice.UpdateDocs(dup(0)); err != nil {
		t.Fatal(err)
	}
	if err := mTwice.UpdateDocs(dup(1)); err != nil {
		t.Fatal(err)
	}
	if !mOnce.ReconstructAk().Equal(mTwice.ReconstructAk(), 1e-8) {
		t.Fatal("batched updates disagree with one-shot update for in-span documents")
	}
}
