// Package core implements Latent Semantic Indexing — the paper's primary
// contribution. A Model holds the truncated SVD A_k = U_kΣ_kV_kᵀ of a
// weighted term–document matrix (Figure 1) and supports:
//
//   - query projection q̂ = qᵀU_kΣ_k⁻¹ and cosine ranking (§2.2, Eq 6),
//   - folding-in of new documents (Eq 7) and terms (Eq 8),
//   - the three SVD-updating phases of §4.2 (documents, terms, weight
//     correction) following O'Brien's method,
//   - recomputation from scratch (§3.4), and
//   - the orthogonality-loss diagnostics of §4.3.
//
// Terms are rows of U_k, documents rows of V_k; both live in the same
// k-dimensional space, which is what enables the §5.4 applications
// (returning terms for queries, matching people, cross-language search).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/lanczos"
	"repro/internal/rank"
	"repro/internal/sparse"
	"repro/internal/weight"
)

// Method selects the SVD engine.
type Method int

const (
	// MethodAuto uses the dense Golub–Reinsch solver for small matrices and
	// Lanczos above the densification threshold.
	MethodAuto Method = iota
	// MethodLanczos forces the sparse iterative solver (SVDPACK-style).
	MethodLanczos
	// MethodDense forces full dense SVD then truncation.
	MethodDense
	// MethodRandomized uses the randomized sketch solver.
	MethodRandomized
)

// denseCutoff is the m·n size under which MethodAuto densifies.
const denseCutoff = 1 << 16

// Config parameterizes Build.
type Config struct {
	// K is the number of factors (paper: 100–300 for real collections, 2
	// for the worked example). Clamped to min(m, n).
	K int
	// Scheme is the term weighting of Eq (5); zero value = raw counts.
	Scheme weight.Scheme
	// Method selects the SVD engine (default MethodAuto).
	Method Method
	// Seed drives the iterative solvers.
	Seed int64
}

// Model is an LSI-encoded database: "the database of singular values and
// vectors obtained from the truncated SVD" (§1).
type Model struct {
	K int
	// U (m×k) holds term vectors as rows; S the singular values; V (n×k)
	// document vectors as rows. After folding-in, U and V contain appended
	// non-orthogonal rows (see §4.3).
	U *dense.Matrix
	S []float64
	V *dense.Matrix

	Scheme weight.Scheme
	// global holds G(i) for the original vocabulary rows; folded-in terms
	// carry weight 1.
	global []float64

	// svdDocs/svdTerms count the rows of V/U that came from an SVD (initial
	// build or SVD-update) rather than folding-in.
	svdDocs, svdTerms int

	// eng is the lazily-built unit-normalized document scoring engine;
	// engMu guards it so concurrent readers can build/extend the cache
	// safely. Mutations of the model itself (folding, SVD-updating) still
	// require the same external exclusive locking as every other method —
	// the internal mutex only makes the *cache* safe under concurrent
	// queries.
	engMu sync.RWMutex
	//lsilint:guardedby engMu
	eng *rank.Engine
}

// docEngine returns the cached unit-normalized document matrix, building
// it on first use, extending it when folding-in has appended V rows since
// it was built, and rebuilding it when the factor space changed shape.
// SVD-updating paths, which move every existing coordinate without
// changing the row count, invalidate it explicitly.
func (m *Model) docEngine() *rank.Engine {
	m.engMu.RLock()
	eng := m.eng
	m.engMu.RUnlock()
	if eng != nil && eng.NumDocs() == m.V.Rows && eng.Dim() == m.V.Cols {
		return eng
	}
	m.engMu.Lock()
	defer m.engMu.Unlock()
	switch {
	case m.eng == nil || m.eng.Dim() != m.V.Cols || m.eng.NumDocs() > m.V.Rows:
		m.eng = rank.NewEngine(m.V)
	case m.eng.NumDocs() < m.V.Rows:
		m.eng = m.eng.Extend(m.V.Slice(m.eng.NumDocs(), m.V.Rows, 0, m.V.Cols))
	}
	return m.eng
}

// invalidateEngine drops the norm cache after an update that moved
// existing document coordinates (fold-ins only append, so they extend the
// cache lazily instead).
func (m *Model) invalidateEngine() {
	m.engMu.Lock()
	m.eng = nil
	m.engMu.Unlock()
}

// Build computes the LSI model of a raw term–document count matrix.
func Build(raw *sparse.CSR, cfg Config) (*Model, error) {
	if raw.Rows == 0 || raw.Cols == 0 {
		return nil, errors.New("core: empty term-document matrix")
	}
	k := cfg.K
	if k <= 0 {
		k = 2
	}
	if mn := minInt(raw.Rows, raw.Cols); k > mn {
		k = mn
	}
	global := weight.GlobalWeights(raw, cfg.Scheme.Global)
	weighted := weight.Apply(raw, cfg.Scheme)

	factors, err := truncatedSVD(weighted, k, cfg)
	if err != nil {
		return nil, err
	}
	// Drop numerically-zero trailing triplets (rank < k).
	k = len(factors.S)
	for k > 0 && factors.S[k-1] <= 1e-12*maxFloat(factors.S[0], 1) {
		k--
	}
	if k == 0 {
		return nil, errors.New("core: matrix has no nonzero singular values")
	}
	factors = factors.Truncate(k)
	factors.FixSigns()
	return &Model{
		K:        k,
		U:        factors.U,
		S:        factors.S,
		V:        factors.V,
		Scheme:   cfg.Scheme,
		global:   global,
		svdDocs:  raw.Cols,
		svdTerms: raw.Rows,
	}, nil
}

// BuildCollection is Build over a parsed corpus.
func BuildCollection(c *corpus.Collection, cfg Config) (*Model, error) {
	return Build(c.TD, cfg)
}

func truncatedSVD(w *sparse.CSR, k int, cfg Config) (*dense.SVDFactors, error) {
	method := cfg.Method
	if method == MethodAuto {
		if w.Rows*w.Cols <= denseCutoff {
			method = MethodDense
		} else {
			method = MethodLanczos
		}
	}
	switch method {
	case MethodDense:
		f := dense.SVD(dense.NewFromRows(w.Dense()))
		return f.Truncate(k), nil
	case MethodLanczos:
		res, err := lanczos.TruncatedSVD(lanczos.OpCSR(w), lanczos.Options{K: k, Seed: cfg.Seed})
		if err != nil {
			// One retry with a longer recurrence before giving up.
			res, err = lanczos.TruncatedSVD(lanczos.OpCSR(w), lanczos.Options{
				K: k, Seed: cfg.Seed, MaxSteps: minInt(minInt(w.Rows, w.Cols), 8*k+64),
			})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		return res.Factors(), nil
	case MethodRandomized:
		res := lanczos.RandomizedSVD(lanczos.OpCSR(w), lanczos.RandomizedOptions{K: k, Seed: cfg.Seed})
		return res.Factors(), nil
	}
	return nil, fmt.Errorf("core: unknown method %d", cfg.Method)
}

// Clone returns a deep copy of the model; mutating updates (folding,
// SVD-updating, weight correction) on the copy leave the original intact.
func (m *Model) Clone() *Model {
	return &Model{
		K:        m.K,
		U:        m.U.Clone(),
		S:        append([]float64(nil), m.S...),
		V:        m.V.Clone(),
		Scheme:   m.Scheme,
		global:   append([]float64(nil), m.global...),
		svdDocs:  m.svdDocs,
		svdTerms: m.svdTerms,
	}
}

// SharedClone returns a copy-on-write clone for snapshot publication: the
// large factor matrices U and V are shared with the receiver while the
// small per-model slices (S, global) are copied, so cloning costs O(k + m)
// instead of O((m+n)·k). The clone is safe to mutate concurrently with
// readers of the original because every mutating method replaces factors
// wholesale rather than writing through them: fold-in builds a new V with
// AugmentRows, and the SVD-updating phases multiply into freshly allocated
// matrices (the in-place sign convention runs on those fresh factors only).
//
// Contract: at most one goroutine may mutate any given clone, and a model
// that has been SharedClone'd must itself no longer be mutated — the
// intended discipline is a single background updater that clones the
// current published snapshot, mutates the clone, and publishes it.
func (m *Model) SharedClone() *Model {
	return &Model{
		K:        m.K,
		U:        m.U,
		S:        append([]float64(nil), m.S...),
		V:        m.V,
		Scheme:   m.Scheme,
		global:   append([]float64(nil), m.global...),
		svdDocs:  m.svdDocs,
		svdTerms: m.svdTerms,
	}
}

// DocSubsetView returns a model over the document subset idx (rows of V,
// kept in the given order), sharing the term-side factors (the U matrix
// pointer) with the receiver and copying the small per-model slices —
// the shard constructor: vocabulary and latent basis are global,
// document rows are local. Query projection depends only on the shared
// U, S, weights and Scheme, so a document folded into any view lands on
// coordinates bit-identical to folding it into the full model. When the
// receiver is unfolded the view is unfolded too (its rows count as SVD
// rows, so it can serve as an SVD-update base); a receiver that already
// contains folded document rows yields a view reporting every row
// folded, which disables update compaction — the same degradation
// engine.New applies to a folded model.
func (m *Model) DocSubsetView(idx []int) *Model {
	v := dense.New(len(idx), m.V.Cols)
	for r, j := range idx {
		copy(v.Row(r), m.V.Row(j))
	}
	svdDocs := len(idx)
	if m.FoldedDocs() != 0 {
		svdDocs = 0
	}
	return &Model{
		K:        m.K,
		U:        m.U,
		S:        append([]float64(nil), m.S...),
		V:        v,
		Scheme:   m.Scheme,
		global:   append([]float64(nil), m.global...),
		svdDocs:  svdDocs,
		svdTerms: m.svdTerms,
	}
}

// NumTerms returns the current term count (rows of U, including folded-in
// terms).
func (m *Model) NumTerms() int { return m.U.Rows }

// NumDocs returns the current document count (rows of V, including
// folded-in documents).
func (m *Model) NumDocs() int { return m.V.Rows }

// weightQuery applies the model's weighting scheme to a raw count vector
// over the current vocabulary.
func (m *Model) weightQuery(raw []float64) []float64 {
	if len(raw) != m.NumTerms() {
		panic(fmt.Sprintf("core: query len %d want %d terms", len(raw), m.NumTerms()))
	}
	out := make([]float64, len(raw))
	for i, f := range raw {
		g := 1.0
		if i < len(m.global) {
			g = m.global[i]
		}
		out[i] = m.Scheme.Local.Apply(f) * g
	}
	return out
}

// ProjectQuery maps a raw query term-frequency vector into k-space:
// q̂ = qᵀU_kΣ_k⁻¹ (Eq 6). The same projection folds in a document (Eq 7):
// "folding-in documents is essentially the process described in §2.2 for
// query representation."
func (m *Model) ProjectQuery(raw []float64) []float64 {
	q := m.weightQuery(raw)
	out := dense.MulVecT(m.U, q)
	for c := range out {
		out[c] /= m.S[c]
	}
	return out
}

// ProjectTerm maps a raw term-occurrence vector (1×n over current
// documents) into k-space: t̂ = tV_kΣ_k⁻¹ (Eq 8).
func (m *Model) ProjectTerm(raw []float64) []float64 {
	if len(raw) != m.NumDocs() {
		panic(fmt.Sprintf("core: term vector len %d want %d docs", len(raw), m.NumDocs()))
	}
	out := dense.MulVecT(m.V, raw)
	for c := range out {
		out[c] /= m.S[c]
	}
	return out
}

// DocVector returns document j's k-space representation (row j of V_k).
func (m *Model) DocVector(j int) []float64 { return m.V.Row(j) }

// TermVector returns term i's k-space representation (row i of U_k).
func (m *Model) TermVector(i int) []float64 { return m.U.Row(i) }

// DocCoords returns the σ-scaled document coordinates used for plotting
// (Figures 4–9): row j is v_j·Σ_k.
func (m *Model) DocCoords() *dense.Matrix {
	return dense.ScaleCols(m.V.Clone(), m.S)
}

// TermCoords returns the σ-scaled term coordinates (rows of U_k·Σ_k).
func (m *Model) TermCoords() *dense.Matrix {
	return dense.ScaleCols(m.U.Clone(), m.S)
}

// Similarity returns the cosine between a projected query and document j.
func (m *Model) Similarity(qhat []float64, j int) float64 {
	return dense.Cosine(qhat, m.V.Row(j))
}

// TermSimilarity returns the cosine between terms i and j in k-space — the
// term–term associative similarity used for the TOEFL synonym test and
// online thesauri (§5.4).
func (m *Model) TermSimilarity(i, j int) float64 {
	return dense.Cosine(m.U.Row(i), m.U.Row(j))
}

// Ranked is one scored document.
type Ranked struct {
	Doc   int
	Score float64
}

// cosineParallelCutoff is the doc-count × k work size above which the
// scoring engine fans out across goroutines; one dot product is ~2k
// flops, so small collections stay serial. (The same value gates the
// rank package's scans.)
const cosineParallelCutoff = 1 << 15

// CosinesAll returns the cosine of qhat against every document vector.
// "Efficiently comparing queries to documents" is one of the §5.6 open
// issues, and this scan is the latency-critical path of a deployed
// retrieval service: scores come from the cached unit-normalized document
// matrix (one dot product per document, the norm pass paid once at cache
// build), scanned in parallel on large collections.
func (m *Model) CosinesAll(qhat []float64) []float64 {
	return m.docEngine().Scores(qhat)
}

// Rank projects a raw query and returns all documents sorted by descending
// cosine. "Typically the z closest documents or all documents exceeding
// some cosine threshold are returned" (§2.2); callers slice or filter.
func (m *Model) Rank(rawQuery []float64) []Ranked {
	return rankScores(m.CosinesAll(m.ProjectQuery(rawQuery)))
}

// RankReconstruction ranks documents in the Σ-weighted coordinate system:
// the query becomes U_kᵀq (no Σ⁻¹) and document j becomes Σ_k·v_j, so the
// cosine equals the keyword vector model's cosine against the *rank-k
// reconstructed* matrix A_k. At k = rank(A) this reproduces keyword
// matching exactly — the limit §5.2 invokes ("with k=n factors A_k will
// exactly reconstruct A" and performance "must approach the level attained
// by standard vector methods"). The Eq (6) convention used by Rank weights
// low-σ dimensions up and does not have this property.
func (m *Model) RankReconstruction(rawQuery []float64) []Ranked {
	q := m.weightQuery(rawQuery)
	qhat := dense.MulVecT(m.U, q)
	// Normalize by ‖q‖ (not ‖U_kᵀq‖): qᵀU_kΣ_k v_j is exactly qᵀ(A_k)_j, so
	// with this normalization the score IS the keyword cosine against the
	// reconstructed column, and at k = rank(A) it equals the keyword
	// model's cosine to the last digit.
	qn := dense.Norm2(q)
	scores := make([]float64, m.NumDocs())
	doc := make([]float64, m.K)
	for j := range scores {
		v := m.V.Row(j)
		for c := range doc {
			doc[c] = m.S[c] * v[c]
		}
		dn := dense.Norm2(doc)
		if qn == 0 || dn == 0 {
			scores[j] = 0
			continue
		}
		scores[j] = dense.Dot(qhat, doc) / (qn * dn)
	}
	return rankScores(scores)
}

// RankVector ranks an already-projected k-space vector (e.g. a filtering
// profile or a relevance-feedback centroid).
func (m *Model) RankVector(qhat []float64) []Ranked {
	return rankScores(m.CosinesAll(qhat))
}

// RankTop projects a raw query and returns only the k best documents —
// "typically the z closest documents … are returned" (§2.2), and bounded
// heap selection finds them in O(n log k) instead of the O(n log n) full
// sort, with results identical to Rank(raw)[:k] including tie order.
func (m *Model) RankTop(rawQuery []float64, k int) []Ranked {
	return m.RankVectorTop(m.ProjectQuery(rawQuery), k)
}

// RankVectorTop is RankTop for an already-projected k-space vector.
func (m *Model) RankVectorTop(qhat []float64, k int) []Ranked {
	return toRanked(m.docEngine().TopK(qhat, k))
}

// RankBatch projects a block of raw queries and returns the top k
// documents for each. The whole block is scored as one cache-blocked
// parallel gemm against the normalized document matrix, so serving
// batched traffic costs far less per query than repeated Rank calls.
// Results are identical to calling RankTop per query.
func (m *Model) RankBatch(rawQueries [][]float64, k int) [][]Ranked {
	qhats := make([][]float64, len(rawQueries))
	for i, raw := range rawQueries {
		qhats[i] = m.ProjectQuery(raw)
	}
	return m.RankVectorBatch(qhats, k)
}

// RankVectorBatch is RankBatch for already-projected k-space vectors.
func (m *Model) RankVectorBatch(qhats [][]float64, k int) [][]Ranked {
	if len(qhats) == 0 {
		return nil
	}
	res := m.docEngine().TopKBatch(dense.NewFromRows(qhats), k)
	out := make([][]Ranked, len(res))
	for i, items := range res {
		out[i] = toRanked(items)
	}
	return out
}

// AboveThreshold returns the documents whose cosine with qhat meets the
// threshold, sorted descending. Only the survivors are sorted.
func (m *Model) AboveThreshold(qhat []float64, threshold float64) []Ranked {
	scores := m.docEngine().Scores(qhat)
	var out []Ranked
	for j, s := range scores {
		if s >= threshold {
			out = append(out, Ranked{Doc: j, Score: s})
		}
	}
	sortRanked(out)
	return out
}

func toRanked(items []rank.Item) []Ranked {
	out := make([]Ranked, len(items))
	for i, it := range items {
		out[i] = Ranked{Doc: it.Doc, Score: it.Score}
	}
	return out
}

func rankScores(scores []float64) []Ranked {
	out := make([]Ranked, len(scores))
	for j, s := range scores {
		out[j] = Ranked{Doc: j, Score: s}
	}
	sortRanked(out)
	return out
}

// sortRanked orders by descending score, ascending doc index on ties for
// determinism — the same total order the rank package selects under.
func sortRanked(out []Ranked) {
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
