package core

import (
	"errors"
	"fmt"

	"repro/internal/dense"
)

// Document downdating: removing rows from the maintained rank-k
// factorization without touching A. Dropping document rows from V breaks
// column orthonormality, so the reduced factorization U·Σ·Ṽᵀ (Ṽ = the
// surviving rows of V) is re-diagonalized through the same projection
// machinery the update path uses — see docs/ALGORITHMS.md ("Downdating").
//
// With G = ṼᵀṼ = RᵀR (Cholesky) and W = Ṽ·R⁻¹ column-orthonormal:
//
//	U·Σ·Ṽᵀ = U·(Σ·Rᵀ)·Wᵀ,  SVD(Σ·Rᵀ) = U_q·Σ_q·V_qᵀ
//	⇒ U' = U·U_q,  Σ' = Σ_q,  V' = W·V_q = Ṽ·(R⁻¹·V_q).
//
// The result is the exact rank-k SVD of the reduced approximation, and —
// like the update plan — the document map v ↦ v·(R⁻¹V_q) is row-local
// and deterministic, so the sharded tier can apply ONE global plan to
// per-shard row blocks bit-identically to a single engine.

// ErrDowndateDegenerate is returned when fewer live document rows remain
// than the model's rank k: the surviving Gram matrix is singular and no
// rank-k downdate exists. Callers keep serving through tombstones until
// enough documents exist again.
var ErrDowndateDegenerate = errors.New("core: downdate needs at least k live documents")

// DocsDowndatePlan is the document-removal analogue of DocsUpdatePlan: a
// basis plan computed once from the global set of surviving rows, then
// applied to row blocks independently. Sign resolution follows the same
// protocol: candidates over the full conceptual V' (rotated surviving
// rows in canonical order), combined, then ApplySigns + FlipColumns on
// each rotated block.
type DocsDowndatePlan struct {
	// U is the rotated term basis U·U_q (m×k'), shared by every model the
	// plan is applied to.
	U *dense.Matrix
	// S holds the downdated singular values Σ_q.
	S []float64
	// Rot is R⁻¹·V_q (k×k'): surviving document rows map as v ↦ v·Rot.
	Rot *dense.Matrix
}

// PlanDocsDowndate computes the downdate plan for a model keeping
// exactly the rows of vlive, the surviving document rows in canonical
// global order (for a single engine: ascending row index; for the
// sharded tier: ascending submission ordinal). The receiver is not
// mutated and the plan carries no sign convention yet.
func (m *Model) PlanDocsDowndate(vlive *dense.Matrix) (*DocsDowndatePlan, error) {
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return nil, ErrFoldedModel
	}
	k := m.K
	if vlive.Cols != k {
		return nil, fmt.Errorf("core: downdate rows have %d columns want %d", vlive.Cols, k)
	}
	if vlive.Rows < k {
		return nil, ErrDowndateDegenerate
	}
	// G = ṼᵀṼ, k×k. Rank deficiency (e.g. duplicate-free but degenerate
	// geometry) surfaces as a failed Cholesky.
	g := dense.MulT(vlive, vlive)
	r, err := dense.CholUpper(g)
	if err != nil {
		return nil, ErrDowndateDegenerate
	}
	ri, err := dense.InvertUpper(r)
	if err != nil {
		return nil, ErrDowndateDegenerate
	}
	// K = Σ·Rᵀ, k×k: K[i][j] = S[i]·R[j][i].
	km := dense.New(k, k)
	for i := 0; i < k; i++ {
		row := km.Row(i)
		for j := 0; j <= i; j++ {
			row[j] = m.S[i] * r.At(j, i)
		}
	}
	sq := dense.SVD(km).Truncate(k)
	kp := sq.U.Cols
	return &DocsDowndatePlan{
		U:   dense.Mul(m.U, sq.U),
		S:   sq.S,
		Rot: dense.Mul(ri, sq.V.Slice(0, k, 0, kp)),
	}, nil
}

// RotateDocs maps surviving document rows into the downdated basis:
// V·Rot. Row-independent with a fixed summation order, so per-shard
// application of one global plan is bit-identical to rotating the full
// matrix.
func (p *DocsDowndatePlan) RotateDocs(v *dense.Matrix) *dense.Matrix {
	return dense.Mul(v, p.Rot)
}

// ApplySigns flips the marked columns of the plan's shared factors (U
// and Rot). Callers flip already-rotated row blocks with
// dense.FlipColumns using the same decision.
func (p *DocsDowndatePlan) ApplySigns(flip []bool) {
	dense.FlipColumns(p.U, flip)
	dense.FlipColumns(p.Rot, flip)
}

// Apply builds the downdated successor of base: a model over the plan's
// basis whose document rows are v — typically RotateDocs of the caller's
// surviving rows, signs already applied consistently. The result is
// unfolded.
func (p *DocsDowndatePlan) Apply(base *Model, v *dense.Matrix) *Model {
	return &Model{
		K:        base.K,
		U:        p.U,
		S:        append([]float64(nil), p.S...),
		V:        v,
		Scheme:   base.Scheme,
		global:   append([]float64(nil), base.global...),
		svdDocs:  v.Rows,
		svdTerms: base.svdTerms,
	}
}

// DowndateDocs removes the document rows NOT listed in live from the
// receiver, re-diagonalizing the factorization: plan, rotate, resolve
// signs over the surviving rows, apply. live must be strictly ascending
// row indices into the current V. This is the single-model application
// of the same plan the sharded compactor distributes.
func (m *Model) DowndateDocs(live []int) error {
	n := m.V.Rows
	for i, r := range live {
		if r < 0 || r >= n || (i > 0 && r <= live[i-1]) {
			return fmt.Errorf("core: DowndateDocs live rows must be strictly ascending in [0,%d)", n)
		}
	}
	vlive := dense.New(len(live), m.V.Cols)
	for i, r := range live {
		copy(vlive.Row(i), m.V.Row(r))
	}
	p, err := m.PlanDocsDowndate(vlive)
	if err != nil {
		return err
	}
	rot := p.RotateDocs(vlive)
	ords := make([]int64, rot.Rows)
	for i := range ords {
		ords[i] = int64(i)
	}
	flip := CombineSignFlips(SignCandidates(rot, ords))
	p.ApplySigns(flip)
	dense.FlipColumns(rot, flip)
	m.U = p.U
	m.S = p.S
	m.V = rot
	m.svdDocs = rot.Rows
	m.invalidateEngine()
	return nil
}
