package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/dense"
	"repro/internal/weight"
)

// Binary model format: a fixed header followed by little-endian float64
// payloads. The format is versioned so future fields can be added without
// breaking stored databases — an LSI database is a long-lived artifact (the
// paper's TREC SVD took 18 hours to compute; §5.3).
const (
	modelMagic   = 0x4c534931 // "LSI1"
	modelVersion = 1
)

// maxModelDim caps every dimension accepted from a model header before
// any payload allocation. ReadModel sizes U as mRows·k and V as nRows·k
// straight from header fields, so without a bound a corrupt (or
// hostile) header forces a multi-gigabyte allocation — the same failure
// mode as the MatrixMarket size line, capped by the same two-orders-
// beyond-TREC limit (see sparse.maxMMDim).
const maxModelDim = 1 << 24

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	head := []uint64{
		modelMagic, modelVersion,
		uint64(m.K),
		uint64(m.U.Rows), uint64(m.V.Rows),
		uint64(m.Scheme.Local), uint64(m.Scheme.Global),
		uint64(len(m.global)),
		uint64(m.svdDocs), uint64(m.svdTerms),
	}
	for _, h := range head {
		if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
			return cw.n, err
		}
	}
	for _, payload := range [][]float64{m.S, m.global, m.U.Data, m.V.Data} {
		if err := writeFloats(cw, payload); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	head := make([]uint64, 10)
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("core: reading model header: %w", err)
		}
	}
	if head[0] != modelMagic {
		return nil, fmt.Errorf("core: not an LSI model (magic %#x)", head[0])
	}
	if head[1] != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", head[1])
	}
	k := int(head[2])
	mRows, nRows := int(head[3]), int(head[4])
	scheme := weight.Scheme{Local: weight.Local(head[5]), Global: weight.Global(head[6])}
	nGlobal := int(head[7])
	svdDocs, svdTerms := int(head[8]), int(head[9])
	if k <= 0 || mRows < 0 || nRows < 0 || nGlobal < 0 {
		return nil, fmt.Errorf("core: corrupt model header (k=%d m=%d n=%d)", k, mRows, nRows)
	}
	if k > maxModelDim || mRows > maxModelDim || nRows > maxModelDim || nGlobal > maxModelDim {
		return nil, fmt.Errorf("core: model header dimensions (k=%d m=%d n=%d g=%d) exceed limit %d",
			k, mRows, nRows, nGlobal, maxModelDim)
	}

	s, err := readFloats(br, k)
	if err != nil {
		return nil, fmt.Errorf("core: reading singular values: %w", err)
	}
	global, err := readFloats(br, nGlobal)
	if err != nil {
		return nil, fmt.Errorf("core: reading global weights: %w", err)
	}
	uData, err := readFloats(br, mRows*k)
	if err != nil {
		return nil, fmt.Errorf("core: reading U: %w", err)
	}
	vData, err := readFloats(br, nRows*k)
	if err != nil {
		return nil, fmt.Errorf("core: reading V: %w", err)
	}
	model := &Model{
		K:        k,
		U:        &dense.Matrix{Rows: mRows, Cols: k, Data: uData},
		S:        s,
		V:        &dense.Matrix{Rows: nRows, Cols: k, Data: vData},
		Scheme:   scheme,
		global:   global,
		svdDocs:  svdDocs,
		svdTerms: svdTerms,
	}
	for i, sv := range model.S {
		if sv < 0 || math.IsNaN(sv) || math.IsInf(sv, 0) {
			return nil, fmt.Errorf("core: corrupt singular value σ%d = %v", i, sv)
		}
	}
	return model, nil
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, n int) ([]float64, error) {
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("implausible payload length %d", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
