package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/weight"
)

func randomCounts(rng *rand.Rand, m, n int, density float64) *sparse.CSR {
	b := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				b.Add(i, j, float64(1+rng.Intn(4)))
			}
		}
	}
	return b.Build()
}

func TestBuildMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCounts(rng, 40, 25, 0.2)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	for _, method := range []Method{MethodDense, MethodLanczos} {
		mod, err := Build(a, Config{K: 5, Method: method})
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		for i := 0; i < 5; i++ {
			if math.Abs(mod.S[i]-ref.S[i]) > 1e-7*(1+ref.S[0]) {
				t.Fatalf("method %d σ%d = %v want %v", method, i, mod.S[i], ref.S[i])
			}
		}
	}
}

func TestBuildRandomizedClose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCounts(rng, 60, 40, 0.15)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	mod, err := Build(a, Config{K: 3, Method: MethodRandomized})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(mod.S[i]-ref.S[i]) > 0.05*ref.S[0] {
			t.Fatalf("σ%d = %v want %v", i, mod.S[i], ref.S[i])
		}
	}
}

func TestBuildClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCounts(rng, 10, 4, 0.6)
	mod, err := Build(a, Config{K: 99})
	if err != nil {
		t.Fatal(err)
	}
	if mod.K > 4 {
		t.Fatalf("K = %d > min dim", mod.K)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(sparse.NewBuilder(0, 0).Build(), Config{K: 2}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
	if _, err := Build(sparse.NewBuilder(3, 3).Build(), Config{K: 2}); err == nil {
		t.Fatal("expected error for all-zero matrix")
	}
}

func TestProjectQueryEquation6(t *testing.T) {
	// q̂ must equal the weighted sum of its constituent term vectors scaled
	// by Σ⁻¹ — "the query vector is located at the weighted sum of its
	// constituent term vectors" (§2.2).
	rng := rand.New(rand.NewSource(4))
	a := randomCounts(rng, 20, 12, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 20)
	raw[3], raw[7] = 1, 2
	qhat := mod.ProjectQuery(raw)
	want := make([]float64, 4)
	for c := 0; c < 4; c++ {
		want[c] = (1*mod.U.At(3, c) + 2*mod.U.At(7, c)) / mod.S[c]
	}
	for c := range want {
		if math.Abs(qhat[c]-want[c]) > 1e-12 {
			t.Fatalf("q̂[%d] = %v want %v", c, qhat[c], want[c])
		}
	}
}

func TestProjectQueryAppliesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCounts(rng, 15, 10, 0.4)
	mod, err := Build(a, Config{K: 3, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 15)
	raw[0] = 3
	qhat := mod.ProjectQuery(raw)
	g := weight.GlobalWeights(a, weight.GlobalEntropy)
	w := weight.LocalLog.Apply(3) * g[0]
	for c := 0; c < 3; c++ {
		want := w * mod.U.At(0, c) / mod.S[c]
		if math.Abs(qhat[c]-want) > 1e-12 {
			t.Fatalf("weighted projection wrong at %d", c)
		}
	}
}

func TestRankDeterministicAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomCounts(rng, 25, 15, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 25)
	raw[1], raw[5], raw[9] = 1, 1, 1
	r1 := mod.Rank(raw)
	r2 := mod.Rank(raw)
	if len(r1) != 15 {
		t.Fatalf("rank returned %d docs", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("Rank not deterministic")
		}
		if i > 0 && r1[i-1].Score < r1[i].Score {
			t.Fatal("Rank not sorted descending")
		}
	}
}

func TestAboveThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCounts(rng, 25, 15, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 25)
	raw[0] = 1
	qhat := mod.ProjectQuery(raw)
	all := mod.RankVector(qhat)
	thr := all[4].Score // exactly 5 docs at or above
	got := mod.AboveThreshold(qhat, thr)
	if len(got) < 5 {
		t.Fatalf("threshold set too small: %d", len(got))
	}
	for _, r := range got {
		if r.Score < thr {
			t.Fatal("document below threshold returned")
		}
	}
}

func TestDocCoordsAreSigmaScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCounts(rng, 12, 8, 0.4)
	mod, err := Build(a, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	dc := mod.DocCoords()
	for j := 0; j < 8; j++ {
		for c := 0; c < 2; c++ {
			want := mod.V.At(j, c) * mod.S[c]
			if math.Abs(dc.At(j, c)-want) > 1e-13 {
				t.Fatal("DocCoords scaling wrong")
			}
		}
	}
	// DocCoords must not mutate V.
	if mod.DocOrthogonality() > 1e-10 {
		t.Fatal("DocCoords mutated the model")
	}
}

func TestFoldInDocsKeepsOldCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCounts(rng, 30, 20, 0.25)
	mod, err := Build(a, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := mod.V.Clone()
	d := randomCounts(rng, 30, 3, 0.25)
	mod.FoldInDocs(d)
	if mod.NumDocs() != 23 {
		t.Fatalf("NumDocs = %d", mod.NumDocs())
	}
	if mod.FoldedDocs() != 3 {
		t.Fatalf("FoldedDocs = %d", mod.FoldedDocs())
	}
	for j := 0; j < 20; j++ {
		for c := 0; c < 5; c++ {
			if mod.V.At(j, c) != before.At(j, c) {
				t.Fatal("folding-in moved an existing document")
			}
		}
	}
	// The folded row equals the query projection of the same vector.
	want := mod.ProjectQuery(d.Col(0))
	for c := range want {
		if math.Abs(mod.V.At(20, c)-want[c]) > 1e-12 {
			t.Fatal("folded doc row != projection")
		}
	}
}

func TestFoldInDocsDegradesOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomCounts(rng, 30, 20, 0.25)
	mod, err := Build(a, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e := mod.DocOrthogonality(); e > 1e-8 {
		t.Fatalf("fresh model orthogonality %v", e)
	}
	prev := mod.DocOrthogonality()
	for round := 0; round < 3; round++ {
		mod.FoldInDocs(randomCounts(rng, 30, 5, 0.25))
		cur := mod.DocOrthogonality()
		if cur < prev-1e-12 {
			t.Fatalf("orthogonality error shrank after folding: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev < 1e-6 {
		t.Fatalf("orthogonality error suspiciously small after 15 folds: %v", prev)
	}
}

func TestFoldInTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCounts(rng, 30, 20, 0.25)
	mod, err := Build(a, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	tm := randomCounts(rng, 2, 20, 0.3)
	mod.FoldInTerms(tm)
	if mod.NumTerms() != 32 || mod.FoldedTerms() != 2 {
		t.Fatalf("terms %d folded %d", mod.NumTerms(), mod.FoldedTerms())
	}
	// Term projection is Eq (8): t̂ = tV_kΣ_k⁻¹.
	raw := make([]float64, 20)
	tm.Row(0, func(j int, v float64) { raw[j] = v })
	want := mod.ProjectTerm(raw)
	for c := range want {
		if math.Abs(mod.U.At(30, c)-want[c]) > 1e-12 {
			t.Fatal("folded term row != Eq 8 projection")
		}
	}
	// Query over the enlarged vocabulary is well-defined.
	q := make([]float64, 32)
	q[31] = 1
	if got := mod.Rank(q); len(got) != 20 {
		t.Fatal("rank after term fold failed")
	}
}

// O'Brien's document phase computes the exact SVD of (A_k | U_kU_kᵀD): the
// component of D orthogonal to the current term space is discarded (that is
// precisely what makes it cheaper than recomputing). Verify against a dense
// SVD of that projected matrix.
func TestUpdateDocsExactOnProjectedB(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCounts(rng, 12, 8, 0.5)
	mod, err := Build(a, Config{K: 5, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	k := mod.K
	// Reference B = (A_k | P_U·D) built from the pre-update factors.
	ak := mod.ReconstructAk()
	d := randomCounts(rng, 12, 3, 0.5)
	dw := dense.New(12, 3)
	for j := 0; j < 3; j++ {
		dw.SetCol(j, d.Col(j)) // Raw scheme: weights are identity
	}
	pu := dense.Mul(mod.U, dense.MulT(mod.U, dw)) // U(UᵀD)
	b := ak.AugmentCols(pu)

	if err := mod.UpdateDocs(d); err != nil {
		t.Fatal(err)
	}
	full := dense.SVDJacobi(b)
	for i := 0; i < k; i++ {
		if math.Abs(mod.S[i]-full.S[i]) > 1e-9*(1+full.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, mod.S[i], full.S[i])
		}
	}
	if !mod.ReconstructAk().Equal(full.Truncate(k).Reconstruct(), 1e-8) {
		t.Fatal("UpdateDocs reconstruction differs from SVD of projected B")
	}
	if mod.NumDocs() != 11 || mod.FoldedDocs() != 0 {
		t.Fatalf("doc bookkeeping: n=%d folded=%d", mod.NumDocs(), mod.FoldedDocs())
	}
	if e := mod.DocOrthogonality(); e > 1e-9 {
		t.Fatalf("update left non-orthogonal V: %v", e)
	}
}

// When the new documents lie in the span of the existing term space — here,
// exact duplicates and sums of existing documents — and k is the full rank,
// SVD-updating agrees exactly with recomputing the SVD of (A | D) (§3.4's
// gold standard).
func TestUpdateDocsMatchesRecomputeForInSpanDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCounts(rng, 12, 8, 0.5)
	mod, err := Build(a, Config{K: 8, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if mod.K != 8 {
		t.Skipf("rank-deficient sample (K=%d); property needs full rank", mod.K)
	}
	// D's columns are sums of existing columns ⇒ in colspace(A) = span(U_k).
	db := sparse.NewBuilder(12, 2)
	for i := 0; i < 12; i++ {
		v := a.At(i, 0) + a.At(i, 3)
		if v != 0 {
			db.Add(i, 0, v)
		}
		if w := a.At(i, 5); w != 0 {
			db.Add(i, 1, w)
		}
	}
	d := db.Build()
	if err := mod.UpdateDocs(d); err != nil {
		t.Fatal(err)
	}
	full := dense.SVDJacobi(dense.NewFromRows(a.AugmentCols(d).Dense()))
	for i := 0; i < mod.K; i++ {
		if math.Abs(mod.S[i]-full.S[i]) > 1e-8*(1+full.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, mod.S[i], full.S[i])
		}
	}
	if !mod.ReconstructAk().Equal(full.Truncate(mod.K).Reconstruct(), 1e-7) {
		t.Fatal("UpdateDocs reconstruction differs from recompute")
	}
}

// The term phase computes the exact SVD of (A_k ; T·V_kV_kᵀ).
func TestUpdateTermsExactOnProjectedC(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCounts(rng, 8, 12, 0.5)
	mod, err := Build(a, Config{K: 5, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	k := mod.K
	ak := mod.ReconstructAk()
	tm := randomCounts(rng, 3, 12, 0.5)
	tw := dense.NewFromRows(tm.Dense())
	pv := dense.MulBT(dense.Mul(tw, mod.V), mod.V) // (T·V)·Vᵀ
	c := ak.AugmentRows(pv)

	if err := mod.UpdateTerms(tm); err != nil {
		t.Fatal(err)
	}
	full := dense.SVDJacobi(c)
	for i := 0; i < k; i++ {
		if math.Abs(mod.S[i]-full.S[i]) > 1e-9*(1+full.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, mod.S[i], full.S[i])
		}
	}
	if !mod.ReconstructAk().Equal(full.Truncate(k).Reconstruct(), 1e-8) {
		t.Fatal("UpdateTerms reconstruction differs from SVD of projected C")
	}
	if mod.NumTerms() != 11 || mod.FoldedTerms() != 0 {
		t.Fatalf("term bookkeeping: m=%d folded=%d", mod.NumTerms(), mod.FoldedTerms())
	}
}

// On a square full-rank matrix, P_U = P_V = I, so the correction phase must
// agree exactly with recomputing the SVD of W = A + Y·Zᵀ.
func TestCorrectWeightsExactOnFullRankSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomCounts(rng, 7, 7, 0.7)
	mod, err := Build(a, Config{K: 7, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if mod.K != 7 {
		t.Skipf("rank-deficient sample (K=%d)", mod.K)
	}
	termIdx := []int{2, 5}
	z := dense.New(7, 2)
	for j := 0; j < 7; j++ {
		z.Set(j, 0, rng.NormFloat64()*0.1)
		z.Set(j, 1, rng.NormFloat64()*0.1)
	}
	if err := mod.CorrectWeights(termIdx, z); err != nil {
		t.Fatal(err)
	}
	w := dense.NewFromRows(a.Dense())
	for c, ti := range termIdx {
		for j := 0; j < 7; j++ {
			w.Set(ti, j, w.At(ti, j)+z.At(j, c))
		}
	}
	full := dense.SVDJacobi(w)
	for i := 0; i < mod.K; i++ {
		if math.Abs(mod.S[i]-full.S[i]) > 1e-8*(1+full.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, mod.S[i], full.S[i])
		}
	}
	if !mod.ReconstructAk().Equal(full.Truncate(mod.K).Reconstruct(), 1e-7) {
		t.Fatal("CorrectWeights reconstruction differs")
	}
}

func TestUpdateAfterFoldRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomCounts(rng, 20, 12, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	mod.FoldInDocs(randomCounts(rng, 20, 1, 0.3))
	if err := mod.UpdateDocs(randomCounts(rng, 20, 1, 0.3)); err != ErrFoldedModel {
		t.Fatalf("expected ErrFoldedModel, got %v", err)
	}
	if err := mod.UpdateTerms(randomCounts(rng, 1, 13, 0.3)); err != ErrFoldedModel {
		t.Fatalf("expected ErrFoldedModel, got %v", err)
	}
	if err := mod.CorrectWeights([]int{0}, dense.New(13, 1)); err != ErrFoldedModel {
		t.Fatalf("expected ErrFoldedModel, got %v", err)
	}
}

func TestUpdateDimensionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomCounts(rng, 20, 12, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.UpdateDocs(randomCounts(rng, 19, 1, 0.3)); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := mod.UpdateTerms(randomCounts(rng, 1, 11, 0.3)); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := mod.CorrectWeights([]int{99}, dense.New(12, 1)); err == nil {
		t.Fatal("expected range error")
	}
}

// The §4 trade-off, term side: folding-in documents leaves the term
// representation frozen ("new terms and documents have no effect on the
// representation of the pre-existing terms", §2.3), while SVD-updating
// re-diagonalizes, moving term coordinates toward what recomputation would
// produce (Figures 7 vs 9). Compare the σ-scaled term Gram matrices, which
// are invariant to the basis sign/rotation ambiguity.
func TestUpdateTracksRecomputeBetterThanFoldInOnTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var better, total int
	for trial := 0; trial < 5; trial++ {
		a := randomCounts(rng, 60, 40, 0.15)
		d := randomCounts(rng, 60, 10, 0.15)
		k := 6

		folded, err := Build(a, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		folded.FoldInDocs(d)

		updated, err := Build(a, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if err := updated.UpdateDocs(d); err != nil {
			t.Fatal(err)
		}

		recomputed, err := Build(a.AugmentCols(d), Config{K: k})
		if err != nil {
			t.Fatal(err)
		}

		gram := func(m *Model) *dense.Matrix {
			tc := m.TermCoords()
			return dense.MulBT(tc, tc)
		}
		ref := gram(recomputed)
		errUpd := gram(updated).Sub(ref).FrobeniusNorm()
		errFold := gram(folded).Sub(ref).FrobeniusNorm()
		total++
		if errUpd < errFold {
			better++
		}
	}
	if better < (total+1)/2+1 && better != total {
		t.Fatalf("update beat fold-in in only %d/%d trials", better, total)
	}
}

func TestTermSimilaritySymmetricBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randomCounts(rng, 20, 12, 0.3)
	mod, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			s := mod.TermSimilarity(i, j)
			if math.Abs(s-mod.TermSimilarity(j, i)) > 1e-12 {
				t.Fatal("TermSimilarity not symmetric")
			}
			if s < -1-1e-12 || s > 1+1e-12 {
				t.Fatalf("cosine out of range: %v", s)
			}
		}
	}
}

func TestCosinesAllParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	// Big enough to cross cosineParallelCutoff: 3000 docs × 20 factors.
	a := randomCounts(rng, 200, 3000, 0.02)
	mod, err := Build(a, Config{K: 20, Method: MethodLanczos})
	if err != nil {
		t.Fatal(err)
	}
	if mod.NumDocs()*mod.K < cosineParallelCutoff {
		t.Fatalf("fixture too small to exercise the parallel path")
	}
	raw := make([]float64, 200)
	raw[5], raw[50] = 1, 2
	qhat := mod.ProjectQuery(raw)
	par := mod.CosinesAll(qhat)
	for j := 0; j < mod.NumDocs(); j += 97 {
		want := dense.Cosine(qhat, mod.V.Row(j))
		if math.Abs(par[j]-want) > 1e-14 {
			t.Fatalf("doc %d: parallel %v serial %v", j, par[j], want)
		}
	}
}

func BenchmarkCosinesAll(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	a := randomCounts(rng, 500, 20000, 0.01)
	mod, err := Build(a, Config{K: 50, Method: MethodLanczos})
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]float64, 500)
	raw[1] = 1
	qhat := mod.ProjectQuery(raw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.CosinesAll(qhat)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	a := randomCounts(rng, 20, 12, 0.3)
	m, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.FoldInDocs(randomCounts(rng, 20, 2, 0.3))
	if m.NumDocs() != 12 || c.NumDocs() != 14 {
		t.Fatalf("clone not independent: %d vs %d", m.NumDocs(), c.NumDocs())
	}
	if err := c.UpdateDocs(randomCounts(rng, 20, 1, 0.3)); err != ErrFoldedModel {
		t.Fatalf("clone lost fold bookkeeping: %v", err)
	}
	if m.DocOrthogonality() > 1e-10 {
		t.Fatal("mutating the clone disturbed the original")
	}
}
