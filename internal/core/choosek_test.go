package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestChooseKEnergy(t *testing.T) {
	s := []float64{3, 2, 1} // energies 9, 4, 1; total 14
	k, err := ChooseKEnergy(s, 9.0/14.0)
	if err != nil || k != 1 {
		t.Fatalf("k=%d err=%v", k, err)
	}
	k, err = ChooseKEnergy(s, 0.9)
	if err != nil || k != 2 { // 13/14 ≈ 0.93 ≥ 0.9
		t.Fatalf("k=%d err=%v", k, err)
	}
	k, err = ChooseKEnergy(s, 1)
	if err != nil || k != 3 {
		t.Fatalf("k=%d err=%v", k, err)
	}
	if _, err := ChooseKEnergy(s, 0); err == nil {
		t.Fatal("expected error for frac 0")
	}
	if _, err := ChooseKEnergy([]float64{0, 0}, 0.5); err == nil {
		t.Fatal("expected error for zero spectrum")
	}
}

// Energy choice ties to Eckart–Young: retaining frac of the energy means
// the reconstruction captures frac of ‖A‖_F².
func TestChooseKEnergyMatchesReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	a := randomCounts(rng, 20, 15, 0.4)
	full, err := Build(a, Config{K: 15, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	const frac = 0.8
	k, err := ChooseKEnergy(full.S, frac)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(a, Config{K: k, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	var num float64
	for _, s := range m.S {
		num += s * s
	}
	var den float64
	for _, s := range full.S {
		den += s * s
	}
	if num/den < frac-1e-9 {
		t.Fatalf("retained energy %v below %v", num/den, frac)
	}
	// And k−1 would not have sufficed.
	if k > 1 {
		if (num-m.S[k-1]*m.S[k-1])/den >= frac {
			t.Fatal("ChooseKEnergy not minimal")
		}
	}
}

func TestChooseKSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := randomCounts(rng, 30, 20, 0.3)
	builder := func(k int) (*Model, error) {
		return Build(a, Config{K: k, Method: MethodDense})
	}
	// Score: negative |k−8| so the sweep must pick the candidate nearest 8.
	score := func(m *Model) float64 { return -math.Abs(float64(m.K - 8)) }
	k, s, err := ChooseKSweep(builder, score, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 || s != 0 {
		t.Fatalf("k=%d score=%v", k, s)
	}
	if _, _, err := ChooseKSweep(builder, score, nil); err == nil {
		t.Fatal("expected error for empty candidates")
	}
}
