package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/snapfile"
	"repro/internal/weight"
)

// Snapshot sections for one model, written under a caller-chosen prefix
// so several shard models coexist in one container file:
//
//	<p>model   JSON header (dimensions, weighting scheme, SVD provenance)
//	<p>S       float64 singular values
//	<p>global  float64 global term weights
//	<p>U       float64 term factor, row-major
//	<p>V       float64 document factor, row-major
//
// Unlike the stream format of WriteTo/ReadModel — which decodes every
// float through a buffered reader — these sections are raw little-endian
// payloads at 64-byte alignment, so ModelFromSnapshot can alias the two
// large factors directly over a memory mapping: opening a model costs
// the JSON header parse, not O(terms·k + docs·k) of copying, and factor
// pages fault in only as queries touch them.
//
// Aliasing read-only views is sound under the SharedClone contract
// (core.go): every mutating method replaces factors wholesale rather
// than writing through them, so a restored model behaves exactly like
// the published snapshot a background updater clones from. The small
// mutable slices (S, global — FoldInTerms appends to global) are copied
// out, matching what SharedClone copies.

// snapshotHeader is the JSON "model" section. Dimensions are duplicated
// from the section lengths so corruption of either is detectable.
type snapshotHeader struct {
	K        int           `json:"k"`
	Terms    int           `json:"terms"`
	Docs     int           `json:"docs"`
	NGlobal  int           `json:"nGlobal"`
	Local    weight.Local  `json:"local"`
	Global   weight.Global `json:"global"`
	SvdDocs  int           `json:"svdDocs"`
	SvdTerms int           `json:"svdTerms"`
}

// SnapshotSections flattens the model under prefix. The float64
// sections view the model's own storage — encode them before mutating
// the model.
func (m *Model) SnapshotSections(prefix string) ([]snapfile.Section, error) {
	head, err := json.Marshal(snapshotHeader{
		K:        m.K,
		Terms:    m.U.Rows,
		Docs:     m.V.Rows,
		NGlobal:  len(m.global),
		Local:    m.Scheme.Local,
		Global:   m.Scheme.Global,
		SvdDocs:  m.svdDocs,
		SvdTerms: m.svdTerms,
	})
	if err != nil {
		return nil, err
	}
	return []snapfile.Section{
		{Name: prefix + "model", Data: head},
		{Name: prefix + "S", Data: snapfile.F64Bytes(m.S)},
		{Name: prefix + "global", Data: snapfile.F64Bytes(m.global)},
		{Name: prefix + "U", Data: snapfile.F64Bytes(m.U.Data)},
		{Name: prefix + "V", Data: snapfile.F64Bytes(m.V.Data)},
	}, nil
}

func snapSection(f *snapfile.File, name string) ([]byte, error) {
	b, ok := f.Section(name)
	if !ok {
		return nil, fmt.Errorf("core: snapshot missing section %q", name)
	}
	return b, nil
}

func snapF64(f *snapfile.File, name string, want int) ([]float64, error) {
	b, err := snapSection(f, name)
	if err != nil {
		return nil, err
	}
	xs, err := snapfile.F64(b)
	if err != nil {
		return nil, fmt.Errorf("core: section %q: %w", name, err)
	}
	if len(xs) != want {
		return nil, fmt.Errorf("core: section %q has %d floats, header says %d", name, len(xs), want)
	}
	return xs, nil
}

// ModelFromSnapshot reassembles a model from the sections written by
// SnapshotSections. U and V alias the snapshot's storage (possibly a
// read-only mapping — valid only until the containing File is closed);
// S and global are copied. Validation mirrors ReadModel: dimension caps
// before any trust in the header, finite non-negative singular values.
func ModelFromSnapshot(f *snapfile.File, prefix string) (*Model, error) {
	headRaw, err := snapSection(f, prefix+"model")
	if err != nil {
		return nil, err
	}
	var h snapshotHeader
	if err := json.Unmarshal(headRaw, &h); err != nil {
		return nil, fmt.Errorf("core: snapshot header %q: %w", prefix+"model", err)
	}
	if h.K <= 0 || h.Terms < 0 || h.Docs < 0 || h.NGlobal < 0 {
		return nil, fmt.Errorf("core: corrupt snapshot header (k=%d terms=%d docs=%d)", h.K, h.Terms, h.Docs)
	}
	if h.K > maxModelDim || h.Terms > maxModelDim || h.Docs > maxModelDim || h.NGlobal > maxModelDim {
		return nil, fmt.Errorf("core: snapshot header dimensions (k=%d terms=%d docs=%d g=%d) exceed limit %d",
			h.K, h.Terms, h.Docs, h.NGlobal, maxModelDim)
	}
	s, err := snapF64(f, prefix+"S", h.K)
	if err != nil {
		return nil, err
	}
	global, err := snapF64(f, prefix+"global", h.NGlobal)
	if err != nil {
		return nil, err
	}
	uData, err := snapF64(f, prefix+"U", h.Terms*h.K)
	if err != nil {
		return nil, err
	}
	vData, err := snapF64(f, prefix+"V", h.Docs*h.K)
	if err != nil {
		return nil, err
	}
	for i, sv := range s {
		if sv < 0 || math.IsNaN(sv) || math.IsInf(sv, 0) {
			return nil, fmt.Errorf("core: corrupt singular value σ%d = %v", i, sv)
		}
	}
	return &Model{
		K:        h.K,
		U:        &dense.Matrix{Rows: h.Terms, Cols: h.K, Data: uData},
		S:        append([]float64(nil), s...),
		V:        &dense.Matrix{Rows: h.Docs, Cols: h.K, Data: vData},
		Scheme:   weight.Scheme{Local: h.Local, Global: h.Global},
		global:   append([]float64(nil), global...),
		svdDocs:  h.SvdDocs,
		svdTerms: h.SvdTerms,
	}, nil
}

// WriteSnapshotFile writes a single model as a standalone snapshot
// container (the one-model convenience over SnapshotSections; the
// serving tier writes multi-shard containers through shard.Router).
func WriteSnapshotFile(path string, m *Model) error {
	sections, err := m.SnapshotSections("")
	if err != nil {
		return err
	}
	return snapfile.Write(path, sections)
}

// OpenSnapshotFile opens a container written by WriteSnapshotFile in
// O(1): the header and section table are validated, but factor payloads
// are only paged in as they are touched. The model aliases the returned
// File's mapping — call Close only after the model is unreachable. Pass
// verify=true to force a full CRC pass over every payload first (O(file
// size), for load-time integrity checking at the cost of paging
// everything in).
func OpenSnapshotFile(path string, verify bool) (*Model, *snapfile.File, error) {
	f, err := snapfile.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if verify {
		if err := f.VerifyAll(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	m, err := ModelFromSnapshot(f, "")
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return m, f, nil
}
