package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/eval"
	"repro/internal/sparse"
	"repro/internal/weight"
)

// splitCols partitions a count matrix column-wise into [0,cut) and [cut,n).
func splitCols(a *sparse.CSR, cut int) (*sparse.CSR, *sparse.CSR) {
	d := a.Dense()
	left := sparse.NewBuilder(a.Rows, cut)
	right := sparse.NewBuilder(a.Rows, a.Cols-cut)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if d[i][j] != 0 {
				if j < cut {
					left.Add(i, j, d[i][j])
				} else {
					right.Add(i, j-cut, d[i][j])
				}
			}
		}
	}
	return left.Build(), right.Build()
}

// rankedIDs extracts the document order of a full ranking.
func rankedIDs(rk []Ranked) []int {
	out := make([]int, len(rk))
	for i, r := range rk {
		out[i] = r.Doc
	}
	return out
}

// overlapAt returns |top-z(a) ∩ top-z(b)| / z.
func overlapAt(a, b []int, z int) float64 {
	in := make(map[int]bool, z)
	for _, d := range a[:z] {
		in[d] = true
	}
	hits := 0
	for _, d := range b[:z] {
		if in[d] {
			hits++
		}
	}
	return float64(hits) / float64(z)
}

// TestUpdateDocsGKExactAtFullProjectionRank pins the core GK claim: when
// the projection rank l covers the whole update block (l ≥ rank(C)), the
// GK plan solves the same spectral problem as O'Brien's dense inner SVD,
// so singular values and retrieval scores agree to roundoff.
func TestUpdateDocsGKExactAtFullProjectionRank(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomCounts(rng, 60, 50, 0.15)
	base, rest := splitCols(a, 35)
	for _, k := range []int{4, 8} {
		ob, err := Build(base, Config{K: k, Scheme: weight.LogEntropy})
		if err != nil {
			t.Fatal(err)
		}
		gk := ob.Clone()
		if err := ob.UpdateDocs(rest); err != nil {
			t.Fatal(err)
		}
		// l = k ≥ rank(C): the bidiagonalization reproduces C exactly.
		if err := gk.UpdateDocsOpts(rest, UpdateOptions{Strategy: StrategyGK, GKRank: k}); err != nil {
			t.Fatal(err)
		}
		for i := range ob.S {
			if math.Abs(ob.S[i]-gk.S[i]) > 1e-9*(1+ob.S[0]) {
				t.Fatalf("k=%d: σ%d obrien %v gk %v", k, i, ob.S[i], gk.S[i])
			}
		}
		q := make([]float64, a.Rows)
		for i := range q {
			if rng.Float64() < 0.2 {
				q[i] = 1
			}
		}
		ro, rg := ob.Rank(q), gk.Rank(q)
		for i := range ro {
			if ro[i].Doc != rg[i].Doc || math.Abs(ro[i].Score-rg[i].Score) > 1e-8 {
				t.Fatalf("k=%d rank %d: obrien (%d,%g) vs gk (%d,%g)",
					k, i, ro[i].Doc, ro[i].Score, rg[i].Doc, rg[i].Score)
			}
		}
	}
}

// TestUpdateDocsGKTruncatedParitySynthetic bounds the truncated-GK
// strategy on the synthetic corpus: retrieval must stay close to both
// the exact O'Brien update and a full recompute, per the residual
// analysis (the discarded mass is at most the σ_{l+1}(C) tail of the
// projected block, which the topic structure keeps small).
func TestUpdateDocsGKTruncatedParitySynthetic(t *testing.T) {
	syn := corpus.GenerateSynth(corpus.SynthOptions{Seed: 9, Docs: 160, Topics: 8})
	coll := syn.Collection
	n := coll.Size()
	cut := n * 2 / 3
	idx := make([]int, cut)
	for i := range idx {
		idx[i] = i
	}
	baseColl := coll.Subset(idx)
	k := 20
	ob, err := BuildCollection(baseColl, Config{K: k, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	gk := ob.Clone()
	rest := baseColl.DocVectors(coll.Docs[cut:])
	if err := ob.UpdateDocs(rest); err != nil {
		t.Fatal(err)
	}
	if err := gk.UpdateDocsOpts(rest, UpdateOptions{Strategy: StrategyGK, GKRank: 16}); err != nil {
		t.Fatal(err)
	}
	full, err := BuildCollection(coll, Config{K: k, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	// Retrieval-metric parity over the eval harness: the synthetic corpus
	// carries relevance judgments, so the tolerance is on mean average
	// precision directly.
	levels := []float64{0.25, 0.5, 0.75}
	mapOf := func(m *Model) float64 {
		var rankings [][]int
		var rels []map[int]bool
		for _, q := range syn.Queries {
			rankings = append(rankings, rankedIDs(m.Rank(baseColl.QueryVector(q.Text))))
			rels = append(rels, eval.RelevantSet(q.Relevant))
		}
		return eval.MeanAveragePrecision(rankings, rels, levels)
	}
	mOB, mGK, mFull := mapOf(ob), mapOf(gk), mapOf(full)
	t.Logf("synth MAP: obrien %.4f gk %.4f full %.4f", mOB, mGK, mFull)
	if mGK < mOB-0.03 {
		t.Fatalf("GK MAP %.4f more than 0.03 below O'Brien %.4f", mGK, mOB)
	}
	if mGK < mFull-0.05 {
		t.Fatalf("GK MAP %.4f more than 0.05 below full recompute %.4f", mGK, mFull)
	}
}

// TestUpdateDocsGKRetrievalParityMED runs the strategies head-to-head on
// MED. The collection ships no relevance judgments, so parity is pinned
// on ranking overlap: for a pool of queries (the §3.1 example plus held
// out document texts), the truncated GK update must produce nearly the
// same top-10 as the exact O'Brien update and stay close to a full
// recompute.
func TestUpdateDocsGKRetrievalParityMED(t *testing.T) {
	if testing.Short() {
		t.Skip("MED parity is slow")
	}
	coll := corpus.MED()
	n := coll.Size()
	cut := n * 3 / 4
	idx := make([]int, cut)
	for i := range idx {
		idx[i] = i
	}
	baseColl := coll.Subset(idx)
	k := 60
	ob, err := BuildCollection(baseColl, Config{K: k, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	gk := ob.Clone()
	rest := baseColl.DocVectors(coll.Docs[cut:])
	if err := ob.UpdateDocs(rest); err != nil {
		t.Fatal(err)
	}
	if err := gk.UpdateDocsOpts(rest, UpdateOptions{Strategy: StrategyGK, GKRank: 24}); err != nil {
		t.Fatal(err)
	}
	full, err := BuildCollection(coll, Config{K: k, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{corpus.MEDQuery}
	for j := cut; j < n; j += 7 {
		queries = append(queries, coll.Docs[j].Text)
	}
	var sumOB, sumFull float64
	z := 10
	for _, q := range queries {
		qv := baseColl.QueryVector(q)
		idsGK := rankedIDs(gk.Rank(qv))
		sumOB += overlapAt(idsGK, rankedIDs(ob.Rank(qv)), z)
		sumFull += overlapAt(idsGK, rankedIDs(full.Rank(coll.QueryVector(q))), z)
	}
	nq := float64(len(queries))
	t.Logf("MED mean top-%d overlap: vs obrien %.3f, vs full %.3f", z, sumOB/nq, sumFull/nq)
	if sumOB/nq < 0.8 {
		t.Fatalf("mean top-%d overlap GK vs O'Brien %.3f < 0.8", z, sumOB/nq)
	}
	if sumFull/nq < 0.5 {
		t.Fatalf("mean top-%d overlap GK vs full recompute %.3f < 0.5", z, sumFull/nq)
	}
}

// TestPlanDocsUpdateGKDistributedBitParity mirrors the O'Brien
// distribution pin: one GK plan applied to per-shard row blocks must be
// byte-identical to the single-model GK update.
func TestPlanDocsUpdateGKDistributedBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomCounts(rng, 50, 40, 0.2)
	base, rest := splitCols(a, 28)
	single, err := Build(base, Config{K: 6, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	shardA := single.DocSubsetView(evens(28))
	shardB := single.DocSubsetView(odds(28))
	opts := UpdateOptions{Strategy: StrategyGK, GKRank: 4}
	want := single.Clone()
	if err := want.UpdateDocsOpts(rest, opts); err != nil {
		t.Fatal(err)
	}
	plan, err := single.PlanDocsUpdateOpts(rest, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotA, rotB := plan.RotateDocs(shardA.V), plan.RotateDocs(shardB.V)
	ordsOf := func(idx []int) []int64 {
		out := make([]int64, len(idx))
		for i, r := range idx {
			out[i] = int64(r)
		}
		return out
	}
	newOrds := make([]int64, plan.VNew.Rows)
	for i := range newOrds {
		newOrds[i] = int64(28 + i)
	}
	flip := CombineSignFlips(
		SignCandidates(rotA, ordsOf(evens(28))),
		SignCandidates(rotB, ordsOf(odds(28))),
		SignCandidates(plan.VNew, newOrds),
	)
	plan.ApplySigns(flip)
	dense.FlipColumns(rotA, flip)
	dense.FlipColumns(rotB, flip)
	for i, r := range evens(28) {
		requireRowEqual(t, want.V.Row(r), rotA.Row(i), "shard A row")
	}
	for i, r := range odds(28) {
		requireRowEqual(t, want.V.Row(r), rotB.Row(i), "shard B row")
	}
	for i := 0; i < plan.VNew.Rows; i++ {
		requireRowEqual(t, want.V.Row(28+i), plan.VNew.Row(i), "new row")
	}
}

func evens(n int) []int {
	var out []int
	for i := 0; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

func odds(n int) []int {
	var out []int
	for i := 1; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

func requireRowEqual(t *testing.T, want, got []float64, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("%s col %d: %v != %v", what, j, got[j], want[j])
		}
	}
}

// TestParseUpdateStrategy pins the flag spellings.
func TestParseUpdateStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want UpdateStrategy
		ok   bool
	}{
		{"", StrategyOBrien, true},
		{"obrien", StrategyOBrien, true},
		{"gk", StrategyGK, true},
		{"fast", StrategyOBrien, false},
	} {
		got, err := ParseUpdateStrategy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseUpdateStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if StrategyGK.String() != "gk" || StrategyOBrien.String() != "obrien" {
		t.Fatal("String() spelling drifted from flag values")
	}
}
