package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// TestPlanDocsUpdateDistributedBitParity is the sharded-compaction
// linchpin: computing ONE DocsUpdatePlan over the global pending set and
// applying it per row block (rotate each block independently, resolve
// signs from per-block candidates, append each block's share of VNew)
// must reproduce, byte for byte, the factors a single UpdateDocs
// produces over the concatenated corpus. Round-robin row placement
// mirrors what shard.Router does.
func TestPlanDocsUpdateDistributedBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		a := randomCounts(rng, 24, 18, 0.35)
		d := randomCounts(rng, 24, 6, 0.35)
		ref, err := Build(a, Config{K: 5, Method: MethodDense})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n, p := ref.NumDocs(), d.Cols
		shards := 3

		// Shard views before the update: round-robin split of V rows.
		idx := make([][]int, shards)
		for j := 0; j < n; j++ {
			idx[j%shards] = append(idx[j%shards], j)
		}
		views := make([]*Model, shards)
		for s := range views {
			views[s] = ref.DocSubsetView(idx[s])
		}
		// Pending docs (columns of d) round-robin too: shard s owns
		// columns with global positions n+s, n+s+shards, …
		pend := make([][]int, shards) // global VNew row indices per shard
		for c := 0; c < p; c++ {
			pend[c%shards] = append(pend[c%shards], c)
		}

		// Reference: the single-model update.
		if err := ref.UpdateDocs(d); err != nil {
			t.Fatalf("trial %d: UpdateDocs: %v", trial, err)
		}

		// Distributed: one plan (from any view — they share U/S), per-block
		// rotation, candidate-combined sign resolution.
		plan, err := views[0].PlanDocsUpdate(d)
		if err != nil {
			t.Fatalf("trial %d: PlanDocsUpdate: %v", trial, err)
		}
		rots := make([]*dense.Matrix, shards)
		cands := make([][]SignCandidate, 0, shards+1)
		for s := range views {
			rots[s] = plan.RotateDocs(views[s].V)
			ords := make([]int64, len(idx[s]))
			for i, j := range idx[s] {
				ords[i] = int64(j)
			}
			cands = append(cands, SignCandidates(rots[s], ords))
		}
		newOrds := make([]int64, p)
		for c := range newOrds {
			newOrds[c] = int64(n + c)
		}
		cands = append(cands, SignCandidates(plan.VNew, newOrds))
		flip := CombineSignFlips(cands...)
		plan.ApplySigns(flip)

		if !bitEqualMatrix(plan.U, ref.U) {
			t.Fatalf("trial %d: distributed U differs from UpdateDocs U", trial)
		}
		for c := range plan.S {
			if math.Float64bits(plan.S[c]) != math.Float64bits(ref.S[c]) {
				t.Fatalf("trial %d: S[%d] differs", trial, c)
			}
		}
		for s := range views {
			dense.FlipColumns(rots[s], flip)
			mine := rots[s].AugmentRows(pickRows(plan.VNew, pend[s]))
			shardModel := plan.Apply(views[s], mine)
			if shardModel.FoldedDocs() != 0 {
				t.Fatalf("trial %d: applied shard model reports folded rows", trial)
			}
			// Every shard row must match the corresponding global row.
			for r, j := range idx[s] {
				if !bitEqualRow(mine.Row(r), ref.V.Row(j)) {
					t.Fatalf("trial %d shard %d: base row %d (global %d) differs", trial, s, r, j)
				}
			}
			for r, c := range pend[s] {
				got := mine.Row(len(idx[s]) + r)
				if !bitEqualRow(got, ref.V.Row(n+c)) {
					t.Fatalf("trial %d shard %d: new row %d (global %d) differs", trial, s, r, n+c)
				}
			}
		}
	}
}

// TestDocSubsetViewProjectionIdentity: folding a document into a shard
// view lands on coordinates bit-identical to folding it into the full
// model, because projection depends only on the shared term basis.
func TestDocSubsetViewProjectionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCounts(rng, 20, 12, 0.4)
	m, err := Build(a, Config{K: 4, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	view := m.DocSubsetView([]int{1, 4, 7, 10})
	if view.NumDocs() != 4 || view.FoldedDocs() != 0 {
		t.Fatalf("view: %d docs, %d folded", view.NumDocs(), view.FoldedDocs())
	}
	for r, j := range []int{1, 4, 7, 10} {
		if !bitEqualRow(view.V.Row(r), m.V.Row(j)) {
			t.Fatalf("view row %d != model row %d", r, j)
		}
	}
	q := make([]float64, 20)
	for i := range q {
		q[i] = rng.Float64()
	}
	if !bitEqualRow(view.ProjectQuery(q), m.ProjectQuery(q)) {
		t.Fatal("view projection differs from full-model projection")
	}
}

func pickRows(m *dense.Matrix, rows []int) *dense.Matrix {
	out := dense.New(len(rows), m.Cols)
	for r, j := range rows {
		copy(out.Row(r), m.Row(j))
	}
	return out
}

func bitEqualRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func bitEqualMatrix(a, b *dense.Matrix) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && bitEqualRow(a.Data, b.Data)
}
