package core

import "fmt"

// ChooseKEnergy returns the smallest k such that the retained spectral
// energy Σ_{i≤k}σᵢ² / Σ_i σᵢ² reaches frac. "Choosing the number of
// dimensions (k) for A_k is an interesting problem" (§5.2): no closed-form
// answer exists, but the energy heuristic gives a principled unsupervised
// default, and by the norms property of Theorem 2.1 it equals the fraction
// of ‖A‖_F² the rank-k model reproduces.
func ChooseKEnergy(svals []float64, frac float64) (int, error) {
	if frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("core: energy fraction %v outside (0, 1]", frac)
	}
	var total float64
	for _, s := range svals {
		total += s * s
	}
	if total == 0 {
		return 0, fmt.Errorf("core: zero spectrum")
	}
	var acc float64
	for i, s := range svals {
		acc += s * s
		if acc/total >= frac {
			return i + 1, nil
		}
	}
	return len(svals), nil
}

// ChooseKSweep evaluates a scoring callback (typically mean average
// precision on held-out queries) at each candidate k and returns the
// arg-max — the supervised procedure behind §5.2's observation that
// "performance peaks between 70 and 100 dimensions" on the MED abstracts.
// The callback receives a model built at that k; build errors abort.
func ChooseKSweep(raw func(k int) (*Model, error), score func(*Model) float64, candidates []int) (int, float64, error) {
	if len(candidates) == 0 {
		return 0, 0, fmt.Errorf("core: no candidate k values")
	}
	bestK, bestScore := 0, -1.0
	for _, k := range candidates {
		m, err := raw(k)
		if err != nil {
			return 0, 0, fmt.Errorf("core: building k=%d: %w", k, err)
		}
		if s := score(m); s > bestScore {
			bestScore, bestK = s, k
		}
	}
	return bestK, bestScore, nil
}
