package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vsm"
	"repro/internal/weight"
)

// At k = rank(A), A_k reconstructs A exactly, so cosines against the
// reconstruction must equal the keyword vector model's cosines — the §5.2
// limit ("with k=n factors A_k will exactly reconstruct the original term
// by document matrix").
func TestRankReconstructionEqualsKeywordAtFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, scheme := range []weight.Scheme{weight.Raw, weight.LogEntropy} {
		a := randomCounts(rng, 20, 12, 0.4)
		mod, err := Build(a, Config{K: 12, Scheme: scheme, Method: MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		if mod.K < 12 {
			t.Skipf("rank-deficient sample (K=%d)", mod.K)
		}
		kw := vsm.Build(a, scheme)
		raw := make([]float64, 20)
		raw[2], raw[7], raw[11] = 1, 2, 1
		lsiRank := mod.RankReconstruction(raw)
		kwScores := kw.Scores(raw)
		for _, r := range lsiRank {
			if math.Abs(r.Score-kwScores[r.Doc]) > 1e-8 {
				t.Fatalf("scheme %v doc %d: reconstruction cosine %v != keyword cosine %v",
					scheme, r.Doc, r.Score, kwScores[r.Doc])
			}
		}
	}
}

// At small k the two conventions genuinely differ (the Σ⁻¹ weighting of
// Eq 6 emphasizes low-variance directions); this guards against the two
// code paths silently collapsing into one.
func TestConventionsDifferAtSmallK(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomCounts(rng, 30, 20, 0.3)
	mod, err := Build(a, Config{K: 4, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 30)
	raw[1], raw[9] = 1, 1
	r1 := mod.Rank(raw)
	r2 := mod.RankReconstruction(raw)
	same := true
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc {
			same = false
			break
		}
	}
	diff := 0.0
	for i := range r1 {
		diff += math.Abs(r1[i].Score - r2[i].Score)
	}
	if same && diff < 1e-10 {
		t.Fatal("Rank and RankReconstruction produced identical output at k=4")
	}
}
