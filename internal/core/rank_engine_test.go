package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dense"
)

// TestRankTopMatchesFullRankProperty is the engine/seed parity property
// test: across random models and queries, RankTop must equal the full
// sort-based ranking truncated to k — byte-identical, including tie
// order. Synthetic collections with duplicated documents manufacture
// exact score ties at the selection boundary.
func TestRankTopMatchesFullRankProperty(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		a := randomCounts(rng, 30, 40, 0.25)
		mod, err := Build(a, Config{K: 5, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		// Fold the same batch in twice: identical document vectors give
		// exact score ties at the selection boundary.
		d := randomCounts(rng, 30, 6, 0.25)
		mod.FoldInDocs(d)
		mod.FoldInDocs(d)
		raw := make([]float64, 30)
		for i := 0; i < 30; i += 1 + rng.Intn(5) {
			raw[i] = float64(1 + rng.Intn(3))
		}
		full := mod.Rank(raw)
		for _, k := range []int{1, 3, 10, len(full), len(full) + 5} {
			got := mod.RankTop(raw, k)
			want := full
			if k < len(want) {
				want = want[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: RankTop diverges from Rank[:k]\n got %v\nwant %v", trial, k, got, want)
			}
		}
	}
}

// TestRankBatchMatchesSingle: the gemm-batched path must return exactly
// what per-query RankTop returns.
func TestRankBatchMatchesSingle(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(92))
	a := randomCounts(rng, 40, 60, 0.2)
	mod, err := Build(a, Config{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raws := make([][]float64, 40)
	for qi := range raws {
		raw := make([]float64, 40)
		raw[qi%40] = 1
		raw[(qi*3)%40] = 2
		raws[qi] = raw
	}
	batch := mod.RankBatch(raws, 7)
	if len(batch) != len(raws) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(raws))
	}
	for qi, raw := range raws {
		single := mod.RankTop(raw, 7)
		if !reflect.DeepEqual(batch[qi], single) {
			t.Fatalf("query %d: batch diverges from single\n got %v\nwant %v", qi, batch[qi], single)
		}
	}
}

// TestEngineExtendsAfterFoldIn: folding in documents must extend the norm
// cache (not serve stale results), and the folded documents must score
// exactly as a cold rebuild would score them.
func TestEngineExtendsAfterFoldIn(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := randomCounts(rng, 25, 20, 0.3)
	mod, err := Build(a, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 25)
	raw[2], raw[7] = 1, 1
	// Warm the cache before folding.
	before := mod.RankVector(mod.ProjectQuery(raw))
	if len(before) != 20 {
		t.Fatalf("pre-fold rank over %d docs", len(before))
	}
	mod.FoldInDocs(randomCounts(rng, 25, 5, 0.3))
	after := mod.Rank(raw)
	if len(after) != 25 {
		t.Fatalf("post-fold rank over %d docs, want 25", len(after))
	}
	cold := mod.Clone() // fresh model, cold cache
	if !reflect.DeepEqual(after, cold.Rank(raw)) {
		t.Fatal("extended cache ranks differently from a cold rebuild")
	}
}

// TestEngineInvalidatedByUpdates: SVD-updating moves every document
// coordinate without (for UpdateTerms/CorrectWeights) changing the row
// count — exactly the case lazy extension cannot detect, so the explicit
// invalidation must kick in.
func TestEngineInvalidatedByUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := randomCounts(rng, 20, 15, 0.35)
	mod, err := Build(a, Config{K: 4, Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 20)
	raw[3] = 1

	check := func(stage string, m *Model, raw []float64) {
		got := m.Rank(raw) // cache was warmed before the update
		qhat := m.ProjectQuery(raw)
		for _, r := range got {
			want := dense.Cosine(qhat, m.V.Row(r.Doc))
			if math.Abs(r.Score-want) > 1e-12 {
				t.Fatalf("%s: stale cache: doc %d scored %v want %v", stage, r.Doc, r.Score, want)
			}
		}
	}

	m1 := mod.Clone()
	m1.Rank(raw) // warm
	if err := m1.UpdateDocs(randomCounts(rng, 20, 3, 0.35)); err != nil {
		t.Fatal(err)
	}
	check("UpdateDocs", m1, raw)

	m2 := mod.Clone()
	m2.Rank(raw) // warm
	if err := m2.UpdateTerms(randomCounts(rng, 4, 15, 0.35)); err != nil {
		t.Fatal(err)
	}
	raw2 := make([]float64, 24) // the update added 4 term rows
	raw2[3] = 1
	check("UpdateTerms", m2, raw2)

	m3 := mod.Clone()
	m3.Rank(raw) // warm
	z := dense.New(m3.NumDocs(), 2)
	for i := range z.Data {
		z.Data[i] = 0.01 * rng.NormFloat64()
	}
	if err := m3.CorrectWeights([]int{1, 5}, z); err != nil {
		t.Fatal(err)
	}
	check("CorrectWeights", m3, raw)
}

// TestConcurrentColdCacheRanking hammers a cold model from many
// goroutines at once: the lazy norm-cache build must be internally
// synchronized (run with -race) and every caller must get identical
// results.
func TestConcurrentColdCacheRanking(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(95))
	a := randomCounts(rng, 40, 300, 0.1)
	mod, err := Build(a, Config{K: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 40)
	raw[1], raw[9] = 1, 1
	var once sync.Once
	var want []Ranked
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got := mod.RankTop(raw, 10)
				once.Do(func() { want = got })
				if !reflect.DeepEqual(got, want) {
					select {
					case errs <- "concurrent cold-cache ranks diverged":
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
