package core

import (
	"errors"
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// ErrFoldedModel is returned when an SVD-update is attempted on a model
// whose factors contain folded-in (non-orthogonal) rows; the update
// algebra of §4.2 assumes orthonormal U_k and V_k.
var ErrFoldedModel = errors.New("core: SVD-updating requires an unfolded model (rebuild or update before folding in)")

// UpdateDocs performs the document phase of SVD-updating (§4.2): it
// computes the k largest singular triplets of B = (A_k | D) (Eq 10) from
// the existing factors, without touching A. Following O'Brien's
// derivation, with F = (Σ_k | U_kᵀD):
//
//	SVD(F) = U_F Σ_F V_Fᵀ,  U_B = U_k·U_F,  V_B = diag(V_k, I_p)·V_F.
//
// d is the m×p raw count matrix; the model's weighting is applied
// internally. Unlike folding-in, every existing term and document
// coordinate moves — the latent structure is re-diagonalized.
func (m *Model) UpdateDocs(d *sparse.CSR) error {
	if d.Rows != m.NumTerms() {
		return fmt.Errorf("core: UpdateDocs terms %d want %d", d.Rows, m.NumTerms())
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return ErrFoldedModel
	}
	k, p := m.K, d.Cols
	// Weighted copy of D sharing the sparsity skeleton: W(D)[i,j] =
	// Local(D[i,j])·global[i]. Local(0) = 0, so weighting never fills in a
	// structural zero and RowPtr/ColIdx can be shared outright.
	wval := make([]float64, len(d.Val))
	for i := 0; i < d.Rows; i++ {
		g := 1.0
		if i < len(m.global) {
			g = m.global[i]
		}
		for q := d.RowPtr[i]; q < d.RowPtr[i+1]; q++ {
			wval[q] = m.Scheme.Local.Apply(d.Val[q]) * g
		}
	}
	dw := &sparse.CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: d.RowPtr, ColIdx: d.ColIdx, Val: wval}
	// Weighted new-document block, projected: U_kᵀ·W(D) is k×p, computed as
	// (W(D)ᵀ·U_k)ᵀ — one blocked pass over D instead of p column matvecs
	// against a densified column.
	utd := (&dense.Matrix{Rows: p, Cols: k, Data: dw.MulDenseT(m.U.Data, k)}).T()
	// F = (Σ_k | U_kᵀD), k×(k+p).
	f := dense.Diag(m.S).AugmentCols(utd)
	sf := dense.SVD(f).Truncate(k)

	// U_B = U_k·U_F (m×k).
	m.U = dense.Mul(m.U, sf.U)
	// V_B = diag(V_k, I_p)·V_F ((n+p)×k): top block V_k·V_F[:k], bottom
	// block V_F[k:].
	top := dense.Mul(m.V, sf.V.Slice(0, k, 0, k))
	bottom := sf.V.Slice(k, k+p, 0, k)
	m.V = top.AugmentRows(bottom)
	m.S = sf.S
	m.svdDocs += p
	m.fixSigns()
	m.invalidateEngine()
	return nil
}

// UpdateTerms performs the term phase of SVD-updating (§4.2): the k
// largest triplets of C = (A_k ; T) (Eq 11). With H = (Σ_k ; T·V_k):
//
//	SVD(H) = U_H Σ_H V_Hᵀ,  U_C = diag(U_k, I_q)·U_H,  V_C = V_k·V_H.
//
// t is the q×n raw count matrix of new term occurrences across the current
// documents; local weighting is applied, and the new terms receive global
// weight 1.
func (m *Model) UpdateTerms(t *sparse.CSR) error {
	if t.Cols != m.NumDocs() {
		return fmt.Errorf("core: UpdateTerms docs %d want %d", t.Cols, m.NumDocs())
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return ErrFoldedModel
	}
	k, q := m.K, t.Rows
	// Locally-weighted copy of T sharing the sparsity skeleton (new terms
	// carry global weight 1, so only the local transform applies).
	wval := make([]float64, len(t.Val))
	for p, v := range t.Val {
		wval[p] = m.Scheme.Local.Apply(v)
	}
	tw := &sparse.CSR{Rows: t.Rows, Cols: t.Cols, RowPtr: t.RowPtr, ColIdx: t.ColIdx, Val: wval}
	// W(T)·V_k is q×k — one blocked pass over T instead of q densified-row
	// matvecs.
	tv := &dense.Matrix{Rows: q, Cols: k, Data: tw.MulDense(m.V.Data, k)}
	// H = (Σ_k ; T·V_k), (k+q)×k.
	h := dense.Diag(m.S).AugmentRows(tv)
	sh := dense.SVD(h).Truncate(k)

	// U_C = diag(U_k, I_q)·U_H ((m+q)×k).
	top := dense.Mul(m.U, sh.U.Slice(0, k, 0, k))
	bottom := sh.U.Slice(k, k+q, 0, k)
	m.U = top.AugmentRows(bottom)
	// V_C = V_k·V_H (n×k).
	m.V = dense.Mul(m.V, sh.V)
	m.S = sh.S
	m.svdTerms += q
	for i := 0; i < q; i++ {
		m.global = append(m.global, 1)
	}
	m.fixSigns()
	m.invalidateEngine()
	return nil
}

// CorrectWeights performs the weight-correction phase of SVD-updating
// (§4.2): the k largest triplets of W = A_k + Y_j·Z_jᵀ (Eq 12), where Y_j
// selects the j terms whose weights changed (columns of the identity) and
// Z_j (n×j) holds the per-document differences between new and old
// weights. With Q = Σ_k + U_kᵀY_j·Z_jᵀV_k:
//
//	SVD(Q) = U_Q Σ_Q V_Qᵀ,  U_W = U_k·U_Q,  V_W = V_k·V_Q.
//
// termIdx lists the affected term rows; z.Row(c) corresponds to
// termIdx[c]… i.e. z is n×j with column c the weight delta of term
// termIdx[c] across documents.
func (m *Model) CorrectWeights(termIdx []int, z *dense.Matrix) error {
	if z.Rows != m.NumDocs() || z.Cols != len(termIdx) {
		return fmt.Errorf("core: CorrectWeights z is %dx%d want %dx%d", z.Rows, z.Cols, m.NumDocs(), len(termIdx))
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return ErrFoldedModel
	}
	for _, i := range termIdx {
		if i < 0 || i >= m.NumTerms() {
			return fmt.Errorf("core: CorrectWeights term index %d out of range %d", i, m.NumTerms())
		}
	}
	k, j := m.K, len(termIdx)
	// U_kᵀY_j is k×j: the selected rows of U_k, transposed.
	uty := dense.New(k, j)
	for c, ti := range termIdx {
		uty.SetCol(c, m.U.Row(ti))
	}
	// Z_jᵀV_k is j×k.
	ztv := dense.MulT(z, m.V)
	// Q = Σ_k + (U_kᵀY_j)(Z_jᵀV_k).
	q := dense.Diag(m.S).Add(dense.Mul(uty, ztv))
	sq := dense.SVD(q).Truncate(k)
	m.U = dense.Mul(m.U, sq.U)
	m.V = dense.Mul(m.V, sq.V)
	m.S = sq.S
	m.fixSigns()
	m.invalidateEngine()
	return nil
}

// fixSigns applies the deterministic sign convention after an update.
func (m *Model) fixSigns() {
	f := &dense.SVDFactors{U: m.U, S: m.S, V: m.V}
	f.FixSigns()
	m.U, m.V = f.U, f.V
}

// ReconstructAk returns U_k·Σ_k·V_kᵀ, the rank-k approximation of Figure 1.
// For a freshly built model this is A_k of Eq (2); after updates it is the
// maintained low-rank approximation of the enlarged matrix.
func (m *Model) ReconstructAk() *dense.Matrix {
	f := &dense.SVDFactors{U: m.U, S: m.S, V: m.V}
	return f.Reconstruct()
}
