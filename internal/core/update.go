package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// ErrFoldedModel is returned when an SVD-update is attempted on a model
// whose factors contain folded-in (non-orthogonal) rows; the update
// algebra of §4.2 assumes orthonormal U_k and V_k.
var ErrFoldedModel = errors.New("core: SVD-updating requires an unfolded model (rebuild or update before folding in)")

// DocsUpdatePlan is the document phase of SVD-updating split into a
// basis plan and its application. PlanDocsUpdate pays the SVD of F once;
// applying the plan to a document row block is then an independent,
// row-deterministic rotation — which is what lets the sharded serving
// tier (internal/shard) compact N shards under ONE shared basis: the
// router computes one plan over the global pending set and every shard
// rotates only its own V rows, bit-identical to the rows it would get
// from a single-engine UpdateDocs over the concatenated corpus.
type DocsUpdatePlan struct {
	// U is the rotated term basis U_k·U_F (m×k'), shared by every model
	// the plan is applied to — the cross-shard invariant that keeps
	// cosine scores comparable.
	U *dense.Matrix
	// S holds the updated singular values Σ_F.
	S []float64
	// VTop is V_F[:k] (k×k'): existing document rows map through
	// RotateDocs as v ↦ v·VTop.
	VTop *dense.Matrix
	// VNew is V_F[k:] (p×k'): row i is the updated coordinate row of
	// column i of the d the plan was computed from.
	VNew *dense.Matrix
}

// PlanDocsUpdate computes the document SVD-update plan (§4.2): the k
// largest singular triplets of B = (A_k | D) (Eq 10) from the existing
// factors, without touching A. Following O'Brien's derivation, with
// F = (Σ_k | U_kᵀD):
//
//	SVD(F) = U_F Σ_F V_Fᵀ,  U_B = U_k·U_F,  V_B = diag(V_k, I_p)·V_F.
//
// d is the m×p raw count matrix; the model's weighting is applied
// internally. The receiver is not mutated, and the returned plan's
// factors carry no sign convention yet — callers resolve signs with
// SignCandidates/CombineSignFlips over the full conceptual V_B and then
// ApplySigns (UpdateDocs does exactly this for the single-model case).
func (m *Model) PlanDocsUpdate(d *sparse.CSR) (*DocsUpdatePlan, error) {
	utd, err := m.projectedDocsBlock(d)
	if err != nil {
		return nil, err
	}
	k, p := m.K, d.Cols
	// F = (Σ_k | U_kᵀD), k×(k+p).
	f := dense.Diag(m.S).AugmentCols(utd)
	sf := dense.SVD(f).Truncate(k)
	kp := sf.U.Cols // k' = k unless F was rank-deficient
	return &DocsUpdatePlan{
		U:    dense.Mul(m.U, sf.U),
		S:    sf.S,
		VTop: sf.V.Slice(0, k, 0, kp),
		VNew: sf.V.Slice(k, k+p, 0, kp),
	}, nil
}

// projectedDocsBlock validates d, applies the model's weighting, and
// returns the projected update block U_kᵀ·W(D) (k×p) shared by both
// document-update strategies. The weighted copy shares d's sparsity
// skeleton: W(D)[i,j] = Local(D[i,j])·global[i], and Local(0) = 0, so
// weighting never fills in a structural zero and RowPtr/ColIdx can be
// shared outright. The projection is computed as (W(D)ᵀ·U_k)ᵀ — one
// blocked pass over D instead of p column matvecs against a densified
// column.
func (m *Model) projectedDocsBlock(d *sparse.CSR) (*dense.Matrix, error) {
	if d.Rows != m.NumTerms() {
		return nil, fmt.Errorf("core: UpdateDocs terms %d want %d", d.Rows, m.NumTerms())
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return nil, ErrFoldedModel
	}
	k, p := m.K, d.Cols
	wval := make([]float64, len(d.Val))
	for i := 0; i < d.Rows; i++ {
		g := 1.0
		if i < len(m.global) {
			g = m.global[i]
		}
		for q := d.RowPtr[i]; q < d.RowPtr[i+1]; q++ {
			wval[q] = m.Scheme.Local.Apply(d.Val[q]) * g
		}
	}
	dw := &sparse.CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: d.RowPtr, ColIdx: d.ColIdx, Val: wval}
	return (&dense.Matrix{Rows: p, Cols: k, Data: dw.MulDenseT(m.U.Data, k)}).T(), nil
}

// RotateDocs maps existing document rows into the plan's basis: V·VTop.
// dense.Mul computes each output row independently with a fixed inner
// summation order, so rotating any row block yields bytes identical to
// the corresponding rows of rotating the full matrix — the property that
// makes per-shard application of one global plan exact.
func (p *DocsUpdatePlan) RotateDocs(v *dense.Matrix) *dense.Matrix {
	return dense.Mul(v, p.VTop)
}

// ApplySigns flips the marked columns of the plan's shared factors (U
// and VNew). Callers flip their independently rotated top blocks with
// dense.FlipColumns using the same decision, computed once over the full
// conceptual V_B via SignCandidates/CombineSignFlips.
func (p *DocsUpdatePlan) ApplySigns(flip []bool) {
	dense.FlipColumns(p.U, flip)
	dense.FlipColumns(p.VNew, flip)
}

// Apply builds the compacted successor of base: a model over the plan's
// basis whose document rows are v — typically RotateDocs(base.V) with
// the caller's share of VNew appended, signs already applied
// consistently to v and the plan. Every model the plan is applied to
// shares the plan's U pointer, so all shards of a router serve one
// latent basis. The result is unfolded (all rows count as SVD rows).
func (p *DocsUpdatePlan) Apply(base *Model, v *dense.Matrix) *Model {
	return &Model{
		K:        base.K,
		U:        p.U,
		S:        append([]float64(nil), p.S...),
		V:        v,
		Scheme:   base.Scheme,
		global:   append([]float64(nil), base.global...),
		svdDocs:  v.Rows,
		svdTerms: base.svdTerms,
	}
}

// SignCandidate records, for one factor column, the dominant entry of a
// row block: Val is the entry with the largest magnitude, Abs that
// magnitude, and Ord the row's position in the canonical global row
// order. Blocks scanned independently combine through CombineSignFlips
// into exactly the decision FixSigns would make scanning the
// concatenated matrix top to bottom.
type SignCandidate struct {
	Abs float64
	Val float64
	Ord int64
}

// SignCandidates scans v's rows and returns one candidate per column.
// ords[i] is row i's position in the canonical global row order (the
// order FixSigns would scan the concatenated matrix in); len(ords) must
// equal v.Rows. A zero-row matrix yields candidates that lose to any
// real entry.
func SignCandidates(v *dense.Matrix, ords []int64) []SignCandidate {
	if len(ords) != v.Rows {
		panic(fmt.Sprintf("core: SignCandidates %d ords for %d rows", len(ords), v.Rows))
	}
	out := make([]SignCandidate, v.Cols)
	for j := range out {
		out[j] = SignCandidate{Abs: -1, Ord: int64(1) << 62}
	}
	for i := 0; i < v.Rows; i++ {
		row := v.Row(i)
		ord := ords[i]
		for j, val := range row {
			a := math.Abs(val)
			c := &out[j]
			if a > c.Abs || (a == c.Abs && ord < c.Ord) { //lsilint:ignore floatcmp — first-strict-max tie resolution needs bit equality
				c.Abs, c.Val, c.Ord = a, val, ord
			}
		}
	}
	return out
}

// CombineSignFlips resolves per-block candidates into per-column flip
// decisions: within a column the winner is the candidate with the
// strictly largest magnitude, ties broken by the smallest global Ord —
// which reproduces the sequential first-strict-max scan of
// SVDFactors.FixSigns over the concatenated rows. A column flips when
// its winning value is negative.
func CombineSignFlips(groups ...[]SignCandidate) []bool {
	var flip []bool
	var best []SignCandidate
	for _, g := range groups {
		if best == nil {
			best = append([]SignCandidate(nil), g...)
			continue
		}
		if len(g) != len(best) {
			panic(fmt.Sprintf("core: CombineSignFlips %d columns vs %d", len(g), len(best)))
		}
		for j, c := range g {
			b := &best[j]
			if c.Abs > b.Abs || (c.Abs == b.Abs && c.Ord < b.Ord) { //lsilint:ignore floatcmp — first-strict-max tie resolution needs bit equality
				*b = c
			}
		}
	}
	flip = make([]bool, len(best))
	for j, b := range best {
		flip[j] = b.Val < 0
	}
	return flip
}

// UpdateDocs performs the document phase of SVD-updating (§4.2) on the
// receiver: plan, rotate, resolve signs over the full V_B, apply. Unlike
// folding-in, every existing term and document coordinate moves — the
// latent structure is re-diagonalized. See PlanDocsUpdate for the
// algebra; this is the single-model application of the same plan the
// sharded compactor distributes.
func (m *Model) UpdateDocs(d *sparse.CSR) error {
	return m.UpdateDocsOpts(d, UpdateOptions{})
}

// UpdateDocsOpts is UpdateDocs under an explicit strategy choice: the
// plan comes from PlanDocsUpdateOpts, everything downstream (rotation,
// sign resolution, application) is strategy-independent.
func (m *Model) UpdateDocsOpts(d *sparse.CSR, opts UpdateOptions) error {
	p, err := m.PlanDocsUpdateOpts(d, opts)
	if err != nil {
		return err
	}
	n, pnew := m.V.Rows, p.VNew.Rows
	rot := p.RotateDocs(m.V)
	ords := make([]int64, n+pnew)
	for i := range ords {
		ords[i] = int64(i)
	}
	flip := CombineSignFlips(
		SignCandidates(rot, ords[:n]),
		SignCandidates(p.VNew, ords[n:]),
	)
	p.ApplySigns(flip)
	dense.FlipColumns(rot, flip)
	m.U = p.U
	m.S = p.S
	m.V = rot.AugmentRows(p.VNew)
	m.svdDocs += pnew
	m.invalidateEngine()
	return nil
}

// UpdateTerms performs the term phase of SVD-updating (§4.2): the k
// largest triplets of C = (A_k ; T) (Eq 11). With H = (Σ_k ; T·V_k):
//
//	SVD(H) = U_H Σ_H V_Hᵀ,  U_C = diag(U_k, I_q)·U_H,  V_C = V_k·V_H.
//
// t is the q×n raw count matrix of new term occurrences across the current
// documents; local weighting is applied, and the new terms receive global
// weight 1.
func (m *Model) UpdateTerms(t *sparse.CSR) error {
	if t.Cols != m.NumDocs() {
		return fmt.Errorf("core: UpdateTerms docs %d want %d", t.Cols, m.NumDocs())
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return ErrFoldedModel
	}
	k, q := m.K, t.Rows
	// Locally-weighted copy of T sharing the sparsity skeleton (new terms
	// carry global weight 1, so only the local transform applies).
	wval := make([]float64, len(t.Val))
	for p, v := range t.Val {
		wval[p] = m.Scheme.Local.Apply(v)
	}
	tw := &sparse.CSR{Rows: t.Rows, Cols: t.Cols, RowPtr: t.RowPtr, ColIdx: t.ColIdx, Val: wval}
	// W(T)·V_k is q×k — one blocked pass over T instead of q densified-row
	// matvecs.
	tv := &dense.Matrix{Rows: q, Cols: k, Data: tw.MulDense(m.V.Data, k)}
	// H = (Σ_k ; T·V_k), (k+q)×k.
	h := dense.Diag(m.S).AugmentRows(tv)
	sh := dense.SVD(h).Truncate(k)

	// U_C = diag(U_k, I_q)·U_H ((m+q)×k).
	top := dense.Mul(m.U, sh.U.Slice(0, k, 0, k))
	bottom := sh.U.Slice(k, k+q, 0, k)
	m.U = top.AugmentRows(bottom)
	// V_C = V_k·V_H (n×k).
	m.V = dense.Mul(m.V, sh.V)
	m.S = sh.S
	m.svdTerms += q
	for i := 0; i < q; i++ {
		m.global = append(m.global, 1)
	}
	m.fixSigns()
	m.invalidateEngine()
	return nil
}

// CorrectWeights performs the weight-correction phase of SVD-updating
// (§4.2): the k largest triplets of W = A_k + Y_j·Z_jᵀ (Eq 12), where Y_j
// selects the j terms whose weights changed (columns of the identity) and
// Z_j (n×j) holds the per-document differences between new and old
// weights. With Q = Σ_k + U_kᵀY_j·Z_jᵀV_k:
//
//	SVD(Q) = U_Q Σ_Q V_Qᵀ,  U_W = U_k·U_Q,  V_W = V_k·V_Q.
//
// termIdx lists the affected term rows; z.Row(c) corresponds to
// termIdx[c]… i.e. z is n×j with column c the weight delta of term
// termIdx[c] across documents.
func (m *Model) CorrectWeights(termIdx []int, z *dense.Matrix) error {
	if z.Rows != m.NumDocs() || z.Cols != len(termIdx) {
		return fmt.Errorf("core: CorrectWeights z is %dx%d want %dx%d", z.Rows, z.Cols, m.NumDocs(), len(termIdx))
	}
	if m.FoldedDocs() != 0 || m.FoldedTerms() != 0 {
		return ErrFoldedModel
	}
	for _, i := range termIdx {
		if i < 0 || i >= m.NumTerms() {
			return fmt.Errorf("core: CorrectWeights term index %d out of range %d", i, m.NumTerms())
		}
	}
	k, j := m.K, len(termIdx)
	// U_kᵀY_j is k×j: the selected rows of U_k, transposed.
	uty := dense.New(k, j)
	for c, ti := range termIdx {
		uty.SetCol(c, m.U.Row(ti))
	}
	// Z_jᵀV_k is j×k.
	ztv := dense.MulT(z, m.V)
	// Q = Σ_k + (U_kᵀY_j)(Z_jᵀV_k).
	q := dense.Diag(m.S).Add(dense.Mul(uty, ztv))
	sq := dense.SVD(q).Truncate(k)
	m.U = dense.Mul(m.U, sq.U)
	m.V = dense.Mul(m.V, sq.V)
	m.S = sq.S
	m.fixSigns()
	m.invalidateEngine()
	return nil
}

// fixSigns applies the deterministic sign convention after an update.
func (m *Model) fixSigns() {
	f := &dense.SVDFactors{U: m.U, S: m.S, V: m.V}
	f.FixSigns()
	m.U, m.V = f.U, f.V
}

// ReconstructAk returns U_k·Σ_k·V_kᵀ, the rank-k approximation of Figure 1.
// For a freshly built model this is A_k of Eq (2); after updates it is the
// maintained low-rank approximation of the enlarged matrix.
func (m *Model) ReconstructAk() *dense.Matrix {
	f := &dense.SVDFactors{U: m.U, S: m.S, V: m.V}
	return f.Reconstruct()
}
