package core

// RankMultiPoint ranks documents against a query represented as multiple
// points of interest in k-space (Kane-Esrig et al.'s relevance density
// method, cited in §5.4: "queries can even be represented as multiple
// points of interest"). Each document is scored by its best cosine to any
// point — a disjunctive query — so a user interested in two unrelated
// topics is not forced through their meaningless centroid. Each point is
// one cached-norm scan, so p points cost p dot-product passes (no
// per-point norm recomputation).
func (m *Model) RankMultiPoint(points [][]float64) []Ranked {
	if len(points) == 0 {
		scores := make([]float64, m.NumDocs())
		for j := range scores {
			scores[j] = -1
		}
		return rankScores(scores)
	}
	eng := m.docEngine()
	scores := eng.Scores(points[0])
	for _, p := range points[1:] {
		sp := eng.Scores(p)
		for j, v := range sp {
			if v > scores[j] {
				scores[j] = v
			}
		}
	}
	return rankScores(scores)
}

// ProjectQueries projects several raw query vectors at once, for use with
// RankMultiPoint.
func (m *Model) ProjectQueries(raws [][]float64) [][]float64 {
	out := make([][]float64, len(raws))
	for i, r := range raws {
		out[i] = m.ProjectQuery(r)
	}
	return out
}
