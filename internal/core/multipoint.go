package core

import "repro/internal/dense"

// RankMultiPoint ranks documents against a query represented as multiple
// points of interest in k-space (Kane-Esrig et al.'s relevance density
// method, cited in §5.4: "queries can even be represented as multiple
// points of interest"). Each document is scored by its best cosine to any
// point — a disjunctive query — so a user interested in two unrelated
// topics is not forced through their meaningless centroid.
func (m *Model) RankMultiPoint(points [][]float64) []Ranked {
	scores := make([]float64, m.NumDocs())
	for j := range scores {
		best := -1.0
		v := m.V.Row(j)
		for _, p := range points {
			if c := dense.Cosine(p, v); c > best {
				best = c
			}
		}
		scores[j] = best
	}
	return rankScores(scores)
}

// ProjectQueries projects several raw query vectors at once, for use with
// RankMultiPoint.
func (m *Model) ProjectQueries(raws [][]float64) [][]float64 {
	out := make([][]float64, len(raws))
	for i, r := range raws {
		out[i] = m.ProjectQuery(r)
	}
	return out
}
