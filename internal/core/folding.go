package core

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// FoldInDocs appends p new documents to the model by projection (Eq 7):
// each raw count column d becomes d̂ = dᵀU_kΣ_k⁻¹ and is appended as a row
// of V_k. "The coordinates of the original topics stay fixed, and hence the
// new data has no effect on the clustering of existing terms or documents"
// (§3.3) — cheap, but it corrupts the orthogonality of V̂_k (§4.3).
//
// d is the m×p raw count matrix over the current vocabulary; the model's
// weighting scheme is applied internally.
func (m *Model) FoldInDocs(d *sparse.CSR) {
	if d.Rows != m.NumTerms() {
		panic(fmt.Sprintf("core: FoldInDocs terms %d want %d", d.Rows, m.NumTerms()))
	}
	rows := make([][]float64, d.Cols)
	for j := 0; j < d.Cols; j++ {
		rows[j] = m.ProjectQuery(d.Col(j))
	}
	m.V = m.V.AugmentRows(dense.NewFromRows(rows))
	// The scoring engine's norm cache extends itself lazily on the next
	// query: existing rows are untouched by folding, so only the appended
	// rows need normalizing (see docEngine).
}

// FoldInTerms appends q new terms by projection (Eq 8): each raw 1×n
// occurrence vector t becomes t̂ = tV_kΣ_k⁻¹, appended as a row of U_k.
// New terms carry global weight 1 (their collection statistics were never
// part of the SVD).
//
// t is the q×n raw count matrix over the current documents.
func (m *Model) FoldInTerms(t *sparse.CSR) {
	if t.Cols != m.NumDocs() {
		panic(fmt.Sprintf("core: FoldInTerms docs %d want %d", t.Cols, m.NumDocs()))
	}
	rows := make([][]float64, t.Rows)
	for i := 0; i < t.Rows; i++ {
		raw := make([]float64, t.Cols)
		t.Row(i, func(j int, v float64) { raw[j] = m.Scheme.Local.Apply(v) })
		rows[i] = dense.MulVecT(m.V, raw)
		for c := range rows[i] {
			rows[i][c] /= m.S[c]
		}
	}
	m.U = m.U.AugmentRows(dense.NewFromRows(rows))
	// Extend the global-weight table so future queries over the enlarged
	// vocabulary stay well-defined.
	for i := 0; i < t.Rows; i++ {
		m.global = append(m.global, 1)
	}
}

// FoldedDocs returns how many document rows were appended by folding-in
// (rather than produced by an SVD).
func (m *Model) FoldedDocs() int { return m.NumDocs() - m.svdDocs }

// FoldedTerms returns how many term rows were appended by folding-in.
func (m *Model) FoldedTerms() int { return m.NumTerms() - m.svdTerms }

// DocOrthogonality returns ‖V̂_kᵀV̂_k − I_k‖_F, the §4.3 measure of how much
// distortion folding-in has introduced on the document side. Zero for a
// freshly built or SVD-updated model.
func (m *Model) DocOrthogonality() float64 {
	return dense.OrthogonalityError(m.V)
}

// TermOrthogonality is the same measure for Û_k.
func (m *Model) TermOrthogonality() float64 {
	return dense.OrthogonalityError(m.U)
}
