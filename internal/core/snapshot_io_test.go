package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/snapfile"
	"repro/internal/weight"
)

// TestSnapshotFileRoundTrip pins the mmap-format round trip: a model
// written with WriteSnapshotFile and reopened (with and without the
// full-verify pass) is bit-identical in every factor and behaviourally
// identical on queries.
func TestSnapshotFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomCounts(rng, 30, 18, 0.3)
	m, err := Build(a, Config{K: 6, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.lsnp")
	if err := WriteSnapshotFile(path, m); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	for _, verify := range []bool{false, true} {
		got, f, err := OpenSnapshotFile(path, verify)
		if err != nil {
			t.Fatalf("OpenSnapshotFile(verify=%v): %v", verify, err)
		}
		if got.K != m.K || got.NumTerms() != m.NumTerms() || got.NumDocs() != m.NumDocs() {
			t.Fatal("shape mismatch after round trip")
		}
		if got.Scheme != m.Scheme {
			t.Fatal("scheme mismatch")
		}
		if got.FoldedDocs() != m.FoldedDocs() || got.FoldedTerms() != m.FoldedTerms() {
			t.Fatal("SVD provenance counters lost")
		}
		for i := range m.S {
			if got.S[i] != m.S[i] {
				t.Fatal("singular values differ")
			}
		}
		for i := range m.global {
			if got.global[i] != m.global[i] {
				t.Fatal("global weights differ")
			}
		}
		if !got.U.Equal(m.U, 0) || !got.V.Equal(m.V, 0) {
			t.Fatal("factors differ")
		}
		raw := make([]float64, 30)
		raw[2], raw[9], raw[17] = 1, 3, 2
		r1, r2 := m.Rank(raw), got.Rank(raw)
		for i := range r1 {
			if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-15 {
				t.Fatalf("rankings diverge at %d", i)
			}
		}
		f.Close()
	}
}

// TestSnapshotSectionsPrefixed pins multi-model containers: two models
// under distinct prefixes restore independently from one file.
func TestSnapshotSectionsPrefixed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m0, err := Build(randomCounts(rng, 22, 12, 0.4), Config{K: 4, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Build(randomCounts(rng, 22, 9, 0.4), Config{K: 3, Scheme: weight.Raw})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := m0.SnapshotSections("s0/")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m1.SnapshotSections("s1/")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shards.lsnp")
	if err := snapfile.Write(path, append(s0, s1...)); err != nil {
		t.Fatal(err)
	}
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g0, err := ModelFromSnapshot(f, "s0/")
	if err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	g1, err := ModelFromSnapshot(f, "s1/")
	if err != nil {
		t.Fatalf("shard 1: %v", err)
	}
	if !g0.V.Equal(m0.V, 0) || !g1.V.Equal(m1.V, 0) || g0.Scheme == g1.Scheme {
		t.Fatal("prefixed models not independent")
	}
}

// TestSnapshotRejectsCorruptHeader pins load-time validation: an
// inflated dimension in the JSON header must fail before any
// allocation sized from it.
func TestSnapshotRejectsCorruptHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, err := Build(randomCounts(rng, 20, 10, 0.4), Config{K: 4, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	sections, err := m.SnapshotSections("")
	if err != nil {
		t.Fatal(err)
	}
	sections[0].Data = []byte(`{"k":4,"terms":99999999999,"docs":10,"nGlobal":20,"local":0,"global":2}`)
	path := filepath.Join(t.TempDir(), "bad.lsnp")
	if err := snapfile.Write(path, sections); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSnapshotFile(path, false); err == nil {
		t.Fatal("oversized header accepted")
	}
}
