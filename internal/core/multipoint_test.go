package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

// A two-topic interest finds the union of both topics' documents at least
// as well as the centroid of the two queries does, aggregated over several
// topic pairs (the advantage of the relevance-density representation is
// statistical, not per-pair).
func TestRankMultiPointBeatsCentroidOnDisjunction(t *testing.T) {
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 51, Topics: 6, Docs: 120, DocLen: 40, QueriesPerTopic: 1,
	})
	m, err := BuildCollection(s.Collection, Config{K: 12})
	if err != nil {
		t.Fatal(err)
	}
	var multiSum, centroidSum float64
	for pair := 0; pair+1 < len(s.Queries); pair += 2 {
		qa, qb := s.Queries[pair], s.Queries[pair+1]
		rel := map[int]bool{}
		for _, j := range append(append([]int{}, qa.Relevant...), qb.Relevant...) {
			rel[j] = true
		}
		points := m.ProjectQueries([][]float64{
			s.QueryVector(qa.Text), s.QueryVector(qb.Text),
		})
		multi := m.RankMultiPoint(points)

		centroid := make([]float64, m.K)
		for _, p := range points {
			for c := range centroid {
				centroid[c] += p[c] / 2
			}
		}
		single := m.RankVector(centroid)

		precAt := func(ranked []Ranked, n int) float64 {
			hits := 0
			for _, r := range ranked[:n] {
				if rel[r.Doc] {
					hits++
				}
			}
			return float64(hits) / float64(n)
		}
		n := len(rel)
		multiSum += precAt(multi, n)
		centroidSum += precAt(single, n)
	}
	if multiSum < centroidSum {
		t.Fatalf("multi-point precision sum %v below centroid %v", multiSum, centroidSum)
	}
}

func TestRankMultiPointSinglePointMatchesRankVector(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randomCounts(rng, 20, 12, 0.3)
	m, err := Build(a, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]float64, 20)
	raw[2] = 1
	p := m.ProjectQuery(raw)
	r1 := m.RankMultiPoint([][]float64{p})
	r2 := m.RankVector(p)
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-12 {
			t.Fatal("single-point multi rank differs from RankVector")
		}
	}
}

func TestRankMultiPointScoreIsMax(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randomCounts(rng, 15, 10, 0.4)
	m, err := Build(a, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	q1 := make([]float64, 15)
	q2 := make([]float64, 15)
	q1[0], q2[5] = 1, 1
	points := m.ProjectQueries([][]float64{q1, q2})
	multi := m.RankMultiPoint(points)
	for _, r := range multi {
		c1 := m.Similarity(points[0], r.Doc)
		c2 := m.Similarity(points[1], r.Doc)
		want := math.Max(c1, c2)
		if math.Abs(r.Score-want) > 1e-12 {
			t.Fatalf("doc %d score %v want max(%v, %v)", r.Doc, r.Score, c1, c2)
		}
	}
}
