package text

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize drives the lexical front end with arbitrary byte strings —
// non-UTF-8 sequences, huge tokens, pathological apostrophe stacks — and
// checks the invariants the rest of the pipeline depends on: no panics,
// no empty tokens, tokens already lowercase and normalization-stable
// (re-tokenizing a token yields exactly that token), and the full
// vocabulary/count path agreeing with itself on dimensions.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"Human machine INTERFACE for ABC computer applications",
		"user's users' x's's ''s '' ' don't",
		"café naïve Über STRASSE Ça",
		"\xff\xfe broken \x80 utf8 \xf0\x28\x8c\x28",
		strings.Repeat("a", 1<<16) + " " + strings.Repeat("b'", 1<<10),
		"",
		"   \t\n\r  ",
		"123 4x5 0'9",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("Tokenize(%q) produced an empty token", s)
			}
			if !utf8.ValidString(tok) {
				t.Fatalf("Tokenize(%q) produced invalid UTF-8 token %q", s, tok)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("Tokenize(%q) produced non-lowercase token %q", s, tok)
			}
			// Normalization stability: a token fed back through the
			// tokenizer must survive unchanged, or query-side Count would
			// disagree with document-side BuildVocabulary.
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("token %q is not tokenization-stable: %q", tok, again)
			}
		}
		// The full pipeline must hold its dimension contract for any input.
		v := BuildVocabulary([]string{s, s}, ParseOptions{MinDocs: 1, IncludeBigrams: true})
		counts := v.Count(s)
		if len(counts) != v.Size() {
			t.Fatalf("Count length %d != vocabulary size %d", len(counts), v.Size())
		}
		for i, c := range counts {
			if c <= 0 {
				t.Fatalf("term %q from this document counted %v times in it", v.Terms[i], c)
			}
		}
	})
}
