package text

import (
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokenize("Hello, World! foo-bar baz's 42")
	want := []string{"hello", "world", "foo", "bar", "baz", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("empty string gave %v", toks)
	}
	if toks := Tokenize("!!! ... ---"); len(toks) != 0 {
		t.Fatalf("punctuation gave %v", toks)
	}
}

func TestTokenizePossessives(t *testing.T) {
	got := Tokenize("the users' children's books")
	want := []string{"the", "users", "children", "books"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café déjà-vu")
	want := []string{"café", "déjà", "vu"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"of", "the", "with", "and", "to"} {
		if !IsStopword(w) {
			t.Fatalf("%q should be a stopword", w)
		}
	}
	if IsStopword("blood") {
		t.Fatal("content word flagged as stopword")
	}
	// Stopwords() returns an independent copy.
	s := Stopwords()
	delete(s, "of")
	if !IsStopword("of") {
		t.Fatal("mutating the copy affected the shared list")
	}
}

func TestBuildVocabularyParsingRule(t *testing.T) {
	docs := []string{
		"blood culture study",
		"blood disease",
		"unique mention here",
	}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2})
	// Only "blood" appears in >1 document.
	if v.Size() != 1 || v.Terms[0] != "blood" {
		t.Fatalf("vocab = %v", v.Terms)
	}
	v1 := BuildVocabulary(docs, ParseOptions{MinDocs: 1})
	// "here" is a stopword; the six content words remain.
	if v1.Size() != 6 {
		t.Fatalf("MinDocs=1 vocab size = %d (%v)", v1.Size(), v1.Terms)
	}
}

func TestBuildVocabularyDFCountsDocsNotOccurrences(t *testing.T) {
	docs := []string{"echo echo echo", "silence"}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2})
	if v.Size() != 0 {
		t.Fatalf("repeated word in one doc should not pass MinDocs=2: %v", v.Terms)
	}
}

func TestVocabularySortedDeterministic(t *testing.T) {
	docs := []string{"zebra apple mango", "mango zebra apple"}
	v := BuildVocabulary(docs, ParseOptions{})
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(v.Terms, want) {
		t.Fatalf("terms not sorted: %v", v.Terms)
	}
}

func TestCount(t *testing.T) {
	docs := []string{"cat dog cat", "dog bird"}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 1})
	c := v.Count("cat cat dog unknown of")
	// Terms sorted: bird, cat, dog.
	if c[v.Index["cat"]] != 2 || c[v.Index["dog"]] != 1 || c[v.Index["bird"]] != 0 {
		t.Fatalf("counts = %v (index %v)", c, v.Index)
	}
}

func TestAliases(t *testing.T) {
	docs := []string{"blood cultures grow", "culture of cells grow"}
	v := BuildVocabulary(docs, ParseOptions{
		MinDocs: 2,
		Aliases: map[string]string{"cultures": "culture"},
	})
	if _, ok := v.Index["culture"]; !ok {
		t.Fatalf("alias folding failed: %v", v.Terms)
	}
	c := v.Count("cultures and culture")
	if c[v.Index["culture"]] != 2 {
		t.Fatalf("alias not applied in Count: %v", c)
	}
}

func TestMinLength(t *testing.T) {
	docs := []string{"a bb ccc", "a bb ccc"}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2, MinLength: 2, Stopwords: map[string]bool{}})
	if v.Size() != 2 {
		t.Fatalf("MinLength filter wrong: %v", v.Terms)
	}
}

func TestDisableStopwordsExplicitly(t *testing.T) {
	docs := []string{"of the", "of the"}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2, Stopwords: map[string]bool{}})
	if v.Size() != 2 {
		t.Fatalf("explicit empty stopword map should disable stopping: %v", v.Terms)
	}
}

func TestBigramIndexing(t *testing.T) {
	docs := []string{
		"blood pressure rises quickly",
		"blood pressure falls after rest",
	}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2, IncludeBigrams: true})
	if _, ok := v.Index["blood pressure"]; !ok {
		t.Fatalf("bigram not indexed: %v", v.Terms)
	}
	c := v.Count("the blood pressure of patients")
	if c[v.Index["blood pressure"]] != 1 {
		t.Fatalf("bigram count wrong: %v", c)
	}
	// Unigrams still counted.
	if c[v.Index["blood"]] != 1 || c[v.Index["pressure"]] != 1 {
		t.Fatal("unigram counts wrong alongside bigrams")
	}
}

func TestBigramsBrokenByStopwords(t *testing.T) {
	docs := []string{
		"pressure of blood is high",
		"pressure of blood is low",
	}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2, IncludeBigrams: true})
	// "pressure blood" must NOT form: "of" separates them.
	if _, ok := v.Index["pressure blood"]; ok {
		t.Fatalf("stopword-crossing bigram indexed: %v", v.Terms)
	}
}

func TestBigramsOffByDefault(t *testing.T) {
	docs := []string{"blood pressure", "blood pressure"}
	v := BuildVocabulary(docs, ParseOptions{MinDocs: 2})
	if _, ok := v.Index["blood pressure"]; ok {
		t.Fatal("bigram indexed without IncludeBigrams")
	}
}
