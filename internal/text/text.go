// Package text implements the lexical front end of the LSI pipeline:
// tokenization, stop-word removal, and vocabulary construction under a
// parsing rule. Per §5.4, "words are identified by looking for white spaces
// and punctuation in ASCII text" and "no stemming is used" — the tokenizer
// here matches that: lowercase, split on non-letter/digit, no morphology.
package text

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits raw text into lowercase tokens on any rune that is not a
// letter, digit, or apostrophe (apostrophes inside words are kept so
// "user's" survives as one token, then normalized by dropping the suffix).
func Tokenize(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		// Normalization can consume the whole token (a bare "'" or "'s"):
		// emit nothing rather than an empty string, which would otherwise
		// become a phantom vocabulary term.
		if t := normalizeToken(b.String()); t != "" {
			toks = append(toks, t)
		}
		b.Reset()
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// keep; handled in normalizeToken
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

func normalizeToken(t string) string {
	// Strip possessive suffixes and stray apostrophes: users' -> users,
	// user's -> user. Repeat until stable so stacked possessives
	// ("x's's") cannot leave a token that would normalize differently on
	// a second pass — Vocabulary.Count must map query tokens exactly as
	// BuildVocabulary mapped document tokens.
	for {
		u := strings.Trim(t, "'")
		u = strings.TrimSuffix(u, "'s")
		if u == t {
			return t
		}
		t = u
	}
}

// defaultStopwords is the compact SMART-style function-word list used by
// the example corpora. It intentionally includes the three words the paper
// drops from the example query: "of", "children", and "with" are handled by
// the list plus the >1-document parsing rule.
var defaultStopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
a about above after again all also an and any are as at be because been
before being below between both but by can did do does doing down during
each few for from further had has have having he her here hers him his how
i if in into is it its itself just me more most my no nor not now of off on
once only or other our ours out over own same she should so some such than
that the their theirs them then there these they this those through to too
under until up very was we were what when where which while who whom why
will with without would you your yours
`) {
		defaultStopwords[w] = true
	}
}

// Stopwords returns a copy of the default stop-word set; callers may add or
// remove entries without affecting the shared list.
func Stopwords() map[string]bool {
	out := make(map[string]bool, len(defaultStopwords))
	for w := range defaultStopwords {
		out[w] = true
	}
	return out
}

// IsStopword reports membership in the default list.
func IsStopword(w string) bool { return defaultStopwords[w] }

// Vocabulary maps indexing terms to contiguous row indices. It retains the
// parsing options it was built with so Count tokenizes queries and new
// documents identically.
type Vocabulary struct {
	Terms []string       // index → term, sorted lexicographically
	Index map[string]int // term → index
	opts  ParseOptions
}

// ParseOptions controls vocabulary construction.
type ParseOptions struct {
	// MinDocs is the parsing rule of §3: a keyword must appear in more than
	// one document to be indexed. MinDocs=2 reproduces the paper's rule;
	// MinDocs=1 indexes every non-stopword.
	MinDocs int
	// Stopwords, when nil, defaults to the built-in list. An explicitly
	// empty (but non-nil) map disables stopping.
	Stopwords map[string]bool
	// MinLength drops tokens shorter than this many runes (default 1).
	MinLength int
	// Aliases folds surface forms together before counting (e.g.
	// "cultures" → "culture" in the paper's §3 example, whose keyword
	// tagging folds that one plural). This is not stemming — only the
	// listed forms are touched.
	Aliases map[string]string
	// IncludeBigrams additionally indexes adjacent content-word pairs as
	// single "w1 w2" terms under the same MinDocs rule — §5.4: "phrases or
	// n-grams could also be included as rows in the matrix". Stop words
	// break phrase adjacency.
	IncludeBigrams bool
}

func (o *ParseOptions) fill() {
	if o.MinDocs <= 0 {
		o.MinDocs = 2
	}
	if o.Stopwords == nil {
		o.Stopwords = defaultStopwords
	}
	if o.MinLength <= 0 {
		o.MinLength = 1
	}
}

// units converts a raw token stream to indexing units under the options:
// folded, filtered content words, plus (optionally) adjacent-pair bigrams.
// Stop words and short tokens break bigram adjacency.
func units(toks []string, opts *ParseOptions) []string {
	var out []string
	prev := "" // previous content word, "" after a break
	for _, tok := range toks {
		if a, ok := opts.Aliases[tok]; ok {
			tok = a
		}
		if len([]rune(tok)) < opts.MinLength || opts.Stopwords[tok] {
			prev = ""
			continue
		}
		out = append(out, tok)
		if opts.IncludeBigrams && prev != "" {
			out = append(out, prev+" "+tok)
		}
		prev = tok
	}
	return out
}

// BuildVocabulary tokenizes every document and returns the vocabulary of
// terms that pass the parsing rule, in sorted order for determinism.
func BuildVocabulary(docs []string, opts ParseOptions) *Vocabulary {
	opts.fill()
	df := map[string]int{}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, u := range units(Tokenize(d), &opts) {
			if seen[u] {
				continue
			}
			seen[u] = true
			df[u]++
		}
	}
	var terms []string
	for t, n := range df {
		if n >= opts.MinDocs {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	v := &Vocabulary{
		Terms: terms,
		Index: make(map[string]int, len(terms)),
		opts:  opts,
	}
	for i, t := range terms {
		v.Index[t] = i
	}
	return v
}

// NewVocabularyFromTerms rebuilds a vocabulary from a persisted term
// list — the snapshot-restore constructor. The terms must be the exact
// (sorted) list a BuildVocabulary call produced and opts the options it
// ran under, so queries parse and project identically to the original
// process; no document-frequency filtering is re-applied.
func NewVocabularyFromTerms(terms []string, opts ParseOptions) *Vocabulary {
	opts.fill()
	v := &Vocabulary{
		Terms: terms,
		Index: make(map[string]int, len(terms)),
		opts:  opts,
	}
	for i, t := range terms {
		v.Index[t] = i
	}
	return v
}

// Size returns the number of indexing terms.
func (v *Vocabulary) Size() int { return len(v.Terms) }

// Count returns the term-frequency vector of one document under this
// vocabulary (terms outside the vocabulary are ignored, as for stop words).
func (v *Vocabulary) Count(doc string) []float64 {
	return v.CountTokens(Tokenize(doc))
}

// CountTokens is Count for pre-tokenized input.
func (v *Vocabulary) CountTokens(toks []string) []float64 {
	out := make([]float64, len(v.Terms))
	for _, u := range units(toks, &v.opts) {
		if i, ok := v.Index[u]; ok {
			out[i]++
		}
	}
	return out
}
