package spell

import (
	"testing"

	"repro/internal/corpus"
)

var dictionary = []string{
	"information", "retrieval", "latent", "semantic", "indexing",
	"singular", "value", "decomposition", "matrix", "sparse",
	"document", "query", "vector", "cosine", "factor",
	"update", "folding", "orthogonal", "lanczos", "truncated",
	"precision", "recall", "relevance", "feedback", "filtering",
	"synonym", "polysemy", "lexical", "keyword", "database",
}

func corrector(t *testing.T) *Corrector {
	t.Helper()
	c, err := New(dictionary, Config{K: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExactWordsCorrectToThemselves(t *testing.T) {
	c := corrector(t)
	for _, w := range dictionary {
		if got := c.Correct(w); got != w {
			t.Fatalf("Correct(%q) = %q", w, got)
		}
	}
}

func TestSingleEditMisspellings(t *testing.T) {
	c := corrector(t)
	cases := [][2]string{
		{"informaton", "information"}, // deletion
		{"semantik", "semantic"},      // substitution
		{"retreival", "retrieval"},    // transposition
		{"lanzcos", "lanczos"},        // transposition
		{"indexxing", "indexing"},     // insertion
		{"qeury", "query"},            // transposition
	}
	acc := c.Accuracy(cases, 1)
	if acc < 0.8 {
		t.Fatalf("top-1 accuracy %v on single-edit misspellings", acc)
	}
	if c.Accuracy(cases, 3) < acc {
		t.Fatal("top-3 accuracy below top-1")
	}
}

func TestSuggestReturnsRequestedCount(t *testing.T) {
	c := corrector(t)
	s := c.Suggest("documnet", 5)
	if len(s) != 5 {
		t.Fatalf("got %d suggestions", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Score < s[i].Score {
			t.Fatal("suggestions not sorted")
		}
	}
	// Requesting more than the dictionary clamps.
	if got := c.Suggest("x", 1000); len(got) != len(dictionary) {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestEmptyDictionaryErrors(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestAccuracyEmptyPairs(t *testing.T) {
	c := corrector(t)
	if acc := c.Accuracy(nil, 1); acc != 0 {
		t.Fatalf("empty accuracy %v", acc)
	}
}

func TestBaselineGramOverlap(t *testing.T) {
	ix := corpus.NewNGramIndex(dictionary)
	s := BaselineGramOverlap(ix, "informaton", 3)
	if len(s) != 3 {
		t.Fatalf("got %d", len(s))
	}
	if s[0].Word != "information" {
		t.Fatalf("baseline top suggestion %q", s[0].Word)
	}
}

func TestCorrectOnGibberish(t *testing.T) {
	c := corrector(t)
	// Gibberish with no shared grams: Correct must not panic and returns
	// some dictionary word (or the input if nothing scored).
	_ = c.Correct("zzzz")
}
