// Package spell implements Kukich's LSI spelling corrector (§5.4): the
// descriptor–object matrix has character n-grams as rows and correctly
// spelled words as columns; an input word "was broken down into its
// bigrams and trigrams, the query vector was located at the weighted vector
// sum of these elements, and the nearest word in LSI space was returned as
// the suggested correct spelling."
package spell

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/weight"
)

// Corrector is an LSI model over an n-gram × word matrix.
type Corrector struct {
	Index *corpus.NGramIndex
	Model *core.Model
}

// Config parameterizes New.
type Config struct {
	// K is the number of factors (default: min(60, #words-1)).
	K int
	// Scheme weights the gram–word matrix (default raw).
	Scheme weight.Scheme
	Seed   int64
}

// New builds a corrector over a dictionary of correctly spelled words.
func New(dictionary []string, cfg Config) (*Corrector, error) {
	if len(dictionary) == 0 {
		return nil, fmt.Errorf("spell: empty dictionary")
	}
	ix := corpus.NewNGramIndex(dictionary)
	k := cfg.K
	if k <= 0 {
		k = 60
	}
	if max := len(dictionary) - 1; k > max && max > 0 {
		k = max
	}
	m, err := core.Build(ix.M, core.Config{K: k, Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("spell: %w", err)
	}
	return &Corrector{Index: ix, Model: m}, nil
}

// Suggestion is one candidate correction.
type Suggestion struct {
	Word  string
	Score float64
}

// Suggest returns the n nearest dictionary words to the input (possibly
// misspelled) word, best first.
func (c *Corrector) Suggest(word string, n int) []Suggestion {
	qhat := c.Model.ProjectQuery(c.Index.QueryVector(word))
	ranked := c.Model.RankVector(qhat)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Suggestion, n)
	for i := 0; i < n; i++ {
		out[i] = Suggestion{Word: c.Index.Words[ranked[i].Doc], Score: ranked[i].Score}
	}
	return out
}

// Correct returns the single best correction.
func (c *Corrector) Correct(word string) string {
	s := c.Suggest(word, 1)
	if len(s) == 0 {
		return word
	}
	return s[0].Word
}

// Accuracy scores the corrector on (misspelled, intended) pairs, counting a
// case correct when the intended word appears in the top-n suggestions.
func (c *Corrector) Accuracy(pairs [][2]string, topN int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	correct := 0
	for _, p := range pairs {
		for _, s := range c.Suggest(p[0], topN) {
			if s.Word == p[1] {
				correct++
				break
			}
		}
	}
	return float64(correct) / float64(len(pairs))
}

// BaselineGramOverlap is the non-LSI comparator: rank dictionary words by
// raw n-gram cosine overlap with the input (a traditional lexical-distance
// metric from Kukich's comparison).
func BaselineGramOverlap(ix *corpus.NGramIndex, word string, n int) []Suggestion {
	q := ix.QueryVector(word)
	var qn float64
	for _, v := range q {
		qn += v * v
	}
	scores := make([]float64, len(ix.Words))
	norms := ix.M.ColNorms()
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		ix.M.Row(i, func(j int, v float64) { scores[j] += qi * v })
	}
	out := make([]Suggestion, len(ix.Words))
	for j := range scores {
		s := 0.0
		if qn > 0 && norms[j] > 0 {
			s = scores[j] / (norms[j])
		}
		out[j] = Suggestion{Word: ix.Words[j], Score: s}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Word < out[b].Word
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
