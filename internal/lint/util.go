package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// builtinName returns the name of the builtin a call invokes ("append",
// "make", …) or "" when the callee is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleeFunc resolves the function or method a call invokes, following
// selections so promoted methods (an embedded sync.Mutex's Lock) resolve
// to their original declaration. Returns nil for builtins, conversions,
// and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call (fmt.Println) has no Selection entry.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match: they have a receiver).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// syncMethodCall reports whether call invokes a method of a sync type
// (directly or via embedding), returning the receiver expression, the
// sync type name ("Mutex", "RWMutex", "WaitGroup", …), and the method
// name ("Lock", "RUnlock", "Add", …).
func syncMethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

// lockHolder names the sync types whose by-value copy or misuse the
// concurrency checks care about.
var lockHolder = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// containsLock reports whether a value of type t holds sync state that
// must not be copied: one of the sync types above, or a struct/array
// containing one (transitively). Pointers are fine — copying a pointer
// shares the lock instead of splitting it.
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockHolder[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// isZeroConstant reports whether e is a compile-time constant equal to
// zero — the one float comparison the determinism suite allows, since
// IEEE zero comparisons (guards like `if norm == 0`) are exact.
func isZeroConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// inspectSkippingFuncLits walks the subtree rooted at n, calling f for
// every node but not descending into nested function literals — their
// bodies execute in their own dynamic context, not the enclosing one.
func inspectSkippingFuncLits(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit && node != n {
			return false
		}
		return f(node)
	})
}

// forEachFuncBody invokes f once per function body in the file: every
// declared function plus every function literal. The node passed is the
// FuncDecl or FuncLit owning the body.
func forEachFuncBody(file *ast.File, f func(owner ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				f(fn, fn.Body)
			}
		case *ast.FuncLit:
			f(fn, fn.Body)
		}
		return true
	})
}
