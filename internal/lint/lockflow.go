package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock-set inference: a lightweight per-function control-flow graph plus
// a forward must-hold dataflow over it. Each basic block is a
// straight-line run of simple statements (compound statements are
// decomposed; their conditions become expression nodes so accesses inside
// them are still visited under the right lock state). The analysis
// computes, for every statement, the set of mutexes that are held on
// EVERY path reaching it — the meet is set intersection, so a lock
// acquired in only one branch does not count after the join. Deferred
// unlocks leave the lock held through the rest of the function, matching
// the runtime behavior.
//
// Locks are identified structurally (lockKey): the root object a
// selector chain starts from plus the dotted field path to the mutex, so
// `m.engMu` held in one method and `mo.engMu` held in another compare
// equal once rebased onto the callee's receiver. Nested function
// literals are analyzed as their own functions with an empty entry set:
// a closure may run on any goroutine at any time, so assuming it holds
// nothing is the conservative direction for a race check.

// lockKey identifies one mutex value well enough to compare across
// functions: the object a selector chain is rooted at (a local, a
// parameter, a receiver, or a package-level variable) and the dotted
// field path from it down to the mutex ("" when the root is the mutex
// itself).
type lockKey struct {
	root types.Object
	path string
}

// child extends the key by one selector step.
func (k lockKey) child(name string) lockKey {
	if k.path == "" {
		return lockKey{k.root, name}
	}
	return lockKey{k.root, k.path + "." + name}
}

// String renders the key for diagnostics ("m.engMu").
func (k lockKey) String() string {
	if k.root == nil {
		return k.path
	}
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// rebase translates the key from a caller's frame into a callee's: a key
// rooted at the call receiver becomes a key rooted at the callee's
// receiver variable; package-level roots pass through unchanged (the
// object is the same everywhere); everything else is untranslatable and
// dropped.
func (k lockKey) rebase(callRecv lockKey, calleeRecv types.Object) (lockKey, bool) {
	if k.root != nil && k.root.Parent() != nil && k.root.Pkg() != nil &&
		k.root.Parent() == k.root.Pkg().Scope() {
		return k, true // package-level variable: globally addressable
	}
	if calleeRecv == nil || callRecv.root == nil || k.root != callRecv.root {
		return lockKey{}, false
	}
	switch {
	case callRecv.path == "" && k.path != "":
		return lockKey{calleeRecv, k.path}, true
	case callRecv.path != "" && strings.HasPrefix(k.path, callRecv.path+"."):
		return lockKey{calleeRecv, strings.TrimPrefix(k.path, callRecv.path+".")}, true
	}
	return lockKey{}, false
}

// exprKey resolves an expression to a lockKey: an identifier, or a
// selector chain over identifiers (with parens and pointer derefs
// unwrapped). Index expressions, calls, and anything else defeat the
// identification.
func exprKey(info *types.Info, e ast.Expr) (lockKey, bool) {
	switch x := unwrapExpr(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return lockKey{}, false
		}
		return lockKey{root: obj}, true
	case *ast.SelectorExpr:
		if id, ok := unwrapExpr(x.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				obj := info.Uses[x.Sel]
				if obj == nil {
					return lockKey{}, false
				}
				return lockKey{root: obj}, true
			}
		}
		base, ok := exprKey(info, x.X)
		if !ok {
			return lockKey{}, false
		}
		return base.child(x.Sel.Name), true
	}
	return lockKey{}, false
}

// unwrapExpr strips parens and pointer dereferences: (*m).mu and m.mu
// name the same lock.
func unwrapExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// lockSet is a must-hold set of locks. nil means ⊤ (everything held) —
// the lattice top used for not-yet-reached blocks.
type lockSet map[lockKey]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersect meets two sets; ⊤ is the identity.
func intersect(a, b lockSet) lockSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalSets(a, b lockSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// union returns a ∪ b (⊤ absorbs).
func union(a, b lockSet) lockSet {
	if a == nil || b == nil {
		return nil
	}
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

// sortedLocks renders a set for diagnostics in stable order.
func sortedLocks(s lockSet) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// CFG construction

// cfgBlock is one basic block: simple statements and condition
// expressions in execution order, then the successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

type loopFrame struct {
	label     string
	brk, cont *cfgBlock
	isSwitchy bool // switch/select: continue passes through to outer loop
}

type cfgBuilder struct {
	blocks []*cfgBlock
	cur    *cfgBlock
	frames []loopFrame
	label  string // pending label for the next loop/switch statement
}

// buildCFG decomposes a function body into basic blocks. goto is not
// supported (the repository does not use it); a goto conservatively
// leaves its block without successors.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{}
	entry := b.newBlock()
	b.cur = entry
	b.stmts(body.List)
	return &funcCFG{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	takeLabel := func() string {
		l := b.label
		b.label = ""
		return l
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.LabeledStmt:
		b.label = st.Label.Name
		b.stmt(st.Stmt)
		b.label = ""
	case *ast.IfStmt:
		if st.Init != nil {
			b.cur.nodes = append(b.cur.nodes, st.Init)
		}
		b.cur.nodes = append(b.cur.nodes, st.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(head, thenB)
		b.cur = thenB
		b.stmts(st.Body.List)
		b.link(b.cur, after)
		if st.Else != nil {
			elseB := b.newBlock()
			b.link(head, elseB)
			b.cur = elseB
			b.stmt(st.Else)
			b.link(b.cur, after)
		} else {
			b.link(head, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := takeLabel()
		if st.Init != nil {
			b.cur.nodes = append(b.cur.nodes, st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if st.Post != nil {
			post.nodes = append(post.nodes, st.Post)
		}
		b.link(post, head)
		body := b.newBlock()
		b.link(head, body)
		if st.Cond != nil {
			b.link(head, after)
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmts(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.link(b.cur, post)
		b.cur = after
	case *ast.RangeStmt:
		label := takeLabel()
		head := b.newBlock()
		b.link(b.cur, head)
		head.nodes = append(head.nodes, st.X)
		if st.Key != nil {
			head.nodes = append(head.nodes, st.Key)
		}
		if st.Value != nil {
			head.nodes = append(head.nodes, st.Value)
		}
		after := b.newBlock()
		b.link(head, after)
		body := b.newBlock()
		b.link(head, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmts(st.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.link(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		label := takeLabel()
		if st.Init != nil {
			b.cur.nodes = append(b.cur.nodes, st.Init)
		}
		if st.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, st.Tag)
		}
		b.switchClauses(label, st.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			var exprs []ast.Node
			for _, e := range c.List {
				exprs = append(exprs, e)
			}
			return exprs, c.Body, c.List == nil
		})
	case *ast.TypeSwitchStmt:
		label := takeLabel()
		if st.Init != nil {
			b.cur.nodes = append(b.cur.nodes, st.Init)
		}
		b.cur.nodes = append(b.cur.nodes, st.Assign)
		b.switchClauses(label, st.Body.List, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, c.Body, c.List == nil
		})
	case *ast.SelectStmt:
		label := takeLabel()
		head := b.cur
		after := b.newBlock()
		hasDefault := false
		for _, cl := range st.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.link(head, blk)
			if comm.Comm != nil {
				blk.nodes = append(blk.nodes, comm.Comm)
			} else {
				hasDefault = true
			}
			b.frames = append(b.frames, loopFrame{label: label, brk: after, isSwitchy: true})
			b.cur = blk
			b.stmts(comm.Body)
			b.frames = b.frames[:len(b.frames)-1]
			b.link(b.cur, after)
		}
		_ = hasDefault // select blocks until a case is ready: no fallthrough edge
		b.cur = after
	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, st)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.cur.nodes = append(b.cur.nodes, st)
		switch st.Tok {
		case token.BREAK:
			if t := b.findFrame(st.Label, false); t != nil {
				b.link(b.cur, t.brk)
			}
		case token.CONTINUE:
			if t := b.findFrame(st.Label, true); t != nil && t.cont != nil {
				b.link(b.cur, t.cont)
			}
		case token.FALLTHROUGH:
			// Handled by switchClauses via edge to the next clause body.
			return
		case token.GOTO:
			// Unsupported: leave the block successor-less (conservative: the
			// target keeps whatever state its other predecessors establish).
		}
		b.cur = b.newBlock()
	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, st)
		if isPanicCall(st.X) {
			b.cur = b.newBlock() // panic terminates the path
		}
	default:
		// Assign, IncDec, Decl, Send, Go, Defer, Empty: straight-line.
		b.cur.nodes = append(b.cur.nodes, st)
	}
}

// switchClauses wires the clause bodies of a switch/type-switch: every
// clause branches from the head, falls out to after, and fallthrough
// jumps to the next clause's body. A missing default adds a direct
// head→after edge.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt,
	split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		exprs, stmts, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		blk := bodies[i]
		b.link(head, blk)
		blk.nodes = append(blk.nodes, exprs...)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, isSwitchy: true})
		b.cur = blk
		var fellThrough bool
		for _, s := range stmts {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) {
					b.link(b.cur, bodies[i+1])
					fellThrough = true
				}
				continue
			}
			b.stmt(s)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !fellThrough {
			b.link(b.cur, after)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.cur = after
}

// findFrame resolves a break/continue target: the innermost matching
// frame, skipping switch frames for continue.
func (b *cfgBuilder) findFrame(label *ast.Ident, isContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if isContinue && f.isSwitchy {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// ---------------------------------------------------------------------
// Dataflow

// lockTransfer applies one node's effect to held: Lock/RLock on a
// sync.Mutex/RWMutex adds its key, Unlock/RUnlock removes it. Deferred
// releases are skipped — they fire at exit, so the lock stays held for
// the rest of the function. Nested function literals are skipped: they
// are analyzed as their own functions. TryLock is ignored (its success
// is conditional, so it never establishes must-hold facts).
func lockTransfer(info *types.Info, n ast.Node, held lockSet) lockSet {
	ast.Inspect(n, func(inner ast.Node) bool {
		switch x := inner.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			recv, typeName, method, ok := syncMethodCall(info, x)
			if !ok || (typeName != "Mutex" && typeName != "RWMutex") {
				return true
			}
			key, keyOK := exprKey(info, recv)
			if !keyOK {
				return true
			}
			switch method {
			case "Lock", "RLock":
				held = held.clone()
				held[key] = true
			case "Unlock", "RUnlock":
				held = held.clone()
				delete(held, key)
			}
		}
		return true
	})
	return held
}

// lockFlow runs the must-hold analysis over one function body and calls
// visit for every CFG node with the lock set held on entry to it. entry
// seeds the function's entry block (∅ for roots; interprocedural callers
// add inherited locks separately).
func lockFlow(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held lockSet)) {
	g := buildCFG(body)
	in := map[*cfgBlock]lockSet{}  // nil (absent) = ⊤
	out := map[*cfgBlock]lockSet{} // nil (absent) = ⊤
	seen := map[*cfgBlock]bool{}
	in[g.entry] = lockSet{}
	seen[g.entry] = true

	apply := func(b *cfgBlock, s lockSet) lockSet {
		for _, n := range b.nodes {
			s = lockTransfer(info, n, s)
		}
		return s
	}

	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		o := apply(b, in[b])
		if prev, ok := out[b]; ok && equalSets(prev, o) {
			continue
		}
		out[b] = o
		for _, succ := range b.succs {
			next := intersect(in[succ], o)
			if !seen[succ] || !equalSets(in[succ], next) {
				in[succ] = next
				seen[succ] = true
				work = append(work, succ)
			}
		}
	}

	for _, b := range g.blocks {
		s, reached := in[b]
		if !reached {
			continue // unreachable: nothing to report there
		}
		for _, n := range b.nodes {
			visit(n, s)
			s = lockTransfer(info, n, s)
		}
	}
}
