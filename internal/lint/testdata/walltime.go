// Fixture for the walltime check.
package fixtures

import "time"

func reads() time.Duration {
	t0 := time.Now()      // want walltime
	return time.Since(t0) // want walltime
}

func durationsAreFine() time.Duration {
	return 3 * time.Second // constants and arithmetic: no diagnostic
}

func suppressed() time.Time {
	return time.Now() //lsilint:ignore walltime — benchmark harness timing
}
