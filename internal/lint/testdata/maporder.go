// Fixture for the maporder check. Lines expecting a diagnostic carry a
// trailing want-marker comment naming the check ID; all other lines must
// stay clean.
package fixtures

import (
	"fmt"
	"sort"
)

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder
	}
	return sum
}

func intAccumulationIsFine(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes exactly: no diagnostic
	}
	return n
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: the canonical fix, no diagnostic
	}
	sort.Strings(keys)
	return keys
}

func printedOutput(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want maporder
	}
}

func sliceRangeIsFine(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // slices iterate in order: no diagnostic
	}
	return sum
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lsilint:ignore maporder — commutative within test tolerance here
	}
	return sum
}
