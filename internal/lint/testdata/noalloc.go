// Fixture for the noalloc check.
package fixtures

import "fmt"

// kernel is hot-path code: every allocating construct must be flagged.
//
//lsilint:noalloc
func kernel(out, x []float64, n int) float64 {
	buf := make([]float64, n) // want noalloc
	out = append(out, 1.0)    // want noalloc
	p := new(float64)         // want noalloc
	lit := []float64{1, 2}    // want noalloc
	m := map[int]int{}        // want noalloc
	s := "a" + "b"            // want noalloc
	bs := []byte(s)           // want noalloc
	str := string(bs)         // want noalloc
	fmt.Println(n)            // want noalloc
	var sum float64
	for i, v := range x {
		sum += v * float64(i) // arithmetic and numeric conversions: no diagnostic
	}
	add := func() { sum += buf[0] } // want noalloc
	add()
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // failure path: no diagnostic
	}
	_, _, _, _, _ = p, lit, m, str, out
	return sum
}

// unannotated may allocate freely: no diagnostics anywhere in here.
func unannotated(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	fmt.Println(len(out))
	return out
}

//lsilint:noalloc
func interfaceReturn(n int) interface{} {
	return n // want noalloc
}

//lsilint:noalloc
func interfaceAssign(sink *interface{}, n int) {
	*sink = n // want noalloc
}

// cleanKernelF32 mirrors the float32 screening kernels: unrolled
// multiply-adds, float32↔float64 numeric conversions, and slice indexing
// are all allocation-free.
//
//lsilint:noalloc
func cleanKernelF32(x, y []float32, eps []float64, low float64) float64 {
	var s0, s1 float32
	i := 0
	for ; i+2 <= len(x); i += 2 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	sc := float64(s0 + s1) // widening conversion: no diagnostic
	if sc+eps[0] >= low {
		return sc
	}
	return float64(float32(low)) // narrowing round-trip: no diagnostic
}

//lsilint:noalloc
func kernelF32(n int) float32 {
	buf := make([]float32, n)     // want noalloc
	m32 := []float32{1, 2}        // want noalloc
	buf = append(buf, float32(n)) // want noalloc
	return buf[0] + m32[0]
}

//lsilint:noalloc
func cleanKernel(x, y []float64) float64 {
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(x); i += 2 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1
}

// cleanGather mirrors the IVF cluster-scan kernels: an int32-gathered
// float32 sweep writing ids and scores into caller-owned scratch by
// index, plus float64 centroid accumulation — all allocation-free.
//
//lsilint:noalloc
func cleanGather(ids []int32, s32 []float32, acc []float64, mem []int32, rows []float32, m int) int {
	for _, id := range mem {
		i := int(id)
		sc := rows[i]
		ids[m] = id
		s32[m] = sc
		acc[i] += float64(sc) // float64 accumulation: no diagnostic
		m++
	}
	return m
}

// gatherAlloc is the same shape gone wrong: growing the candidate list
// with append (instead of indexed writes into pooled scratch) and
// closing over state both allocate on the scan path.
//
//lsilint:noalloc
func gatherAlloc(mem []int32, rows []float32) []float32 {
	var out []float32
	for _, id := range mem {
		out = append(out, rows[int(id)]) // want noalloc
	}
	visit := func(i int32) float32 { return rows[i] } // want noalloc
	_ = visit
	return out
}

// cleanReorth mirrors the Golub–Kahan full-reorthogonalization inner
// loop (dense.reorthRows): two modified Gram–Schmidt passes of dot and
// axpy against row views of a caller-owned basis — run O(l²) times per
// bidiagonalization, so it must stay allocation-free.
//
//lsilint:noalloc
func cleanReorth(basis [][]float64, j int, v []float64) {
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < j; i++ {
			row := basis[i]
			var d float64
			for t := range row {
				d += row[t] * v[t]
			}
			for t := range row {
				v[t] -= d * row[t]
			}
		}
	}
}

// reorthAlloc is the same Gram–Schmidt step gone wrong: materializing a
// scratch projection per basis row and closing over the loop state both
// allocate inside the O(l²) reorthogonalization loop.
//
//lsilint:noalloc
func reorthAlloc(basis [][]float64, j int, v []float64) {
	for i := 0; i < j; i++ {
		proj := make([]float64, len(v)) // want noalloc
		row := basis[i]
		dot := func() float64 { // want noalloc
			var d float64
			for t := range row {
				d += row[t] * v[t]
			}
			return d
		}
		d := dot()
		for t := range row {
			proj[t] = d * row[t]
			v[t] -= proj[t]
		}
	}
}

// cleanBidiagStep mirrors the Golub–Kahan recurrence body: coupling the
// new Lanczos direction to the previous one (u ← C·q − β·x_prev written
// by the caller's gemv) and recording the α/β bidiagonal entries by
// index into preallocated slices.
//
//lsilint:noalloc
func cleanBidiagStep(u, xPrev, alpha, beta []float64, j int, b float64) float64 {
	for t := range u {
		u[t] -= b * xPrev[t]
	}
	var n float64
	for t := range u {
		n += u[t] * u[t]
	}
	alpha[j] = n
	if j > 0 {
		beta[j-1] = b
	}
	return n
}

// cleanKernelI8 mirrors the int8 screening-tier kernels: an unrolled
// int8 dot product accumulated exactly in int32 (products bounded by
// 127² and MaxI8Dim keep the sum in range), then one widening to
// float64 with the per-row scale and residual certificate — all
// allocation-free.
//
//lsilint:noalloc
func cleanKernelI8(x, y []int8, scale, eps8 []float64, row int, low float64) float64 {
	var s0, s1 int32
	i := 0
	for ; i+2 <= len(x); i += 2 {
		s0 += int32(x[i]) * int32(y[i])
		s1 += int32(x[i+1]) * int32(y[i+1])
	}
	for ; i < len(x); i++ {
		s0 += int32(x[i]) * int32(y[i])
	}
	sc := float64(s0+s1) * scale[row] // widening + scale: no diagnostic
	if sc+eps8[row] >= low {
		return sc
	}
	return low
}

// quantizeAlloc is the int8 shape gone wrong: building the quantized
// row and its certificate on the scoring path instead of reading the
// engine's prebuilt arrays.
//
//lsilint:noalloc
func quantizeAlloc(v []float64, s float64) []int8 {
	q := make([]int8, len(v)) // want noalloc
	for i, x := range v {
		q[i] = int8(x / s)
	}
	q = append(q, 0) // want noalloc
	return q
}
