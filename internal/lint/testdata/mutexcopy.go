// Fixture for the mutexcopy check.
package fixtures

import "sync"

type store struct {
	mu   sync.Mutex
	data map[string]int
}

type wrapper struct{ inner store } // embedding by value is fine to declare…

func byPointer(s *store) {} // pointer: no diagnostic

func byValue(s store) {} // want mutexcopy

func (s store) get(k string) int { // want mutexcopy
	return s.data[k]
}

func (s *store) set(k string, v int) { // pointer receiver: no diagnostic
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
}

func transitive(w wrapper) {} // want mutexcopy

func derefCopy(s *store) {
	local := *s // want mutexcopy
	_ = local
}

func rangeCopy(ss []store) {
	for _, s := range ss { // want mutexcopy
		_ = s
	}
	for i := range ss { // index-only range: no diagnostic
		_ = i
	}
}

func plainStructIsFine(m map[string]int) {
	type plain struct{ n int }
	var p plain
	q := p // no lock inside: no diagnostic
	_ = q
	_ = m
}
