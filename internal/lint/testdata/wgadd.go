// Fixture for the wgadd check.
package fixtures

import "sync"

func addOutside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1) // before the go statement: no diagnostic
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want wgadd
			defer wg.Done()
		}()
	}
	wg.Wait()
}
