// Fixture for the randglobal check.
package fixtures

import "math/rand"

func globalSource() (int, float64) {
	a := rand.Intn(10)                 // want randglobal
	b := rand.Float64()                // want randglobal
	rand.Shuffle(3, func(i, j int) {}) // want randglobal
	return a, b
}

func seededSourceIsFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // method on a seeded *rand.Rand: no diagnostic
}
