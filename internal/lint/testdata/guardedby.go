// Fixture for the guardedby module check: interprocedural lock-set
// inference. Positive lines carry want-markers; everything else must
// stay silent.
package fixtures

import (
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// Annotated field, sibling mutex.

type counter struct {
	mu sync.Mutex
	//lsilint:guardedby mu
	n int
	m int // unannotated: guard inferred from its writes
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++ // guarded directly
	c.mu.Unlock()
}

func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // deferred unlock keeps the lock held
}

func (c *counter) bare() {
	c.n++ // want guardedby
}

// lockedHelper has exactly one caller, which holds c.mu at the call:
// the entry-lock fixpoint transfers the lock across the call edge.
func (c *counter) lockedHelper() {
	c.n++ // inherited from callsHelper
}

func (c *counter) callsHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lockedHelper()
}

// maybeLocked only holds the mutex on one branch, so the must-hold set
// after the join is empty.
func (c *counter) maybeLocked(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want guardedby
	if b {
		c.mu.Unlock()
	}
}

// Closures are analyzed with an empty entry lock set — the documented
// conservative shape: even a closure invoked inline under the lock
// reports.
func (c *counter) closure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() {
		c.n++ // want guardedby
	}
	f()
}

// newCounter writes through a freshly allocated local: no other
// goroutine can reach it, so no lock is required.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// ---------------------------------------------------------------------
// Inference for the unannotated field m: every write is mu-guarded, so
// unguarded accesses are inconsistent.

func (c *counter) setM(v int) {
	c.mu.Lock()
	c.m = v
	c.mu.Unlock()
}

func (c *counter) readM() int {
	return c.m // want guardedby
}

func (c *counter) readMLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// ---------------------------------------------------------------------
// Annotated field, package-level mutex.

var regMu sync.Mutex

type registry struct {
	//lsilint:guardedby regMu
	entries int
}

func addEntry(r *registry) {
	regMu.Lock()
	r.entries++
	regMu.Unlock()
}

func badEntry(r *registry) {
	r.entries++ // want guardedby
}

// ---------------------------------------------------------------------
// Mixed atomic/plain access.

type stats struct {
	hits uint64
}

func (s *stats) bump() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) peek() uint64 {
	return s.hits // want guardedby
}

// ---------------------------------------------------------------------
// Single-owner state with no locked writes anywhere stays silent: there
// is no lock discipline to be inconsistent with.

type owner struct {
	state int
}

func (o *owner) tick() {
	o.state++
}
