// Fixture for the snapshotsafe module check: writes through
// //lsilint:immutable types are only legal inside the constructor chain.
package fixtures

//lsilint:immutable
type snap struct {
	gen  int
	rows [][]float64
}

// wrapper embeds snap: writes to the promoted fields mutate the
// embedded snapshot and must be flagged too.
type wrapper struct {
	snap
	extra int
}

// newSnap returns *snap, so it is in the constructor chain by signature.
func newSnap(n int) *snap {
	s := &snap{gen: 1}
	s.rows = make([][]float64, n)
	s.fill()
	return s
}

// fill returns nothing but is called only from chain members: the chain
// closure admits it.
func (s *snap) fill() {
	for i := range s.rows {
		s.rows[i] = nil
	}
}

// extend is the Extend-style grow path: a method returning *snap.
func (s *snap) extend(n int) *snap {
	ns := &snap{gen: s.gen + 1}
	ns.rows = make([][]float64, n)
	copy(ns.rows, s.rows)
	return ns
}

func mutate(s *snap) {
	s.gen = 2 // want snapshotsafe
}

func mutateDeep(s *snap) {
	s.rows[0] = nil // want snapshotsafe
}

func mutateEmbedded(w *wrapper) {
	w.gen = 3   // want snapshotsafe
	w.extra = 1 // wrapper's own field: fine
}

// poke is called from outside the chain, so it is not a constructor
// helper and its receiver write is a finding.
func (s *snap) poke() {
	s.gen++ // want snapshotsafe
}

func use(s *snap) {
	s.poke()
}

// Reading is always fine.
func read(s *snap) int {
	return s.gen
}

// Rebinding a pointer (or slot holding one) to an immutable value is not
// a mutation: the pointee is untouched. Only writes that reach THROUGH
// an immutable value count.
type holder struct {
	cur *snap
}

func (h *holder) swap(n *snap) {
	h.cur = n // pointer slot owned by holder: fine
}

func rebindLocal(s *snap, n *snap) *snap {
	s = n // local rebind: fine
	return s
}

func rebindSlice(all []*snap, n *snap) {
	all[0] = n // slice of pointers: the slot is not inside a snap
}

// Overwriting the pointee wholesale IS a mutation: the write lands in
// snap-owned storage.
func clobber(s *snap) {
	*s = snap{} // want snapshotsafe
}
