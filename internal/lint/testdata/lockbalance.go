// Fixture for the lockbalance check.
package fixtures

import "sync"

type guarded struct {
	mu  sync.RWMutex
	val int
}

func deferredUnlock(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val++
	return g.val
}

func sameBlockUnlock(g *guarded) int {
	g.mu.RLock()
	v := g.val
	g.mu.RUnlock()
	return v
}

func deferredClosureUnlock(g *guarded) {
	g.mu.Lock()
	defer func() {
		g.val = 0
		g.mu.Unlock()
	}()
	g.val++
}

func missingUnlock(g *guarded) int {
	g.mu.Lock() // want lockbalance
	return g.val
}

func earlyReturnLeaks(g *guarded, cond bool) int {
	g.mu.Lock() // want lockbalance
	if cond {
		return -1 // leaves the mutex held
	}
	v := g.val
	g.mu.Unlock()
	return v
}

func wrongKindLeaks(g *guarded) {
	g.mu.RLock() // want lockbalance
	g.mu.Unlock()
}

func eachLiteralIsItsOwnScope(g *guarded) func() {
	return func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.val++
	}
}

func acknowledgedHandoff(g *guarded) {
	g.mu.Lock() //lsilint:ignore lockbalance — ownership transfers to the caller
}
