// Fixture for the floatcmp check.
package fixtures

func compare(a, b float64, xs []float64) bool {
	if a == b { // want floatcmp
		return true
	}
	if a != 1.5 { // want floatcmp
		return false
	}
	if a == 0 { // exact-zero guard: no diagnostic
		return false
	}
	if 0.0 != b { // zero on either side: no diagnostic
		return true
	}
	var total float64
	for _, x := range xs {
		total += x
	}
	return total != a // want floatcmp
}

func intCompareIsFine(a, b int) bool { return a == b }

func intended(a, b float64) bool {
	return a != b //lsilint:ignore floatcmp — total-order tie-break needs bit equality
}
