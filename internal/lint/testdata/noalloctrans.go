// Fixture for the noalloctrans module check: //lsilint:noalloc functions
// may only call noalloc-annotated functions, transitively allocation-free
// module functions, or allowlisted stdlib (math, math/bits, sync/atomic).
package fixtures

import (
	"math"
	"strings"
)

//lsilint:noalloc
func kernelOK(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x) // allowlisted stdlib
	}
	return s + leafClean(s) // allocation-free module leaf
}

func leafClean(x float64) float64 {
	return scale(x, 2) // clean leaves may call clean leaves
}

func scale(x, k float64) float64 {
	return x * k
}

//lsilint:noalloc
func kernelCallsDirty(xs []float64) float64 {
	return leafDirty(xs) // want noalloctrans
}

func leafDirty(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	return tmp[0]
}

//lsilint:noalloc
func kernelChain(xs []float64) float64 {
	return mid(xs) // want noalloctrans
}

// mid's own body is clean, but it calls an allocating leaf: the fixpoint
// evicts it from the allocation-free set.
func mid(xs []float64) float64 {
	return leafDirty(xs)
}

//lsilint:noalloc
func kernelDynamic(f func() float64) float64 {
	return f() // want noalloctrans
}

//lsilint:noalloc
func kernelAnnotatedCallee(xs []float64) float64 {
	return kernelOK(xs) // noalloc-annotated callee is trusted
}

//lsilint:noalloc
func kernelExternal(s string) int {
	return len(strings.TrimSpace(s)) // want noalloctrans
}

//lsilint:noalloc
func kernelPanicPath(n int) int {
	if n < 0 {
		panic(describe(n)) // failure path: exempt
	}
	return n
}

func describe(n int) string {
	return "negative input"
}

// Mutual recursion between clean functions stays allocation-free.
//
//lsilint:noalloc
func kernelRecursive(n int) int {
	return evenStep(n)
}

func evenStep(n int) int {
	if n <= 0 {
		return 0
	}
	return oddStep(n - 1)
}

func oddStep(n int) int {
	if n <= 0 {
		return 1
	}
	return evenStep(n - 1)
}
