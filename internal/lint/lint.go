// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the stdlib go/ast, go/parser, and go/types
// packages (no x/tools dependency). It enforces the invariants the
// numerical fast paths rely on but the compiler cannot see:
//
//   - determinism: results must be bit-identical across runs and across
//     GOMAXPROCS values (map-iteration order must not feed float
//     accumulation or serialized output; no unseeded global math/rand;
//     no wall-clock reads; no rounding-fragile float ==).
//   - concurrency: lock/unlock discipline, WaitGroup.Add placement, and
//     no by-value copies of lock-containing types.
//   - hot-path allocation: functions annotated //lsilint:noalloc must not
//     heap-allocate in their bodies.
//
// Beyond the per-package passes, the framework builds a module-wide
// call graph (callgraph.go) and a per-function basic-block CFG with a
// lock-set dataflow (lockflow.go) to run three interprocedural checks
// (module.go): guardedby (fields carrying //lsilint:guardedby <mu> are
// only touched with the mutex held, locks propagated across call
// edges), snapshotsafe (no writes through //lsilint:immutable types
// outside their constructor chains), and noalloctrans (noalloc
// functions only reach provably allocation-free callees).
//
// Each check is registered under a stable ID so findings are greppable
// and suppressible with //lsilint:ignore <id> (see directives.go). The
// cmd/lsilint driver loads every package in the module and runs the
// whole suite; docs/STATIC_ANALYSIS.md describes each check and how to
// add a new one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the stable ID of the check that
// produced it, and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the finding as file:line:col: [id] message — the shape
// the driver prints and grep targets.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one static-analysis rule. Run inspects the package carried by
// the Pass and reports findings through it.
type Check struct {
	// ID is the stable, lowercase identifier used in output and in
	// //lsilint:ignore directives.
	ID string
	// Doc is a one-line description shown by `lsilint -list`.
	Doc string
	// Run executes the check over one type-checked package.
	Run func(*Pass)
}

var registry []*Check

// register adds a check to the suite; called from each check's init.
func register(c *Check) { registry = append(registry, c) }

// Checks returns the registered suite sorted by ID.
func Checks() []*Check {
	out := make([]*Check, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a check by ID.
func Lookup(id string) (*Check, bool) {
	for _, c := range registry {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// Pass carries one type-checked package through one check.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	check *Check
	dirs  *directives
	out   *[]Diagnostic
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Reportf records a finding at pos unless a directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.dirs.suppressed(p.check.ID, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:     position,
		Check:   p.check.ID,
		Message: fmt.Sprintf(format, args...),
	})
}

// RunChecks executes the given checks (all registered ones when nil) over
// one loaded package and returns the surviving findings sorted by
// position then check ID.
func RunChecks(pkg *Package, checks []*Check) []Diagnostic {
	if checks == nil {
		checks = Checks()
	}
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, c := range checks {
		pass := &Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			check: c,
			dirs:  dirs,
			out:   &out,
		}
		c.Run(pass)
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings by file, line, column, then check ID so
// output is stable across runs.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
