package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The noalloc check enforces the hot-path contract established by the
// build and scoring work: functions annotated //lsilint:noalloc — the
// Lanczos step, the scoring kernels, the gemv/gemm inner routines — must
// not heap-allocate per call. The garbage they would generate is paid on
// every iteration of loops that run millions of times, and the runtime
// benchmarks (`make bench`, `make bench-build`) assume zero allocs/op
// after warm-up.
//
// Flagged constructs: make/new, append (may grow), slice and map
// composite literals, address-of composite literals, string
// concatenation and string<->[]byte/[]rune conversions, closures that
// capture variables, and implicit conversions of concrete values to
// interface types (call arguments, assignments, returns).
//
// Deliberately not flagged:
//   - calls into other functions: this check is per-function; the
//     noalloctrans module check closes the gap by verifying callees
//     transitively over the call graph;
//   - anything inside a panic(...) argument: dimension-mismatch panics
//     are failure paths that never execute per-iteration;
//   - plain (non-address-taken) struct composite literals, which stay on
//     the stack when they do not escape.
//
// The scanner itself (scanAllocs) is shared with noalloctrans, which
// uses it to decide whether unannotated leaves are allocation-free.

func init() {
	register(&Check{
		ID:  "noalloc",
		Doc: "allocation in a function annotated //lsilint:noalloc",
		Run: runNoAlloc,
	})
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			scanAllocs(p.Info, fd, func(pos token.Pos, format string, args ...interface{}) {
				p.Reportf(pos, format, args...)
			})
		}
	}
}

// bodyAllocates reports whether fd's body contains any allocating
// construct, ignoring suppression directives — a leaf that allocates is
// not allocation-free for transitivity purposes even if its own finding
// was waived.
func bodyAllocates(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return true // no body visible: cannot verify
	}
	allocates := false
	scanAllocs(info, fd, func(token.Pos, string, ...interface{}) { allocates = true })
	return allocates
}

// scanAllocs walks one function body and calls report for every
// allocating construct. Panic argument subtrees are skipped; nested
// function literal bodies are scanned (they run on the hot path too).
func scanAllocs(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false // failure path: skip the whole argument subtree
			}
			switch builtinName(info, node) {
			case "make":
				report(node.Pos(), "make allocates in noalloc function %s", fd.Name.Name)
			case "new":
				report(node.Pos(), "new allocates in noalloc function %s", fd.Name.Name)
			case "append":
				report(node.Pos(), "append may grow and allocate in noalloc function %s; preallocate capacity outside", fd.Name.Name)
			}
			if msg := allocatingConversion(info, node); msg != "" {
				report(node.Pos(), "%s allocates in noalloc function %s", msg, fd.Name.Name)
			}
			reportInterfaceArgs(info, node, fd.Name.Name, report)
		case *ast.CompositeLit:
			t := info.TypeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates in noalloc function %s", fd.Name.Name)
			case *types.Map:
				report(node.Pos(), "map literal allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "&composite literal escapes to the heap in noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if t := info.TypeOf(node); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(node.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
					}
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, node, fd); capt != "" {
				report(node.Pos(), "closure captures %q and allocates in noalloc function %s", capt, fd.Name.Name)
			}
			// Keep descending: the literal's body runs on the hot path too.
		case *ast.GoStmt:
			report(node.Pos(), "go statement allocates a goroutine in noalloc function %s", fd.Name.Name)
		case *ast.AssignStmt:
			reportInterfaceAssign(info, node, fd.Name.Name, report)
		case *ast.ReturnStmt:
			reportInterfaceReturn(info, node, fd, report)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// allocatingConversion recognizes type conversions that copy memory:
// string(bytes), []byte(s), []rune(s).
func allocatingConversion(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return ""
	}
	to := tv.Type.Underlying()
	from := info.TypeOf(call.Args[0])
	if from == nil {
		return ""
	}
	fromU := from.Underlying()
	if b, ok := to.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, isSlice := fromU.(*types.Slice); isSlice {
			return "[]byte/[]rune-to-string conversion"
		}
	}
	if _, ok := to.(*types.Slice); ok {
		if b, ok := fromU.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return "string-to-slice conversion"
		}
	}
	return ""
}

// reportInterfaceArgs flags call arguments implicitly converted from a
// concrete type to an interface parameter — the conversion boxes the
// value on the heap when it escapes (and fmt-style variadics always do).
func reportInterfaceArgs(info *types.Info, call *ast.CallExpr, fname string, report func(token.Pos, string, ...interface{})) {
	if builtinName(info, call) != "" {
		return
	}
	ft := info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		if at := info.TypeOf(arg); at != nil && !types.IsInterface(at) && !isUntypedNil(info, arg) {
			report(arg.Pos(),
				"implicit conversion of %s to interface %s may allocate in noalloc function %s",
				types.TypeString(at, nil), types.TypeString(param, nil), fname)
		}
	}
}

// reportInterfaceAssign flags assignments of concrete values into
// interface-typed destinations.
func reportInterfaceAssign(info *types.Info, as *ast.AssignStmt, fname string, report func(token.Pos, string, ...interface{})) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(as.Rhs[i])
		if lt != nil && rt != nil && types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(info, as.Rhs[i]) {
			report(as.Rhs[i].Pos(),
				"assigning %s into interface %s may allocate in noalloc function %s",
				types.TypeString(rt, nil), types.TypeString(lt, nil), fname)
		}
	}
}

// reportInterfaceReturn flags returns whose declared result type is an
// interface while the returned expression is concrete.
func reportInterfaceReturn(info *types.Info, ret *ast.ReturnStmt, fd *ast.FuncDecl, report func(token.Pos, string, ...interface{})) {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return // bare return or comma-ok shapes: nothing converted here
	}
	for i, res := range ret.Results {
		want := sig.Results().At(i).Type()
		if got := info.TypeOf(res); types.IsInterface(want) && got != nil && !types.IsInterface(got) && !isUntypedNil(info, res) {
			report(res.Pos(),
				"returning concrete %s as interface %s may allocate in noalloc function %s",
				types.TypeString(got, nil), types.TypeString(want, nil), fd.Name.Name)
		}
	}
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, isBasic := tv.Type.(*types.Basic)
	return isBasic && b.Kind() == types.UntypedNil
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" when it captures nothing.
// Package-level variables do not count: referencing them needs no
// closure environment, so the literal stays a static function value.
func capturedVar(info *types.Info, lit *ast.FuncLit, fd *ast.FuncDecl) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level
		}
		// Declared outside the literal but inside the enclosing function:
		// that's a capture.
		if obj.Pos() < lit.Pos() && obj.Pos() >= fd.Pos() {
			captured = obj.Name()
		}
		return true
	})
	return captured
}
