package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The noalloc check enforces the hot-path contract established by the
// build and scoring work: functions annotated //lsilint:noalloc — the
// Lanczos step, the scoring kernels, the gemv/gemm inner routines — must
// not heap-allocate per call. The garbage they would generate is paid on
// every iteration of loops that run millions of times, and the runtime
// benchmarks (`make bench`, `make bench-build`) assume zero allocs/op
// after warm-up.
//
// Flagged constructs: make/new, append (may grow), slice and map
// composite literals, address-of composite literals, string
// concatenation and string<->[]byte/[]rune conversions, closures that
// capture variables, and implicit conversions of concrete values to
// interface types (call arguments, assignments, returns).
//
// Deliberately not flagged:
//   - calls into other functions: the contract is per-function, not
//     transitive — annotate the callee too if it must not allocate;
//   - anything inside a panic(...) argument: dimension-mismatch panics
//     are failure paths that never execute per-iteration;
//   - plain (non-address-taken) struct composite literals, which stay on
//     the stack when they do not escape.

func init() {
	register(&Check{
		ID:  "noalloc",
		Doc: "allocation in a function annotated //lsilint:noalloc",
		Run: runNoAlloc,
	})
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			checkNoAlloc(p, fd)
		}
	}
}

func checkNoAlloc(p *Pass, fd *ast.FuncDecl) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false // failure path: skip the whole argument subtree
			}
			switch builtinName(p.Info, node) {
			case "make":
				p.Reportf(node.Pos(), "make allocates in noalloc function %s", fd.Name.Name)
			case "new":
				p.Reportf(node.Pos(), "new allocates in noalloc function %s", fd.Name.Name)
			case "append":
				p.Reportf(node.Pos(), "append may grow and allocate in noalloc function %s; preallocate capacity outside", fd.Name.Name)
			}
			if msg := allocatingConversion(p, node); msg != "" {
				p.Reportf(node.Pos(), "%s allocates in noalloc function %s", msg, fd.Name.Name)
			}
			reportInterfaceArgs(p, node, fd.Name.Name)
		case *ast.CompositeLit:
			t := p.TypeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				p.Reportf(node.Pos(), "slice literal allocates in noalloc function %s", fd.Name.Name)
			case *types.Map:
				p.Reportf(node.Pos(), "map literal allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					p.Reportf(node.Pos(), "&composite literal escapes to the heap in noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if t := p.TypeOf(node); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(node.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
					}
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(p, node, fd); capt != "" {
				p.Reportf(node.Pos(), "closure captures %q and allocates in noalloc function %s", capt, fd.Name.Name)
			}
			// Keep descending: the literal's body runs on the hot path too.
		case *ast.GoStmt:
			p.Reportf(node.Pos(), "go statement allocates a goroutine in noalloc function %s", fd.Name.Name)
		case *ast.AssignStmt:
			reportInterfaceAssign(p, node, fd.Name.Name)
		case *ast.ReturnStmt:
			reportInterfaceReturn(p, node, fd)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// allocatingConversion recognizes type conversions that copy memory:
// string(bytes), []byte(s), []rune(s).
func allocatingConversion(p *Pass, call *ast.CallExpr) string {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return ""
	}
	to := tv.Type.Underlying()
	from := p.TypeOf(call.Args[0])
	if from == nil {
		return ""
	}
	fromU := from.Underlying()
	if b, ok := to.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, isSlice := fromU.(*types.Slice); isSlice {
			return "[]byte/[]rune-to-string conversion"
		}
	}
	if s, ok := to.(*types.Slice); ok {
		if b, ok := fromU.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			_ = s
			return "string-to-slice conversion"
		}
	}
	return ""
}

// reportInterfaceArgs flags call arguments implicitly converted from a
// concrete type to an interface parameter — the conversion boxes the
// value on the heap when it escapes (and fmt-style variadics always do).
func reportInterfaceArgs(p *Pass, call *ast.CallExpr, fname string) {
	if builtinName(p.Info, call) != "" {
		return
	}
	ft := p.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		if at := p.TypeOf(arg); at != nil && !types.IsInterface(at) && !isUntypedNil(p, arg) {
			p.Reportf(arg.Pos(),
				"implicit conversion of %s to interface %s may allocate in noalloc function %s",
				types.TypeString(at, nil), types.TypeString(param, nil), fname)
		}
	}
}

// reportInterfaceAssign flags assignments of concrete values into
// interface-typed destinations.
func reportInterfaceAssign(p *Pass, as *ast.AssignStmt, fname string) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := p.TypeOf(lhs)
		rt := p.TypeOf(as.Rhs[i])
		if lt != nil && rt != nil && types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(p, as.Rhs[i]) {
			p.Reportf(as.Rhs[i].Pos(),
				"assigning %s into interface %s may allocate in noalloc function %s",
				types.TypeString(rt, nil), types.TypeString(lt, nil), fname)
		}
	}
}

// reportInterfaceReturn flags returns whose declared result type is an
// interface while the returned expression is concrete.
func reportInterfaceReturn(p *Pass, ret *ast.ReturnStmt, fd *ast.FuncDecl) {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return // bare return or comma-ok shapes: nothing converted here
	}
	for i, res := range ret.Results {
		want := sig.Results().At(i).Type()
		if got := p.TypeOf(res); types.IsInterface(want) && got != nil && !types.IsInterface(got) && !isUntypedNil(p, res) {
			p.Reportf(res.Pos(),
				"returning concrete %s as interface %s may allocate in noalloc function %s",
				types.TypeString(got, nil), types.TypeString(want, nil), fd.Name.Name)
		}
	}
}

func isUntypedNil(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	b, isBasic := tv.Type.(*types.Basic)
	return isBasic && b.Kind() == types.UntypedNil
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" when it captures nothing.
// Package-level variables do not count: referencing them needs no
// closure environment, so the literal stays a static function value.
func capturedVar(p *Pass, lit *ast.FuncLit, fd *ast.FuncDecl) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level
		}
		// Declared outside the literal but inside the enclosing function:
		// that's a capture.
		if obj.Pos() < lit.Pos() && obj.Pos() >= fd.Pos() {
			captured = obj.Name()
		}
		return true
	})
	return captured
}
