package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism checks guard the repository's core promise: the same
// corpus and seed produce bit-identical models, rankings, and reports on
// every run and every GOMAXPROCS. Go deliberately randomizes map
// iteration order, so any map range whose body accumulates floats (the
// rounding of a float sum depends on summation order), appends to a
// slice that reaches output unsorted, or prints directly is a silent
// reproducibility bug.

func init() {
	register(&Check{
		ID:  "maporder",
		Doc: "map-range body feeds a float accumulation, unsorted append, or formatted output",
		Run: runMapOrder,
	})
	register(&Check{
		ID:  "randglobal",
		Doc: "use of math/rand's package-level (unseeded) source; use rand.New(rand.NewSource(seed))",
		Run: runRandGlobal,
	})
	register(&Check{
		ID:  "walltime",
		Doc: "wall-clock read (time.Now/Since/Until) outside the benchmark allowlist",
		Run: runWallTime,
	})
	register(&Check{
		ID:  "floatcmp",
		Doc: "float == / != against a non-zero operand is rounding-fragile",
		Run: runFloatCmp,
	})
}

// runMapOrder flags map-range bodies that feed order-sensitive sinks. The
// canonical fix — collect keys, sort, iterate the slice — is recognized:
// an append target that is later passed to a sort.* call in the same
// function is not flagged.
func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		forEachFuncBody(f, func(owner ast.Node, body *ast.BlockStmt) {
			inspectSkippingFuncLits(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMap(p.TypeOf(rs.X)) {
					return true
				}
				mapOrderBody(p, body, rs)
				return true
			})
		})
	}
}

// mapOrderBody inspects one map-range body; funcBody is the enclosing
// function body used to look for a downstream sort of append targets.
func mapOrderBody(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			switch node.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(node.Lhs) == 1 && isFloat(p.TypeOf(node.Lhs[0])) {
					p.Reportf(node.Pos(),
						"float accumulation in map-iteration order rounds nondeterministically; iterate sorted keys")
				}
			}
		case *ast.CallExpr:
			if builtinName(p.Info, node) == "append" {
				if target := appendTarget(node); target == nil || !sortedLater(p, funcBody, target) {
					p.Reportf(node.Pos(),
						"append in map-iteration order builds nondeterministic output; collect keys and sort first")
				}
				return true
			}
			if fn := calleeFunc(p.Info, node); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
				p.Reportf(node.Pos(),
					"fmt output in map-iteration order is nondeterministic; iterate sorted keys")
			}
		}
		return true
	})
}

// appendTarget returns the identifier receiving an append's result when
// the call is the canonical `x = append(x, …)` shape, else nil.
func appendTarget(call *ast.CallExpr) *ast.Ident {
	if len(call.Args) == 0 {
		return nil
	}
	id, _ := ast.Unparen(call.Args[0]).(*ast.Ident)
	return id
}

// sortedLater reports whether the object named by target is passed to a
// sort-package call somewhere in the same function body — the
// collect-then-sort idiom that makes a map-order append deterministic.
func sortedLater(p *Pass, funcBody *ast.BlockStmt, target *ast.Ident) bool {
	obj := p.Info.ObjectOf(target)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return true
	})
	return sorted
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, randomly-seeded global source. rand.New and rand.NewSource are
// the deterministic alternative and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true, "N": true,
}

func runRandGlobal(p *Pass) {
	forEachUse(p, func(id *ast.Ident, obj types.Object) {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if (path != "math/rand" && path != "math/rand/v2") || !globalRandFuncs[fn.Name()] {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // *rand.Rand methods are fine: the caller seeded them
		}
		p.Reportf(id.Pos(),
			"%s.%s uses the global nondeterministic source; use rand.New(rand.NewSource(seed))", path, fn.Name())
	})
}

func runWallTime(p *Pass) {
	forEachUse(p, func(id *ast.Ident, obj types.Object) {
		if isPkgFunc(asFunc(obj), "time", "Now") ||
			isPkgFunc(asFunc(obj), "time", "Since") ||
			isPkgFunc(asFunc(obj), "time", "Until") {
			p.Reportf(id.Pos(),
				"wall-clock read makes output run-dependent; benchmark/CLI timing code may //lsilint:file-ignore walltime")
		}
	})
}

func asFunc(obj types.Object) *types.Func {
	fn, _ := obj.(*types.Func)
	return fn
}

// forEachUse visits every resolved identifier use in the package.
func forEachUse(p *Pass, f func(*ast.Ident, types.Object)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := p.Info.Uses[id]; ok {
					f(id, obj)
				}
			}
			return true
		})
	}
}

// runFloatCmp flags == and != where either operand is floating-point,
// except comparisons against an exact constant zero: IEEE-754 represents
// zero exactly, and `if norm == 0` guards are idiomatic and safe, while
// comparing two computed floats for equality silently depends on
// summation order and FMA contraction.
func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if isZeroConstant(p.Info, be.X) || isZeroConstant(p.Info, be.Y) {
				return true
			}
			p.Reportf(be.OpPos,
				"float %s comparison is rounding-fragile; compare |a-b| against a tolerance (or //lsilint:ignore floatcmp if bit equality is the point)", be.Op)
			return true
		})
	}
}
