package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The guardedby check is a modular, RacerD-style lock-set analysis: for
// every struct-field access in the module it computes the set of mutexes
// that are provably held — locks acquired locally (via lockflow.go's
// must-hold dataflow, including deferred unlocks) plus locks inherited
// from every synchronous caller (via an interprocedural entry-lock
// fixpoint over the call graph).
//
// Two rules consume the result:
//
//  1. Annotated fields. A field marked //lsilint:guardedby mu must have
//     mu (a sibling field, compared structurally so c.mu and other.mu
//     stay distinct locks, or a package-level variable, compared by
//     object identity) in the held set at every access.
//  2. Inference. For an unannotated field, if every write is performed
//     with some same-struct mutex held, any access without that mutex is
//     inconsistent and reported. Mixed sync/atomic and plain access to
//     the same field is reported unconditionally.
//
// Accesses through freshly allocated locals (x := &T{...}, var x T, new)
// are exempt everywhere: a value no other goroutine can reach yet needs
// no locks. Function literals are analyzed as separate units with an
// empty entry lock set — a closure may run on any goroutine — which is
// the check's main documented false-positive shape (a closure invoked
// inline under a lock still reports).

func init() {
	registerModule(&ModuleCheck{
		ID:  "guardedby",
		Doc: "struct field accessed without the mutex that guards it (interprocedural lock-set inference)",
		Run: runGuardedBy,
	})
}

// guardSpec is one parsed //lsilint:guardedby annotation.
type guardSpec struct {
	structName string
	sibling    string       // sibling mutex field name; "" when pkgVar is set
	pkgVar     types.Object // package-level mutex variable
}

// fieldAccess is one read or write of a struct field somewhere in the
// module, with the locally-held lock set at that point.
type fieldAccess struct {
	field  *types.Var
	base   lockKey // key of the struct expression the field is selected from
	baseOK bool
	pos    token.Pos
	write  bool
	fresh  bool // base is a freshly allocated, not-yet-shared local
	atomic bool // performed through a sync/atomic function
	held   lockSet
	fn     *FuncInfo // nil for function-literal units (no inherited locks)
}

func runGuardedBy(p *ModulePass) {
	specs := collectGuardSpecs(p)

	var accesses []*fieldAccess
	heldAt := map[*FuncInfo]map[*ast.CallExpr]lockSet{}
	for _, pkg := range p.Mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := p.Graph.ByDecl[fd]
				if fi == nil {
					continue
				}
				fresh := freshLocals(pkg.Info, fd.Body)
				calls := map[*ast.CallExpr]lockSet{}
				heldAt[fi] = calls
				lockFlow(pkg.Info, fd.Body, func(n ast.Node, held lockSet) {
					collectFieldAccesses(pkg.Info, n, held, fresh, fi, &accesses)
					inspectSkippingFuncLits(n, func(x ast.Node) bool {
						if call, ok := x.(*ast.CallExpr); ok {
							calls[call] = held
						}
						return true
					})
				})
				// Function literals run in their own dynamic context: empty
				// entry lock set, no caller inheritance.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					lockFlow(pkg.Info, lit.Body, func(x ast.Node, held lockSet) {
						collectFieldAccesses(pkg.Info, x, held, fresh, nil, &accesses)
					})
					return true
				})
			}
		}
	}

	entry := computeEntryLocks(p.Graph, heldAt)
	final := func(a *fieldAccess) lockSet {
		if a.fn == nil {
			return a.held
		}
		return union(a.held, entry[a.fn])
	}

	checkAnnotated(p, specs, accesses, final)
	checkInferred(p, specs, accesses, final)
}

// checkAnnotated enforces //lsilint:guardedby: the named mutex must be in
// the held set at every non-constructor access.
func checkAnnotated(p *ModulePass, specs map[*types.Var]*guardSpec,
	accesses []*fieldAccess, final func(*fieldAccess) lockSet) {
	for _, a := range accesses {
		spec, ok := specs[a.field]
		if !ok || a.fresh {
			continue
		}
		var need lockKey
		lockName := spec.sibling
		if spec.pkgVar != nil {
			need = lockKey{root: spec.pkgVar}
			lockName = spec.pkgVar.Name()
		} else {
			if !a.baseOK {
				continue // cannot name the sibling lock for this base
			}
			need = a.base.child(spec.sibling)
		}
		h := final(a)
		if h[need] {
			continue
		}
		kind := "read"
		if a.write {
			kind = "write"
		}
		if a.atomic {
			kind = "atomic access"
		}
		p.Reportf(a.pos, "%s of %s.%s without holding %s (//lsilint:guardedby %s); held here: [%s]",
			kind, spec.structName, a.field.Name(), need.String(), lockName,
			strings.Join(sortedLocks(h), " "))
	}
}

// checkInferred flags unannotated fields whose writes are consistently
// guarded by a same-struct mutex while some other access is not, and
// fields accessed both atomically and plainly.
func checkInferred(p *ModulePass, specs map[*types.Var]*guardSpec,
	accesses []*fieldAccess, final func(*fieldAccess) lockSet) {
	byField := map[*types.Var][]*fieldAccess{}
	for _, a := range accesses {
		if _, annotated := specs[a.field]; annotated {
			continue
		}
		if !moduleField(p.Mod, a.field) {
			continue
		}
		byField[a.field] = append(byField[a.field], a)
	}
	fields := make([]*types.Var, 0, len(byField))
	for field := range byField {
		fields = append(fields, field)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, field := range fields {
		list := byField[field]
		var atomics, plains []*fieldAccess
		for _, a := range list {
			switch {
			case a.atomic:
				atomics = append(atomics, a)
			case !a.fresh:
				plains = append(plains, a)
			}
		}
		if len(atomics) > 0 && len(plains) > 0 {
			at := p.Mod.Fset.Position(atomics[0].pos)
			for _, a := range plains {
				kind := "read"
				if a.write {
					kind = "write"
				}
				p.Reportf(a.pos,
					"non-atomic %s of %s, which is accessed via sync/atomic at %s:%d; mixed access races",
					kind, field.Name(), at.Filename, at.Line)
			}
			continue
		}

		// Lock-set inference: intersect the sibling mutexes held over all
		// guarded writes; if every write agrees on at least one mutex,
		// accesses missing all of them are inconsistent.
		var common map[string]bool
		guardedWrites := 0
		for _, a := range plains {
			if !a.write || !a.baseOK {
				continue
			}
			names := siblingLockNames(a, final(a))
			if len(names) == 0 {
				continue // the unguarded write is judged against common below
			}
			guardedWrites++
			if common == nil {
				common = names
			} else {
				for n := range common {
					if !names[n] {
						delete(common, n)
					}
				}
			}
		}
		if guardedWrites == 0 || len(common) == 0 {
			continue
		}
		for _, a := range plains {
			if !a.baseOK {
				continue
			}
			names := siblingLockNames(a, final(a))
			miss := true
			for n := range common {
				if names[n] {
					miss = false
					break
				}
			}
			if !miss {
				continue
			}
			kind := "read"
			if a.write {
				kind = "write"
			}
			p.Reportf(a.pos,
				"%s of %s without %s, which guards every write of this field; held here: [%s]",
				kind, field.Name(), strings.Join(sortedNames(common), "/"),
				strings.Join(sortedLocks(final(a)), " "))
		}
	}
}

// siblingLockNames lists the held locks that are fields of the same
// struct value the access goes through: keys extending the access's base
// key by exactly one selector segment.
func siblingLockNames(a *fieldAccess, held lockSet) map[string]bool {
	out := map[string]bool{}
	prefix := ""
	if a.base.path != "" {
		prefix = a.base.path + "."
	}
	for k := range held {
		if k.root != a.base.root || !strings.HasPrefix(k.path, prefix) {
			continue
		}
		rest := strings.TrimPrefix(k.path, prefix)
		if rest != "" && !strings.Contains(rest, ".") {
			out[rest] = true
		}
	}
	return out
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// moduleField reports whether the field is declared inside this module —
// inference must not speculate about stdlib struct internals.
func moduleField(mod *Module, f *types.Var) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == mod.Path || strings.HasPrefix(pkg.Path(), mod.Path+"/")
}

// collectFieldAccesses records every struct-field read/write inside n
// (not descending into function literals) with the current held set.
func collectFieldAccesses(info *types.Info, n ast.Node, held lockSet,
	fresh map[types.Object]bool, fn *FuncInfo, out *[]*fieldAccess) {
	writes := writeTargets(n)
	atomics := atomicTargets(info, n)
	inspectSkippingFuncLits(n, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok || syncPrimitiveField(field) {
			return true
		}
		base, baseOK := exprKey(info, sel.X)
		a := &fieldAccess{
			field:  field,
			base:   base,
			baseOK: baseOK,
			pos:    sel.Pos(),
			write:  writes[sel],
			atomic: atomics[sel],
			fresh:  baseOK && fresh[base.root],
			held:   held,
			fn:     fn,
		}
		*out = append(*out, a)
		return true
	})
}

// writeTargets marks the selector expressions assigned to inside n: the
// left-hand sides of assignments and inc/dec statements, looked through
// indexing, derefs, and parens (s.f[i] = v writes f's memory).
func writeTargets(n ast.Node) map[ast.Expr]bool {
	w := map[ast.Expr]bool{}
	mark := func(lhs ast.Expr) {
		if sel := writeSel(lhs); sel != nil {
			w[sel] = true
		}
	}
	inspectSkippingFuncLits(n, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		}
		return true
	})
	return w
}

// writeSel peels indexing, dereference, and parens off an assignment
// target down to the selector being written through, if any.
func writeSel(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			sel, _ := e.(*ast.SelectorExpr)
			return sel
		}
	}
}

// atomicTargets marks selector expressions whose address is passed to a
// sync/atomic function inside n: those accesses are atomic, and mixing
// them with plain accesses to the same field is a finding.
func atomicTargets(info *types.Info, n ast.Node) map[ast.Expr]bool {
	out := map[ast.Expr]bool{}
	inspectSkippingFuncLits(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

// syncPrimitiveField reports fields whose type lives in sync or
// sync/atomic — the locks and counters themselves, not the data they
// guard.
func syncPrimitiveField(f *types.Var) bool {
	t := f.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// freshLocals finds variables bound to freshly allocated values (x :=
// T{...}, x := &T{...}, x := new(T), var x T): until their address leaks,
// no other goroutine can observe them, so lock-free initialization of
// their fields is safe.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !freshExpr(info, st.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(st.Values) == 0: // var x T: zero value, unshared
				for _, id := range st.Names {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			case len(st.Values) == len(st.Names):
				for i, id := range st.Names {
					if !freshExpr(info, st.Values[i]) {
						continue
					}
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// freshExpr recognizes expressions that produce a brand-new value:
// composite literals, their addresses, and new(T).
func freshExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// computeEntryLocks runs the interprocedural fixpoint: the locks a
// function may assume held on entry are the intersection, over all
// synchronous call sites, of the caller's state at the site (local must-
// hold set plus the caller's own entry locks) rebased into the callee's
// frame. Roots — exported functions, main/init, address-taken functions,
// and functions with no synchronous in-module callers — assume nothing.
// Sets start at ⊤ and only shrink, so the iteration terminates.
func computeEntryLocks(g *CallGraph, heldAt map[*FuncInfo]map[*ast.CallExpr]lockSet) map[*FuncInfo]lockSet {
	entry := make(map[*FuncInfo]lockSet, len(g.Funcs))
	root := map[*FuncInfo]bool{}
	for _, fi := range g.Funcs {
		if entryRoot(fi) {
			root[fi] = true
			entry[fi] = lockSet{}
		} else {
			entry[fi] = nil // ⊤
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			if root[fi] {
				continue
			}
			var acc lockSet // ⊤
			for _, site := range fi.CalledBy {
				if !site.Synchronous() {
					continue
				}
				callerHeld, ok := heldAt[site.Caller][site.Call]
				if !ok {
					continue // unreachable site contributes ⊤
				}
				state := union(callerHeld, entry[site.Caller])
				acc = intersect(acc, rebaseSet(state, site, fi))
			}
			if !equalSets(acc, entry[fi]) {
				entry[fi] = acc
				changed = true
			}
		}
	}
	// Whatever is still ⊤ had no analyzable caller: unknown context must
	// not mean "all locks held".
	for fi, s := range entry {
		if s == nil {
			entry[fi] = lockSet{}
		}
	}
	return entry
}

// entryRoot reports functions that must assume an empty entry lock set:
// anything callable from outside the visible call graph.
func entryRoot(fi *FuncInfo) bool {
	name := fi.Obj.Name()
	if fi.Obj.Exported() || name == "main" || name == "init" || fi.AddrTaken {
		return true
	}
	for _, site := range fi.CalledBy {
		if site.Synchronous() {
			return false
		}
	}
	return true
}

// rebaseSet translates a caller-frame lock set into the callee's frame:
// receiver-rooted locks move onto the callee's receiver object, package-
// level locks pass through, everything else is dropped (conservative:
// fewer locks assumed held).
func rebaseSet(s lockSet, site *CallSite, callee *FuncInfo) lockSet {
	if s == nil {
		return nil
	}
	calleeRecv := callee.RecvObj()
	var callRecv lockKey
	if sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := site.Caller.Pkg.Info.Selections[sel]; isMethod {
			callRecv, _ = exprKey(site.Caller.Pkg.Info, sel.X)
		}
	}
	out := lockSet{}
	for k := range s {
		if rk, ok := k.rebase(callRecv, calleeRecv); ok {
			out[rk] = true
		}
	}
	return out
}

// collectGuardSpecs parses every //lsilint:guardedby annotation in the
// module, reporting malformed ones.
func collectGuardSpecs(p *ModulePass) map[*types.Var]*guardSpec {
	specs := map[*types.Var]*guardSpec{}
	for _, pkg := range p.Mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				siblings := map[string]bool{}
				for _, fl := range st.Fields.List {
					for _, id := range fl.Names {
						siblings[id.Name] = true
					}
					if len(fl.Names) == 0 { // embedded field: promoted name
						if id := terminalFieldName(fl.Type); id != "" {
							siblings[id] = true
						}
					}
				}
				for _, fl := range st.Fields.List {
					mu, found := guardDirective(fl)
					if !found {
						continue
					}
					if mu == "" || len(fl.Names) == 0 {
						p.Reportf(fl.Pos(), "malformed //lsilint:guardedby: want exactly one mutex name on a named field")
						continue
					}
					spec := &guardSpec{structName: ts.Name.Name}
					switch {
					case siblings[mu]:
						spec.sibling = mu
					default:
						obj := pkg.Types.Scope().Lookup(mu)
						if obj == nil {
							p.Reportf(fl.Pos(), "//lsilint:guardedby %s: no such sibling field or package-level variable", mu)
							continue
						}
						spec.pkgVar = obj
					}
					for _, id := range fl.Names {
						if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
							specs[v] = spec
						}
					}
				}
				return true
			})
		}
	}
	return specs
}

// terminalFieldName returns the name an embedded field is promoted under.
func terminalFieldName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return terminalFieldName(x.X)
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
