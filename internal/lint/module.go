package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// A ModuleCheck is a whole-module static-analysis rule: unlike a Check,
// which sees one type-checked package at a time, a ModuleCheck runs once
// over the entire loaded module with the call graph already built, which
// is what lets it reason interprocedurally — lock sets inherited from
// callers, constructor-chain reachability, transitive allocation
// freedom.
type ModuleCheck struct {
	// ID is the stable, lowercase identifier used in output and in
	// //lsilint:ignore directives.
	ID string
	// Doc is a one-line description shown by `lsilint -list`.
	Doc string
	// Run executes the check over the whole module.
	Run func(*ModulePass)
}

var moduleRegistry []*ModuleCheck

// registerModule adds a module-wide check to the suite.
func registerModule(c *ModuleCheck) { moduleRegistry = append(moduleRegistry, c) }

// ModuleChecks returns the registered module-wide suite sorted by ID.
func ModuleChecks() []*ModuleCheck {
	out := make([]*ModuleCheck, len(moduleRegistry))
	copy(out, moduleRegistry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LookupModule finds a module-wide check by ID.
func LookupModule(id string) (*ModuleCheck, bool) {
	for _, c := range moduleRegistry {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// ModulePass carries the loaded module and its call graph through one
// module-wide check.
type ModulePass struct {
	Mod   *Module
	Graph *CallGraph

	check   *ModuleCheck
	dirs    *directives
	matched map[string]bool // filenames of pattern-matched packages
	out     *[]Diagnostic
}

// Reportf records a finding at pos unless the position falls in an
// unmatched package's file or a directive suppresses it. Analysis spans
// the whole module; reporting respects the load patterns.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Mod.Fset.Position(pos)
	if !p.matched[position.Filename] {
		return
	}
	if p.dirs.suppressed(p.check.ID, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:     position,
		Check:   p.check.ID,
		Message: fmt.Sprintf(format, args...),
	})
}

// RunModuleChecks executes the given module-wide checks (all registered
// ones when nil) over a loaded module and returns the surviving findings
// sorted by position then check ID. The call graph is built once and
// shared by every check.
func RunModuleChecks(mod *Module, checks []*ModuleCheck) []Diagnostic {
	if checks == nil {
		checks = ModuleChecks()
	}
	if len(checks) == 0 {
		return nil
	}
	var all []*ast.File
	matched := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		all = append(all, pkg.Files...)
		if !pkg.Matched {
			continue
		}
		for _, f := range pkg.Files {
			matched[mod.Fset.Position(f.Pos()).Filename] = true
		}
	}
	dirs := parseDirectives(mod.Fset, all)
	graph := BuildCallGraph(mod)
	var out []Diagnostic
	for _, c := range checks {
		pass := &ModulePass{
			Mod:     mod,
			Graph:   graph,
			check:   c,
			dirs:    dirs,
			matched: matched,
			out:     &out,
		}
		c.Run(pass)
	}
	sortDiagnostics(out)
	return out
}
