package lint

import (
	"go/ast"
	"go/types"
)

// The concurrency checks encode the locking discipline the parallel
// kernels and the serving layer rely on: every acquired mutex is released
// on every path, WaitGroup counters are bumped before the goroutine that
// will Done them exists, and lock-holding values are never split by a
// copy.

func init() {
	register(&Check{
		ID:  "lockbalance",
		Doc: "Lock/RLock without a deferred or same-block dominating Unlock",
		Run: runLockBalance,
	})
	register(&Check{
		ID:  "wgadd",
		Doc: "WaitGroup.Add called inside the spawned goroutine (races with Wait)",
		Run: runWgAdd,
	})
	register(&Check{
		ID:  "mutexcopy",
		Doc: "lock-containing type copied or passed by value",
		Run: runMutexCopy,
	})
}

// unlockFor maps an acquire method to its release.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// runLockBalance analyzes each function body independently: for every
// mutex acquire it requires either a matching defer (directly or inside
// a deferred closure) anywhere in the same function, or a matching
// release statement later in the same block with no possible return or
// branch escape in between. Conditional releases buried in branches are
// not accepted — restructure or //lsilint:ignore lockbalance with a
// comment explaining why the path is safe.
func runLockBalance(p *Pass) {
	for _, f := range p.Files {
		forEachFuncBody(f, func(owner ast.Node, body *ast.BlockStmt) {
			checkLockBalance(p, body)
		})
	}
}

func checkLockBalance(p *Pass, body *ast.BlockStmt) {
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, typeName, method, ok := syncMethodCall(p.Info, call)
		release, acquires := unlockFor[method]
		if !ok || !acquires || (typeName != "Mutex" && typeName != "RWMutex") {
			return true
		}
		recvStr := types.ExprString(recv)
		if hasMatchingDefer(p, body, recvStr, release) {
			return true
		}
		if dominatedByUnlock(p, body, call, recvStr, release) {
			return true
		}
		p.Reportf(call.Pos(),
			"%s.%s() has no deferred %s and no dominating same-block release; a panic or early return leaks the lock",
			recvStr, method, release)
		return true
	})
}

// hasMatchingDefer reports whether the function defers recvStr.release(),
// either directly or inside a deferred closure.
func hasMatchingDefer(p *Pass, body *ast.BlockStmt, recvStr, release string) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if isReleaseCall(p, ds.Call, recvStr, release) {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if c, ok := inner.(*ast.CallExpr); ok && isReleaseCall(p, c, recvStr, release) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isReleaseCall(p *Pass, call *ast.CallExpr, recvStr, release string) bool {
	recv, _, method, ok := syncMethodCall(p.Info, call)
	return ok && method == release && types.ExprString(recv) == recvStr
}

// dominatedByUnlock reports whether the statement containing the acquire
// is followed, in its innermost enclosing statement list, by a direct
// recvStr.release() statement with no statement in between that can leave
// the function or the block (return, goto, break, continue, panic call).
func dominatedByUnlock(p *Pass, body *ast.BlockStmt, acquire *ast.CallExpr, recvStr, release string) bool {
	list := enclosingStmtList(body, acquire)
	if list == nil {
		return false
	}
	idx := -1
	for i, stmt := range list {
		if nodeContains(stmt, acquire) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, stmt := range list[idx+1:] {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if c, ok := es.X.(*ast.CallExpr); ok && isReleaseCall(p, c, recvStr, release) {
				return true
			}
		}
		if canEscape(stmt) {
			return false
		}
	}
	return false
}

// enclosingStmtList finds the innermost statement list (block, case, or
// comm clause body) containing the given node.
func enclosingStmtList(body *ast.BlockStmt, target ast.Node) []ast.Stmt {
	var best []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for _, stmt := range list {
			if nodeContains(stmt, target) {
				best = list // keep descending: a deeper list wins
			}
		}
		return true
	})
	return best
}

// nodeContains reports whether target's position range lies within n.
func nodeContains(n, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}

// canEscape reports whether executing stmt can transfer control out of
// the current statement list before the statements after it run —
// conservatively including any nested return/branch/panic, even inside
// an if body, but not inside nested function literals.
func canEscape(stmt ast.Stmt) bool {
	escape := false
	inspectSkippingFuncLits(stmt, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			escape = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "panic" {
				escape = true
			}
		}
		return !escape
	})
	return escape
}

// runWgAdd flags WaitGroup.Add executed inside the goroutine it accounts
// for: if the scheduler runs Wait before the goroutine starts, the
// counter is still zero and Wait returns early. Add must happen in the
// spawning goroutine, before the `go` statement.
func runWgAdd(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, typeName, method, ok := syncMethodCall(p.Info, call); ok &&
					typeName == "WaitGroup" && method == "Add" {
					p.Reportf(call.Pos(),
						"WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
				}
				return true
			})
			return true
		})
	}
}

// runMutexCopy flags by-value traffic in lock-containing types: value
// receivers, value parameters, explicit dereference copies, and range
// statements that copy lock-holding elements.
func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil {
					checkLockField(p, node.Recv.List, "receiver")
				}
				if node.Type.Params != nil {
					checkLockField(p, node.Type.Params.List, "parameter")
				}
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok && containsLock(p.TypeOf(star)) {
						p.Reportf(rhs.Pos(),
							"dereference copies %s, splitting its lock state; keep the pointer", types.TypeString(p.TypeOf(star), nil))
					}
				}
			case *ast.RangeStmt:
				if node.Value == nil {
					return true
				}
				if t := p.TypeOf(node.Value); containsLock(t) {
					p.Reportf(node.Value.Pos(),
						"range copies lock-containing %s per element; range over indices or pointers", types.TypeString(t, nil))
				}
			}
			return true
		})
	}
}

func checkLockField(p *Pass, fields []*ast.Field, kind string) {
	for _, field := range fields {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			p.Reportf(field.Pos(),
				"%s passes lock-containing %s by value; use a pointer", kind, types.TypeString(t, nil))
		}
	}
}
