package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The comment directives the suite understands:
//
//	//lsilint:ignore [id ...]       suppress findings of the listed checks
//	                                (all checks when no IDs are given) on
//	                                the directive's line and the line below
//	                                it — so it works both trailing a
//	                                statement and standing above one.
//	//lsilint:file-ignore [id ...]  suppress the listed checks (or all) for
//	                                the whole file. This is the allowlist
//	                                mechanism for e.g. wall-clock reads in
//	                                benchmark code.
//	//lsilint:noalloc               on a function declaration's doc
//	                                comment: the noalloc check flags every
//	                                allocating construct in its body, and
//	                                the noalloctrans check verifies its
//	                                callees transitively.
//	//lsilint:guardedby mu          on a struct field: the guardedby check
//	                                requires the named mutex — a sibling
//	                                field or a package-level variable —
//	                                held at every access, counting locks
//	                                inherited from callers.
//	//lsilint:immutable             on a type declaration: the
//	                                snapshotsafe check flags every write
//	                                through a value of the type outside
//	                                its constructor chain.
//
// Directive comments use the standard Go directive shape (no space after
// //), so gofmt leaves them alone and go/ast keeps them out of godoc text.
const directivePrefix = "//lsilint:"

// directives holds the parsed suppression state for one package.
type directives struct {
	// ignore[filename][line] is the set of suppressed check IDs anchored
	// at that line; the empty string means "all checks".
	ignore map[string]map[int]map[string]bool
	// fileIgnore[filename] is the file-wide suppression set.
	fileIgnore map[string]map[string]bool
}

// parseDirectives scans every comment in the package once.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		ignore:     map[string]map[int]map[string]bool{},
		fileIgnore: map[string]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, ids, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				switch verb {
				case "ignore":
					byLine := d.ignore[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						d.ignore[pos.Filename] = byLine
					}
					byLine[pos.Line] = idSet(ids)
				case "file-ignore":
					set := d.fileIgnore[pos.Filename]
					if set == nil {
						set = map[string]bool{}
						d.fileIgnore[pos.Filename] = set
					}
					for id, v := range idSet(ids) {
						set[id] = v
					}
				}
			}
		}
	}
	return d
}

// splitDirective decomposes "//lsilint:verb id1 id2" into its parts.
func splitDirective(text string) (verb string, ids []string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", nil, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
	if len(fields) == 0 {
		return "", nil, false
	}
	return fields[0], fields[1:], true
}

// idSet turns a directive's ID list into a set; an empty list means
// "suppress everything" and is encoded as {"": true}.
func idSet(ids []string) map[string]bool {
	if len(ids) == 0 {
		return map[string]bool{"": true}
	}
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// suppressed reports whether a finding of check id at pos is silenced by
// an ignore directive on its line, the line above, or file-wide.
func (d *directives) suppressed(id string, pos token.Position) bool {
	if set := d.fileIgnore[pos.Filename]; set != nil && (set[""] || set[id]) {
		return true
	}
	byLine := d.ignore[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if set := byLine[line]; set != nil && (set[""] || set[id]) {
			return true
		}
	}
	return false
}

// hasNoallocDirective reports whether a function declaration carries the
// //lsilint:noalloc annotation in its doc comment group.
func hasNoallocDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if verb, _, ok := splitDirective(c.Text); ok && verb == "noalloc" {
			return true
		}
	}
	return false
}

// guardDirective extracts //lsilint:guardedby <mutex> from a struct
// field's doc or trailing comment. found reports the directive is
// present; mu is empty when it is malformed (zero or several names).
func guardDirective(field *ast.Field) (mu string, found bool) {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			verb, ids, ok := splitDirective(c.Text)
			if !ok || verb != "guardedby" {
				continue
			}
			if len(ids) == 1 {
				return ids[0], true
			}
			return "", true
		}
	}
	return "", false
}

// hasDirectiveIn reports whether any of the comment groups carries the
// given //lsilint: verb.
func hasDirectiveIn(verb string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if v, _, ok := splitDirective(c.Text); ok && v == verb {
				return true
			}
		}
	}
	return false
}
