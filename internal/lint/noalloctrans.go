package lint

import "go/types"

// The noalloctrans check closes the documented non-transitivity hole of
// the per-function noalloc check: a //lsilint:noalloc function may only
// call
//
//   - other //lsilint:noalloc functions (whose own bodies the
//     intraprocedural check polices),
//   - module functions proven allocation-free transitively (no
//     allocating construct in the body, every callee allocation-free —
//     an optimistic fixpoint over the call graph that handles recursion
//     naturally), or
//   - functions from an allowlist of stdlib packages whose routines do
//     not heap-allocate: math, math/bits, sync/atomic.
//
// Everything else is a finding at the call site: an allocating or
// unverifiable module callee, a non-allowlisted external callee, or a
// call through a function value or interface (no static callee at all).
// Calls inside panic(...) arguments are failure paths and exempt, and
// calls inside `go` statements are not double-reported — the go
// statement itself is already a noalloc finding.

func init() {
	registerModule(&ModuleCheck{
		ID:  "noalloctrans",
		Doc: "//lsilint:noalloc function calls something not provably allocation-free (transitive check)",
		Run: runNoallocTrans,
	})
}

// allowlistedAllocFree are stdlib packages whose exported functions do
// not heap-allocate.
var allowlistedAllocFree = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runNoallocTrans(p *ModulePass) {
	allocFree := computeAllocFree(p.Graph)
	for _, fi := range p.Graph.Funcs {
		if !fi.Noalloc {
			continue
		}
		for _, site := range fi.Calls {
			if site.InPanic || site.InGo {
				continue
			}
			switch {
			case site.CalleeObj == nil:
				p.Reportf(site.Call.Pos(),
					"call through a function value or interface in noalloc function %s cannot be verified allocation-free",
					fi.Obj.Name())
			case site.Callee != nil:
				if site.Callee.Noalloc || allocFree[site.Callee] {
					continue
				}
				p.Reportf(site.Call.Pos(),
					"noalloc function %s calls %s, which allocates or cannot be verified allocation-free; annotate it //lsilint:noalloc or remove the allocation",
					fi.Obj.Name(), site.CalleeObj.Name())
			case interfaceMethod(site.CalleeObj):
				p.Reportf(site.Call.Pos(),
					"interface method call %s in noalloc function %s dispatches dynamically and cannot be verified allocation-free",
					site.CalleeObj.Name(), fi.Obj.Name())
			default:
				pkg := site.CalleeObj.Pkg()
				if pkg != nil && allowlistedAllocFree[pkg.Path()] {
					continue
				}
				path := "builtin"
				if pkg != nil {
					path = pkg.Path()
				}
				p.Reportf(site.Call.Pos(),
					"noalloc function %s calls %s.%s, outside the module and not on the allocation-free allowlist",
					fi.Obj.Name(), path, site.CalleeObj.Name())
			}
		}
	}
}

// interfaceMethod reports whether fn is declared on an interface —
// statically resolvable to the interface, but dynamically dispatched.
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// computeAllocFree runs the optimistic fixpoint: start with every
// module function whose own body is clean of allocating constructs and
// whose external/dynamic callees are acceptable, then iteratively evict
// functions that call an evicted (or never-eligible) module function.
// Recursion among clean functions stays in the set.
func computeAllocFree(g *CallGraph) map[*FuncInfo]bool {
	free := map[*FuncInfo]bool{}
	for _, fi := range g.Funcs {
		if fi.Decl.Body == nil || bodyAllocates(fi.Pkg.Info, fi.Decl) {
			continue
		}
		eligible := true
		for _, site := range fi.Calls {
			if site.InPanic {
				continue
			}
			switch {
			case site.CalleeObj == nil:
				eligible = false // dynamic call: unverifiable
			case site.Callee == nil:
				pkg := site.CalleeObj.Pkg()
				if pkg == nil || !allowlistedAllocFree[pkg.Path()] {
					eligible = false
				}
			}
			if !eligible {
				break
			}
		}
		if eligible {
			free[fi] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fi := range free {
			for _, site := range fi.Calls {
				if site.InPanic || site.Callee == nil {
					continue
				}
				if site.Callee.Noalloc || free[site.Callee] {
					continue
				}
				delete(free, fi)
				changed = true
				break
			}
		}
	}
	return free
}
