package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("repro/internal/dense").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Matched reports whether the package matched the load patterns (its
	// dependencies are loaded regardless, but only matched packages are
	// linted).
	Matched bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded Go module: every non-test package, parsed and
// type-checked in dependency order with nothing but the standard library
// toolchain (no x/tools).
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // topological (dependency-first) order
}

// LoadOptions tunes what LoadModuleWith feeds the type checker.
type LoadOptions struct {
	// IncludeTests loads _test.go files as well: in-package test files are
	// type-checked together with their package, and external test packages
	// (package foo_test) become their own Package entries with an import
	// path suffixed "_test". This is how guardedby reaches the stress
	// suites, where shared test state is most likely to race.
	IncludeTests bool
}

// LoadModule parses and type-checks the module rooted at root. Patterns
// follow the go tool's shape relative to the root: "./..." for
// everything, "./dir/..." for a subtree, "./dir" for one package. All
// local packages are loaded (dependencies must type-check), but only
// those matching a pattern are flagged Matched.
//
// Test files (_test.go) are skipped: the invariants the suite enforces
// are production-code properties, and tests legitimately use wall-clock
// time, ad-hoc rand, and allocation-heavy helpers. Use LoadModuleWith
// with IncludeTests to opt the test files in.
func LoadModule(root string, patterns []string) (*Module, error) {
	return LoadModuleWith(root, patterns, LoadOptions{})
}

// LoadModuleWith is LoadModule with explicit options.
func LoadModuleWith(root string, patterns []string, opts LoadOptions) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	// Parse every candidate directory that holds non-test Go files.
	byPath := map[string]*rawPkg{}
	for _, dir := range dirs {
		files, xtest, err := parseDir(mod.Fset, dir, opts.IncludeTests)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + rel
		}
		matched := matchAny(patterns, rel)
		if len(files) > 0 {
			p := &Package{
				Path:    importPath,
				Dir:     dir,
				Matched: matched,
				Fset:    mod.Fset,
				Files:   files,
			}
			byPath[importPath] = &rawPkg{pkg: p, imports: localImports(files, modPath)}
		}
		if len(xtest) > 0 {
			// External test package: its own unit, depending on the package
			// under test like any other local import.
			p := &Package{
				Path:    importPath + "_test",
				Dir:     dir,
				Matched: matched,
				Fset:    mod.Fset,
				Files:   xtest,
			}
			byPath[p.Path] = &rawPkg{pkg: p, imports: localImports(xtest, modPath)}
		}
	}

	order, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order; each checked package becomes
	// importable by the ones after it.
	imp := newChainImporter(mod.Fset)
	for _, path := range order {
		raw := byPath[path]
		if err := typeCheck(mod.Fset, raw.pkg, imp); err != nil {
			return nil, err
		}
		imp.locals[path] = raw.pkg.Types
		mod.Pkgs = append(mod.Pkgs, raw.pkg)
	}
	return mod, nil
}

// TypeCheckFiles type-checks a standalone set of parsed files (stdlib
// imports only) as one package — the entry point fixture tests use.
func TypeCheckFiles(fset *token.FileSet, path string, files []*ast.File) (*Package, error) {
	p := &Package{Path: path, Fset: fset, Files: files, Matched: true}
	if err := typeCheck(fset, p, newChainImporter(fset)); err != nil {
		return nil, err
	}
	return p, nil
}

// typeCheck runs go/types over one package, filling p.Types and p.Info.
func typeCheck(fset *token.FileSet, p *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.Path, fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
	}
	p.Types = tpkg
	p.Info = info
	return nil
}

// chainImporter resolves module-local packages from the already-checked
// set and everything else from the toolchain: compiled export data when
// available, falling back to type-checking the dependency from source.
type chainImporter struct {
	locals map[string]*types.Package
	gc     types.Importer
	source types.Importer
	cache  map[string]*types.Package
}

func newChainImporter(fset *token.FileSet) *chainImporter {
	return &chainImporter{
		locals: map[string]*types.Package{},
		gc:     importer.Default(),
		source: importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.locals[path]; ok {
		return p, nil
	}
	if p, ok := c.cache[path]; ok {
		return p, nil
	}
	p, err := c.gc.Import(path)
	if err != nil {
		p, err = c.source.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: importing %q: %w", path, err)
	}
	c.cache[path] = p
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (is the working directory inside the module?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs walks the module for directories that can hold packages,
// skipping hidden directories, testdata, and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the Go files of one directory. Non-test files and
// in-package test files land in files; external test files (package
// foo_test) land in xtest. Test files are parsed only when includeTests
// is set. Files excluded by a //go:build constraint under the current
// GOOS/GOARCH (and without special tags like race) are skipped, so
// build-tag pairs such as race_on_test.go/race_off_test.go do not
// collide.
func parseDir(fset *token.FileSet, dir string, includeTests bool) (files, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !includeTests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if !buildIncluded(f) {
			continue
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			files = append(files, f)
		}
	}
	return files, xtest, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any) for the
// linting environment: the host GOOS/GOARCH and gc toolchain, any go1.N
// release tag, and no feature tags (race, integration, …). Files the go
// tool would skip here are skipped too.
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the type checker complain
			}
			return expr.Eval(func(tag string) bool {
				if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
					return true
				}
				return strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

// localImports lists the module-local import paths of a file set.
func localImports(files []*ast.File, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// rawPkg is a parsed-but-not-yet-type-checked package.
type rawPkg struct {
	pkg     *Package
	imports []string
}

// topoSort orders packages dependency-first, erroring on import cycles.
func topoSort(pkgs map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		raw, ok := pkgs[path]
		if !ok {
			return fmt.Errorf("lint: local import %q has no source directory", path)
		}
		for _, dep := range raw.imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// matchAny reports whether the slash-separated module-relative directory
// rel matches any pattern ("./...", "./dir/...", "./dir", "dir").
func matchAny(patterns []string, rel string) bool {
	for _, pat := range patterns {
		if matchPattern(pat, rel) {
			return true
		}
	}
	return false
}

func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	pat = strings.TrimSuffix(pat, "/") // `./internal/rank/` ≡ `./internal/rank`, as in the go tool
	switch {
	case pat == "..." || pat == "":
		return true
	case strings.HasSuffix(pat, "/..."):
		prefix := strings.TrimSuffix(pat, "/...")
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	default:
		return rel == pat
	}
}
