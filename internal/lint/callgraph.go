package lint

import (
	"go/ast"
	"go/types"
)

// The call graph is the spine of every interprocedural check: one node
// per declared function in the module, one edge per syntactically
// resolvable call. Calls through function values and interface methods
// have no edge — each check decides how to treat that hole (guardedby
// assumes no locks are inherited, noalloctrans flags the call as
// unverifiable). Edges carry their execution context relative to the
// caller's body: a call issued inside a `go` statement, a `defer`, or a
// nested function literal does not run under the caller's locks.

// CallSite is one call expression inside a declared function's body.
type CallSite struct {
	// Caller is the declared function whose body (including nested
	// function literals) contains the call.
	Caller *FuncInfo
	// CalleeObj is the resolved callee, when the call names a function or
	// method statically; nil for calls through function values.
	CalleeObj *types.Func
	// Callee is CalleeObj's module-local node, nil when the callee lives
	// outside the module (stdlib) or could not be resolved.
	Callee *FuncInfo
	// Call is the call expression itself.
	Call *ast.CallExpr
	// InGo marks calls that execute on a new goroutine: the call of a `go`
	// statement, or any call inside a goroutine-launched literal.
	InGo bool
	// InDefer marks the call of a `defer` statement: it runs at function
	// exit, not at the defer site.
	InDefer bool
	// InLit marks calls inside a nested function literal (other than the
	// goroutine case): the literal may run anywhere, anytime.
	InLit bool
	// InPanic marks calls inside a panic(...) argument subtree — failure
	// paths the allocation checks exempt.
	InPanic bool
}

// Synchronous reports whether the call executes inline in the caller's
// own control flow — the only case where the caller's lock state at the
// call site transfers to the callee.
func (s *CallSite) Synchronous() bool { return !s.InGo && !s.InDefer && !s.InLit }

// FuncInfo is one declared function or method of the module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the call sites inside this function's body, in source
	// order. CalledBy are the resolved sites that target this function.
	Calls    []*CallSite
	CalledBy []*CallSite
	// AddrTaken reports the function was used as a value somewhere — it
	// can then be called from contexts the graph cannot see.
	AddrTaken bool
	// Noalloc reports the //lsilint:noalloc annotation.
	Noalloc bool
}

// RecvObj returns the declared receiver variable of a method, or nil for
// plain functions and unnamed receivers.
func (f *FuncInfo) RecvObj() types.Object {
	if f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 {
		return nil
	}
	names := f.Decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return f.Pkg.Info.Defs[names[0]]
}

// CallGraph holds every declared function of the module and the resolved
// call edges between them.
type CallGraph struct {
	Funcs  map[*types.Func]*FuncInfo
	ByDecl map[*ast.FuncDecl]*FuncInfo
}

// BuildCallGraph walks every package of the module once, collecting
// declared functions and the call edges between them.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Funcs:  map[*types.Func]*FuncInfo{},
		ByDecl: map[*ast.FuncDecl]*FuncInfo{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, Noalloc: hasNoallocDirective(fd)}
				g.Funcs[obj] = fi
				g.ByDecl[fd] = fi
			}
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := g.ByDecl[fd]
				if fi == nil {
					continue
				}
				g.collectCalls(fi, fd.Body, siteCtx{})
			}
		}
	}
	g.markAddrTaken(mod)
	return g
}

// siteCtx tracks the execution context while descending a body.
type siteCtx struct {
	inGo, inDefer, inLit, inPanic bool
}

// collectCalls records every call under n, attributed to fi, tracking how
// each call executes relative to fi's own control flow.
func (g *CallGraph) collectCalls(fi *FuncInfo, n ast.Node, ctx siteCtx) {
	switch node := n.(type) {
	case nil:
		return
	case *ast.GoStmt:
		g.collectCallExpr(fi, node.Call, siteCtx{inGo: true, inPanic: ctx.inPanic})
		return
	case *ast.DeferStmt:
		g.collectCallExpr(fi, node.Call, siteCtx{inDefer: true, inPanic: ctx.inPanic})
		return
	case *ast.FuncLit:
		inner := ctx
		if !inner.inGo {
			inner.inLit = true
		}
		g.collectCalls(fi, node.Body, inner)
		return
	case *ast.CallExpr:
		g.collectCallExpr(fi, node, ctx)
		return
	}
	for _, child := range childNodes(n) {
		g.collectCalls(fi, child, ctx)
	}
}

// collectCallExpr records one call expression and descends into its
// operand and arguments. panic(...) arguments are marked as failure-path
// context; the callee of a go/defer statement inherits that statement's
// context while its arguments (evaluated inline, at the statement) do
// not keep the InGo/InDefer flags' execution meaning — for simplicity
// the whole subtree shares the context, which is the conservative
// direction for every consumer.
func (g *CallGraph) collectCallExpr(fi *FuncInfo, call *ast.CallExpr, ctx siteCtx) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		inner := ctx
		inner.inPanic = true
		for _, arg := range call.Args {
			g.collectCalls(fi, arg, inner)
		}
		return
	}
	info := fi.Pkg.Info
	isConversion := false
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		isConversion = true
	}
	if !isConversion && builtinName(info, call) == "" {
		site := &CallSite{
			Caller:    fi,
			CalleeObj: calleeFunc(info, call),
			Call:      call,
			InGo:      ctx.inGo,
			InDefer:   ctx.inDefer,
			InLit:     ctx.inLit,
			InPanic:   ctx.inPanic,
		}
		if site.CalleeObj != nil {
			if callee, ok := g.Funcs[site.CalleeObj]; ok {
				site.Callee = callee
				callee.CalledBy = append(callee.CalledBy, site)
			}
		}
		fi.Calls = append(fi.Calls, site)
	}
	g.collectCalls(fi, call.Fun, ctx)
	for _, arg := range call.Args {
		g.collectCalls(fi, arg, ctx)
	}
}

// markAddrTaken flags functions whose identifier is used outside call
// position — passed as a value, stored in a field, registered as a
// handler. Such functions can be invoked from anywhere, so the
// interprocedural checks must not trust their visible caller set.
func (g *CallGraph) markAddrTaken(mod *Module) {
	for _, pkg := range mod.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			callOperand := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id := terminalIdent(call.Fun); id != nil {
					callOperand[id] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callOperand[id] {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if fi, ok := g.Funcs[fn]; ok {
					fi.AddrTaken = true
				}
				return true
			})
		}
	}
}

// terminalIdent returns the identifier a call operand ultimately names:
// the ident itself, a selector's Sel, through parens and generic
// instantiation.
func terminalIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.IndexExpr:
		return terminalIdent(x.X)
	case *ast.IndexListExpr:
		return terminalIdent(x.X)
	}
	return nil
}

// childNodes lists the direct children of n, the minimal walker the call
// collector needs (ast.Inspect cannot thread the context through).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil {
			return false
		}
		if child == n {
			return true
		}
		out = append(out, child)
		return false
	})
	return out
}
