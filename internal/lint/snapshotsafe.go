package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The snapshotsafe check encodes the publish-then-immutable discipline
// the whole read path depends on: engine snapshots and ranking engines
// are built, frozen, and published through an atomic pointer; after
// publication every reader walks them lock-free, so a single mutating
// write is a silent data race. Types opt in with //lsilint:immutable on
// their declaration. Any write through a value of an annotated type — or
// to a field declared in one, which covers writes through types that
// embed it — is a finding unless it happens inside the type's
// constructor chain:
//
//   - functions in the type's own package whose results include T or *T
//     (NewEngine, Extend, buildMirror, ...), and
//   - same-package functions reachable ONLY from chain members in the
//     call graph (helpers like a row-filler invoked, possibly on worker
//     goroutines, during construction), computed as a fixpoint.
//
// Known holes, accepted and documented: a method that mutates its
// receiver and returns it matches the constructor signature shape, and
// calls through interfaces or stored function values are invisible to
// the chain closure (address-taken functions are excluded from it for
// that reason).

func init() {
	registerModule(&ModuleCheck{
		ID:  "snapshotsafe",
		Doc: "write to a //lsilint:immutable type outside its constructor chain",
		Run: runSnapshotSafe,
	})
}

func runSnapshotSafe(p *ModulePass) {
	annotated := collectImmutableTypes(p)
	if len(annotated) == 0 {
		return
	}
	fields := immutableFields(annotated)
	chains := map[*types.TypeName]map[*FuncInfo]bool{}
	for tn := range annotated {
		chains[tn] = constructorChain(p, tn)
	}

	for _, pkg := range p.Mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := p.Graph.ByDecl[fd]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					var lhs []ast.Expr
					switch st := n.(type) {
					case *ast.AssignStmt:
						if st.Tok != token.DEFINE {
							lhs = st.Lhs
						}
					case *ast.IncDecStmt:
						lhs = []ast.Expr{st.X}
					default:
						return true
					}
					for _, e := range lhs {
						tn := writeHitsImmutable(pkg.Info, e, annotated, fields)
						if tn == nil {
							continue
						}
						if fi != nil && chains[tn][fi] {
							continue
						}
						p.Reportf(e.Pos(),
							"write through //lsilint:immutable type %s outside its constructor chain; published snapshots must never be mutated",
							tn.Name())
					}
					return true
				})
			}
		}
	}
}

// writeHitsImmutable decides whether assigning through lhs mutates an
// annotated type: either some PROPER prefix of the selector/index/deref
// chain has an annotated (possibly pointer-wrapped) type, or the field
// ultimately written is declared in an annotated struct (the embedding
// case). The full LHS expression itself deliberately does not count:
// `m.eng = rank.NewEngine(v)` rebinds a *Engine-typed slot owned by m —
// the pointee is untouched — whereas `m.eng.norms = nil` reaches through
// the annotated value and is a mutation. Parens are transparent; only
// selectors, index expressions, and dereferences reach through storage.
func writeHitsImmutable(info *types.Info, lhs ast.Expr,
	annotated map[*types.TypeName]bool, fields map[*types.Var]*types.TypeName) *types.TypeName {
	if sel := writeSel(lhs); sel != nil {
		if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if v, ok := selection.Obj().(*types.Var); ok {
				if tn, hit := fields[v]; hit {
					return tn
				}
			}
		}
	}
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		default:
			return nil
		}
		if tn := annotatedType(info.TypeOf(e), annotated); tn != nil {
			return tn
		}
	}
}

// annotatedType resolves t (through pointers) to an annotated type name.
func annotatedType(t types.Type, annotated map[*types.TypeName]bool) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if annotated[named.Obj()] {
		return named.Obj()
	}
	return nil
}

// immutableFields maps every field declared in an annotated struct back
// to its owning type, so writes through embedding types are caught: if W
// embeds Snapshot, w.Gen resolves to Snapshot's Gen field.
func immutableFields(annotated map[*types.TypeName]bool) map[*types.Var]*types.TypeName {
	out := map[*types.Var]*types.TypeName{}
	for tn := range annotated {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			out[st.Field(i)] = tn
		}
	}
	return out
}

// constructorChain computes the functions allowed to write tn's values:
// same-package functions whose results include the type, plus the
// closure of same-package, non-address-taken functions every one of
// whose callers is already in the chain.
func constructorChain(p *ModulePass, tn *types.TypeName) map[*FuncInfo]bool {
	chain := map[*FuncInfo]bool{}
	for _, fi := range p.Graph.Funcs {
		if fi.Obj.Pkg() == tn.Pkg() && resultsInclude(fi.Obj, tn) {
			chain[fi] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range p.Graph.Funcs {
			if chain[fi] || fi.Obj.Pkg() != tn.Pkg() || fi.AddrTaken || len(fi.CalledBy) == 0 {
				continue
			}
			all := true
			for _, site := range fi.CalledBy {
				if !chain[site.Caller] {
					all = false
					break
				}
			}
			if all {
				chain[fi] = true
				changed = true
			}
		}
	}
	return chain
}

// resultsInclude reports whether fn returns tn's type, directly or via
// pointer.
func resultsInclude(fn *types.Func, tn *types.TypeName) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == tn {
			return true
		}
	}
	return false
}

// collectImmutableTypes gathers every type declaration carrying
// //lsilint:immutable (on the TypeSpec or its enclosing GenDecl).
func collectImmutableTypes(p *ModulePass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range p.Mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDirectiveIn("immutable", gd.Doc, ts.Doc, ts.Comment) {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}
