package lint

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata file as a standalone
// package and runs a single check over it.
func loadFixture(t *testing.T, checkID, filename string) []Diagnostic {
	t.Helper()
	path := filepath.Join("testdata", filename)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	pkg, err := TypeCheckFiles(fset, "fixtures", []*ast.File{f})
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	check, ok := Lookup(checkID)
	if !ok {
		t.Fatalf("no registered check %q", checkID)
	}
	return RunChecks(pkg, []*Check{check})
}

// wantMarkers scans a fixture for "// want id [id...]" markers and
// returns the expected diagnostic count per (line, id).
func wantMarkers(t *testing.T, filename string) map[int]map[string]int {
	t.Helper()
	fh, err := os.Open(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	want := map[int]map[string]int{}
	sc := bufio.NewScanner(fh)
	line := 0
	for sc.Scan() {
		line++
		_, marker, found := strings.Cut(sc.Text(), "// want ")
		if !found {
			continue
		}
		for _, id := range strings.Fields(marker) {
			if want[line] == nil {
				want[line] = map[string]int{}
			}
			want[line][id]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// fixtureCases pairs every check with its fixture file. Each fixture
// contains positive lines (flagged without the check's logic, the test
// fails) and negative lines (flagged spuriously, the test also fails).
var fixtureCases = []struct {
	check string
	file  string
}{
	{"maporder", "maporder.go"},
	{"randglobal", "randglobal.go"},
	{"walltime", "walltime.go"},
	{"floatcmp", "floatcmp.go"},
	{"lockbalance", "lockbalance.go"},
	{"wgadd", "wgadd.go"},
	{"mutexcopy", "mutexcopy.go"},
	{"noalloc", "noalloc.go"},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.check, func(t *testing.T) {
			diags := loadFixture(t, tc.check, tc.file)
			want := wantMarkers(t, tc.file)

			got := map[int]map[string]int{}
			for _, d := range diags {
				if got[d.Pos.Line] == nil {
					got[d.Pos.Line] = map[string]int{}
				}
				got[d.Pos.Line][d.Check]++
			}
			for line, ids := range want {
				for id, n := range ids {
					if got[line][id] != n {
						t.Errorf("line %d: want %d diagnostic(s) of %q, got %d", line, n, id, got[line][id])
					}
				}
			}
			for line, ids := range got {
				for id, n := range ids {
					if want[line][id] != n {
						t.Errorf("line %d: unexpected diagnostic [%s] (%d)", line, id, n)
					}
				}
			}
			if t.Failed() {
				for _, d := range diags {
					t.Logf("reported: %s", d)
				}
			}
		})
	}
}

// TestEveryCheckHasAFixture keeps the suite honest: a newly registered
// check without fixture coverage fails here.
func TestEveryCheckHasAFixture(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range fixtureCases {
		covered[tc.check] = true
	}
	for _, c := range Checks() {
		if !covered[c.ID] {
			t.Errorf("check %q has no fixture in fixtureCases", c.ID)
		}
		if c.Doc == "" {
			t.Errorf("check %q has no Doc line", c.ID)
		}
	}
}

func TestDirectiveParsing(t *testing.T) {
	verb, ids, ok := splitDirective("//lsilint:ignore floatcmp maporder")
	if !ok || verb != "ignore" || len(ids) != 2 || ids[0] != "floatcmp" {
		t.Fatalf("splitDirective = %q %v %v", verb, ids, ok)
	}
	if _, _, ok := splitDirective("// lsilint:ignore x"); ok {
		t.Fatal("space after // must not parse as a directive")
	}
	if _, _, ok := splitDirective("//nolint:foo"); ok {
		t.Fatal("foreign directives must not parse")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Check:   "noalloc",
		Message: "make allocates",
	}
	want := "a/b.go:3:7: [noalloc] make allocates"
	if d.String() != want {
		t.Fatalf("String() = %q, want %q", d.String(), want)
	}
}

// TestMatchPattern pins the driver's pattern semantics.
func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "internal/dense", true},
		{"./...", ".", true},
		{"./internal/...", "internal/dense", true},
		{"./internal/...", "internal", true},
		{"./internal/...", "cmd/lsilint", false},
		{"./cmd/lsilint", "cmd/lsilint", true},
		{"./cmd/lsilint", "cmd", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.rel); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.rel, got, c.want)
		}
	}
}
