package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata file as a standalone
// package and runs a single check over it.
func loadFixture(t *testing.T, checkID, filename string) []Diagnostic {
	t.Helper()
	path := filepath.Join("testdata", filename)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	pkg, err := TypeCheckFiles(fset, "fixtures", []*ast.File{f})
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	check, ok := Lookup(checkID)
	if !ok {
		t.Fatalf("no registered check %q", checkID)
	}
	return RunChecks(pkg, []*Check{check})
}

// wantMarkers scans a fixture for "// want id [id...]" markers and
// returns the expected diagnostic count per (line, id).
func wantMarkers(t *testing.T, filename string) map[int]map[string]int {
	t.Helper()
	fh, err := os.Open(filepath.Join("testdata", filename))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	want := map[int]map[string]int{}
	sc := bufio.NewScanner(fh)
	line := 0
	for sc.Scan() {
		line++
		_, marker, found := strings.Cut(sc.Text(), "// want ")
		if !found {
			continue
		}
		for _, id := range strings.Fields(marker) {
			if want[line] == nil {
				want[line] = map[string]int{}
			}
			want[line][id]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// loadModuleFixture type-checks one or more testdata files as a single
// package, wraps them in a synthetic Module, and runs one module-wide
// check over it.
func loadModuleFixture(t *testing.T, checkID string, filenames ...string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		path := filepath.Join("testdata", fn)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg, err := TypeCheckFiles(fset, "fixtures", files)
	if err != nil {
		t.Fatalf("type-check %v: %v", filenames, err)
	}
	check, ok := LookupModule(checkID)
	if !ok {
		t.Fatalf("no registered module check %q", checkID)
	}
	mod := &Module{Root: "testdata", Path: "fixtures", Fset: fset, Pkgs: []*Package{pkg}}
	return RunModuleChecks(mod, []*ModuleCheck{check})
}

// fixtureCases pairs every check with its fixture file. Each fixture
// contains positive lines (flagged without the check's logic, the test
// fails) and negative lines (flagged spuriously, the test also fails).
var fixtureCases = []struct {
	check string
	file  string
}{
	{"maporder", "maporder.go"},
	{"randglobal", "randglobal.go"},
	{"walltime", "walltime.go"},
	{"floatcmp", "floatcmp.go"},
	{"lockbalance", "lockbalance.go"},
	{"wgadd", "wgadd.go"},
	{"mutexcopy", "mutexcopy.go"},
	{"noalloc", "noalloc.go"},
}

// moduleFixtureCases is the module-wide (interprocedural) counterpart.
var moduleFixtureCases = []struct {
	check string
	file  string
}{
	{"guardedby", "guardedby.go"},
	{"snapshotsafe", "snapshotsafe.go"},
	{"noalloctrans", "noalloctrans.go"},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.check, func(t *testing.T) {
			diags := loadFixture(t, tc.check, tc.file)
			want := wantMarkers(t, tc.file)

			got := map[int]map[string]int{}
			for _, d := range diags {
				if got[d.Pos.Line] == nil {
					got[d.Pos.Line] = map[string]int{}
				}
				got[d.Pos.Line][d.Check]++
			}
			for line, ids := range want {
				for id, n := range ids {
					if got[line][id] != n {
						t.Errorf("line %d: want %d diagnostic(s) of %q, got %d", line, n, id, got[line][id])
					}
				}
			}
			for line, ids := range got {
				for id, n := range ids {
					if want[line][id] != n {
						t.Errorf("line %d: unexpected diagnostic [%s] (%d)", line, id, n)
					}
				}
			}
			if t.Failed() {
				for _, d := range diags {
					t.Logf("reported: %s", d)
				}
			}
		})
	}
}

// TestModuleFixtures runs the interprocedural checks over their fixtures
// with the same bidirectional want-marker protocol as TestFixtures.
func TestModuleFixtures(t *testing.T) {
	for _, tc := range moduleFixtureCases {
		t.Run(tc.check, func(t *testing.T) {
			diags := loadModuleFixture(t, tc.check, tc.file)
			want := wantMarkers(t, tc.file)

			got := map[int]map[string]int{}
			for _, d := range diags {
				if got[d.Pos.Line] == nil {
					got[d.Pos.Line] = map[string]int{}
				}
				got[d.Pos.Line][d.Check]++
			}
			for line, ids := range want {
				for id, n := range ids {
					if got[line][id] != n {
						t.Errorf("line %d: want %d diagnostic(s) of %q, got %d", line, n, id, got[line][id])
					}
				}
			}
			for line, ids := range got {
				for id, n := range ids {
					if want[line][id] != n {
						t.Errorf("line %d: unexpected diagnostic [%s] (%d)", line, id, n)
					}
				}
			}
			if t.Failed() {
				for _, d := range diags {
					t.Logf("reported: %s", d)
				}
			}
		})
	}
}

// TestEveryCheckHasAFixture keeps the suite honest: a newly registered
// check without fixture coverage fails here.
func TestEveryCheckHasAFixture(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range fixtureCases {
		covered[tc.check] = true
	}
	for _, c := range Checks() {
		if !covered[c.ID] {
			t.Errorf("check %q has no fixture in fixtureCases", c.ID)
		}
		if c.Doc == "" {
			t.Errorf("check %q has no Doc line", c.ID)
		}
	}
	moduleCovered := map[string]bool{}
	for _, tc := range moduleFixtureCases {
		moduleCovered[tc.check] = true
	}
	for _, c := range ModuleChecks() {
		if !moduleCovered[c.ID] {
			t.Errorf("module check %q has no fixture in moduleFixtureCases", c.ID)
		}
		if c.Doc == "" {
			t.Errorf("module check %q has no Doc line", c.ID)
		}
	}
}

// runModuleSource runs one module check over in-memory sources, for the
// directive-interplay tests where the fixture varies by a single line.
func runModuleSource(t *testing.T, checkID string, srcs map[string]string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, srcs[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg, err := TypeCheckFiles(fset, "fixtures", files)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	check, ok := LookupModule(checkID)
	if !ok {
		t.Fatalf("no registered module check %q", checkID)
	}
	mod := &Module{Root: ".", Path: "fixtures", Fset: fset, Pkgs: []*Package{pkg}}
	return RunModuleChecks(mod, []*ModuleCheck{check})
}

// TestInterproceduralIgnorePlacement pins where //lsilint:ignore must sit
// for an interprocedural finding: at the site the diagnostic is reported
// (the callee's access), not at the caller that fails to hold the lock.
func TestInterproceduralIgnorePlacement(t *testing.T) {
	const template = `package fixtures

import "sync"

type gauge struct {
	mu sync.Mutex
	//lsilint:guardedby mu
	v int
}

func (g *gauge) set(v int) {
	g.v = v%s
}

func (g *gauge) caller() {
	g.set(1)%s
}
`
	cases := []struct {
		name           string
		calleeSuffix   string
		callerSuffix   string
		wantDiagnostic bool
	}{
		{"no directives", "", "", true},
		{"ignore at callee access", " //lsilint:ignore guardedby", "", false},
		{"ignore at caller call site", "", " //lsilint:ignore guardedby", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(template, tc.calleeSuffix, tc.callerSuffix)
			diags := runModuleSource(t, "guardedby", map[string]string{"interplay.go": src})
			if got := len(diags) > 0; got != tc.wantDiagnostic {
				t.Errorf("want diagnostic=%v, got %d finding(s): %v", tc.wantDiagnostic, len(diags), diags)
			}
		})
	}
}

// TestFileIgnorePrecedence pins file-ignore scope for module checks: it
// silences every finding in its own file and nothing in sibling files of
// the same package.
func TestFileIgnorePrecedence(t *testing.T) {
	const silenced = `//lsilint:file-ignore guardedby
package fixtures

import "sync"

type dial struct {
	mu sync.Mutex
	//lsilint:guardedby mu
	v int
}

func (d *dial) badHere() {
	d.v++
}
`
	const loud = `package fixtures

func (d *dial) badThere() {
	d.v++
}
`
	diags := runModuleSource(t, "guardedby", map[string]string{
		"a_silenced.go": silenced,
		"b_loud.go":     loud,
	})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding (from b_loud.go), got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Filename != "b_loud.go" {
		t.Errorf("finding reported in %s, want b_loud.go", diags[0].Pos.Filename)
	}
}

func TestDirectiveParsing(t *testing.T) {
	verb, ids, ok := splitDirective("//lsilint:ignore floatcmp maporder")
	if !ok || verb != "ignore" || len(ids) != 2 || ids[0] != "floatcmp" {
		t.Fatalf("splitDirective = %q %v %v", verb, ids, ok)
	}
	if _, _, ok := splitDirective("// lsilint:ignore x"); ok {
		t.Fatal("space after // must not parse as a directive")
	}
	if _, _, ok := splitDirective("//nolint:foo"); ok {
		t.Fatal("foreign directives must not parse")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Check:   "noalloc",
		Message: "make allocates",
	}
	want := "a/b.go:3:7: [noalloc] make allocates"
	if d.String() != want {
		t.Fatalf("String() = %q, want %q", d.String(), want)
	}
}

// TestMatchPattern pins the driver's pattern semantics.
func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, rel string
		want     bool
	}{
		{"./...", "internal/dense", true},
		{"./...", ".", true},
		{"./internal/...", "internal/dense", true},
		{"./internal/...", "internal", true},
		{"./internal/...", "cmd/lsilint", false},
		{"./cmd/lsilint", "cmd/lsilint", true},
		{"./cmd/lsilint", "cmd", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.rel); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.rel, got, c.want)
		}
	}
}
