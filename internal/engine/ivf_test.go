package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/rank"
)

// waitStats spins until pred accepts the engine's stats.
func waitStats(t *testing.T, e *Engine, what string, pred func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIVFLifecycle pins the cluster-index pipeline: the initial snapshot
// is indexed, fold-ins grow the unclustered tail until the size trigger
// lands a background rebuild, compaction invalidates the index and a
// fresh build follows — and at every stage ranked results stay
// byte-identical to an exact engine over the same coordinates.
func TestIVFLifecycle(t *testing.T) {
	e, coll := testEngine(t, Config{
		BatchTick:        time.Millisecond,
		CompactThreshold: 1e-9,
		IVFMinRows:       1,
		// Any nonzero tail exceeds this, so every fold-in batch triggers a
		// rebuild as soon as the previous one lands.
		IVFRebuildFraction: 0.0001,
	})
	ctx := context.Background()
	checkParity := func(stage string) {
		s := e.Snapshot()
		exact := rank.NewEngineExact(s.Model.V)
		for _, query := range []string{"fatty acids glucose", "depressed culture"} {
			qhat := s.Model.ProjectQuery(coll.QueryVector(query))
			for _, k := range []int{1, 5, s.NumDocs()} {
				if got, want := s.Eng.TopK(qhat, k), exact.TopK(qhat, k); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: query %q k=%d diverges from exact", stage, query, k)
				}
			}
		}
	}

	st := e.Stats()
	if st.IVFClusters == 0 || st.IVFRebuilds != 1 || st.IVFUnclusteredTail != 0 {
		t.Fatalf("initial snapshot not indexed: %+v", st)
	}
	checkParity("initial")

	for i := 0; i < 5; i++ {
		if _, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("depressed patients fast culture %d", i)}); err != nil {
			t.Fatal(err)
		}
		checkParity(fmt.Sprintf("after fold-in %d", i))
	}
	// The size trigger must land a rebuild that swallows the tail. The
	// aggressive CompactThreshold means a concurrent compaction can void
	// the index at any instant, so the indexed state must be part of the
	// predicate — any single poll may catch the window where the rebuilt
	// cache is not yet re-indexed.
	waitStats(t, e, "post-fold-in rebuild", func(st Stats) bool {
		return st.IVFRebuilds >= 2 && st.IVFUnclusteredTail == 0 && st.IVFClusters > 0
	})
	checkParity("after rebuild")

	waitCompacted(t, e)
	// Compaction rotated the coordinates: the rebuilt cache starts
	// unindexed and the follow-up background build must land on the new
	// epoch.
	waitStats(t, e, "post-compaction rebuild", func(st Stats) bool {
		return st.IVFClusters > 0 && st.IVFUnclusteredTail == 0
	})
	checkParity("after compaction rebuild")

	// Cumulative query counters tick on the snapshot read path.
	before := e.Stats().Queries
	s := e.Snapshot()
	s.RankTop(coll.QueryVector("glucose in rats"), 3)
	s.RankBatch([][]float64{coll.QueryVector("fatty acids"), coll.QueryVector("culture")}, 2)
	if after := e.Stats().Queries; after != before+3 {
		t.Fatalf("queries counter moved %d → %d; want +3", before, after)
	}
}

// TestDisableIVF pins the opt-outs: DisableIVF keeps every snapshot
// unindexed, and DisableScreening implies it (the index lives on the
// mirror).
func TestDisableIVF(t *testing.T) {
	e, _ := testEngine(t, Config{
		BatchTick:          time.Millisecond,
		DisableIVF:         true,
		IVFMinRows:         1,
		IVFRebuildFraction: 0.0001,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("fast rats %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.IVFClusters != 0 || st.IVFRebuilds != 0 {
		t.Fatalf("DisableIVF engine grew an index: %+v", st)
	}

	noScreen, _ := testEngine(t, Config{DisableScreening: true, IVFMinRows: 1})
	if st := noScreen.Stats(); st.IVFClusters != 0 || st.IVFRebuilds != 0 || st.MirrorMaxEps != 0 {
		t.Fatalf("DisableScreening engine grew an index or mirror: %+v", st)
	}
}
