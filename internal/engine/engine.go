// Package engine is the snapshot-isolated serving core behind the HTTP
// server: reads never block on writes, the shape §5.4's NETLIB deployment
// needs once the database grows by folding-in (§4.3) while queries keep
// arriving.
//
// The design is a single-writer copy-on-write pipeline:
//
//   - Readers load an immutable *Snapshot (model + docs + normalized
//     scoring cache) through one atomic pointer load and never take a
//     lock — a snapshot, once published, is never mutated.
//   - All mutation lives in one background updater goroutine fed by a
//     bounded queue. Each batch tick it drains the queue, folds the whole
//     batch into a SharedClone of the current model with one FoldInDocs
//     call (Eq 7), extends the scoring cache by just the new rows, and
//     publishes the successor snapshot.
//   - Folding-in corrupts V's orthogonality (§4.3); when the published
//     model's DocOrthogonality crosses the configured threshold the
//     updater launches an SVD-update compaction (core.UpdateDocs, Eq 10)
//     off to the side: the last pure-SVD base absorbs every document
//     folded since, while reads — and further fold-ins — continue on the
//     current snapshots. When the compaction lands, documents folded in
//     the meantime are re-folded onto the compacted base and the result
//     is published; orthogonality drops back to zero without the service
//     ever pausing.
//
// Backpressure is explicit: a full queue rejects submissions immediately
// (the HTTP layer maps that to 503 + Retry-After), and Close drains every
// accepted fold-in before returning, so an acknowledged-or-queued document
// is never lost on graceful shutdown.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/rank"
	"repro/internal/sparse"
)

// Exported error sentinels; the HTTP layer switches on these.
var (
	// ErrQueueFull means the fold-in queue is at capacity; retry later.
	ErrQueueFull = errors.New("engine: fold-in queue full")
	// ErrDuplicateID means a submitted document ID already exists.
	ErrDuplicateID = errors.New("engine: duplicate document id")
	// ErrClosed means the engine is shutting down or closed.
	ErrClosed = errors.New("engine: closed")
	// ErrUnknownID means a delete named a document ID that does not exist
	// (never submitted, or already deleted).
	ErrUnknownID = errors.New("engine: unknown document id")
)

// Config parameterizes the update pipeline. The zero value gets sensible
// defaults from New; CompactThreshold 0 disables automatic compaction.
type Config struct {
	// QueueSize bounds the fold-in queue (default 256). Submissions beyond
	// it fail fast with ErrQueueFull.
	QueueSize int
	// BatchTick is the batching window: the updater drains the queue and
	// folds one batch per tick (default 2ms).
	BatchTick time.Duration
	// CompactThreshold is the DocOrthogonality (‖V̂ᵀV̂−I‖_F, §4.3) level
	// above which the updater triggers an SVD-update compaction; 0 (or
	// negative) disables automatic compaction.
	CompactThreshold float64
	// Logf receives diagnostics (default: discard).
	Logf func(format string, args ...any)
	// DisableScreening turns off the float32 screening mirror: scoring
	// caches are built with rank.NewEngineExact, so every query runs the
	// pure float64 path. Results are byte-identical either way — this is
	// an operational opt-out (a third less cache memory, simpler
	// performance profile), not a correctness knob.
	DisableScreening bool
	// DisableIVF turns off the cluster index over the screening mirror:
	// queries screen every row instead of pruning whole cells. Implied by
	// DisableScreening (the index lives on the mirror). Like screening,
	// exact-mode results are byte-identical either way.
	DisableIVF bool
	// IVFClusters overrides the cell count of the cluster index
	// (default ⌈√n⌉).
	IVFClusters int
	// IVFNProbe caps how many cells a query scans — the opt-in
	// approximate mode. 0 keeps queries exact: cells are pruned only when
	// the certified bound proves they cannot reach the top-k.
	IVFNProbe int
	// IVFRebuildFraction is the unclustered-tail fraction (tail rows over
	// total rows) above which a background index rebuild is triggered
	// (default 0.25; negative disables size-triggered rebuilds).
	IVFRebuildFraction float64
	// IVFMinRows is the smallest collection the engine bothers indexing
	// (default rank.DefaultIVFMinRows).
	IVFMinRows int
	// CompactionStrategy selects the SVD-update algorithm compaction uses:
	// core.StrategyOBrien (exact dense inner SVD, the default) or
	// core.StrategyGK (Golub–Kahan projections, Vecharynski–Saad). Both
	// pass the same parity suite; GK bounds the inner SVD independently of
	// how many documents a compaction absorbs.
	CompactionStrategy core.UpdateStrategy
	// GKRank is the Golub–Kahan projection rank for StrategyGK; 0 means
	// core.DefaultGKRank. Ignored under StrategyOBrien.
	GKRank int

	// The remaining fields exist for snapshot restore (shard.Restore):
	// they let New resume a previously persisted engine instead of
	// rebuilding its derived state. Leave them zero for a fresh engine.

	// Prebuilt, when non-nil, is the scoring cache reassembled from a
	// snapshot (rank.EngineFromParts); New adopts it instead of
	// recomputing mirrors and quantized tiers from model.V. If it already
	// carries an IVF index the synchronous initial build is skipped too —
	// this is what makes restored startup independent of corpus size.
	Prebuilt *rank.Engine
	// InitialGen, when nonzero, seeds the snapshot generation counter so
	// generations keep increasing monotonically across a save/load cycle.
	InitialGen uint64
	// RestoredDead lists tombstoned rows from the persisted snapshot:
	// physically present in the model and collection, excluded from every
	// query, folded out by the next compaction. Their document IDs are
	// not registered (a deleted ID is released for resubmission).
	RestoredDead []int
	// RestoredNextID, when nonzero, resumes the auto-ID counter so
	// generated IDs ("doc-N") never collide with pre-save assignments.
	RestoredNextID int
}

// Stats is a point-in-time view of the pipeline for /stats and /metrics.
type Stats struct {
	Generation  uint64
	QueueDepth  int
	Compactions int64
	Compacting  bool
	// Documents counts live documents — physical rows minus tombstones.
	Documents       int
	FoldedDocuments int
	// Tombstones counts deleted documents still physically present in the
	// serving snapshot (excluded from every query); the next compaction
	// folds them out.
	Tombstones int
	// Screening reports whether the serving scoring cache carries the
	// float32 screening mirror (false when Config.DisableScreening).
	Screening bool
	// MirrorMaxEps is the worst per-row quantization residual of the
	// screening mirror — the scalar every screening bound is built from
	// (0 without a mirror).
	MirrorMaxEps float64
	// IVFClusters is the cell count of the serving cluster index (0 when
	// the snapshot carries no index).
	IVFClusters int
	// IVFUnclusteredTail is how many rows sit past the indexed prefix —
	// appended since the last (re)build and always scanned. Grows with
	// fold-ins, resets when a rebuild lands.
	IVFUnclusteredTail int
	// IVFRebuilds counts cluster-index builds that landed (including the
	// initial one).
	IVFRebuilds int64
	// Cumulative query-path counters since the engine started. Queries
	// counts ranked queries (batch rows count individually); the other
	// three accumulate the per-query ScreenStats, so e.g.
	// RescoreCandidates/Queries is the mean float64 rescore width and
	// ClustersScanned/Queries the mean cells visited.
	Queries           int64
	RescoreCandidates int64
	ClustersScanned   int64
	ScannedRows       int64
}

type submitResult struct {
	id  string
	err error
}

type submission struct {
	doc corpus.Document
	// del marks a deletion: doc.ID names the target and doc.Text is empty.
	// Deletes ride the same FIFO queue as fold-ins so a submit→delete (or
	// delete→resubmit) pair applies in the order the client issued it.
	del   bool
	reply chan submitResult
}

type compactResult struct {
	model *core.Model // compacted base; FoldedDocs()==0
	count int         // how many pending entries it resolved (live absorbed + dead dropped)
	// downdated reports whether the frozen dead base rows were folded out
	// of the model (false when the downdate was skipped or degenerate —
	// those rows then survive physically and stay tombstoned).
	downdated bool
	err       error
}

// frozenCompaction records what an in-flight compaction froze, so
// finishCompaction can remap every surviving row from the old serving
// coordinates to the compacted ones. Rows [0,baseN) are the base,
// [baseN,baseN+pendingCount) the frozen pending entries.
type frozenCompaction struct {
	baseN        int
	pendingCount int
	// deadBase lists tombstoned base rows (ascending) at freeze time; the
	// compaction folds them out when the downdate is feasible.
	deadBase []int
	// deadPending marks frozen pending entries already deleted: they are
	// dropped from the pending list instead of being absorbed.
	deadPending []bool
}

// ivfResult is a finished background cluster-index build. epoch tags the
// coordinate generation the build read; compaction rotates every
// coordinate, so a build from a previous epoch is discarded instead of
// being attached to rows it no longer describes.
type ivfResult struct {
	idx   *rank.IVFIndex
	epoch uint64
}

// queryCounters accumulates per-query ScreenStats across the engine's
// lifetime. Snapshots carry a pointer to their engine's counters so the
// lock-free read path can record without reaching back into the engine.
type queryCounters struct {
	queries         atomic.Int64
	rescored        atomic.Int64
	clustersScanned atomic.Int64
	scannedRows     atomic.Int64
}

func (c *queryCounters) record(st rank.ScreenStats) {
	if c == nil {
		return
	}
	c.queries.Add(1)
	c.rescored.Add(int64(st.Candidates))
	c.clustersScanned.Add(int64(st.ClustersScanned))
	c.scannedRows.Add(int64(st.ScannedRows))
}

// Engine owns the serving snapshot and the background update pipeline.
type Engine struct {
	cfg  Config
	coll *corpus.Collection

	snap atomic.Pointer[Snapshot]

	queue chan submission
	// ops carries control requests (external compaction begin/finish)
	// onto the updater goroutine, so they compose with batch application
	// under the same single-owner discipline as everything else.
	ops  chan func()
	stop chan struct{}
	done chan struct{}

	// closeMu orders Submit's enqueue against Close: Submit holds the read
	// side while it checks closed and sends, so once Close holds the write
	// side no further submission can slip into the queue and the final
	// drain is complete. Readers never touch this (or any) lock.
	closeMu sync.RWMutex
	//lsilint:guardedby closeMu
	closed bool

	compactions atomic.Int64
	compacting  atomic.Bool

	ivfRebuilds atomic.Int64
	ivfBuilding atomic.Bool
	counters    queryCounters

	// Updater-goroutine-owned state (no locking: single owner).
	base    *core.Model       // last pure-SVD model; nil disables compaction
	pending []corpus.Document // docs folded in since base was computed
	// rowOf maps live document ID → row in the current snapshot; it doubles
	// as the duplicate-ID registry, and deletion removes the entry so a
	// deleted ID can be resubmitted.
	rowOf map[string]int
	// deadRows holds tombstoned rows (current snapshot coordinates):
	// physically present, excluded from every query via Snapshot.Dead,
	// folded out by the next compaction.
	deadRows map[int]struct{}
	// frozen is the in-flight compaction's freeze record (internal or
	// external); nil when no compaction is running.
	frozen *frozenCompaction
	// deadStuck is set when a compaction left dead base rows in place
	// (degenerate downdate) so the trigger doesn't relaunch a compaction
	// that cannot make progress; any batch activity clears it.
	deadStuck bool
	nextID    int
	compactCh chan compactResult
	// compactWaiters holds CompactNow callers blocked until the in-flight
	// compaction lands; finishCompaction sends each the outcome.
	compactWaiters []chan error
	ivfCh     chan ivfResult
	// external marks the in-flight compaction as externally driven (a
	// shard router computing one shared-basis plan across engines): the
	// result arrives through FinishExternalCompaction, never compactCh,
	// so shutdown must not wait on the channel for it.
	external bool
	// coordsEpoch tags the current coordinate generation; compaction
	// increments it, invalidating in-flight index builds.
	coordsEpoch uint64
}

// New builds an engine serving the given collection and model and starts
// its background updater. The model must have been built from the
// collection and must not be mutated by the caller afterwards; the engine
// owns it from here on.
func New(coll *corpus.Collection, model *core.Model, cfg Config) (*Engine, error) {
	if model.NumDocs() != coll.Size() {
		return nil, fmt.Errorf("engine: model has %d docs, collection %d", model.NumDocs(), coll.Size())
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.BatchTick <= 0 {
		cfg.BatchTick = 2 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.IVFRebuildFraction == 0 {
		cfg.IVFRebuildFraction = 0.25
	}
	if cfg.DisableScreening {
		cfg.DisableIVF = true // the index lives on the mirror
	}
	e := &Engine{
		cfg:       cfg,
		coll:      coll,
		queue:     make(chan submission, cfg.QueueSize),
		ops:       make(chan func(), 4),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		rowOf:     make(map[string]int, coll.Size()),
		deadRows:  make(map[int]struct{}),
		compactCh: make(chan compactResult, 1),
		ivfCh:     make(chan ivfResult, 1),
	}
	docs := append([]corpus.Document(nil), coll.Docs...)
	for _, row := range cfg.RestoredDead {
		if row < 0 || row >= len(docs) {
			return nil, fmt.Errorf("engine: restored dead row %d outside [0, %d)", row, len(docs))
		}
		e.deadRows[row] = struct{}{}
	}
	for i, d := range docs {
		// A tombstoned row's ID was released at delete time — and may since
		// have been resubmitted as a live row — so dead rows must not claim
		// a registry entry.
		if _, dead := e.deadRows[i]; dead {
			continue
		}
		e.rowOf[d.ID] = i
	}
	e.nextID = len(docs)
	if cfg.RestoredNextID > 0 {
		e.nextID = cfg.RestoredNextID
	}
	if model.FoldedDocs() == 0 && model.FoldedTerms() == 0 {
		e.base = model
	} else if cfg.CompactThreshold > 0 {
		cfg.Logf("engine: model contains folded rows; automatic compaction disabled")
	}
	eng := cfg.Prebuilt
	if eng == nil {
		eng = e.newRankEngine(model.V)
	} else if eng.NumDocs() != model.NumDocs() {
		return nil, fmt.Errorf("engine: prebuilt cache has %d docs, model %d", eng.NumDocs(), model.NumDocs())
	}
	if !cfg.DisableIVF {
		if _, _, indexed := eng.IVF(); !indexed {
			// The initial index builds synchronously: the engine is not
			// serving yet, and starting with an indexed snapshot means the
			// very first query already prunes. A prebuilt cache restored
			// with its index skips this — that skip (plus skipping the SVD)
			// is what makes -load-model startup O(1) in corpus size.
			if with := eng.BuildIVF(e.ivfConfig()); with != eng {
				eng = with
				e.ivfRebuilds.Add(1)
			}
		}
	}
	gen := uint64(1)
	if cfg.InitialGen > 0 {
		gen = cfg.InitialGen
	}
	e.snap.Store(&Snapshot{Gen: gen, Model: model, Eng: eng, Docs: docs,
		Dead: deadSkip(len(docs), e.deadRows), counters: &e.counters})
	go e.run()
	return e, nil
}

// ivfConfig maps the engine config onto the rank-layer build knobs.
func (e *Engine) ivfConfig() rank.IVFConfig {
	return rank.IVFConfig{
		Clusters: e.cfg.IVFClusters,
		NProbe:   e.cfg.IVFNProbe,
		MinRows:  e.cfg.IVFMinRows,
	}
}

// newRankEngine builds a scoring cache for freshly computed document
// coordinates, honoring the screening opt-out. Fold-in extensions go
// through rank.Engine.Extend instead, which preserves whichever mode the
// chain started with.
func (e *Engine) newRankEngine(v *dense.Matrix) *rank.Engine {
	if e.cfg.DisableScreening {
		return rank.NewEngineExact(v)
	}
	return rank.NewEngine(v)
}

// Snapshot returns the current serving snapshot: one atomic load, no
// locks, safe to use for the rest of the request even while newer
// snapshots are published.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Stats reports pipeline state for monitoring.
func (e *Engine) Stats() Stats {
	s := e.Snapshot()
	st := Stats{
		Generation:        s.Gen,
		QueueDepth:        len(e.queue),
		Compactions:       e.compactions.Load(),
		Compacting:        e.compacting.Load(),
		Documents:         s.LiveDocs(),
		FoldedDocuments:   s.Model.FoldedDocs(),
		Tombstones:        s.Tombstones(),
		Screening:         s.Eng.Screening(),
		MirrorMaxEps:      s.Eng.MirrorMaxEps(),
		IVFRebuilds:       e.ivfRebuilds.Load(),
		Queries:           e.counters.queries.Load(),
		RescoreCandidates: e.counters.rescored.Load(),
		ClustersScanned:   e.counters.clustersScanned.Load(),
		ScannedRows:       e.counters.scannedRows.Load(),
	}
	if clusters, rows, ok := s.Eng.IVF(); ok {
		st.IVFClusters = clusters
		st.IVFUnclusteredTail = s.Eng.NumDocs() - rows
	}
	return st
}

// Submit queues one document for fold-in and waits for the batch that
// contains it to be published, returning the (possibly auto-assigned)
// document ID. A full queue fails immediately with ErrQueueFull. If ctx
// expires while waiting, Submit returns ctx.Err() — but the document has
// been accepted and will still be folded in (and drained on Close).
func (e *Engine) Submit(ctx context.Context, doc corpus.Document) (string, error) {
	sub := submission{doc: doc, reply: make(chan submitResult, 1)}
	if err := e.enqueue(sub); err != nil {
		return "", err
	}
	select {
	case res := <-sub.reply:
		return res.id, res.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// Delete queues a tombstone for the named document and waits for the
// batch that applies it. Once applied the document is invisible to every
// query and /stats count; its physical row is folded out of the model at
// the next compaction. Deleting an unknown (or already deleted) ID
// returns ErrUnknownID. Deletes share the fold-in queue, so submit and
// delete of the same ID apply in submission order, and a deleted ID can
// be resubmitted as a fresh document. If ctx expires while waiting, the
// delete has been accepted and will still apply.
func (e *Engine) Delete(ctx context.Context, id string) error {
	sub := submission{doc: corpus.Document{ID: id}, del: true, reply: make(chan submitResult, 1)}
	if err := e.enqueue(sub); err != nil {
		return err
	}
	select {
	case res := <-sub.reply:
		return res.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enqueue places a submission on the queue under the read side of
// closeMu, so it can never race past Close's final drain.
func (e *Engine) enqueue(sub submission) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.queue <- sub:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops accepting submissions, drains every queued fold-in, waits
// for an in-flight compaction to land, and shuts the updater down. It is
// idempotent; ctx bounds the wait.
func (e *Engine) Close(ctx context.Context) error {
	e.closeMu.Lock()
	already := e.closed
	e.closed = true
	e.closeMu.Unlock()
	if !already {
		close(e.stop)
	}
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the single updater goroutine: the only mutator of serving state.
func (e *Engine) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.BatchTick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.applyBatch(e.drainQueue())
		case fn := <-e.ops:
			fn()
		case res := <-e.compactCh:
			e.finishCompaction(res)
		case res := <-e.ivfCh:
			e.finishIVFBuild(res)
		case <-e.stop:
			// Final drain: Close holds closeMu exclusively before
			// signalling, so nothing can be added behind this drain.
			e.applyBatch(e.drainQueue())
			e.drainOps()
			// An internally launched compaction always posts its result;
			// an external one never will (its owner is the router, which
			// sees ErrClosed from FinishExternalCompaction instead).
			if e.compacting.Load() && !e.external {
				e.finishCompaction(<-e.compactCh)
			}
			if e.ivfBuilding.Load() {
				e.finishIVFBuild(<-e.ivfCh)
			}
			return
		}
	}
}

// drainOps runs every queued control request without blocking — the
// shutdown path's guarantee that an accepted op either runs or its
// sender observes ErrClosed, never silence.
func (e *Engine) drainOps() {
	for {
		select {
		case fn := <-e.ops:
			fn()
		default:
			return
		}
	}
}

// onUpdater runs fn on the updater goroutine and waits for it to finish.
// Returns ErrClosed when the engine shut down before fn could run.
func (e *Engine) onUpdater(fn func()) error {
	ran := make(chan struct{})
	select {
	case e.ops <- func() { fn(); close(ran) }:
	case <-e.done:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-e.done:
		// The updater exited after accepting the op; its final drain runs
		// everything still queued, so check once more before reporting.
		select {
		case <-ran:
			return nil
		default:
			return ErrClosed
		}
	}
}

// drainQueue empties the queue without blocking; items stay in the
// channel between ticks so queue-full backpressure is honest.
func (e *Engine) drainQueue() []submission {
	var batch []submission
	for {
		select {
		case sub := <-e.queue:
			batch = append(batch, sub)
		default:
			return batch
		}
	}
}

// deadSkip builds the published tombstone set for n rows; nil when there
// are no tombstones, so the delete-free read path stays on the unskipped
// kernels.
func deadSkip(n int, dead map[int]struct{}) rank.Skip {
	if len(dead) == 0 {
		return nil
	}
	s := rank.NewSkip(n)
	for r := range dead {
		s.Set(r)
	}
	return s
}

// applyBatch validates a batch in queue order — fold-ins and deletes
// interleaved exactly as submitted — folds the accepted documents into a
// copy-on-write clone of the current model as one FoldInDocs call, builds
// the successor tombstone set, publishes the successor snapshot, and
// acknowledges every submitter.
func (e *Engine) applyBatch(batch []submission) {
	if len(batch) == 0 {
		return
	}
	cur := e.snap.Load()
	oldN := cur.NumDocs()
	accepted := make([]corpus.Document, 0, len(batch))
	replies := make([]submission, 0, len(batch))
	deleted := 0
	for _, sub := range batch {
		if sub.del {
			row, ok := e.rowOf[sub.doc.ID]
			if !ok {
				sub.reply <- submitResult{err: fmt.Errorf("%w: %q", ErrUnknownID, sub.doc.ID)}
				continue
			}
			// The row stays physically in place (a doc accepted earlier in
			// this very batch included — it still folds in below) but is
			// tombstoned before the successor snapshot publishes, and the ID
			// is released so it can be resubmitted.
			delete(e.rowOf, sub.doc.ID)
			e.deadRows[row] = struct{}{}
			deleted++
			replies = append(replies, sub)
			continue
		}
		id := sub.doc.ID
		if id == "" {
			// Auto-assigned IDs skip over anything a user already took, so
			// they can never collide with an explicit ID.
			for {
				id = fmt.Sprintf("doc-%d", e.nextID)
				e.nextID++
				if _, taken := e.rowOf[id]; !taken {
					break
				}
			}
		} else if _, dup := e.rowOf[id]; dup {
			sub.reply <- submitResult{err: fmt.Errorf("%w: %q", ErrDuplicateID, id)}
			continue
		}
		// Row assignment is eager so a delete later in the same batch can
		// resolve this document.
		e.rowOf[id] = oldN + len(accepted)
		accepted = append(accepted, corpus.Document{ID: id, Text: sub.doc.Text})
		sub.doc.ID = id
		replies = append(replies, sub)
	}
	if len(accepted) > 0 {
		next := cur.Model.SharedClone()
		next.FoldInDocs(e.coll.DocVectors(accepted))
		eng := cur.Eng.Extend(next.V.Slice(oldN, next.NumDocs(), 0, next.V.Cols))
		docs := append(cur.Docs, accepted...)
		e.snap.Store(&Snapshot{Gen: cur.Gen + 1, Model: next, Eng: eng, Docs: docs,
			Dead: deadSkip(len(docs), e.deadRows), counters: &e.counters})
		e.pending = append(e.pending, accepted...)
	} else if deleted > 0 {
		// Pure-delete batch: same model and cache, new tombstone set.
		e.snap.Store(&Snapshot{Gen: cur.Gen + 1, Model: cur.Model, Eng: cur.Eng, Docs: cur.Docs,
			Dead: deadSkip(oldN, e.deadRows), counters: &e.counters})
	}
	if len(accepted) > 0 || deleted > 0 {
		// New rows or new tombstones change the downdate geometry; a
		// previously degenerate fold-out may be feasible now.
		e.deadStuck = false
	}
	for _, sub := range replies {
		sub.reply <- submitResult{id: sub.doc.ID}
	}
	e.maybeCompact()
	e.maybeRebuildIVF()
}

// maybeRebuildIVF launches a background cluster-index rebuild when the
// unclustered tail — rows appended since the last (re)build, which every
// query must scan — has grown past the configured fraction of the
// collection. At most one build runs at a time; it reads only rows below
// the captured engine's own length, which are immutable, so fold-ins and
// reads proceed untouched while it runs. A stale index is a performance
// matter only (the tail is always scanned), so there is no urgency
// anywhere in this path.
func (e *Engine) maybeRebuildIVF() {
	if e.cfg.DisableIVF || e.cfg.IVFRebuildFraction < 0 || e.ivfBuilding.Load() {
		return
	}
	select {
	case <-e.stop: // shutting down: don't start work nobody will serve
		return
	default:
	}
	eng := e.snap.Load().Eng
	n := eng.NumDocs()
	minRows := e.cfg.IVFMinRows
	if minRows <= 0 {
		minRows = rank.DefaultIVFMinRows
	}
	if n < minRows {
		return
	}
	_, clusteredRows, ok := eng.IVF()
	tail := n - clusteredRows
	if ok && float64(tail) <= e.cfg.IVFRebuildFraction*float64(n) {
		return
	}
	cfg := e.ivfConfig()
	epoch := e.coordsEpoch
	e.ivfBuilding.Store(true)
	go func() {
		e.ivfCh <- ivfResult{idx: eng.BuildIVFIndex(cfg), epoch: epoch}
	}()
}

// finishIVFBuild attaches a landed background index build to the current
// snapshot and publishes the result. Builds from a previous coordinate
// epoch (a compaction landed while they ran) are discarded — the rows
// they clustered no longer exist in that form.
func (e *Engine) finishIVFBuild(res ivfResult) {
	e.ivfBuilding.Store(false)
	if res.epoch != e.coordsEpoch {
		// A compaction landed while this build ran, so the rows it
		// clustered no longer exist in that coordinate frame. The
		// post-compaction trigger was a no-op while this build was marked
		// in flight, so the re-check here is what gets the fresh epoch its
		// index when no further fold-in arrives.
		e.maybeRebuildIVF()
		return
	}
	if res.idx == nil {
		return
	}
	cur := e.snap.Load()
	// The build's source engine is an ancestor of cur.Eng in the same
	// append-only chain (no compaction this epoch), so the index's row
	// prefix is intact and rows beyond it form the new unclustered tail.
	eng := cur.Eng.WithIVFIndex(res.idx)
	e.snap.Store(&Snapshot{Gen: cur.Gen + 1, Model: cur.Model, Eng: eng, Docs: cur.Docs, counters: &e.counters})
	e.ivfRebuilds.Add(1)
	// Fold-ins that landed while the build ran may already exceed the
	// tail threshold again.
	e.maybeRebuildIVF()
}

// freezeDead splits the current tombstones along the frozen prefix:
// ascending dead base rows, a dead mask over the frozen pending entries.
// Rows tombstoned after the freeze are outside both and survive the
// compaction (remapped, still dead) to be resolved next cycle.
func (e *Engine) freezeDead() (deadBase []int, deadPending []bool) {
	baseN := e.base.NumDocs()
	deadPending = make([]bool, len(e.pending))
	for row := range e.deadRows {
		if row < baseN {
			deadBase = append(deadBase, row)
		} else {
			deadPending[row-baseN] = true
		}
	}
	sort.Ints(deadBase)
	return deadBase, deadPending
}

// liveRows returns the ascending complement of dead within [0, n).
func liveRows(n int, dead []int) []int {
	live := make([]int, 0, n-len(dead))
	j := 0
	for i := 0; i < n; i++ {
		if j < len(dead) && dead[j] == i {
			j++
			continue
		}
		live = append(live, i)
	}
	return live
}

// maybeCompact launches an SVD-update compaction when the published
// model's orthogonality loss exceeds the threshold, or when tombstones
// can be folded out: dead pending entries are dropped from the update
// and dead base rows are removed by a downdate (core.DowndateDocs) when
// enough live rows remain for one. At most one compaction runs at a
// time; it works from the immutable base model and a frozen copy of the
// pending fold-ins, so reads and further fold-ins proceed untouched
// while it runs.
func (e *Engine) maybeCompact() {
	if e.cfg.CompactThreshold <= 0 || e.base == nil || e.compacting.Load() {
		return
	}
	select {
	case <-e.stop: // shutting down: don't start work nobody will serve
		return
	default:
	}
	e.tryLaunchCompaction(false)
}

// tryLaunchCompaction freezes the compaction inputs and launches the
// background update when there is work: fold-ins to absorb (past the
// orthogonality threshold unless force), or tombstones to resolve.
// Returns whether a compaction was launched. Updater-goroutine only;
// the caller has already established base != nil and !compacting.
func (e *Engine) tryLaunchCompaction(force bool) bool {
	deadBase, deadPending := e.freezeDead()
	anyDeadPending := false
	for _, d := range deadPending {
		anyDeadPending = anyDeadPending || d
	}
	baseN := e.base.NumDocs()
	canDowndate := len(deadBase) > 0 && !e.deadStuck && baseN-len(deadBase) >= len(e.base.S)
	needOrth := len(e.pending) > 0 &&
		(force || e.snap.Load().Model.DocOrthogonality() > e.cfg.CompactThreshold)
	if !canDowndate && !anyDeadPending && !needOrth {
		return false
	}
	base := e.base.SharedClone()
	livePend := make([]corpus.Document, 0, len(e.pending))
	for i, doc := range e.pending {
		if !deadPending[i] {
			livePend = append(livePend, doc)
		}
	}
	var d *sparse.CSR
	if len(livePend) > 0 {
		d = e.coll.DocVectors(livePend)
	}
	count := len(e.pending)
	opts := core.UpdateOptions{Strategy: e.cfg.CompactionStrategy, GKRank: e.cfg.GKRank}
	live := liveRows(baseN, deadBase)
	e.frozen = &frozenCompaction{baseN: baseN, pendingCount: count, deadBase: deadBase, deadPending: deadPending}
	e.compacting.Store(true)
	go func() {
		res := compactResult{model: base, count: count}
		if canDowndate {
			switch err := base.DowndateDocs(live); {
			case err == nil:
				res.downdated = true
			case errors.Is(err, core.ErrDowndateDegenerate):
				// Keep the dead rows tombstoned; the update below still runs
				// on the full base.
			default:
				res.err = err
			}
		}
		if res.err == nil && d != nil {
			res.err = base.UpdateDocsOpts(d, opts)
		}
		e.compactCh <- res
	}()
	return true
}

// CompactNow forces a compaction regardless of the orthogonality
// threshold and waits for it to land: every pending fold-in is absorbed
// into the SVD base and tombstones are folded out where the downdate is
// feasible. On a quiesced engine the published model afterwards has
// FoldedDocs() == 0, which is what lets a snapshot restore recover an
// SVD base (and re-enable automatic compaction) — the -save-model path
// calls this before persisting. Returns nil with no work done when the
// model is already compact, ErrNoBase when the engine has no SVD base,
// ErrCompactionActive when a compaction (internal or external) is
// already in flight.
func (e *Engine) CompactNow(ctx context.Context) error {
	done := make(chan error, 1)
	var launched bool
	var err error
	if opErr := e.onUpdater(func() {
		switch {
		case e.base == nil:
			err = ErrNoBase
		case e.compacting.Load():
			err = ErrCompactionActive
		default:
			if launched = e.tryLaunchCompaction(true); launched {
				e.compactWaiters = append(e.compactWaiters, done)
			}
		}
	}); opErr != nil {
		return opErr
	}
	if err != nil || !launched {
		return err
	}
	select {
	case res := <-done:
		return res
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FreezeForSnapshot captures, in one updater turn, the serving snapshot
// together with the updater-private auto-ID counter — the pair a
// persistent snapshot needs to be mutually consistent. The engine keeps
// serving; callers wanting a quiesced capture stop submitting first.
func (e *Engine) FreezeForSnapshot() (*Snapshot, int, error) {
	var snap *Snapshot
	var nextID int
	if err := e.onUpdater(func() {
		snap = e.snap.Load()
		nextID = e.nextID
	}); err != nil {
		return nil, 0, err
	}
	return snap, nextID, nil
}

// ExternalCompaction is the frozen per-engine state a coordinated
// (router-driven) compaction works from: the last pure-SVD base, the
// documents its V rows describe, and everything folded in since. The
// engine keeps serving — and keeps folding — while the owner computes;
// documents that arrive in the meantime are reconciled by
// FinishExternalCompaction exactly like the internal path.
type ExternalCompaction struct {
	// Base is a copy-on-write clone of the last pure-SVD model
	// (FoldedDocs() == 0); safe to read while the engine keeps serving.
	Base *core.Model
	// BaseDocs lists the documents Base's V rows describe, in row order.
	BaseDocs []corpus.Document
	// Pending lists the documents folded in since Base, in fold order —
	// the docs the coordinated plan must absorb (except those marked dead
	// in DeadPending, which are dropped).
	Pending []corpus.Document
	// DeadBaseRows lists tombstoned rows of Base in ascending order. The
	// owner folds them out with a global downdate plan when feasible and
	// reports the outcome through FinishExternalCompaction's downdated
	// flag; rows left in place stay tombstoned.
	DeadBaseRows []int
	// DeadPending marks Pending entries already deleted: the plan must
	// exclude them (their rows are dropped, never absorbed).
	DeadPending []bool
}

// External-compaction error sentinels.
var (
	// ErrCompactionActive means a compaction (internal or external) is
	// already in flight.
	ErrCompactionActive = errors.New("engine: compaction already in flight")
	// ErrNoBase means the engine has no pure-SVD base to update from (its
	// initial model already contained folded rows).
	ErrNoBase = errors.New("engine: no SVD base to compact from")
	// ErrNotCompacting means Finish/Abort was called with no external
	// compaction in flight.
	ErrNotCompacting = errors.New("engine: no external compaction in flight")
)

// BeginExternalCompaction freezes the engine's compaction inputs and
// marks a compaction in flight, blocking the internal trigger until
// FinishExternalCompaction or AbortExternalCompaction. The engine keeps
// serving and folding throughout; only one compaction (of either kind)
// may be active.
func (e *Engine) BeginExternalCompaction() (*ExternalCompaction, error) {
	var st *ExternalCompaction
	var err error
	if opErr := e.onUpdater(func() {
		switch {
		case e.base == nil:
			err = ErrNoBase
		case e.compacting.Load():
			err = ErrCompactionActive
		default:
			e.compacting.Store(true)
			e.external = true
			deadBase, deadPending := e.freezeDead()
			e.frozen = &frozenCompaction{
				baseN:        e.base.NumDocs(),
				pendingCount: len(e.pending),
				deadBase:     deadBase,
				deadPending:  deadPending,
			}
			docs := e.snap.Load().Docs
			st = &ExternalCompaction{
				Base:         e.base.SharedClone(),
				BaseDocs:     docs[:e.base.NumDocs()],
				Pending:      append([]corpus.Document(nil), e.pending...),
				DeadBaseRows: deadBase,
				DeadPending:  deadPending,
			}
		}
	}); opErr != nil {
		return nil, opErr
	}
	return st, err
}

// FinishExternalCompaction lands an externally computed compaction:
// model must be the frozen Base with exactly the frozen live Pending
// docs absorbed (FoldedDocs() == 0, absorbed = len(Pending) — dead
// entries count as resolved, not folded) and, when downdated is true,
// the frozen DeadBaseRows folded out. Reconciliation matches the
// internal path — documents folded (or deleted) while the owner computed
// are re-folded onto the new base and the result is published as the
// next generation.
func (e *Engine) FinishExternalCompaction(model *core.Model, absorbed int, downdated bool) error {
	var err error
	if opErr := e.onUpdater(func() {
		if !e.external {
			err = ErrNotCompacting
			return
		}
		e.external = false
		e.finishCompaction(compactResult{model: model, count: absorbed, downdated: downdated})
	}); opErr != nil {
		return opErr
	}
	return err
}

// AbortExternalCompaction releases the in-flight marker without
// publishing anything — the owner failed or shut down mid-plan. A no-op
// when no external compaction is active or the engine already closed.
func (e *Engine) AbortExternalCompaction() {
	_ = e.onUpdater(func() {
		if e.external {
			e.external = false
			e.frozen = nil
			e.compacting.Store(false)
		}
	})
}

// QueueCapacity reports the fold-in queue's capacity — the denominator
// for per-shard backpressure accounting (Retry-After estimation).
func (e *Engine) QueueCapacity() int { return cap(e.queue) }

// finishCompaction reconciles a landed compaction with whatever folded in
// (or died) while it ran: resolved rows — downdated dead base rows and
// dropped dead pending entries — leave the document list, every surviving
// row is remapped to its compacted index, documents beyond the compacted
// prefix are re-folded onto the fresh base, and the result is published
// as the next generation.
func (e *Engine) finishCompaction(res compactResult) {
	e.compacting.Store(false)
	fr := e.frozen
	e.frozen = nil
	// Wake CompactNow callers with the outcome, success or failure; the
	// channels are buffered so an abandoned waiter cannot block the
	// updater.
	for _, ch := range e.compactWaiters {
		ch <- res.err
	}
	e.compactWaiters = nil
	if res.err != nil {
		// Should be unreachable (the base is unfolded by construction);
		// keep serving the folded snapshots and leave pending intact.
		e.cfg.Logf("engine: compaction failed: %v", res.err)
		return
	}
	if fr == nil {
		// Defensive: a finish without a freeze record (hand-driven tests
		// landing a plain update) behaves like a delete-free compaction.
		fr = &frozenCompaction{baseN: e.base.NumDocs(), pendingCount: res.count,
			deadPending: make([]bool, res.count)}
	}
	if len(fr.deadBase) > 0 && !res.downdated {
		// The fold-out didn't happen (downdate degenerate); don't relaunch
		// until a batch changes the geometry.
		e.deadStuck = true
	}
	cur := e.snap.Load()
	// Remap old serving rows to compacted rows: −1 for rows the compaction
	// resolved (downdated base rows, dropped dead pending entries);
	// everything else keeps its relative order.
	newRow := make([]int, cur.NumDocs())
	next := 0
	db, fp := 0, fr.baseN
	for old := range newRow {
		switch {
		case old < fr.baseN && res.downdated && db < len(fr.deadBase) && fr.deadBase[db] == old:
			db++
			newRow[old] = -1
		case old >= fr.baseN && old < fp+fr.pendingCount && fr.deadPending[old-fr.baseN]:
			newRow[old] = -1
		default:
			newRow[old] = next
			next++
		}
	}
	docs := make([]corpus.Document, 0, next)
	for old, d := range cur.Docs {
		if newRow[old] >= 0 {
			docs = append(docs, d)
		}
	}
	for id, old := range e.rowOf {
		e.rowOf[id] = newRow[old]
	}
	// Tombstones the compaction resolved disappear; deaths after the
	// freeze survive remapped and are folded out next cycle.
	dead := make(map[int]struct{}, len(e.deadRows))
	for old := range e.deadRows {
		if nr := newRow[old]; nr >= 0 {
			dead[nr] = struct{}{}
		}
	}
	e.deadRows = dead
	leftover := append([]corpus.Document(nil), e.pending[res.count:]...)
	serving := res.model.SharedClone()
	if len(leftover) > 0 {
		serving.FoldInDocs(e.coll.DocVectors(leftover))
	}
	// Compaction rotated every document coordinate, so the scoring cache
	// is rebuilt rather than extended — and the coordinate epoch advances,
	// invalidating any in-flight cluster-index build against the old
	// coordinates. The fresh cache starts unindexed; the rebuild trigger
	// below sees a 100% unclustered tail and starts a background build.
	e.coordsEpoch++
	e.snap.Store(&Snapshot{Gen: cur.Gen + 1, Model: serving, Eng: e.newRankEngine(serving.V), Docs: docs,
		Dead: deadSkip(len(docs), e.deadRows), counters: &e.counters})
	e.base = res.model
	e.pending = leftover
	e.compactions.Add(1)
	// The leftover fold-ins may already exceed the threshold again — and
	// post-freeze deaths may already justify another fold-out.
	e.maybeCompact()
	e.maybeRebuildIVF()
}
