package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
)

// TestExternalCompactionLifecycle drives the router-facing protocol by
// hand: freeze, compute the update with the same core plan machinery the
// shard router uses, land it, and check the published snapshot matches a
// direct single-model UpdateDocs byte for byte.
func TestExternalCompactionLifecycle(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	texts := []string{
		"generation of behavioural changes after oestrogen blood levels rise",
		"fast generation of random close packing of spheres",
	}
	for _, tx := range texts {
		if _, err := e.Submit(ctx, corpus.Document{Text: tx}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := e.BeginExternalCompaction()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pending) != 2 || st.Base.NumDocs() != 14 || len(st.BaseDocs) != 14 {
		t.Fatalf("frozen state: %d pending, base %d docs, %d base docs",
			len(st.Pending), st.Base.NumDocs(), len(st.BaseDocs))
	}
	// Second begin must refuse while one is in flight.
	if _, err := e.BeginExternalCompaction(); !errors.Is(err, ErrCompactionActive) {
		t.Fatalf("concurrent begin: %v", err)
	}

	// Reference: the same update on a plain clone.
	ref := st.Base.SharedClone()
	if err := ref.UpdateDocs(coll.DocVectors(st.Pending)); err != nil {
		t.Fatal(err)
	}

	// External: plan + single-block application (one "shard" owning all
	// rows) — the degenerate case of the distributed protocol.
	plan, err := st.Base.PlanDocsUpdate(coll.DocVectors(st.Pending))
	if err != nil {
		t.Fatal(err)
	}
	rot := plan.RotateDocs(st.Base.V)
	n, p := rot.Rows, plan.VNew.Rows
	ords := make([]int64, n+p)
	for i := range ords {
		ords[i] = int64(i)
	}
	flip := core.CombineSignFlips(
		core.SignCandidates(rot, ords[:n]),
		core.SignCandidates(plan.VNew, ords[n:]),
	)
	plan.ApplySigns(flip)
	dense.FlipColumns(rot, flip)
	model := plan.Apply(st.Base, rot.AugmentRows(plan.VNew))

	before := e.Snapshot().Gen
	if err := e.FinishExternalCompaction(model, len(st.Pending), false); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Gen <= before {
		t.Fatalf("generation did not advance: %d -> %d", before, snap.Gen)
	}
	if snap.Model.FoldedDocs() != 0 {
		t.Fatalf("folded docs after compaction: %d", snap.Model.FoldedDocs())
	}
	if got := e.Stats(); got.Compactions != 1 || got.Compacting {
		t.Fatalf("stats after finish: %+v", got)
	}
	for j := 0; j < ref.NumDocs(); j++ {
		a, b := snap.Model.V.Row(j), ref.V.Row(j)
		for c := range a {
			if math.Float64bits(a[c]) != math.Float64bits(b[c]) {
				t.Fatalf("row %d col %d: external %v != reference %v", j, c, a[c], b[c])
			}
		}
	}
	// A second round must start from the new base.
	st2, err := e.BeginExternalCompaction()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Pending) != 0 || st2.Base.NumDocs() != 16 {
		t.Fatalf("second freeze: %d pending, base %d docs", len(st2.Pending), st2.Base.NumDocs())
	}
	e.AbortExternalCompaction()
	if got := e.Stats(); got.Compacting {
		t.Fatal("still compacting after abort")
	}
}

// TestCloseDuringExternalCompactionDoesNotHang: shutdown must not wait
// on a compaction result that only the (external) owner could deliver.
func TestCloseDuringExternalCompactionDoesNotHang(t *testing.T) {
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(coll, model, Config{BatchTick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), corpus.Document{Text: "rats rise"}); err != nil {
		t.Fatal(err)
	}
	st, err := e.BeginExternalCompaction()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("close hung or failed: %v", err)
	}
	// The owner's finish now reports closed instead of publishing.
	if err := e.FinishExternalCompaction(st.Base, 0, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("finish after close: %v", err)
	}
}
