package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/weight"
)

// strategyTable is the shared parity surface: every strategy test runs
// over exactly these configurations.
var strategyTable = []struct {
	name     string
	strategy core.UpdateStrategy
	gkRank   int
}{
	{"obrien", core.StrategyOBrien, 0},
	{"gk", core.StrategyGK, 16},
}

// TestEngineStrategyParitySuite is the shared end-to-end parity suite for
// the two compaction strategies: the same submit/delete script runs under
// each, churning through repeated compactions (fold-ins absorbed, deleted
// rows downdated out), and the resulting engines are judged on the eval
// harness — mean average precision over the synthetic corpus's relevance
// judgments — against a full truncated-SVD recompute of the final live
// corpus. Both strategies must stay within tolerance of the recompute and
// of each other, and each published generation must answer repeated
// queries byte-identically.
func TestEngineStrategyParitySuite(t *testing.T) {
	syn := corpus.GenerateSynth(corpus.SynthOptions{Seed: 9, Docs: 160, Topics: 8})
	coll := syn.Collection
	n := coll.Size()
	cut := n * 3 / 4
	idx := make([]int, cut)
	for i := range idx {
		idx[i] = i
	}
	baseColl := coll.Subset(idx)
	const k = 20

	origIdx := make(map[string]int, n)
	for j, d := range coll.Docs {
		origIdx[d.ID] = j
	}
	// The script: fold in the held-out quarter, then delete a spread of
	// base docs (downdate path) and folded docs (drop path).
	var deleted []string
	for i := 0; i < cut; i += 15 {
		deleted = append(deleted, coll.Docs[i].ID)
	}
	for i := cut; i < n; i += 10 {
		deleted = append(deleted, coll.Docs[i].ID)
	}
	isDeleted := make(map[string]bool, len(deleted))
	for _, id := range deleted {
		isDeleted[id] = true
	}

	levels := []float64{0.25, 0.5, 0.75}
	mapOf := func(rank func(q string) []int) float64 {
		var rankings [][]int
		var rels []map[int]bool
		for _, q := range syn.Queries {
			rankings = append(rankings, rank(q.Text))
			rels = append(rels, eval.RelevantSet(q.Relevant))
		}
		return eval.MeanAveragePrecision(rankings, rels, levels)
	}

	maps := make(map[string]float64, len(strategyTable))
	for _, tc := range strategyTable {
		t.Run(tc.name, func(t *testing.T) {
			model, err := core.BuildCollection(baseColl, core.Config{K: k, Scheme: weight.LogEntropy})
			if err != nil {
				t.Fatal(err)
			}
			e, err := New(baseColl, model, Config{
				BatchTick:          time.Millisecond,
				CompactThreshold:   1e-9, // every fold crosses it: maximum churn
				CompactionStrategy: tc.strategy,
				GKRank:             tc.gkRank,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := e.Close(ctx); err != nil {
					t.Errorf("close: %v", err)
				}
			})
			ctx := context.Background()
			for _, d := range coll.Docs[cut:] {
				if _, err := e.Submit(ctx, d); err != nil {
					t.Fatalf("submit %s: %v", d.ID, err)
				}
			}
			for _, id := range deleted {
				if err := e.Delete(ctx, id); err != nil {
					t.Fatalf("delete %s: %v", id, err)
				}
			}
			deadline := time.Now().Add(15 * time.Second)
			for {
				st := e.Stats()
				if st.Compactions >= 2 && !st.Compacting && st.QueueDepth == 0 &&
					st.FoldedDocuments == 0 && st.Tombstones == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no quiescent compacted state; stats %+v", st)
				}
				time.Sleep(time.Millisecond)
			}
			s := e.Snapshot()
			if s.NumDocs() != n-len(deleted) {
				t.Fatalf("%d docs want %d", s.NumDocs(), n-len(deleted))
			}
			for j := 0; j < s.NumDocs(); j++ {
				if isDeleted[s.Doc(j).ID] {
					t.Fatalf("deleted doc %s survived the script", s.Doc(j).ID)
				}
			}
			if o := s.Model.DocOrthogonality(); o > 1e-6 {
				t.Fatalf("orthogonality %g after compaction", o)
			}
			// Per-generation byte-stability: the same snapshot answers the
			// same query identically, run to run.
			qv := baseColl.QueryVector(syn.Queries[0].Text)
			if a, b := s.RankTop(qv, 20), s.RankTop(qv, 20); !reflect.DeepEqual(a, b) {
				t.Fatal("same-generation results diverged")
			}
			maps[tc.name] = mapOf(func(q string) []int {
				ranked := s.RankTop(baseColl.QueryVector(q), s.NumDocs())
				out := make([]int, len(ranked))
				for i, r := range ranked {
					out[i] = origIdx[s.Doc(r.Doc).ID]
				}
				return out
			})
		})
	}
	if t.Failed() {
		return
	}

	// The truncated-SVD reference: a full recompute over exactly the live
	// documents the script left behind.
	var liveIdx []int
	for j, d := range coll.Docs {
		if !isDeleted[d.ID] {
			liveIdx = append(liveIdx, j)
		}
	}
	liveColl := coll.Subset(liveIdx)
	full, err := core.BuildCollection(liveColl, core.Config{K: k, Scheme: weight.LogEntropy})
	if err != nil {
		t.Fatal(err)
	}
	mFull := mapOf(func(q string) []int {
		ranked := full.Rank(liveColl.QueryVector(q))
		out := make([]int, len(ranked))
		for i, r := range ranked {
			out[i] = origIdx[liveColl.Docs[r.Doc].ID]
		}
		return out
	})
	t.Logf("MAP: obrien %.4f gk %.4f full recompute %.4f", maps["obrien"], maps["gk"], mFull)
	for name, m := range maps {
		if m < mFull-0.05 {
			t.Errorf("%s MAP %.4f more than 0.05 below full recompute %.4f", name, m, mFull)
		}
	}
	if d := maps["obrien"] - maps["gk"]; d > 0.03 || d < -0.03 {
		t.Errorf("strategy MAPs diverge: obrien %.4f vs gk %.4f", maps["obrien"], maps["gk"])
	}
}

// TestStressStrategyChurn runs interleaved submit/delete/query traffic
// under each compaction strategy with the race detector's help, requiring
// at least two compactions per strategy before the pipeline settles.
func TestStressStrategyChurn(t *testing.T) {
	for _, tc := range strategyTable {
		t.Run(tc.name, func(t *testing.T) {
			e, coll := testEngine(t, Config{
				QueueSize:          1024,
				BatchTick:          200 * time.Microsecond,
				CompactThreshold:   1e-9,
				CompactionStrategy: tc.strategy,
				GKRank:             tc.gkRank,
			})
			const writers = 30
			toDelete := make(chan string, writers)
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				defer close(toDelete)
				ctx := context.Background()
				for i := 0; i < writers; i++ {
					id := fmt.Sprintf("W%d", i)
					if _, err := e.Submit(ctx, corpus.Document{ID: id, Text: fmt.Sprintf("glucose culture pressure %d", i)}); err != nil {
						t.Errorf("submit %d: %v", i, err)
						return
					}
					if i%3 == 0 {
						toDelete <- id
					}
				}
			}()
			deleted := 0
			deleterDone := make(chan struct{})
			go func() {
				defer close(deleterDone)
				ctx := context.Background()
				for id := range toDelete {
					if err := e.Delete(ctx, id); err != nil {
						t.Errorf("delete %s: %v", id, err)
						return
					}
					deleted++
				}
			}()
			var wg sync.WaitGroup
			query := coll.QueryVector("glucose culture")
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 80; i++ {
						s := e.Snapshot()
						for _, r := range s.RankTop(query, 8) {
							if s.Dead.Has(r.Doc) {
								t.Errorf("tombstoned row %d surfaced", r.Doc)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			<-writerDone
			<-deleterDone
			deadline := time.Now().Add(10 * time.Second)
			for {
				st := e.Stats()
				if st.Documents == 14+writers-deleted && st.Tombstones == 0 && !st.Compacting &&
					st.QueueDepth == 0 && st.Compactions >= 2 && st.FoldedDocuments == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("pipeline did not settle: %+v", st)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}
