package engine

import (
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/rank"
)

// Snapshot is one immutable, internally consistent view of the serving
// state: the LSI model, the document list it ranks over, and the
// unit-normalized scoring cache built from the model's document vectors.
// Readers obtain a Snapshot with a single atomic load and use it without
// any locking; the background updater publishes successors but never
// mutates a snapshot that has been published.
//
// Invariants: Model.NumDocs() == len(Docs) == Eng.NumDocs(), and Gen
// strictly increases across publications.
//
//lsilint:immutable
type Snapshot struct {
	// Gen is the publication generation: 1 for the initial snapshot,
	// incremented by every fold-in batch and every compaction.
	Gen uint64
	// Model is the LSI model; treated as immutable once published.
	Model *core.Model
	// Eng is the snapshot-owned normalized document cache — the norm cache
	// lives on the snapshot, not behind the model's internal lock, so the
	// read path touches no mutex at all.
	Eng *rank.Engine
	// Docs maps document index → document; the slice prefix is shared
	// across snapshots (the updater only appends between compactions).
	Docs []corpus.Document
	// Dead marks tombstoned rows: deleted documents still physically
	// present (they leave at the next compaction) but excluded from every
	// ranking — the skip set threads through the rank kernels so a dead
	// row is never scored, never seeds a threshold, and never surfaces.
	// Nil when nothing is deleted, which keeps the delete-free read path
	// on the unskipped kernels.
	Dead rank.Skip
	// counters points at the owning engine's cumulative query counters;
	// the lock-free read path records per-query ScreenStats here without
	// reaching back into the engine. Nil on hand-built snapshots.
	counters *queryCounters
}

// NumDocs returns how many document rows the snapshot holds physically,
// tombstones included.
func (s *Snapshot) NumDocs() int { return len(s.Docs) }

// Tombstones counts deleted-but-present rows.
func (s *Snapshot) Tombstones() int { return s.Dead.CountUpTo(len(s.Docs)) }

// LiveDocs counts the documents queries can actually return.
func (s *Snapshot) LiveDocs() int { return len(s.Docs) - s.Tombstones() }

// Doc returns document j.
func (s *Snapshot) Doc(j int) corpus.Document { return s.Docs[j] }

// RankTop projects a raw query vector and returns the n best documents in
// ranking order, scored against the snapshot's normalized cache. The
// computation is identical to core.Model.RankTop — same projection, same
// normalized matrix, same bounded selection — so results are byte-stable
// with the model's own scoring path; it just reads the snapshot-owned
// cache instead of the model's lock-guarded one.
// Tombstoned rows are excluded as if never inserted.
func (s *Snapshot) RankTop(raw []float64, n int) []core.Ranked {
	items, st := s.Eng.TopKSkipWithStats(s.Model.ProjectQuery(raw), n, s.Dead)
	s.counters.record(st)
	return toRanked(items)
}

// RankBatch scores a block of raw query vectors as one gemm pass and
// returns the top n documents for each, matching core.Model.RankBatch.
func (s *Snapshot) RankBatch(raws [][]float64, n int) [][]core.Ranked {
	if len(raws) == 0 {
		return nil
	}
	qhats := make([][]float64, len(raws))
	for i, raw := range raws {
		qhats[i] = s.Model.ProjectQuery(raw)
	}
	res, stats := s.Eng.TopKBatchSkipWithStats(dense.NewFromRows(qhats), n, s.Dead)
	out := make([][]core.Ranked, len(res))
	for i, items := range res {
		s.counters.record(stats[i])
		out[i] = toRanked(items)
	}
	return out
}

func toRanked(items []rank.Item) []core.Ranked {
	out := make([]core.Ranked, len(items))
	for i, it := range items {
		out[i] = core.Ranked{Doc: it.Doc, Score: it.Score}
	}
	return out
}
