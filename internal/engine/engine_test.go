package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

func testEngine(t *testing.T, cfg Config) (*Engine, *corpus.Collection) {
	t.Helper()
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(coll, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return e, coll
}

// expiredCtx returns a context whose deadline has already passed: Submit
// still enqueues the document but returns without waiting for the batch.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestFoldPublishesNewGeneration(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond})
	before := e.Snapshot()
	id, err := e.Submit(context.Background(), corpus.Document{Text: "behavior of rats after rise in oestrogen"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "doc-14" {
		t.Fatalf("auto id %q", id)
	}
	after := e.Snapshot()
	if after.Gen <= before.Gen {
		t.Fatalf("generation did not advance: %d -> %d", before.Gen, after.Gen)
	}
	if after.NumDocs() != before.NumDocs()+1 || after.Model.NumDocs() != after.NumDocs() ||
		after.Eng.NumDocs() != after.NumDocs() {
		t.Fatalf("snapshot invariant broken: docs=%d model=%d eng=%d",
			after.NumDocs(), after.Model.NumDocs(), after.Eng.NumDocs())
	}
	// The old snapshot is untouched — readers holding it keep a stable view.
	if before.NumDocs() != 14 || before.Model.NumDocs() != 14 {
		t.Fatal("published snapshot was mutated")
	}
	// The folded document ranks for its own words.
	ranked := after.RankTop(coll.QueryVector("rats oestrogen"), 5)
	found := false
	for _, r := range ranked {
		if after.Doc(r.Doc).ID == id {
			found = true
		}
	}
	if !found {
		t.Fatal("folded document not retrievable")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	e, _ := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	if _, err := e.Submit(ctx, corpus.Document{ID: "X1", Text: "fast rise in blood pressure"}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Submit(ctx, corpus.Document{ID: "X1", Text: "another doc"})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("second submit: err=%v want ErrDuplicateID", err)
	}
	// Colliding with an initial collection ID is rejected too.
	if _, err := e.Submit(ctx, corpus.Document{ID: "M3", Text: "dup of a seed doc"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("seed-id submit: err=%v", err)
	}
	if n := e.Snapshot().NumDocs(); n != 15 {
		t.Fatalf("duplicates folded: %d docs", n)
	}
}

// TestAutoIDSkipsTakenIDs pins the regression from the old server, where
// the auto-generated doc-%d could collide with a user-supplied ID.
func TestAutoIDSkipsTakenIDs(t *testing.T) {
	e, _ := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	// Take the ID the auto-assigner would hand out next (14 seed docs).
	if _, err := e.Submit(ctx, corpus.Document{ID: "doc-14", Text: "squatter on the next auto id"}); err != nil {
		t.Fatal(err)
	}
	id, err := e.Submit(ctx, corpus.Document{Text: "auto id document"})
	if err != nil {
		t.Fatal(err)
	}
	if id == "doc-14" {
		t.Fatal("auto id collided with user-supplied id")
	}
	if id != "doc-15" {
		t.Fatalf("auto id %q want doc-15", id)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	e, _ := testEngine(t, Config{QueueSize: 2, BatchTick: time.Hour})
	// The updater only drains at ticks (an hour away), so these sit in the
	// queue; expired contexts make the calls return immediately.
	for i := 0; i < 2; i++ {
		_, err := e.Submit(expiredCtx(t), corpus.Document{Text: fmt.Sprintf("queued doc %d", i)})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit %d: err=%v want context.Canceled", i, err)
		}
	}
	if _, err := e.Submit(context.Background(), corpus.Document{Text: "overflow"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err=%v want ErrQueueFull", err)
	}
	if d := e.Stats().QueueDepth; d != 2 {
		t.Fatalf("queue depth %d want 2", d)
	}
}

// TestCloseDrainsQueue: every accepted submission is folded in before
// Close returns, even though the batch tick never fired.
func TestCloseDrainsQueue(t *testing.T) {
	e, _ := testEngine(t, Config{QueueSize: 16, BatchTick: time.Hour})
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := e.Submit(expiredCtx(t), corpus.Document{Text: fmt.Sprintf("queued doc %d", i)}); !errors.Is(err, context.Canceled) {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.Snapshot().NumDocs(); got != 14+n {
		t.Fatalf("after drain: %d docs want %d", got, 14+n)
	}
	if _, err := e.Submit(context.Background(), corpus.Document{Text: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err=%v want ErrClosed", err)
	}
}

// TestCompactionRestoresOrthogonality: with a tiny threshold every batch
// triggers an SVD-update compaction; the compacted snapshot has zero
// folded documents, near-zero orthogonality loss, an advanced generation,
// and still resolves every document ID.
func TestCompactionRestoresOrthogonality(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond, CompactThreshold: 1e-9})
	ctx := context.Background()
	ids := make(map[string]bool)
	for i := 0; i < 6; i++ {
		id, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("depressed patients fast culture %d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = true
	}
	deadline := time.Now().Add(5 * time.Second)
	quiescent := func() bool {
		st := e.Stats()
		return st.Compactions > 0 && !st.Compacting && st.FoldedDocuments == 0
	}
	for !quiescent() {
		if time.Now().After(deadline) {
			t.Fatalf("no quiescent compacted state; stats %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	s := e.Snapshot()
	if s.NumDocs() != 20 {
		t.Fatalf("%d docs want 20", s.NumDocs())
	}
	if f := s.Model.FoldedDocs(); f != 0 {
		t.Fatalf("compacted snapshot still has %d folded docs", f)
	}
	if o := s.Model.DocOrthogonality(); o > 1e-6 {
		t.Fatalf("orthogonality %g after compaction", o)
	}
	for id := range ids {
		found := false
		for j := 0; j < s.NumDocs(); j++ {
			if s.Doc(j).ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("id %s lost in compaction", id)
		}
	}
	// Ranking still works against the rotated coordinates.
	ranked := s.RankTop(coll.QueryVector("depressed patients"), 5)
	if len(ranked) != 5 {
		t.Fatalf("got %d results", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Fatal("scores not sorted")
		}
	}
}

// TestQuiescentRepeatIsByteStable: two identical queries against the same
// snapshot generation return identical results.
func TestQuiescentRepeatIsByteStable(t *testing.T) {
	e, coll := testEngine(t, Config{})
	raw := coll.QueryVector("age blood abnormalities culture")
	s := e.Snapshot()
	a := s.RankTop(raw, 10)
	b := s.RankTop(raw, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-snapshot results diverged")
	}
	// And they match the model's own lock-guarded scoring path exactly —
	// the snapshot cache is the same normalized matrix.
	c := s.Model.RankTop(raw, 10)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("snapshot results diverge from core.Model.RankTop")
	}
}

func TestNewRejectsMismatchedModel(t *testing.T) {
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	model.FoldInDocs(coll.DocVectors(corpus.MEDUpdateTopics))
	if _, err := New(coll, model, Config{}); err == nil {
		t.Fatal("expected mismatch error")
	}
}
