package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/rank"
)

// waitCompacted spins until at least one compaction has landed and the
// pipeline is quiescent again.
func waitCompacted(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats()
		if st.Compactions > 0 && !st.Compacting && st.FoldedDocuments == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no quiescent compacted state; stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScreeningSurvivesPipeline pins the mirror lifecycle across the
// update pipeline: the initial snapshot screens, fold-in batches extend
// the mirror along the Extend chain, and the SVD-update compaction —
// which rebuilds the cache from scratch — rebuilds the mirror too. At
// every stage the snapshot's results must be byte-identical to an exact
// engine built fresh from the same document coordinates.
func TestScreeningSurvivesPipeline(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond, CompactThreshold: 1e-9})
	ctx := context.Background()
	checkParity := func(stage string) {
		s := e.Snapshot()
		if !s.Eng.Screening() {
			t.Fatalf("%s: snapshot lost the screening mirror", stage)
		}
		exact := rank.NewEngineExact(s.Model.V)
		for _, query := range []string{"fatty acids glucose", "depressed culture", "rats oestrogen"} {
			qhat := s.Model.ProjectQuery(coll.QueryVector(query))
			for _, k := range []int{1, 5, s.NumDocs()} {
				if got, want := s.Eng.TopK(qhat, k), exact.TopK(qhat, k); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: query %q k=%d diverges from exact\n got %v\nwant %v",
						stage, query, k, got, want)
				}
			}
		}
	}
	checkParity("initial")
	for i := 0; i < 6; i++ {
		if _, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("depressed patients fast culture %d", i)}); err != nil {
			t.Fatal(err)
		}
		checkParity(fmt.Sprintf("after fold-in %d", i))
	}
	waitCompacted(t, e)
	checkParity("after compaction")
	// One more fold-in on top of the compacted base: the rebuilt mirror's
	// Extend chain must also stay coherent.
	if _, err := e.Submit(ctx, corpus.Document{Text: "glucose in fasting rats"}); err != nil {
		t.Fatal(err)
	}
	checkParity("after post-compaction fold-in")
}

// TestDisableScreening pins the opt-out: with DisableScreening every
// snapshot — initial, extended, compacted — serves through exact-only
// engines, and Stats/metrics report it.
func TestDisableScreening(t *testing.T) {
	e, _ := testEngine(t, Config{BatchTick: time.Millisecond, CompactThreshold: 1e-9, DisableScreening: true})
	ctx := context.Background()
	if st := e.Stats(); st.Screening {
		t.Fatal("stats report screening despite the opt-out")
	}
	for i := 0; i < 6; i++ {
		if _, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("depressed patients fast culture %d", i)}); err != nil {
			t.Fatal(err)
		}
		if s := e.Snapshot(); s.Eng.Screening() {
			t.Fatalf("fold-in %d: extended engine grew a mirror", i)
		}
	}
	waitCompacted(t, e)
	if s := e.Snapshot(); s.Eng.Screening() {
		t.Fatal("compaction rebuilt the cache with a mirror despite the opt-out")
	}
	if st := e.Stats(); st.Screening {
		t.Fatal("stats report screening after compaction despite the opt-out")
	}
}
