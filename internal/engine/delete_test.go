package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// rankedIDs maps ranking results to document IDs through the snapshot's
// own document list, so results from engines with different physical row
// layouts can be compared.
func rankedIDs(s *Snapshot, ranked []core.Ranked) []string {
	ids := make([]string, len(ranked))
	for i, r := range ranked {
		ids[i] = s.Doc(r.Doc).ID
	}
	return ids
}

func TestDeleteImmediateInvisibility(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	id, err := e.Submit(ctx, corpus.Document{Text: "behavior of rats after detected rise in oestrogen"})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot()
	if err := e.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ctx, "M3"); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.Gen <= before.Gen {
		t.Fatalf("pure-delete batches did not advance the generation: %d -> %d", before.Gen, s.Gen)
	}
	// The rows stay physically present until a compaction folds them out.
	if s.NumDocs() != 15 || s.Tombstones() != 2 || s.LiveDocs() != 13 {
		t.Fatalf("physical=%d tombstones=%d live=%d", s.NumDocs(), s.Tombstones(), s.LiveDocs())
	}
	st := e.Stats()
	if st.Documents != 13 || st.Tombstones != 2 {
		t.Fatalf("stats: documents=%d tombstones=%d", st.Documents, st.Tombstones)
	}
	// Even a query aimed straight at the deleted documents' own words must
	// never surface them, at any depth.
	for _, q := range []string{"rats oestrogen rise", "blood pressure", corpus.MEDQuery} {
		for _, got := range rankedIDs(s, s.RankTop(coll.QueryVector(q), s.NumDocs())) {
			if got == id || got == "M3" {
				t.Fatalf("query %q surfaced deleted doc %s", q, got)
			}
		}
	}
	// The pre-delete snapshot is immutable: readers holding it still see
	// the document.
	if before.Tombstones() != 0 {
		t.Fatal("published snapshot was mutated by a later delete")
	}
}

func TestDeleteUnknownID(t *testing.T) {
	e, _ := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	if err := e.Delete(ctx, "never-existed"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown delete: err=%v want ErrUnknownID", err)
	}
	if err := e.Delete(ctx, "M5"); err != nil {
		t.Fatal(err)
	}
	// A second delete of the same ID is unknown too — the ID was released.
	if err := e.Delete(ctx, "M5"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double delete: err=%v want ErrUnknownID", err)
	}
}

// TestDeleteMatchesNeverInserted pins the tombstone phase: an engine that
// folded extra documents and then deleted some must answer queries
// byte-identically to an engine that never saw the deleted documents —
// same IDs, bit-equal scores.
func TestDeleteMatchesNeverInserted(t *testing.T) {
	extra := []corpus.Document{
		{ID: "K1", Text: "behavior of rats after detected rise in oestrogen"},
		{ID: "D1", Text: "fast generation of random close packing of spheres"},
		{ID: "K2", Text: "depressed patients who feel the pressure to fast"},
		{ID: "D2", Text: "glucose levels in blood of depressed rats"},
	}
	ctx := context.Background()

	a, coll := testEngine(t, Config{BatchTick: time.Millisecond})
	for _, d := range extra {
		if _, err := a.Submit(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"D1", "D2"} {
		if err := a.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	b, _ := testEngine(t, Config{BatchTick: time.Millisecond})
	for _, d := range extra {
		if d.ID == "D1" || d.ID == "D2" {
			continue
		}
		if _, err := b.Submit(ctx, d); err != nil {
			t.Fatal(err)
		}
	}

	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.LiveDocs() != sb.NumDocs() {
		t.Fatalf("live mismatch: %d vs %d", sa.LiveDocs(), sb.NumDocs())
	}
	queries := []string{
		corpus.MEDQuery,
		"rats oestrogen rise",
		"depressed patients fast",
		"glucose blood levels",
		"random packing spheres",
	}
	for _, q := range queries {
		raw := coll.QueryVector(q)
		ra := sa.RankTop(raw, sa.LiveDocs())
		rb := sb.RankTop(raw, sb.NumDocs())
		if len(ra) != len(rb) {
			t.Fatalf("query %q: %d vs %d results", q, len(ra), len(rb))
		}
		ia, ib := rankedIDs(sa, ra), rankedIDs(sb, rb)
		for i := range ra {
			if ia[i] != ib[i] {
				t.Fatalf("query %q rank %d: tombstoned %s != never-inserted %s", q, i, ia[i], ib[i])
			}
			if math.Float64bits(ra[i].Score) != math.Float64bits(rb[i].Score) {
				t.Fatalf("query %q rank %d (%s): score %v != %v", q, i, ia[i], ra[i].Score, rb[i].Score)
			}
		}
	}
}

// TestDeleteCompactionFoldsOut drives the fold-out machinery end to end
// for both compaction strategies, with a deterministic compaction
// schedule (the orthogonality trigger is parked at an unreachable level,
// so only tombstones launch compactions — exactly one per delete):
//
//  1. deleting a pending (folded-in) document compacts to the base with
//     the live pending absorbed and the dead entry dropped — byte-equal
//     to UpdateDocsOpts on the live subset;
//  2. deleting a base document compacts by downdating — byte-equal to
//     DowndateDocs on the live rows.
func TestDeleteCompactionFoldsOut(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy core.UpdateStrategy
	}{
		{"obrien", core.StrategyOBrien},
		{"gk", core.StrategyGK},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coll := corpus.MED()
			model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
			if err != nil {
				t.Fatal(err)
			}
			ref := model.SharedClone()
			e, err := New(coll, model, Config{
				BatchTick:          time.Millisecond,
				CompactThreshold:   1e9, // orthogonality never triggers; deletes do
				CompactionStrategy: tc.strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := e.Close(ctx); err != nil {
					t.Errorf("close: %v", err)
				}
			})
			ctx := context.Background()
			pend := make([]corpus.Document, 6)
			for i := range pend {
				pend[i] = corpus.Document{
					ID:   fmt.Sprintf("P%d", i),
					Text: fmt.Sprintf("fast generation of behavioural changes %d in depressed rats", i),
				}
				if _, err := e.Submit(ctx, pend[i]); err != nil {
					t.Fatal(err)
				}
			}
			if got := e.Stats(); got.Compactions != 0 {
				t.Fatalf("compaction before any delete: %+v", got)
			}

			waitCompacted := func(n int64) *Snapshot {
				t.Helper()
				deadline := time.Now().Add(5 * time.Second)
				for {
					st := e.Stats()
					if st.Compactions == n && !st.Compacting && st.Tombstones == 0 && st.FoldedDocuments == 0 {
						return e.Snapshot()
					}
					if time.Now().After(deadline) {
						t.Fatalf("no quiescent compacted state; stats %+v", st)
					}
					time.Sleep(time.Millisecond)
				}
			}
			sameV := func(s *Snapshot, want *core.Model) {
				t.Helper()
				if s.Model.NumDocs() != want.NumDocs() {
					t.Fatalf("rows: engine %d, reference %d", s.Model.NumDocs(), want.NumDocs())
				}
				for j := 0; j < want.NumDocs(); j++ {
					a, b := s.Model.V.Row(j), want.V.Row(j)
					for c := range a {
						if math.Float64bits(a[c]) != math.Float64bits(b[c]) {
							t.Fatalf("row %d col %d: engine %v != reference %v", j, c, a[c], b[c])
						}
					}
				}
			}

			// Phase 1: delete a pending document. The triggered compaction
			// absorbs the five live pending docs and drops the dead one.
			if err := e.Delete(ctx, "P2"); err != nil {
				t.Fatal(err)
			}
			s := waitCompacted(1)
			live := append(append([]corpus.Document(nil), pend[:2]...), pend[3:]...)
			opts := core.UpdateOptions{Strategy: tc.strategy}
			if err := ref.UpdateDocsOpts(coll.DocVectors(live), opts); err != nil {
				t.Fatal(err)
			}
			sameV(s, ref)
			if s.NumDocs() != 19 {
				t.Fatalf("%d docs after fold-out, want 19", s.NumDocs())
			}
			for j := 0; j < s.NumDocs(); j++ {
				if s.Doc(j).ID == "P2" {
					t.Fatal("deleted pending doc survived compaction")
				}
			}

			// Phase 2: delete a base document. The triggered compaction
			// folds its row out with a downdate.
			row := -1
			for j := 0; j < s.NumDocs(); j++ {
				if s.Doc(j).ID == "M3" {
					row = j
				}
			}
			if row < 0 {
				t.Fatal("M3 not found")
			}
			if err := e.Delete(ctx, "M3"); err != nil {
				t.Fatal(err)
			}
			s = waitCompacted(2)
			if err := ref.DowndateDocs(liveRows(ref.NumDocs(), []int{row})); err != nil {
				t.Fatal(err)
			}
			sameV(s, ref)
			if s.NumDocs() != 18 || s.Tombstones() != 0 {
				t.Fatalf("physical=%d tombstones=%d after downdate", s.NumDocs(), s.Tombstones())
			}
			for j := 0; j < s.NumDocs(); j++ {
				if s.Doc(j).ID == "M3" {
					t.Fatal("downdated doc survived compaction")
				}
			}
			// The folded-out state still answers queries sensibly.
			ranked := s.RankTop(coll.QueryVector("depressed rats"), 5)
			if len(ranked) != 5 {
				t.Fatalf("got %d results", len(ranked))
			}
		})
	}
}

// TestDeleteThenResubmit: deleting releases the ID, so the same ID can be
// submitted again as a fresh document — and deleted again.
func TestDeleteThenResubmit(t *testing.T) {
	e, coll := testEngine(t, Config{BatchTick: time.Millisecond})
	ctx := context.Background()
	if _, err := e.Submit(ctx, corpus.Document{ID: "X1", Text: "fast rise in blood pressure"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ctx, "X1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(ctx, corpus.Document{ID: "X1", Text: "generation of random spheres"}); err != nil {
		t.Fatalf("resubmit after delete: %v", err)
	}
	s := e.Snapshot()
	// Two physical rows carry the ID's history; only the second is live.
	if s.NumDocs() != 16 || s.Tombstones() != 1 {
		t.Fatalf("physical=%d tombstones=%d", s.NumDocs(), s.Tombstones())
	}
	found := false
	for _, id := range rankedIDs(s, s.RankTop(coll.QueryVector("generation random spheres"), 5)) {
		found = found || id == "X1"
	}
	if !found {
		t.Fatal("resubmitted document not retrievable")
	}
	if err := e.Delete(ctx, "X1"); err != nil {
		t.Fatalf("delete of resubmitted doc: %v", err)
	}
}

// TestSameBatchSubmitAndDelete: a submit and a delete of the same ID in
// one batch resolve in queue order — the eager row assignment lets the
// delete find the row the submit just claimed.
func TestSameBatchSubmitAndDelete(t *testing.T) {
	e, coll := testEngine(t, Config{QueueSize: 16, BatchTick: time.Hour})
	if _, err := e.Submit(expiredCtx(t), corpus.Document{ID: "Z1", Text: "oestrogen levels in rats"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued submit: %v", err)
	}
	if err := e.Delete(expiredCtx(t), "Z1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued delete: %v", err)
	}
	if _, err := e.Submit(expiredCtx(t), corpus.Document{ID: "Z2", Text: "glucose in blood"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued submit: %v", err)
	}
	// Close's final drain applies the whole batch.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.NumDocs() != 16 || s.Tombstones() != 1 || s.LiveDocs() != 15 {
		t.Fatalf("physical=%d tombstones=%d live=%d", s.NumDocs(), s.Tombstones(), s.LiveDocs())
	}
	for _, id := range rankedIDs(s, s.RankTop(coll.QueryVector("oestrogen rats"), s.NumDocs())) {
		if id == "Z1" {
			t.Fatal("same-batch deleted doc is retrievable")
		}
	}
	found := false
	for j := 0; j < s.NumDocs(); j++ {
		found = found || s.Doc(j).ID == "Z2"
	}
	if !found {
		t.Fatal("drained submit lost")
	}
}
