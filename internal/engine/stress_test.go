package engine

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/synonym"
)

// TestStressSnapshotIsolation is the core race/stress proof for the
// serving engine: reader goroutines hammer ranking, batch ranking, and
// term lookup off atomic snapshots while a writer streams fold-ins and a
// tiny compaction threshold forces repeated SVD-update compactions. Run
// under -race (make stress) this demonstrates that:
//
//   - readers never block on the updater (they only load a pointer; any
//     lock shared with the writer would show as contention or a race),
//   - every observed snapshot is internally consistent (doc indices
//     resolve, scores sorted, model/docs/cache agree on the doc count),
//   - results for the same query against the same snapshot generation are
//     deterministic, and
//   - the generation observed by each reader increases monotonically
//     while at least two compactions complete.
func TestStressSnapshotIsolation(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	e, coll := testEngine(t, Config{
		QueueSize:        1024,
		BatchTick:        200 * time.Microsecond,
		CompactThreshold: 1e-9, // every fold crosses it: maximum churn
	})
	const (
		writers = 40 // documents streamed in
		readers = 4
		reads   = 120
	)
	queries := [][]float64{
		coll.QueryVector("age blood abnormalities"),
		coll.QueryVector("depressed patients fast culture"),
		coll.QueryVector("oestrogen detected rise"),
	}

	// Per-generation result pinning: the first reader to see a generation
	// records its result; everyone else landing on that generation must
	// match exactly.
	var pinMu sync.Mutex
	pinned := make(map[uint64][]string)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		ctx := context.Background()
		for i := 0; i < writers; i++ {
			if _, err := e.Submit(ctx, corpus.Document{Text: fmt.Sprintf("depressed rats culture pressure %d", i)}); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < reads; i++ {
				s := e.Snapshot()
				if s.Gen < lastGen {
					t.Errorf("reader %d: generation went backwards %d -> %d", g, lastGen, s.Gen)
					return
				}
				lastGen = s.Gen
				if s.Model.NumDocs() != s.NumDocs() || s.Eng.NumDocs() != s.NumDocs() {
					t.Errorf("reader %d: inconsistent snapshot: model=%d docs=%d eng=%d",
						g, s.Model.NumDocs(), s.NumDocs(), s.Eng.NumDocs())
					return
				}
				switch i % 3 {
				case 0:
					ranked := s.RankTop(queries[i%len(queries)], 8)
					keys := make([]string, 0, len(ranked))
					for j, r := range ranked {
						if r.Doc < 0 || r.Doc >= s.NumDocs() || s.Doc(r.Doc).ID == "" {
							t.Errorf("reader %d: unresolvable doc index %d", g, r.Doc)
							return
						}
						if j > 0 && ranked[j-1].Score < r.Score {
							t.Errorf("reader %d: scores not sorted", g)
							return
						}
						keys = append(keys, fmt.Sprintf("%s:%x", s.Doc(r.Doc).ID, r.Score))
					}
					if i%len(queries) == 0 {
						pinMu.Lock()
						if prev, ok := pinned[s.Gen]; ok {
							if !reflect.DeepEqual(prev, keys) {
								t.Errorf("reader %d: generation %d results diverged\n got %v\nwant %v", g, s.Gen, keys, prev)
							}
						} else {
							pinned[s.Gen] = keys
						}
						pinMu.Unlock()
					}
				case 1:
					batch := s.RankBatch(queries, 5)
					if len(batch) != len(queries) {
						t.Errorf("reader %d: batch size %d", g, len(batch))
						return
					}
					for _, ranked := range batch {
						for _, r := range ranked {
							if r.Doc < 0 || r.Doc >= s.NumDocs() {
								t.Errorf("reader %d: batch doc index %d out of range %d", g, r.Doc, s.NumDocs())
								return
							}
						}
					}
				case 2:
					if _, err := synonym.NearestTerms(s.Model, coll.Vocab, "blood", 5); err != nil {
						t.Errorf("reader %d: terms: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-writerDone

	// Let the pipeline settle, then check the end state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := e.Stats()
		if st.Documents == 14+writers && !st.Compacting && st.QueueDepth == 0 && st.Compactions >= 2 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	st := e.Stats()
	if st.Compactions < 2 {
		t.Fatalf("only %d compactions; stress target is ≥2", st.Compactions)
	}
	s := e.Snapshot()
	if s.Gen < uint64(st.Compactions)+1 {
		t.Fatalf("generation %d lower than compaction count %d", s.Gen, st.Compactions)
	}
	// Every streamed document is present exactly once.
	seen := make(map[string]int)
	for j := 0; j < s.NumDocs(); j++ {
		seen[s.Doc(j).ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %s appears %d times", id, n)
		}
	}
	if len(seen) != 14+writers {
		t.Fatalf("%d unique ids want %d", len(seen), 14+writers)
	}
}

// TestStressDeleteTraffic adds concurrent deletes to the churn: a writer
// streams fold-ins, a deleter tombstones every third document as soon as
// its batch published, readers keep ranking throughout, and a tiny
// compaction threshold keeps compactions (fold-ins absorbed, tombstones
// folded out by downdates) running under all of it. Snapshot-consistent
// invariant: a result row is never tombstoned in the snapshot that
// produced it. End state: every deleted document is physically gone,
// every surviving one present exactly once.
func TestStressDeleteTraffic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	e, coll := testEngine(t, Config{
		QueueSize:        1024,
		BatchTick:        200 * time.Microsecond,
		CompactThreshold: 1e-9,
	})
	const (
		writers = 40
		readers = 4
		reads   = 120
	)
	queries := [][]float64{
		coll.QueryVector("age blood abnormalities"),
		coll.QueryVector("depressed patients fast culture"),
		coll.QueryVector("oestrogen detected rise"),
	}

	toDelete := make(chan string, writers)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		defer close(toDelete)
		ctx := context.Background()
		for i := 0; i < writers; i++ {
			id := fmt.Sprintf("S%d", i)
			if _, err := e.Submit(ctx, corpus.Document{ID: id, Text: fmt.Sprintf("depressed rats culture pressure %d", i)}); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if i%3 == 0 {
				toDelete <- id
			}
		}
	}()
	deleterDone := make(chan struct{})
	deleted := make(map[string]bool, writers/3+1)
	go func() {
		defer close(deleterDone)
		ctx := context.Background()
		for id := range toDelete {
			if err := e.Delete(ctx, id); err != nil {
				t.Errorf("delete %s: %v", id, err)
				return
			}
			deleted[id] = true
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				s := e.Snapshot()
				if s.Model.NumDocs() != s.NumDocs() || s.Eng.NumDocs() != s.NumDocs() {
					t.Errorf("reader %d: inconsistent snapshot: model=%d docs=%d eng=%d",
						g, s.Model.NumDocs(), s.NumDocs(), s.Eng.NumDocs())
					return
				}
				if s.LiveDocs()+s.Tombstones() != s.NumDocs() {
					t.Errorf("reader %d: live %d + dead %d != physical %d",
						g, s.LiveDocs(), s.Tombstones(), s.NumDocs())
					return
				}
				ranked := s.RankTop(queries[i%len(queries)], 8)
				for j, r := range ranked {
					if r.Doc < 0 || r.Doc >= s.NumDocs() {
						t.Errorf("reader %d: doc index %d out of range", g, r.Doc)
						return
					}
					if s.Dead.Has(r.Doc) {
						t.Errorf("reader %d: tombstoned row %d (%s) surfaced", g, r.Doc, s.Doc(r.Doc).ID)
						return
					}
					if j > 0 && ranked[j-1].Score < r.Score {
						t.Errorf("reader %d: scores not sorted", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-writerDone
	<-deleterDone

	want := 14 + writers - len(deleted)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := e.Stats()
		if st.Documents == want && st.Tombstones == 0 && !st.Compacting &&
			st.QueueDepth == 0 && st.Compactions >= 2 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	s := e.Snapshot()
	seen := make(map[string]int)
	for j := 0; j < s.NumDocs(); j++ {
		seen[s.Doc(j).ID]++
	}
	for id, n := range seen {
		if deleted[id] {
			t.Fatalf("deleted id %s still physically present", id)
		}
		if n != 1 {
			t.Fatalf("id %s appears %d times", id, n)
		}
	}
	if len(seen) != want {
		t.Fatalf("%d unique ids want %d", len(seen), want)
	}
}
