package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// fuzzWords are MED-vocabulary terms, so every fuzzed document projects to
// a nonzero vector and folds in meaningfully.
var fuzzWords = []string{
	"rats", "oestrogen", "blood", "pressure", "fast", "culture",
	"depressed", "patients", "glucose", "rise", "generation", "behavior",
}

func fuzzText(seed int) string {
	a := fuzzWords[seed%len(fuzzWords)]
	b := fuzzWords[(seed/len(fuzzWords))%len(fuzzWords)]
	return a + " " + b + " " + fuzzWords[(seed+3)%len(fuzzWords)]
}

// FuzzEngineDeleteOracle drives the engine with an arbitrary interleaving
// of submits, deletes, re-adds of deleted IDs, and queries — decoded from
// the fuzz input — and checks it against a sequential oracle (the live-ID
// set maintained step by step): every op outcome matches the oracle's
// prediction, queries only ever surface live documents, and the snapshot's
// live count tracks the oracle exactly. A tiny compaction threshold keeps
// fold-outs and SVD updates churning underneath the op stream.
func FuzzEngineDeleteOracle(f *testing.F) {
	f.Add([]byte{0, 4, 8, 2, 3, 12, 6, 1, 3})           // submit, delete, re-add, query
	f.Add([]byte{2, 3})                                 // delete from the seed corpus, query
	f.Add([]byte{0, 0, 0, 2, 2, 2, 2, 3, 1, 1, 3})      // drain live set, resubmit
	f.Add([]byte{3, 3, 3})                              // queries only
	f.Add([]byte{0, 2, 1, 2, 1, 2, 1, 3, 0, 2, 113, 3}) // delete/re-add ping-pong
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		coll := corpus.MED()
		model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(coll, model, Config{BatchTick: time.Millisecond, CompactThreshold: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := e.Close(ctx); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		ctx := context.Background()

		// The oracle: live IDs in insertion order, released IDs available
		// for re-add, and the set view for membership checks.
		live := make([]string, 0, 14+len(data))
		for _, d := range coll.Docs {
			live = append(live, d.ID)
		}
		liveSet := make(map[string]bool, cap(live))
		for _, id := range live {
			liveSet[id] = true
		}
		var dead []string
		fresh := 0

		for i, b := range data {
			arg := int(b >> 2)
			switch b & 3 {
			case 0: // submit a fresh document
				id := fmt.Sprintf("f%d", fresh)
				fresh++
				got, err := e.Submit(ctx, corpus.Document{ID: id, Text: fuzzText(arg)})
				if err != nil || got != id {
					t.Fatalf("op %d: submit %s: id=%q err=%v", i, id, got, err)
				}
				live = append(live, id)
				liveSet[id] = true
			case 1: // re-add a deleted ID (fresh submit when none released)
				if len(dead) == 0 {
					id := fmt.Sprintf("f%d", fresh)
					fresh++
					if _, err := e.Submit(ctx, corpus.Document{ID: id, Text: fuzzText(arg)}); err != nil {
						t.Fatalf("op %d: submit %s: %v", i, id, err)
					}
					live = append(live, id)
					liveSet[id] = true
					break
				}
				j := arg % len(dead)
				id := dead[j]
				dead = append(dead[:j], dead[j+1:]...)
				if _, err := e.Submit(ctx, corpus.Document{ID: id, Text: fuzzText(arg)}); err != nil {
					t.Fatalf("op %d: re-add of deleted %s: %v", i, id, err)
				}
				live = append(live, id)
				liveSet[id] = true
			case 2: // delete a live document (unknown-ID probe when empty)
				if len(live) == 0 {
					if err := e.Delete(ctx, "nonexistent"); !errors.Is(err, ErrUnknownID) {
						t.Fatalf("op %d: empty-set delete: err=%v want ErrUnknownID", i, err)
					}
					break
				}
				j := arg % len(live)
				id := live[j]
				live = append(live[:j], live[j+1:]...)
				delete(liveSet, id)
				if err := e.Delete(ctx, id); err != nil {
					t.Fatalf("op %d: delete %s: %v", i, id, err)
				}
				dead = append(dead, id)
			case 3: // query; results must be live per the oracle
				s := e.Snapshot()
				if s.LiveDocs() != len(live) {
					t.Fatalf("op %d: snapshot live %d, oracle %d", i, s.LiveDocs(), len(live))
				}
				n := 1 + arg%8
				ranked := s.RankTop(coll.QueryVector(fuzzText(arg)), n)
				if want := min(n, len(live)); len(ranked) != want {
					t.Fatalf("op %d: %d results want %d", i, len(ranked), want)
				}
				for _, r := range ranked {
					id := s.Doc(r.Doc).ID
					if !liveSet[id] {
						t.Fatalf("op %d: query surfaced non-live doc %s", i, id)
					}
				}
			}
		}
		// Final snapshot agrees with the oracle on the full live set.
		s := e.Snapshot()
		if s.LiveDocs() != len(live) {
			t.Fatalf("final live %d, oracle %d", s.LiveDocs(), len(live))
		}
		for j := 0; j < s.NumDocs(); j++ {
			if id := s.Doc(j).ID; !s.Dead.Has(j) && !liveSet[id] {
				t.Fatalf("final snapshot serves non-live doc %s", id)
			}
		}
	})
}
