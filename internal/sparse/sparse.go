// Package sparse implements the compressed sparse matrix storage and
// matrix–vector kernels that dominate LSI processing time. The paper
// (§§2.1, 5.6) works with term–document matrices that are 99.998% zero;
// everything the Lanczos solver needs is Ax and Aᵀx over such matrices,
// so those two kernels — serial and goroutine-parallel — are the heart of
// this package.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Coord is one explicit entry of a matrix under construction.
type Coord struct {
	Row, Col int
	Val      float64
}

// Builder accumulates coordinate-format entries and converts them to CSR.
// Duplicate (row, col) entries are summed, which makes the term-counting
// loop in corpus construction trivial: emit one entry per token occurrence.
type Builder struct {
	rows, cols int
	entries    []Coord
}

// NewBuilder returns a Builder for an r×c matrix.
func NewBuilder(r, c int) *Builder {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", r, c))
	}
	return &Builder{rows: r, cols: c}
}

// Add records a single entry; duplicates accumulate.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, Coord{i, j, v})
}

// Build converts the accumulated entries into an immutable CSR matrix.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(x, y int) bool {
		if b.entries[x].Row != b.entries[y].Row {
			return b.entries[x].Row < b.entries[y].Row
		}
		return b.entries[x].Col < b.entries[y].Col
	})
	// Merge duplicates in place.
	merged := b.entries[:0]
	for _, e := range b.entries {
		n := len(merged)
		if n > 0 && merged[n-1].Row == e.Row && merged[n-1].Col == e.Col {
			merged[n-1].Val += e.Val
		} else {
			merged = append(merged, e)
		}
	}
	m := &CSR{
		Rows:   b.rows,
		Cols:   b.cols,
		RowPtr: make([]int, b.rows+1),
		ColIdx: make([]int, 0, len(merged)),
		Val:    make([]float64, 0, len(merged)),
	}
	for _, e := range merged {
		if e.Val == 0 {
			continue
		}
		m.RowPtr[e.Row+1]++
		m.ColIdx = append(m.ColIdx, e.Col)
		m.Val = append(m.Val, e.Val)
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is an immutable compressed-sparse-row matrix. Row i's entries live in
// ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], column-sorted.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// acc recycles the Cols-sized per-worker accumulators MulVecT needs:
	// the Lanczos inner loop calls Aᵀx thousands of times, and without
	// reuse each call churns GOMAXPROCS fresh slices through the heap.
	// The zero value is ready to use, so literal construction sites need
	// no changes; Clone and T deliberately do not share it.
	acc sync.Pool

	// partMu guards parts, the cached nnzPartition bounds per worker
	// count. The structure arrays are immutable after Build, so cached
	// bounds never need invalidating.
	partMu sync.Mutex
	//lsilint:guardedby partMu
	parts map[int][]int
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns NNZ/(Rows·Cols), the sparsity statistic the paper quotes
// for TREC matrices (0.001–0.002%).
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// At returns element (i, j) by binary search within the row. O(log nnz_row).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := sort.SearchInts(m.ColIdx[lo:hi], j) + lo
	if idx < hi && m.ColIdx[idx] == j {
		return m.Val[idx]
	}
	return 0
}

// Row calls f(j, v) for each stored entry of row i in column order.
func (m *CSR) Row(i int, f func(j int, v float64)) {
	for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
		f(m.ColIdx[p], m.Val[p])
	}
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// T returns the transpose as a new CSR (equivalently, the CSC view of m).
func (m *CSR) T() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			t.ColIdx[next[j]] = i
			t.Val[next[j]] = m.Val[p]
			next[j]++
		}
	}
	return t
}

// ScaleRows multiplies row i by d[i], returning a new matrix. This is how
// global term weights G(i) of Eq (5) are applied.
func (m *CSR) ScaleRows(d []float64) *CSR {
	if len(d) != m.Rows {
		panic(fmt.Sprintf("sparse: ScaleRows len %d want %d", len(d), m.Rows))
	}
	c := m.Clone()
	for i := 0; i < m.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			c.Val[p] *= d[i]
		}
	}
	return c
}

// Map returns a new matrix with f applied to every stored value (f(0) is
// assumed to be 0; structural zeros are untouched). Local weights L(i,j)
// of Eq (5) are applied this way.
func (m *CSR) Map(f func(v float64) float64) *CSR {
	c := m.Clone()
	for p, v := range c.Val {
		c.Val[p] = f(v)
	}
	return c
}

// FrobeniusNorm returns ‖A‖_F over stored entries.
func (m *CSR) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// ColNorms returns the Euclidean norm of every column (used by the vector
// space baseline for cosine normalization).
func (m *CSR) ColNorms() []float64 {
	out := make([]float64, m.Cols)
	for p, j := range m.ColIdx {
		out[j] += m.Val[p] * m.Val[p]
	}
	for i, v := range out {
		out[i] = math.Sqrt(v)
	}
	return out
}

// Col extracts column j as a dense vector. O(nnz); prefer the transpose for
// repeated access.
func (m *CSR) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Dense expands m into a row-major dense slice-of-slices, for tests and for
// the tiny worked example of §3.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.Rows)
	flat := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		out[i] = flat[i*m.Cols : (i+1)*m.Cols]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[i][m.ColIdx[p]] = m.Val[p]
		}
	}
	return out
}

// Equal reports elementwise equality within tol.
func (m *CSR) Equal(b *CSR, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		pa, pb := m.RowPtr[i], b.RowPtr[i]
		ea, eb := m.RowPtr[i+1], b.RowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && m.ColIdx[pa] < b.ColIdx[pb]):
				if math.Abs(m.Val[pa]) > tol {
					return false
				}
				pa++
			case pa >= ea || b.ColIdx[pb] < m.ColIdx[pa]:
				if math.Abs(b.Val[pb]) > tol {
					return false
				}
				pb++
			default:
				if math.Abs(m.Val[pa]-b.Val[pb]) > tol {
					return false
				}
				pa++
				pb++
			}
		}
	}
	return true
}

// AugmentCols returns [m | d] where d is m.Rows×dCols given in CSR form.
func (m *CSR) AugmentCols(d *CSR) *CSR {
	if m.Rows != d.Rows {
		panic(fmt.Sprintf("sparse: AugmentCols rows %d != %d", m.Rows, d.Rows))
	}
	b := NewBuilder(m.Rows, m.Cols+d.Cols)
	for i := 0; i < m.Rows; i++ {
		m.Row(i, func(j int, v float64) { b.Add(i, j, v) })
		d.Row(i, func(j int, v float64) { b.Add(i, m.Cols+j, v) })
	}
	return b.Build()
}

// AugmentRows returns [m ; t] where t is tRows×m.Cols.
func (m *CSR) AugmentRows(t *CSR) *CSR {
	if m.Cols != t.Cols {
		panic(fmt.Sprintf("sparse: AugmentRows cols %d != %d", m.Cols, t.Cols))
	}
	b := NewBuilder(m.Rows+t.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		m.Row(i, func(j int, v float64) { b.Add(i, j, v) })
	}
	for i := 0; i < t.Rows; i++ {
		t.Row(i, func(j int, v float64) { b.Add(m.Rows+i, j, v) })
	}
	return b.Build()
}

// FromDense builds a CSR from a dense [][]float64, dropping exact zeros.
func FromDense(rows [][]float64) *CSR {
	if len(rows) == 0 {
		return NewBuilder(0, 0).Build()
	}
	b := NewBuilder(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			panic(fmt.Sprintf("sparse: ragged dense row %d", i))
		}
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}
