package sparse

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Regression for the integer-division collapse: with NNZ < nw the per-chunk
// target rounded to 0, every interior bound stayed at row 0, and the whole
// matrix landed on the last worker — the "parallel" path ran serial.
func TestNNZPartitionTinyNNZManyWorkers(t *testing.T) {
	// 100 rows, 3 nonzeros at rows 10, 50, 90.
	b := NewBuilder(100, 4)
	b.Add(10, 0, 1)
	b.Add(50, 1, 2)
	b.Add(90, 2, 3)
	m := b.Build()

	for _, nw := range []int{2, 4, 8, 16, 64} {
		bounds := m.nnzPartition(nw)
		if len(bounds) != nw+1 {
			t.Fatalf("nw=%d: %d bounds want %d", nw, len(bounds), nw+1)
		}
		if bounds[0] != 0 || bounds[nw] != m.Rows {
			t.Fatalf("nw=%d: bounds must span [0,%d], got %v", nw, m.Rows, bounds)
		}
		for w := 0; w < nw; w++ {
			if bounds[w] > bounds[w+1] {
				t.Fatalf("nw=%d: bounds not monotone: %v", nw, bounds)
			}
		}
		// No single chunk may hold all three nonzeros when nw ≥ 2: the clamp
		// must spread them.
		for w := 0; w < nw; w++ {
			nnz := m.RowPtr[bounds[w+1]] - m.RowPtr[bounds[w]]
			if nnz == m.NNZ() {
				t.Fatalf("nw=%d: chunk [%d,%d) holds all %d nonzeros: %v",
					nw, bounds[w], bounds[w+1], nnz, bounds)
			}
		}
	}
}

func TestNNZPartitionEmptyMatrix(t *testing.T) {
	m := NewBuilder(5, 5).Build()
	bounds := m.nnzPartition(4)
	if bounds[0] != 0 || bounds[len(bounds)-1] != 5 {
		t.Fatalf("empty matrix bounds %v", bounds)
	}
	for w := 0; w+1 < len(bounds); w++ {
		if bounds[w] > bounds[w+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
}

// MulDenseT must agree with k separate MulVecT calls on the columns.
func TestMulDenseTMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ r, c, k int }{
		{9, 14, 1}, {9, 14, 3}, {40, 25, 7}, {3, 200, 5},
	} {
		m := randomCSR(rng, tc.r, tc.c, 0.3)
		b := make([]float64, tc.r*tc.k)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := m.MulDenseT(b, tc.k)
		x := make([]float64, tc.r)
		y := make([]float64, tc.c)
		for col := 0; col < tc.k; col++ {
			for i := 0; i < tc.r; i++ {
				x[i] = b[i*tc.k+col]
			}
			m.MulVecT(x, y)
			for j := 0; j < tc.c; j++ {
				if math.Abs(got[j*tc.k+col]-y[j]) > 1e-12 {
					t.Fatalf("%dx%d k=%d: out[%d,%d] = %v want %v",
						tc.r, tc.c, tc.k, j, col, got[j*tc.k+col], y[j])
				}
			}
		}
	}
}

// The parallel column-strip path must produce bit-identical output to the
// serial loop: each output element is summed in ascending row order no
// matter how the strips are cut.
func TestMulDenseTParallelBitStable(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(12))
	// Large enough that NNZ*k clears the parallel cutoff.
	m := randomCSR(rng, 400, 300, 0.15)
	k := 8
	b := make([]float64, m.Rows*k)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := m.MulDenseT(b, k)

	// Serial reference via the same kernel with the cutoff forced off by a
	// k=1 column-at-a-time sweep.
	for col := 0; col < k; col++ {
		x := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			x[i] = b[i*k+col]
		}
		single := m.MulDenseT(x, 1)
		for j := 0; j < m.Cols; j++ {
			if got[j*k+col] != single[j] {
				t.Fatalf("parallel MulDenseT not bit-stable at (%d,%d): %v vs %v",
					j, col, got[j*k+col], single[j])
			}
		}
	}
}

func TestMulDenseTPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := randomCSR(rand.New(rand.NewSource(13)), 4, 5, 0.5)
	m.MulDenseT(make([]float64, 7), 2)
}
