package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	b := NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, -1)
	b.Add(0, 1, 3) // duplicate: sums to 5
	b.Add(1, 0, 0) // explicit zero: dropped
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d want 2", m.NNZ())
	}
	if m.At(0, 1) != 5 || m.At(2, 3) != -1 || m.At(1, 0) != 0 {
		t.Fatalf("values wrong: %v %v %v", m.At(0, 1), m.At(2, 3), m.At(1, 0))
	}
}

func TestBuilderDuplicateCancellation(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	m := b.Build()
	if m.NNZ() != 0 || m.At(0, 0) != 0 {
		t.Fatal("cancelling duplicates should leave no stored entry")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}}
	m := FromDense(d)
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	back := m.Dense()
	for i := range d {
		for j := range d[i] {
			if back[i][j] != d[i][j] {
				t.Fatalf("roundtrip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 13, 7, 0.2)
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !mt.T().Equal(m, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCSR(rng, 11, 6, 0.3)
	d := m.Dense()
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 11)
	m.MulVec(x, y)
	for i := 0; i < 11; i++ {
		var want float64
		for j := 0; j < 6; j++ {
			want += d[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("MulVec row %d: %v want %v", i, y[i], want)
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 9, 14, 0.25)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 14)
	m.MulVecT(x, got)
	want := make([]float64, 14)
	m.T().MulVec(x, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestParallelMatVecLarge(t *testing.T) {
	// Big enough to engage the parallel path; compare against the serial
	// range function directly.
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 2000, 500, 0.05)
	if m.NNZ() < matvecParallelCutoff {
		t.Fatalf("test matrix too small to exercise parallel path: %d", m.NNZ())
	}
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	par := make([]float64, 2000)
	m.MulVec(x, par)
	ser := make([]float64, 2000)
	m.mulVecRange(x, ser, 0, m.Rows)
	for i := range par {
		if math.Abs(par[i]-ser[i]) > 1e-10 {
			t.Fatalf("parallel MulVec differs at %d", i)
		}
	}

	xt := make([]float64, 2000)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	parT := make([]float64, 500)
	m.MulVecT(xt, parT)
	serT := make([]float64, 500)
	m.mulVecTRange(xt, serT, 0, m.Rows)
	for i := range parT {
		if math.Abs(parT[i]-serT[i]) > 1e-9 {
			t.Fatalf("parallel MulVecT differs at %d", i)
		}
	}
}

func TestNNZPartitionCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 100, 50, 0.1)
	for _, nw := range []int{1, 2, 3, 7, 100} {
		b := m.nnzPartition(nw)
		if b[0] != 0 || b[len(b)-1] != m.Rows {
			t.Fatalf("partition endpoints wrong: %v", b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("partition not monotone: %v", b)
			}
		}
	}
}

func TestMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomCSR(rng, 8, 5, 0.4)
	k := 3
	b := make([]float64, 5*k)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	out := m.MulDense(b, k)
	// Check column by column via MulVec.
	for c := 0; c < k; c++ {
		x := make([]float64, 5)
		for j := 0; j < 5; j++ {
			x[j] = b[j*k+c]
		}
		y := make([]float64, 8)
		m.MulVec(x, y)
		for i := 0; i < 8; i++ {
			if math.Abs(out[i*k+c]-y[i]) > 1e-12 {
				t.Fatalf("MulDense (%d,%d) = %v want %v", i, c, out[i*k+c], y[i])
			}
		}
	}
}

func TestScaleRowsAndMap(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 0}})
	s := m.ScaleRows([]float64{2, -1})
	if s.At(0, 0) != 2 || s.At(0, 1) != 4 || s.At(1, 0) != -3 {
		t.Fatal("ScaleRows wrong")
	}
	sq := m.Map(func(v float64) float64 { return v * v })
	if sq.At(1, 0) != 9 || sq.At(0, 1) != 4 {
		t.Fatal("Map wrong")
	}
	// Original untouched (immutability).
	if m.At(0, 0) != 1 {
		t.Fatal("source mutated")
	}
}

func TestColNormsAndFrobenius(t *testing.T) {
	m := FromDense([][]float64{{3, 0}, {4, 2}})
	cn := m.ColNorms()
	if math.Abs(cn[0]-5) > 1e-14 || math.Abs(cn[1]-2) > 1e-14 {
		t.Fatalf("ColNorms = %v", cn)
	}
	want := math.Sqrt(9 + 16 + 4)
	if f := m.FrobeniusNorm(); math.Abs(f-want) > 1e-14 {
		t.Fatalf("Frobenius = %v want %v", f, want)
	}
}

func TestAugment(t *testing.T) {
	a := FromDense([][]float64{{1, 2}, {3, 4}})
	d := FromDense([][]float64{{5}, {6}})
	ac := a.AugmentCols(d)
	if ac.Cols != 3 || ac.At(0, 2) != 5 || ac.At(1, 2) != 6 || ac.At(1, 1) != 4 {
		t.Fatal("AugmentCols wrong")
	}
	tr := FromDense([][]float64{{7, 8}})
	arr := a.AugmentRows(tr)
	if arr.Rows != 3 || arr.At(2, 0) != 7 || arr.At(2, 1) != 8 {
		t.Fatal("AugmentRows wrong")
	}
}

func TestDensityStat(t *testing.T) {
	m := FromDense([][]float64{{1, 0}, {0, 0}})
	if d := m.Density(); d != 0.25 {
		t.Fatalf("Density = %v", d)
	}
}

func TestEqualDifferentStructure(t *testing.T) {
	a := FromDense([][]float64{{1, 0}, {0, 2}})
	b := FromDense([][]float64{{1, 1e-15}, {0, 2}})
	if !a.Equal(b, 1e-12) {
		t.Fatal("Equal should tolerate tiny structural extras")
	}
	c := FromDense([][]float64{{1, 0.5}, {0, 2}})
	if a.Equal(c, 1e-12) {
		t.Fatal("Equal should detect real differences")
	}
}

// Property: (x)ᵀ(Ay) == (Aᵀx)ᵀ(y) — the adjoint identity the Lanczos
// recurrence depends on.
func TestAdjointIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 7, 5, 0.3)
		x := make([]float64, 7)
		y := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ay := make([]float64, 7)
		m.MulVec(y, ay)
		atx := make([]float64, 5)
		m.MulVecT(x, atx)
		var lhs, rhs float64
		for i := range x {
			lhs += x[i] * ay[i]
		}
		for i := range y {
			rhs += atx[i] * y[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build is order-independent.
func TestBuildOrderIndependentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coords := make([]Coord, 30)
		for i := range coords {
			coords[i] = Coord{rng.Intn(6), rng.Intn(6), float64(rng.Intn(9) + 1)}
		}
		b1 := NewBuilder(6, 6)
		for _, c := range coords {
			b1.Add(c.Row, c.Col, c.Val)
		}
		b2 := NewBuilder(6, 6)
		for _, i := range rng.Perm(len(coords)) {
			b2.Add(coords[i].Row, coords[i].Col, coords[i].Val)
		}
		return b1.Build().Equal(b2.Build(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVecSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 5000, 2000, 0.002) // ~20k nnz: below cutoff
	x := make([]float64, 2000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.mulVecRange(x, y, 0, m.Rows)
	}
}

func BenchmarkMulVecParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 20000, 5000, 0.01) // ~1M nnz: parallel path
	x := make([]float64, 5000)
	y := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 20000, 5000, 0.01)
	x := make([]float64, 20000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(x, y)
	}
}
