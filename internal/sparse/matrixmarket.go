package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate format — the
// standard interchange format for sparse matrices (the modern successor to
// the Harwell–Boeing files SVDPACK consumed). Indices are 1-based per the
// specification.
func (m *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxMMDim caps the dimensions accepted from a MatrixMarket size line.
// Build allocates rows+1 row pointers up front, so without a bound a
// one-line header like "9000000000 1 0" forces a multi-gigabyte
// allocation before a single entry is parsed. 1<<24 is two orders of
// magnitude beyond the TREC-scale collections this code targets.
const maxMMDim = 1 << 24

// ReadMatrixMarket parses a MatrixMarket coordinate file (real, general).
// Comment lines (%) are skipped; duplicate entries are summed, matching
// Builder semantics.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	// Header line.
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket file: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket layout %q", header[2])
	}
	if header[3] != "real" && header[3] != "integer" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", header[3])
	}
	symmetric := len(header) > 4 && header[4] == "symmetric"

	// Size line (after comments).
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %d×%d nnz=%d", rows, cols, nnz)
	}
	if rows > maxMMDim || cols > maxMMDim {
		return nil, fmt.Errorf("sparse: dimensions %d×%d exceed limit %d", rows, cols, maxMMDim)
	}
	b := NewBuilder(rows, cols)
	seen := 0
	for sc.Scan() && seen < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		v, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %d×%d", i, j, rows, cols)
		}
		b.Add(i-1, j-1, v)
		if symmetric && i != j {
			b.Add(j-1, i-1, v)
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, seen)
	}
	return b.Build(), nil
}
