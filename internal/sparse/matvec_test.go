package sparse

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// bigCSR builds a matrix whose nonzero count clears the parallel cutoff,
// so MulVecT takes the sharded path with per-worker accumulators.
func bigCSR(t *testing.T) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 2000, 1500, 0.02)
	if m.NNZ() < matvecParallelCutoff {
		t.Fatalf("fixture too sparse: %d nnz < cutoff %d", m.NNZ(), matvecParallelCutoff)
	}
	return m
}

// TestNNZPartitionCached pins the satellite contract: the bounds depend
// only on the immutable structure, so repeated calls return the identical
// cached slice, which matches a fresh computation for every worker count.
func TestNNZPartitionCached(t *testing.T) {
	m := bigCSR(t)
	for _, nw := range []int{1, 2, 3, 4, 7, 16} {
		first := m.nnzPartition(nw)
		fresh := m.computeNNZPartition(nw)
		if !reflect.DeepEqual(first, fresh) {
			t.Fatalf("nw=%d: cached bounds %v != fresh %v", nw, first, fresh)
		}
		for rep := 0; rep < 3; rep++ {
			again := m.nnzPartition(nw)
			if !reflect.DeepEqual(again, first) {
				t.Fatalf("nw=%d: repeated call changed bounds: %v -> %v", nw, first, again)
			}
			if &again[0] != &first[0] {
				t.Fatalf("nw=%d: repeated call recomputed instead of hitting the cache", nw)
			}
		}
	}
	// Distinct worker counts get distinct cached entries.
	if &m.nnzPartition(2)[0] == &m.nnzPartition(4)[0] {
		t.Fatal("different worker counts share one cache entry")
	}
}

// TestMulVecTScratchReuse asserts the accumulator pool does its job: the
// steady-state heap traffic of a parallel Aᵀx must stay far below one
// Cols-sized accumulator per call, let alone the GOMAXPROCS of them the
// unpooled path allocated. Goroutine spawns and the partials slice still
// allocate a few dozen bytes each — the budget of half an accumulator
// leaves them room while failing loudly if the big buffers come back.
func TestMulVecTScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates per-op allocations past any honest budget")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	m := bigCSR(t)
	x := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, m.Cols)
	want := make([]float64, m.Cols)
	m.MulVecT(x, want) // warm the pool and the partition cache

	const runs = 50
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		m.MulVecT(x, y)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.TotalAlloc-before.TotalAlloc) / runs
	if budget := float64(m.Cols * 8 / 2); perOp > budget {
		t.Fatalf("MulVecT allocates %.0f B/op; want < %.0f (accumulators not reused)", perOp, budget)
	}
	if !reflect.DeepEqual(y, want) {
		t.Fatal("pooled accumulators changed the result")
	}
}

// TestMulVecTPooledParity re-checks numeric parity against the serial
// kernel now that accumulators are recycled (a stale, un-zeroed buffer
// would corrupt exactly this).
func TestMulVecTPooledParity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	m := bigCSR(t)
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, m.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, m.Cols)
	m.mulVecTRange(x, serial, 0, m.Rows)
	got := make([]float64, m.Cols)
	for rep := 0; rep < 5; rep++ {
		m.MulVecT(x, got)
		for j := range got {
			if d := got[j] - serial[j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("rep %d col %d: parallel %v serial %v", rep, j, got[j], serial[j])
			}
		}
	}
}
