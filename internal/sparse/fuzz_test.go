package sparse

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadMatrixMarket throws arbitrary bytes at the MatrixMarket parser.
// Inputs that parse must yield a structurally valid CSR and survive a
// write/re-read round trip bit-for-bit; everything else must return an
// error — never panic, never attempt an allocation sized by attacker-
// controlled header fields (see maxMMDim).
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		// Well-formed general matrix with a comment and a duplicate entry.
		"%%MatrixMarket matrix coordinate real general\n% comment\n3 4 3\n1 1 2.5\n2 3 -1\n2 3 0.5\n",
		// Symmetric layout mirrors off-diagonal entries.
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 1 3.0\n",
		// Integer field, scientific notation, blank lines between entries.
		"%%MatrixMarket matrix coordinate integer general\n2 2 1\n\n1 2 7\n",
		// Malformed: truncated entry list.
		"%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n",
		// Malformed: out-of-range index.
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		// Malformed: overflowing dimensions and indices.
		"%%MatrixMarket matrix coordinate real general\n99999999999999999999 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n9000000000 9000000000 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n99999999999999999999 1 1.0\n",
		// Malformed: not MatrixMarket at all / wrong layout.
		"hello world\n",
		"%%MatrixMarket matrix array real general\n2 2\n1.0\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Structural CSR invariants.
		if m.Rows <= 0 || m.Cols <= 0 {
			t.Fatalf("parsed matrix has non-positive shape %dx%d", m.Rows, m.Cols)
		}
		if len(m.RowPtr) != m.Rows+1 || m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != m.NNZ() {
			t.Fatalf("inconsistent RowPtr (len %d, rows %d, nnz %d)", len(m.RowPtr), m.Rows, m.NNZ())
		}
		if len(m.ColIdx) != len(m.Val) {
			t.Fatalf("ColIdx/Val length mismatch: %d vs %d", len(m.ColIdx), len(m.Val))
		}
		for i := 0; i < m.Rows; i++ {
			if m.RowPtr[i] > m.RowPtr[i+1] {
				t.Fatalf("RowPtr not monotone at row %d", i)
			}
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if m.ColIdx[p] < 0 || m.ColIdx[p] >= m.Cols {
					t.Fatalf("column %d out of range at row %d", m.ColIdx[p], i)
				}
				if p > m.RowPtr[i] && m.ColIdx[p-1] >= m.ColIdx[p] {
					t.Fatalf("columns not strictly ascending in row %d", i)
				}
			}
		}
		// Round trip: writing what we parsed and parsing it again must
		// reproduce the exact matrix (%.17g round-trips every float64,
		// including NaN and the infinities, and Build drops exact-zero
		// cancellations on both sides).
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatalf("write back: %v", err)
		}
		m2, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\noutput:\n%s", err, buf.Bytes())
		}
		if m2.Rows != m.Rows || m2.Cols != m.Cols || m2.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d nnz %d -> %dx%d nnz %d",
				m.Rows, m.Cols, m.NNZ(), m2.Rows, m2.Cols, m2.NNZ())
		}
		for i := range m.RowPtr {
			if m.RowPtr[i] != m2.RowPtr[i] {
				t.Fatalf("round trip changed RowPtr[%d]: %d -> %d", i, m.RowPtr[i], m2.RowPtr[i])
			}
		}
		for p := range m.Val {
			if m.ColIdx[p] != m2.ColIdx[p] {
				t.Fatalf("round trip changed ColIdx[%d]: %d -> %d", p, m.ColIdx[p], m2.ColIdx[p])
			}
			if math.Float64bits(m.Val[p]) != math.Float64bits(m2.Val[p]) {
				t.Fatalf("round trip changed Val[%d]: %x -> %x",
					p, math.Float64bits(m.Val[p]), math.Float64bits(m2.Val[p]))
			}
		}
	})
}
