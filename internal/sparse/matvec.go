package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// matvecParallelCutoff is the nnz count below which MulVec stays serial.
// Measured on commodity hardware, goroutine fan-out only pays for itself
// once each worker has tens of thousands of multiply-adds.
const matvecParallelCutoff = 1 << 15

// MulVec computes y = A·x. y must have length A.Rows; it is fully
// overwritten. Rows are partitioned across GOMAXPROCS goroutines for large
// matrices — rows are independent, so no synchronization beyond the final
// barrier is needed.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims x=%d y=%d want %d,%d", len(x), len(y), m.Cols, m.Rows))
	}
	nw := runtime.GOMAXPROCS(0)
	if m.NNZ() < matvecParallelCutoff || nw < 2 || m.Rows < 2 {
		m.mulVecRange(x, y, 0, m.Rows)
		return
	}
	if nw > m.Rows {
		nw = m.Rows
	}
	var wg sync.WaitGroup
	// Partition by nnz, not by row count, so skewed matrices (a few very
	// dense rows) still balance.
	bounds := m.nnzPartition(nw)
	for w := 0; w < len(bounds)-1; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulVecRange(x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (m *CSR) mulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
}

// nnzPartition returns nw+1 row boundaries splitting the matrix into chunks
// of roughly equal nonzero count. The bounds depend only on the immutable
// RowPtr structure, so they are computed once per (matrix, nw) and cached
// — without the cache every matvec rescans RowPtr, which for the Lanczos
// inner loop means millions of pointless comparisons per build. Callers
// must treat the returned slice as read-only (they all do: it is consumed
// as loop bounds).
func (m *CSR) nnzPartition(nw int) []int {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	if b, ok := m.parts[nw]; ok {
		return b
	}
	b := m.computeNNZPartition(nw)
	if m.parts == nil {
		m.parts = make(map[int][]int, 4)
	}
	m.parts[nw] = b
	return b
}

// computeNNZPartition does the actual boundary scan. The per-chunk target
// is clamped to at least one nonzero: with NNZ < nw an integer target of 0
// would make every interior bound collapse to row 0, leaving all rows on a
// single worker — the opposite of what the partition is for.
func (m *CSR) computeNNZPartition(nw int) []int {
	bounds := make([]int, nw+1)
	bounds[nw] = m.Rows
	target := m.NNZ() / nw
	if target < 1 {
		target = 1
	}
	row := 0
	for w := 1; w < nw; w++ {
		want := w * target
		for row < m.Rows && m.RowPtr[row] < want {
			row++
		}
		bounds[w] = row
	}
	return bounds
}

// MulVecT computes y = Aᵀ·x. y must have length A.Cols; it is fully
// overwritten. The parallel path gives each worker a private accumulator
// (scatter into shared y would race), then reduces.
func (m *CSR) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVecT dims x=%d y=%d want %d,%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	nw := runtime.GOMAXPROCS(0)
	if m.NNZ() < matvecParallelCutoff || nw < 2 || m.Rows < 2 {
		m.mulVecTRange(x, y, 0, m.Rows)
		return
	}
	if nw > m.Rows {
		nw = m.Rows
	}
	bounds := m.nnzPartition(nw)
	partials := make([]*[]float64, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := m.getAcc()
			m.mulVecTRange(x, *acc, lo, hi)
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	// Reduce in worker order — deterministic summation — then hand each
	// accumulator back to the pool for the next call.
	for _, acc := range partials {
		if acc == nil {
			continue
		}
		for i, v := range *acc {
			y[i] += v
		}
		m.putAcc(acc)
	}
}

// getAcc returns a zeroed Cols-sized accumulator, reusing a pooled one
// when available. Pool entries are pointers so Put does not re-box the
// slice header on every cycle.
func (m *CSR) getAcc() *[]float64 {
	if v := m.acc.Get(); v != nil {
		p := v.(*[]float64)
		if acc := *p; len(acc) == m.Cols {
			for i := range acc {
				acc[i] = 0
			}
			return p
		}
	}
	acc := make([]float64, m.Cols)
	return &acc
}

func (m *CSR) putAcc(p *[]float64) { m.acc.Put(p) }

func (m *CSR) mulVecTRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			y[m.ColIdx[p]] += m.Val[p] * xi
		}
	}
}

// MulDense computes A·B for a dense column-major-agnostic B given as rows
// (B is Cols×k, result is Rows×k, both as flat row-major with stride k).
// Used to form A·V_k when extracting left singular vectors, and as the
// sparse side of blocked power iterations (one pass over A for a whole
// block of vectors instead of k separate matvec sweeps).
func (m *CSR) MulDense(b []float64, k int) []float64 {
	if len(b) != m.Cols*k {
		panic(fmt.Sprintf("sparse: MulDense b len %d want %d", len(b), m.Cols*k))
	}
	out := make([]float64, m.Rows*k)
	nw := runtime.GOMAXPROCS(0)
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out[i*k : (i+1)*k]
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := m.Val[p]
				brow := b[m.ColIdx[p]*k : (m.ColIdx[p]+1)*k]
				for c, bv := range brow {
					orow[c] += v * bv
				}
			}
		}
	}
	if m.NNZ()*k < matvecParallelCutoff || nw < 2 || m.Rows < 2 {
		run(0, m.Rows)
		return out
	}
	if nw > m.Rows {
		nw = m.Rows
	}
	bounds := m.nnzPartition(nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MulDenseT computes Aᵀ·B for a dense B given as rows (B is Rows×k, result
// is Cols×k, both flat row-major with stride k) — the adjoint companion of
// MulDense, used by blocked power iterations and the SVD-updating paths.
// The parallel path partitions the k block columns across workers: each
// worker scans the whole CSR structure but scatters into a disjoint column
// strip of the output, so no accumulator copies are needed and every
// output element is summed in the same ascending-row order as the serial
// loop (the result does not depend on the worker count).
func (m *CSR) MulDenseT(b []float64, k int) []float64 {
	if len(b) != m.Rows*k {
		panic(fmt.Sprintf("sparse: MulDenseT b len %d want %d", len(b), m.Rows*k))
	}
	out := make([]float64, m.Cols*k)
	run := func(c0, c1 int) {
		for i := 0; i < m.Rows; i++ {
			brow := b[i*k+c0 : i*k+c1]
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := m.Val[p]
				orow := out[m.ColIdx[p]*k+c0 : m.ColIdx[p]*k+c1]
				for c, bv := range brow {
					orow[c] += v * bv
				}
			}
		}
	}
	nw := runtime.GOMAXPROCS(0)
	if m.NNZ()*k < matvecParallelCutoff || nw < 2 || k < 2 {
		run(0, k)
		return out
	}
	if nw > k {
		nw = k
	}
	chunk := (k + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
