package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := randomCSR(rng, 17, 9, 0.25)
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestReadMatrixMarketHandComposed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment line
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 0) != 2.5 || m.At(2, 3) != -1 || m.At(1, 1) != 7 {
		t.Fatal("values wrong")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 4
3 3 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 4 || m.At(0, 1) != 4 || m.At(2, 2) != 1 {
		t.Fatal("symmetric mirroring wrong")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"not a header\n1 1 1\n", // bad header
		"%%MatrixMarket matrix array real general\n1 1\n1\n",                 // unsupported layout
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // unsupported field
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",      // index out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",      // truncated
		"%%MatrixMarket matrix coordinate real general\n-1 2 0\n",            // bad dims
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",      // bad entry
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d should have failed", i)
		}
	}
}

func TestMatrixMarketDuplicatesSum(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
1 1 2.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 4 {
		t.Fatalf("duplicates not summed: %v", m.At(0, 0))
	}
}
