//go:build !race

package sparse

// raceEnabled reports whether the race detector instruments this build;
// allocation-budget assertions are meaningless under its overhead.
const raceEnabled = false
