// Package eval implements the retrieval-effectiveness measures of §5.1:
// precision, recall, interpolated precision at fixed recall levels, and the
// paper's summary statistic — "average precision over recall levels of
// 0.25, 0.50 and 0.75" (§5.2, footnote 2).
package eval

import (
	"fmt"
	"sort"
)

// PaperRecallLevels are the three recall levels the paper averages over.
var PaperRecallLevels = []float64{0.25, 0.50, 0.75}

// PrecisionRecall computes precision and recall after examining the top-z
// documents of a ranking.
func PrecisionRecall(ranking []int, relevant map[int]bool, z int) (precision, recall float64) {
	if z > len(ranking) {
		z = len(ranking)
	}
	if z <= 0 || len(relevant) == 0 {
		return 0, 0
	}
	hits := 0
	for _, doc := range ranking[:z] {
		if relevant[doc] {
			hits++
		}
	}
	return float64(hits) / float64(z), float64(hits) / float64(len(relevant))
}

// InterpolatedPrecision returns the interpolated precision at the given
// recall level: the maximum precision at any cutoff whose recall meets or
// exceeds the level (the standard 11-point interpolation rule).
func InterpolatedPrecision(ranking []int, relevant map[int]bool, level float64) float64 {
	if len(relevant) == 0 {
		return 0
	}
	best := 0.0
	hits := 0
	for i, doc := range ranking {
		if relevant[doc] {
			hits++
		}
		recall := float64(hits) / float64(len(relevant))
		if recall+1e-12 >= level {
			p := float64(hits) / float64(i+1)
			if p > best {
				best = p
			}
		}
	}
	return best
}

// AveragePrecisionAtLevels is the paper's performance number: the mean of
// interpolated precision over the given recall levels (PaperRecallLevels
// when levels is nil).
func AveragePrecisionAtLevels(ranking []int, relevant map[int]bool, levels []float64) float64 {
	if levels == nil {
		levels = PaperRecallLevels
	}
	var sum float64
	for _, l := range levels {
		sum += InterpolatedPrecision(ranking, relevant, l)
	}
	return sum / float64(len(levels))
}

// MeanAveragePrecision averages AveragePrecisionAtLevels over queries:
// rankings[i] is judged against relevants[i].
func MeanAveragePrecision(rankings [][]int, relevants []map[int]bool, levels []float64) float64 {
	if len(rankings) != len(relevants) {
		panic(fmt.Sprintf("eval: %d rankings vs %d judgment sets", len(rankings), len(relevants)))
	}
	if len(rankings) == 0 {
		return 0
	}
	var sum float64
	for i := range rankings {
		sum += AveragePrecisionAtLevels(rankings[i], relevants[i], levels)
	}
	return sum / float64(len(rankings))
}

// RelevantSet converts a relevance list into the set form the metrics use.
func RelevantSet(relevant []int) map[int]bool {
	out := make(map[int]bool, len(relevant))
	for _, d := range relevant {
		out[d] = true
	}
	return out
}

// RankingFromScores converts per-document scores into a ranking
// (descending score, ascending index tiebreak).
func RankingFromScores(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// Improvement returns the relative improvement of a over b in percent —
// how the paper reports "LSI was 16% better than keyword matching".
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// Pool implements the pooling method of §5.1's footnote: "relevance
// judgements are made on the pooled set of the top-ranked documents
// returned by several different retrieval systems for the same set of
// queries." Given each system's ranking for one query and a pool depth, it
// returns the union of the top-depth documents, sorted ascending — the set
// that would be sent to human assessors.
func Pool(rankings [][]int, depth int) []int {
	seen := map[int]bool{}
	for _, r := range rankings {
		d := depth
		if d > len(r) {
			d = len(r)
		}
		for _, doc := range r[:d] {
			seen[doc] = true
		}
	}
	out := make([]int, 0, len(seen))
	for doc := range seen {
		out = append(out, doc)
	}
	sort.Ints(out)
	return out
}

// PooledJudgments restricts full relevance judgments to a pool, modeling
// the evaluation bias pooling introduces: relevant documents outside the
// pool are treated as unjudged (absent), exactly the hazard the footnote
// notes for "new systems" whose top documents were not pooled.
func PooledJudgments(relevant map[int]bool, pool []int) map[int]bool {
	inPool := make(map[int]bool, len(pool))
	for _, doc := range pool {
		inPool[doc] = true
	}
	out := map[int]bool{}
	for doc := range relevant {
		if inPool[doc] {
			out[doc] = true
		}
	}
	return out
}
