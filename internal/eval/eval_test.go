package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionRecallByHand(t *testing.T) {
	ranking := []int{3, 1, 4, 2, 0}
	rel := RelevantSet([]int{1, 2})
	p, r := PrecisionRecall(ranking, rel, 2)
	if p != 0.5 || r != 0.5 { // top 2 = {3,1}: one hit of two relevant
		t.Fatalf("p=%v r=%v", p, r)
	}
	p, r = PrecisionRecall(ranking, rel, 4)
	if p != 0.5 || r != 1 {
		t.Fatalf("p=%v r=%v", p, r)
	}
	// z beyond ranking length clamps.
	p, r = PrecisionRecall(ranking, rel, 99)
	if r != 1 || math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("clamped p=%v r=%v", p, r)
	}
}

func TestPrecisionRecallDegenerate(t *testing.T) {
	if p, r := PrecisionRecall(nil, RelevantSet([]int{1}), 3); p != 0 || r != 0 {
		t.Fatal("empty ranking")
	}
	if p, r := PrecisionRecall([]int{0}, RelevantSet(nil), 1); p != 0 || r != 0 {
		t.Fatal("no relevant docs")
	}
}

func TestInterpolatedPrecisionPerfectRanking(t *testing.T) {
	ranking := []int{0, 1, 2, 3, 4}
	rel := RelevantSet([]int{0, 1})
	for _, level := range []float64{0.25, 0.5, 0.75, 1.0} {
		if p := InterpolatedPrecision(ranking, rel, level); p != 1 {
			t.Fatalf("perfect ranking level %v precision %v", level, p)
		}
	}
}

func TestInterpolatedPrecisionWorstRanking(t *testing.T) {
	ranking := []int{2, 3, 4, 0, 1}
	rel := RelevantSet([]int{0, 1})
	// First relevant at position 4 (recall .5, precision 1/4); second at 5.
	if p := InterpolatedPrecision(ranking, rel, 0.5); math.Abs(p-0.4) > 1e-12 {
		// interpolation takes the max precision at recall ≥ .5: 2/5 = 0.4
		t.Fatalf("precision %v want 0.4", p)
	}
	if p := InterpolatedPrecision(ranking, rel, 1.0); math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("precision %v want 0.4", p)
	}
}

func TestAveragePrecisionDefaults(t *testing.T) {
	ranking := []int{0, 2, 1}
	rel := RelevantSet([]int{0, 1})
	got := AveragePrecisionAtLevels(ranking, rel, nil)
	// Levels .25 and .5 satisfied at rank 1 (p=1); .75 needs both relevant:
	// reached at rank 3 with p=2/3.
	want := (1.0 + 1.0 + 2.0/3.0) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg precision %v want %v", got, want)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	r1 := []int{0, 1}
	r2 := []int{1, 0}
	rel := RelevantSet([]int{0})
	m := MeanAveragePrecision([][]int{r1, r2}, []map[int]bool{rel, rel}, nil)
	// Query 1: ap 1; query 2: relevant at rank 2 → interp precision .5 at
	// all levels.
	if math.Abs(m-0.75) > 1e-12 {
		t.Fatalf("MAP %v want 0.75", m)
	}
}

func TestRankingFromScores(t *testing.T) {
	r := RankingFromScores([]float64{0.1, 0.9, 0.5, 0.9})
	// Ties broken by index: doc1 before doc3.
	want := []int{1, 3, 2, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranking %v want %v", r, want)
		}
	}
}

func TestImprovement(t *testing.T) {
	if v := Improvement(1.3, 1.0); math.Abs(v-30) > 1e-12 {
		t.Fatalf("improvement %v", v)
	}
	if v := Improvement(1, 0); v != 0 {
		t.Fatalf("zero-base improvement %v", v)
	}
}

// Property: interpolated precision is non-increasing in the recall level.
func TestInterpolatedPrecisionMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		// Build a deterministic pseudo-random ranking of 20 docs with 5
		// relevant, derived from the seed.
		ranking := make([]int, 20)
		for i := range ranking {
			ranking[i] = i
		}
		s := uint64(seed)
		for i := len(ranking) - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		rel := RelevantSet([]int{2, 5, 7, 11, 13})
		prev := math.Inf(1)
		for _, level := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			p := InterpolatedPrecision(ranking, rel, level)
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: PrecisionRecall recall is non-decreasing in z.
func TestRecallMonotoneInZQuick(t *testing.T) {
	f := func(seed int64) bool {
		ranking := make([]int, 15)
		for i := range ranking {
			ranking[i] = i
		}
		s := uint64(seed)
		for i := len(ranking) - 1; i > 0; i-- {
			s = s*2862933555777941757 + 3037000493
			j := int(s % uint64(i+1))
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		rel := RelevantSet([]int{1, 4, 9})
		prev := 0.0
		for z := 1; z <= 15; z++ {
			_, r := PrecisionRecall(ranking, rel, z)
			if r < prev-1e-12 {
				return false
			}
			prev = r
		}
		return prev == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPool(t *testing.T) {
	r1 := []int{5, 3, 1, 9}
	r2 := []int{3, 7, 5, 0}
	pool := Pool([][]int{r1, r2}, 2)
	want := []int{3, 5, 7}
	if len(pool) != len(want) {
		t.Fatalf("pool %v want %v", pool, want)
	}
	for i := range want {
		if pool[i] != want[i] {
			t.Fatalf("pool %v want %v", pool, want)
		}
	}
	// Depth beyond ranking length clamps.
	if p := Pool([][]int{{1}}, 10); len(p) != 1 || p[0] != 1 {
		t.Fatalf("clamped pool %v", p)
	}
}

func TestPooledJudgments(t *testing.T) {
	rel := RelevantSet([]int{1, 2, 3})
	pooled := PooledJudgments(rel, []int{2, 3, 9})
	if len(pooled) != 2 || !pooled[2] || !pooled[3] || pooled[1] {
		t.Fatalf("pooled judgments %v", pooled)
	}
}

// Pooling bias: a system whose results were pooled evaluates at least as
// well under pooled judgments as a held-out system with the same true
// quality — the hazard the §5.1 footnote warns about.
func TestPoolingBiasAgainstUnpooledSystem(t *testing.T) {
	// True relevance: docs 0..4.
	rel := RelevantSet([]int{0, 1, 2, 3, 4})
	pooledSystem := []int{0, 1, 2, 9, 8, 7, 3, 4, 5, 6}
	// The held-out system finds different relevant docs first.
	heldOut := []int{4, 3, 6, 5, 2, 1, 0, 7, 8, 9}
	pool := Pool([][]int{pooledSystem}, 3) // only docs 0,1,2 judged relevant
	pj := PooledJudgments(rel, pool)
	apPooled := AveragePrecisionAtLevels(pooledSystem, pj, nil)
	apHeld := AveragePrecisionAtLevels(heldOut, pj, nil)
	apHeldTrue := AveragePrecisionAtLevels(heldOut, rel, nil)
	if apHeld >= apHeldTrue {
		t.Fatalf("pooled judgments should understate the unpooled system: %v vs true %v", apHeld, apHeldTrue)
	}
	if apPooled <= apHeld {
		t.Fatalf("bias should favor the pooled system: pooled %v vs held-out %v", apPooled, apHeld)
	}
}
