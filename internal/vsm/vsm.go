// Package vsm implements the retrieval baselines the paper compares LSI
// against: the standard SMART-style keyword vector-space model (weighted
// term vectors ranked by cosine, §5.1) and strict lexical (boolean overlap)
// matching (§1, §3.2).
package vsm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
	"repro/internal/weight"
)

// Model is a keyword vector-space index: documents are columns of the
// weighted term–document matrix, compared to weighted query vectors by
// cosine. This is the "standard keyword vector method in SMART" baseline.
type Model struct {
	Scheme weight.Scheme
	// W is the weighted m×n matrix; global holds the collection's global
	// term weights for query weighting.
	W      *sparse.CSR
	global []float64
	norms  []float64 // per-document Euclidean norms of W's columns
}

// Build indexes a raw count matrix under the weighting scheme.
func Build(raw *sparse.CSR, scheme weight.Scheme) *Model {
	w := weight.Apply(raw, scheme)
	return &Model{
		Scheme: scheme,
		W:      w,
		global: weight.GlobalWeights(raw, scheme.Global),
		norms:  w.ColNorms(),
	}
}

// Ranked is one scored document.
type Ranked struct {
	Doc   int
	Score float64
}

// Scores returns the cosine of the weighted query against every document.
func (m *Model) Scores(rawQuery []float64) []float64 {
	if len(rawQuery) != m.W.Rows {
		panic(fmt.Sprintf("vsm: query len %d want %d", len(rawQuery), m.W.Rows))
	}
	q := weight.QueryWeights(rawQuery, m.global, m.Scheme)
	qn := 0.0
	for _, v := range q {
		qn += v * v
	}
	qn = math.Sqrt(qn)
	dots := make([]float64, m.W.Cols)
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		m.W.Row(i, func(j int, v float64) { dots[j] += qi * v })
	}
	for j := range dots {
		if qn == 0 || m.norms[j] == 0 {
			dots[j] = 0
			continue
		}
		dots[j] /= qn * m.norms[j]
	}
	return dots
}

// Rank returns all documents sorted by descending cosine.
func (m *Model) Rank(rawQuery []float64) []Ranked {
	scores := m.Scores(rawQuery)
	out := make([]Ranked, len(scores))
	for j, s := range scores {
		out[j] = Ranked{Doc: j, Score: s}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return out[a].Score > out[b].Score
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

// PairCosine weights two raw count vectors with the model's scheme (using
// the collection's global weights) and returns their cosine — how a keyword
// system matches a standing profile against a document that is not in the
// indexed collection (the filtering baseline of §5.3).
func (m *Model) PairCosine(rawA, rawB []float64) float64 {
	a := weight.QueryWeights(rawA, m.global, m.Scheme)
	b := weight.QueryWeights(rawB, m.global, m.Scheme)
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// LexicalMatch returns the indices of documents sharing at least minShared
// query terms with the (raw) query — the literal term-matching retrieval
// of §1 whose synonymy/polysemy failures motivate LSI.
func LexicalMatch(raw *sparse.CSR, rawQuery []float64, minShared int) []int {
	if minShared <= 0 {
		minShared = 1
	}
	shared := make([]int, raw.Cols)
	for i, qi := range rawQuery {
		if qi <= 0 {
			continue
		}
		raw.Row(i, func(j int, v float64) {
			if v > 0 {
				shared[j]++
			}
		})
	}
	var out []int
	for j, s := range shared {
		if s >= minShared {
			out = append(out, j)
		}
	}
	return out
}
