package vsm

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/weight"
)

func sample() *sparse.CSR {
	// 4 terms × 3 docs.
	return sparse.FromDense([][]float64{
		{2, 0, 0},
		{1, 1, 0},
		{0, 1, 0},
		{0, 0, 3},
	})
}

func TestScoresCosineByHand(t *testing.T) {
	m := Build(sample(), weight.Raw)
	q := []float64{1, 0, 0, 0}
	s := m.Scores(q)
	// doc0 = (2,1,0,0): cos = 2/√5; doc1 = (0,1,1,0): 0; doc2: 0.
	if math.Abs(s[0]-2/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("s[0] = %v", s[0])
	}
	if s[1] != 0 || s[2] != 0 {
		t.Fatalf("scores = %v", s)
	}
}

func TestRankOrder(t *testing.T) {
	m := Build(sample(), weight.Raw)
	r := m.Rank([]float64{0, 1, 1, 0})
	if r[0].Doc != 1 {
		t.Fatalf("top doc %d want 1", r[0].Doc)
	}
	for i := 1; i < len(r); i++ {
		if r[i-1].Score < r[i].Score {
			t.Fatal("not sorted")
		}
	}
}

func TestZeroQueryAndZeroDoc(t *testing.T) {
	raw := sparse.FromDense([][]float64{{1, 0}, {0, 0}})
	m := Build(raw, weight.Raw)
	s := m.Scores([]float64{0, 0})
	for _, v := range s {
		if v != 0 {
			t.Fatal("zero query should score 0 everywhere")
		}
	}
	// Doc 1 is empty; any query scores it 0 without NaN.
	s = m.Scores([]float64{1, 0})
	if s[1] != 0 || math.IsNaN(s[1]) {
		t.Fatalf("empty doc score %v", s[1])
	}
}

func TestWeightedModelUsesScheme(t *testing.T) {
	raw := sparse.FromDense([][]float64{
		{1, 1, 1, 1}, // uniform term: entropy weight 0
		{3, 0, 0, 0},
	})
	m := Build(raw, weight.LogEntropy)
	// Query on the uniform term alone scores zero everywhere.
	s := m.Scores([]float64{1, 0})
	for _, v := range s {
		if v != 0 {
			t.Fatalf("uniform-term query should be annihilated, got %v", s)
		}
	}
}

func TestLexicalMatch(t *testing.T) {
	raw := sample()
	q := []float64{1, 1, 0, 0}
	got := LexicalMatch(raw, q, 1)
	// doc0 shares terms 0,1; doc1 shares term 1; doc2 none.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("lexical = %v", got)
	}
	got2 := LexicalMatch(raw, q, 2)
	if len(got2) != 1 || got2[0] != 0 {
		t.Fatalf("minShared=2 lexical = %v", got2)
	}
	if got3 := LexicalMatch(raw, []float64{0, 0, 0, 0}, 1); len(got3) != 0 {
		t.Fatalf("empty query matched %v", got3)
	}
}

func TestQueryDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(sample(), weight.Raw).Scores([]float64{1})
}
