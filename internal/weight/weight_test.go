package weight

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func sample() *sparse.CSR {
	// 3 terms × 4 docs.
	return sparse.FromDense([][]float64{
		{2, 0, 1, 0}, // term 0: concentrated
		{1, 1, 1, 1}, // term 1: uniform (uninformative)
		{0, 0, 0, 3}, // term 2: single doc
	})
}

func TestLocalSchemes(t *testing.T) {
	if LocalRaw.Apply(3) != 3 {
		t.Fatal("raw")
	}
	if math.Abs(LocalLog.Apply(3)-2) > 1e-12 { // log2(4)
		t.Fatalf("log: %v", LocalLog.Apply(3))
	}
	if LocalBinary.Apply(7) != 1 || LocalBinary.Apply(0) != 0 {
		t.Fatal("binary")
	}
}

func TestEntropyWeightExtremes(t *testing.T) {
	g := GlobalWeights(sample(), GlobalEntropy)
	// Uniform term: entropy weight → 0 exactly (p=1/4 each, n=4).
	if math.Abs(g[1]) > 1e-12 {
		t.Fatalf("uniform term entropy weight = %v want 0", g[1])
	}
	// Single-document term: weight 1 (no spread).
	if math.Abs(g[2]-1) > 1e-12 {
		t.Fatalf("concentrated term entropy weight = %v want 1", g[2])
	}
	// In-between term strictly between.
	if g[0] <= 0 || g[0] >= 1 {
		t.Fatalf("mixed term entropy weight = %v", g[0])
	}
}

func TestIDFWeight(t *testing.T) {
	g := GlobalWeights(sample(), GlobalIDF)
	// term 1 in all 4 docs: log2(4/4)+1 = 1.
	if math.Abs(g[1]-1) > 1e-12 {
		t.Fatalf("idf uniform = %v", g[1])
	}
	// term 2 in 1 of 4 docs: log2(4)+1 = 3.
	if math.Abs(g[2]-3) > 1e-12 {
		t.Fatalf("idf rare = %v", g[2])
	}
}

func TestGfIdfAndNormal(t *testing.T) {
	g := GlobalWeights(sample(), GlobalGfIdf)
	if math.Abs(g[0]-1.5) > 1e-12 { // gf=3, df=2
		t.Fatalf("gfidf = %v", g[0])
	}
	n := GlobalWeights(sample(), GlobalNormal)
	if math.Abs(n[1]-0.5) > 1e-12 { // 1/sqrt(4)
		t.Fatalf("normal = %v", n[1])
	}
}

func TestApplyRawNoneIsIdentity(t *testing.T) {
	a := sample()
	w := Apply(a, Raw)
	if !w.Equal(a, 0) {
		t.Fatal("raw×none should be the identity transform")
	}
}

func TestApplyLogEntropy(t *testing.T) {
	a := sample()
	w := Apply(a, LogEntropy)
	// Uniform term's row must vanish entirely.
	for j := 0; j < 4; j++ {
		if w.At(1, j) != 0 {
			t.Fatalf("uniform term cell (1,%d) = %v", j, w.At(1, j))
		}
	}
	// Check one cell by hand: term 2, doc 3: log2(1+3) * 1 = 2.
	if math.Abs(w.At(2, 3)-2) > 1e-12 {
		t.Fatalf("cell (2,3) = %v", w.At(2, 3))
	}
	// Input not mutated.
	if a.At(2, 3) != 3 {
		t.Fatal("Apply mutated its input")
	}
}

func TestQueryWeights(t *testing.T) {
	g := []float64{1, 0.5, 2}
	q := QueryWeights([]float64{1, 3, 0}, g, Scheme{LocalLog, GlobalEntropy})
	if math.Abs(q[0]-1) > 1e-12 { // log2(2)*1
		t.Fatalf("q[0] = %v", q[0])
	}
	if math.Abs(q[1]-1) > 1e-12 { // log2(4)*0.5
		t.Fatalf("q[1] = %v", q[1])
	}
	if q[2] != 0 {
		t.Fatalf("q[2] = %v", q[2])
	}
}

func TestAllSchemesComplete(t *testing.T) {
	s := AllSchemes()
	if len(s) != 15 {
		t.Fatalf("expected 3×5 schemes, got %d", len(s))
	}
	seen := map[string]bool{}
	for _, sc := range s {
		if seen[sc.String()] {
			t.Fatalf("duplicate scheme %s", sc)
		}
		seen[sc.String()] = true
	}
	if !seen["log×entropy"] || !seen["raw×none"] {
		t.Fatal("canonical schemes missing")
	}
}

func TestSchemeStrings(t *testing.T) {
	if LogEntropy.String() != "log×entropy" {
		t.Fatalf("got %q", LogEntropy.String())
	}
	if Raw.String() != "raw×none" {
		t.Fatalf("got %q", Raw.String())
	}
}

func TestEmptyRowWeights(t *testing.T) {
	a := sparse.FromDense([][]float64{{0, 0}, {1, 1}})
	for _, g := range []Global{GlobalEntropy, GlobalIDF, GlobalGfIdf, GlobalNormal} {
		w := GlobalWeights(a, g)
		if math.IsNaN(w[0]) || math.IsInf(w[0], 0) {
			t.Fatalf("scheme %v produced %v for empty row", g, w[0])
		}
	}
}
