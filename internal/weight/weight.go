// Package weight implements the local and global term-weighting
// transformations of Eq (5): a_ij = L(i,j) × G(i). Dumais (1991) — cited in
// §5.1 — compared these schemes and found log-local × entropy-global to be
// the most effective, "40% more effective than raw term weighting"; the
// weighting experiment in the harness reproduces that ordering.
package weight

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Local identifies a local weighting function L(i,j), applied cellwise to
// the raw frequency f_ij.
type Local int

const (
	// LocalRaw keeps the raw term frequency: L = f_ij.
	LocalRaw Local = iota
	// LocalLog dampens high counts: L = log₂(1 + f_ij).
	LocalLog
	// LocalBinary records only presence: L = 1 if f_ij > 0.
	LocalBinary
)

// String returns the conventional name of the scheme.
func (l Local) String() string {
	switch l {
	case LocalRaw:
		return "raw"
	case LocalLog:
		return "log"
	case LocalBinary:
		return "binary"
	}
	return fmt.Sprintf("local(%d)", int(l))
}

// Apply returns L(f) for a single raw frequency.
func (l Local) Apply(f float64) float64 {
	if f <= 0 {
		return 0
	}
	switch l {
	case LocalRaw:
		return f
	case LocalLog:
		return math.Log2(1 + f)
	case LocalBinary:
		return 1
	}
	panic(fmt.Sprintf("weight: unknown local scheme %d", int(l)))
}

// Global identifies a global (per-term/row) weighting function G(i).
type Global int

const (
	// GlobalNone applies no global weight: G = 1.
	GlobalNone Global = iota
	// GlobalEntropy weights by 1 + Σ_j p_ij log₂ p_ij / log₂ n where
	// p_ij = f_ij / gf_i. Terms concentrated in few documents (informative)
	// get weight near 1; terms spread evenly (uninformative) near 0.
	GlobalEntropy
	// GlobalIDF is the inverse document frequency log₂(n/df_i) + 1.
	GlobalIDF
	// GlobalGfIdf is gf_i/df_i, the global-frequency-over-document-frequency
	// ratio.
	GlobalGfIdf
	// GlobalNormal normalizes each row to unit length: G = 1/√(Σ_j f_ij²).
	GlobalNormal
)

// String returns the conventional name of the scheme.
func (g Global) String() string {
	switch g {
	case GlobalNone:
		return "none"
	case GlobalEntropy:
		return "entropy"
	case GlobalIDF:
		return "idf"
	case GlobalGfIdf:
		return "gfidf"
	case GlobalNormal:
		return "normal"
	}
	return fmt.Sprintf("global(%d)", int(g))
}

// Scheme couples a local and a global weighting.
type Scheme struct {
	Local  Local
	Global Global
}

// String renders e.g. "log×entropy".
func (s Scheme) String() string { return s.Local.String() + "×" + s.Global.String() }

// LogEntropy is the scheme §5.1 reports as most effective.
var LogEntropy = Scheme{LocalLog, GlobalEntropy}

// Raw is unweighted term frequency, the baseline scheme.
var Raw = Scheme{LocalRaw, GlobalNone}

// GlobalWeights computes G(i) for every row (term) of the raw frequency
// matrix a.
func GlobalWeights(a *sparse.CSR, g Global) []float64 {
	n := float64(a.Cols)
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		switch g {
		case GlobalNone:
			out[i] = 1
		case GlobalEntropy:
			var gf float64
			a.Row(i, func(_ int, v float64) { gf += v })
			if gf == 0 || a.Cols <= 1 {
				out[i] = 1
				continue
			}
			var h float64
			a.Row(i, func(_ int, v float64) {
				p := v / gf
				if p > 0 {
					h += p * math.Log2(p)
				}
			})
			out[i] = 1 + h/math.Log2(n)
		case GlobalIDF:
			df := float64(a.RowNNZ(i))
			if df == 0 {
				out[i] = 1
				continue
			}
			out[i] = math.Log2(n/df) + 1
		case GlobalGfIdf:
			var gf float64
			a.Row(i, func(_ int, v float64) { gf += v })
			df := float64(a.RowNNZ(i))
			if df == 0 {
				out[i] = 1
				continue
			}
			out[i] = gf / df
		case GlobalNormal:
			var ss float64
			a.Row(i, func(_ int, v float64) { ss += v * v })
			if ss == 0 {
				out[i] = 1
				continue
			}
			out[i] = 1 / math.Sqrt(ss)
		default:
			panic(fmt.Sprintf("weight: unknown global scheme %d", int(g)))
		}
	}
	return out
}

// Apply transforms a raw frequency matrix into the weighted matrix of
// Eq (5). The input is not modified.
func Apply(a *sparse.CSR, s Scheme) *sparse.CSR {
	local := a.Map(s.Local.Apply)
	if s.Global == GlobalNone {
		return local
	}
	// Global weights are computed from the *raw* frequencies, as in
	// Dumais (1991), then applied to the locally weighted matrix.
	return local.ScaleRows(GlobalWeights(a, s.Global))
}

// QueryWeights applies the scheme to a raw query term-frequency vector,
// reusing the collection's precomputed global weights (a query is weighted
// "by the appropriate term weights", §2.2).
func QueryWeights(q []float64, global []float64, s Scheme) []float64 {
	if len(q) != len(global) {
		panic(fmt.Sprintf("weight: query len %d != global len %d", len(q), len(global)))
	}
	out := make([]float64, len(q))
	for i, f := range q {
		out[i] = s.Local.Apply(f) * global[i]
	}
	return out
}

// AllSchemes enumerates the scheme grid used by the weighting experiment.
func AllSchemes() []Scheme {
	locals := []Local{LocalRaw, LocalLog, LocalBinary}
	globals := []Global{GlobalNone, GlobalEntropy, GlobalIDF, GlobalGfIdf, GlobalNormal}
	var out []Scheme
	for _, l := range locals {
		for _, g := range globals {
			out = append(out, Scheme{l, g})
		}
	}
	return out
}
