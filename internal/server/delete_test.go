package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// deleteDoc issues DELETE /docs/{id}.
func deleteDoc(t *testing.T, s *Server, id string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, "/docs/"+id, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// searchIDs runs /search and returns the result IDs in rank order.
func searchIDs(t *testing.T, s *Server, query string, n int) []string {
	t.Helper()
	rec := get(t, s, "/search?q="+strings.ReplaceAll(query, " ", "+")+"&n="+itoa(n))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body)
	}
	var results []SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(results))
	for i, r := range results {
		ids[i] = r.ID
	}
	return ids
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestDeleteDocumentLifecycle(t *testing.T) {
	s, _ := testServer(t)
	stats := func() Stats {
		rec := get(t, s, "/stats")
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		var st Stats
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Fold in a document and confirm it ranks for its own words.
	if rec := postDoc(s, `{"id":"M15","text":"behavior of rats after detected rise in oestrogen"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add doc status %d: %s", rec.Code, rec.Body)
	}
	found := false
	for _, id := range searchIDs(t, s, "rats oestrogen", 15) {
		found = found || id == "M15"
	}
	if !found {
		t.Fatal("folded-in M15 not retrievable before delete")
	}

	// DELETE: 204, owner shard reported, immediately invisible.
	rec := deleteDoc(t, s, "M15")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-LSI-Shard") == "" {
		t.Fatal("delete response missing X-LSI-Shard")
	}
	for _, id := range searchIDs(t, s, "rats oestrogen", 15) {
		if id == "M15" {
			t.Fatal("deleted M15 still retrievable")
		}
	}
	st := stats()
	if st.Documents != 14 || st.Tombstones != 1 {
		t.Fatalf("post-delete stats: documents=%d tombstones=%d", st.Documents, st.Tombstones)
	}
	if len(st.PerShard) != 1 || st.PerShard[0].Tombstones != 1 {
		t.Fatalf("per-shard tombstones missing: %+v", st.PerShard)
	}

	// The ID was released: re-POST of the same ID is 201, not 409.
	if rec := postDoc(s, `{"id":"M15","text":"generation of random spheres"}`); rec.Code != http.StatusCreated {
		t.Fatalf("re-add after delete: status %d: %s", rec.Code, rec.Body)
	}

	// Seed-corpus documents delete the same way.
	if rec := deleteDoc(t, s, "M3"); rec.Code != http.StatusNoContent {
		t.Fatalf("seed delete status %d: %s", rec.Code, rec.Body)
	}
	// Deleting it again: the ID no longer exists.
	if rec := deleteDoc(t, s, "M3"); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete status %d", rec.Code)
	}
	if rec := deleteDoc(t, s, "never-was"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown delete status %d", rec.Code)
	}

	// The tombstone gauge is exported.
	mrec := get(t, s, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", mrec.Code)
	}
	if !strings.Contains(mrec.Body.String(), "lsi_tombstones") {
		t.Fatal("metrics missing lsi_tombstones gauge")
	}
}

func TestDeleteDocumentValidation(t *testing.T) {
	s, _ := testServer(t)
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/docs/M1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /docs/{id}: status %d", rec.Code)
	}
	// Empty and malformed IDs.
	if rec := deleteDoc(t, s, ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty id: status %d", rec.Code)
	}
	if rec := deleteDoc(t, s, "a/b"); rec.Code != http.StatusBadRequest {
		t.Fatalf("slash id: status %d", rec.Code)
	}
	// Nothing was deleted by any of the rejects.
	var st Stats
	if err := json.Unmarshal(get(t, s, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 14 || st.Tombstones != 0 {
		t.Fatalf("stats changed by rejected deletes: %+v", st)
	}
}

// TestDeleteDocumentSharded: deletion routes through the scatter-gather
// tier to the owner shard, and the merged search excludes the tombstone
// at every shard count.
func TestDeleteDocumentSharded(t *testing.T) {
	s, _ := testServerOpts(t, Options{Shards: 3})
	if rec := postDoc(s, `{"id":"gone","text":"behavior of rats after detected rise in oestrogen"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add doc status %d: %s", rec.Code, rec.Body)
	}
	rec := deleteDoc(t, s, "gone")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	for _, id := range searchIDs(t, s, "rats oestrogen", 15) {
		if id == "gone" {
			t.Fatal("deleted doc in merged results")
		}
	}
	var st Stats
	if err := json.Unmarshal(get(t, s, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 14 || st.Tombstones != 1 {
		t.Fatalf("sharded stats: documents=%d tombstones=%d", st.Documents, st.Tombstones)
	}
}
