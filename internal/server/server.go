// Package server exposes an LSI database over HTTP — the shape of the
// paper's NETLIB deployment (§5.4), where LSI ran as a fuzzy search option
// over algorithms and article descriptions. Endpoints:
//
//	GET  /search?q=words&n=10     ranked documents for a free-text query
//	POST /search/batch            rank a block of queries in one gemm pass
//	GET  /terms?w=word&n=10       nearest indexed terms (online thesaurus)
//	POST /documents               fold a new document into the database
//	GET  /stats                   model dimensions and fold-in diagnostics
//	GET  /metrics                 Prometheus text: counters, latencies, pipeline gauges
//
// Requests are served from immutable snapshots published by the
// internal/engine update pipeline: the read path performs one atomic
// pointer load and never takes a lock, while fold-ins queue to a single
// background updater that batches them (Eq 7) and compacts via
// SVD-updating (§4.2) when the §4.3 orthogonality loss crosses its
// threshold. Search responses carry an X-LSI-Generation header naming the
// snapshot that served them; responses with equal generations are
// byte-identical for identical requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/synonym"
)

// Options configures the HTTP layer and its underlying engine.
type Options struct {
	// Engine parameterizes the snapshot/update pipeline (queue size,
	// batch tick, compaction threshold).
	Engine engine.Config
	// RequestTimeout bounds each request via its context; 0 disables.
	// An expired deadline yields 504 Gateway Timeout.
	RequestTimeout time.Duration
	// RetryAfter is the hint clients receive with a 503 when the fold-in
	// queue is full (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Logf receives diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Server wraps a collection and its LSI model with an http.Handler.
type Server struct {
	eng     *engine.Engine
	coll    *corpus.Collection
	mux     *http.ServeMux
	metrics *metrics
	timeout time.Duration
	retry   time.Duration
	logf    func(format string, args ...any)
}

// New builds a server around an existing collection and model with
// default options. The model must have been built from the collection
// (same vocabulary and documents).
func New(coll *corpus.Collection, model *core.Model) (*Server, error) {
	return NewWithOptions(coll, model, Options{})
}

// NewWithOptions is New with explicit pipeline and HTTP options. The
// engine takes ownership of the model: the caller must not mutate it
// afterwards.
func NewWithOptions(coll *corpus.Collection, model *core.Model, opts Options) (*Server, error) {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Engine.Logf == nil {
		opts.Engine.Logf = opts.Logf
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	eng, err := engine.New(coll, model, opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		eng:     eng,
		coll:    coll,
		mux:     http.NewServeMux(),
		metrics: newMetrics("search", "search_batch", "terms", "documents", "stats", "metrics"),
		timeout: opts.RequestTimeout,
		retry:   opts.RetryAfter,
		logf:    opts.Logf,
	}
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/search/batch", s.instrument("search_batch", s.handleSearchBatch))
	s.mux.HandleFunc("/terms", s.instrument("terms", s.handleTerms))
	s.mux.HandleFunc("/documents", s.instrument("documents", s.handleDocuments))
	s.mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	return s, nil
}

// Engine exposes the underlying pipeline (for shutdown wiring and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Close drains the fold-in queue and stops the update pipeline; after it
// returns, every acknowledged or queued document is part of the final
// snapshot. Use it for graceful shutdown after http.Server.Shutdown.
func (s *Server) Close(ctx context.Context) error { return s.eng.Close(ctx) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the robustness plumbing shared by every
// endpoint: a per-request context deadline (when configured), an
// up-front check that the deadline hasn't already expired, and
// status/latency recording for /metrics.
//
//lsilint:file-ignore walltime — request deadlines and latency metrics are wall-clock by nature
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if err := r.Context().Err(); err != nil {
			// The client is gone or the deadline already passed: don't
			// start work nobody will read.
			http.Error(sw, "request deadline exceeded", http.StatusGatewayTimeout)
		} else {
			h(sw, r)
		}
		s.metrics.observe(name, sw.code, time.Since(start))
	}
}

// SearchResult is one /search response row.
type SearchResult struct {
	ID     string  `json:"id"`
	Cosine float64 `json:"cosine"`
	Text   string  `json:"text,omitempty"`
}

// setGeneration stamps the snapshot generation that served a read, so
// clients (and the stress suite) can correlate responses with snapshots.
func setGeneration(w http.ResponseWriter, snap *engine.Snapshot) {
	w.Header().Set("X-LSI-Generation", strconv.FormatUint(snap.Gen, 10))
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// One atomic load pins an immutable view for the whole request: no
	// lock is held while a concurrent fold-in or compaction publishes.
	snap := s.eng.Snapshot()
	setGeneration(w, snap)
	raw := s.coll.QueryVector(q)
	if allZero(raw) {
		s.writeJSON(w, []SearchResult{})
		return
	}
	// Bounded selection: only the n requested documents are ranked, not
	// the whole collection.
	s.writeJSON(w, s.results(snap, snap.RankTop(raw, n)))
}

func (s *Server) results(snap *engine.Snapshot, ranked []core.Ranked) []SearchResult {
	out := make([]SearchResult, len(ranked))
	for i, h := range ranked {
		d := snap.Doc(h.Doc)
		out[i] = SearchResult{ID: d.ID, Cosine: h.Score, Text: d.Text}
	}
	return out
}

// maxBatchQueries bounds one /search/batch request; a block this size is
// already enough to amortize the gemm, and an unbounded request is a
// memory foot-gun on a public endpoint.
const maxBatchQueries = 1024

// BatchSearchRequest is the /search/batch POST body.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	N       int      `json:"n"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > maxBatchQueries {
		http.Error(w, fmt.Sprintf("too many queries: %d > %d", len(req.Queries), maxBatchQueries), http.StatusBadRequest)
		return
	}
	n := req.N
	if n <= 0 {
		n = 10
	}
	snap := s.eng.Snapshot()
	setGeneration(w, snap)
	// Vectorize every query; the non-empty ones are scored together as one
	// blocked gemm against the snapshot's normalized document matrix.
	out := make([][]SearchResult, len(req.Queries))
	raws := make([][]float64, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		raw := s.coll.QueryVector(q)
		if allZero(raw) {
			out[i] = []SearchResult{}
			continue
		}
		raws = append(raws, raw)
		slots = append(slots, i)
	}
	for bi, ranked := range snap.RankBatch(raws, n) {
		out[slots[bi]] = s.results(snap, ranked)
	}
	s.writeJSON(w, out)
}

// TermResult is one /terms response row.
type TermResult struct {
	Term string `json:"term"`
}

func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	word := r.URL.Query().Get("w")
	if word == "" {
		http.Error(w, "missing w parameter", http.StatusBadRequest)
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.eng.Snapshot()
	setGeneration(w, snap)
	near, err := synonym.NearestTerms(snap.Model, s.coll.Vocab, word, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := make([]TermResult, len(near))
	for i, t := range near {
		out[i] = TermResult{Term: t}
	}
	s.writeJSON(w, out)
}

// AddDocumentRequest is the /documents POST body.
type AddDocumentRequest struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req AddDocumentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Text == "" {
		http.Error(w, "empty document text", http.StatusBadRequest)
		return
	}
	id, err := s.eng.Submit(r.Context(), corpus.Document{ID: req.ID, Text: req.Text})
	switch {
	case err == nil:
		w.WriteHeader(http.StatusCreated)
		s.writeJSON(w, map[string]string{"id": id})
	case errors.Is(err, engine.ErrQueueFull):
		// Backpressure, not failure: tell the client when to come back.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retry+time.Second-1)/time.Second)))
		http.Error(w, "fold-in queue full, retry later", http.StatusServiceUnavailable)
	case errors.Is(err, engine.ErrDuplicateID):
		http.Error(w, fmt.Sprintf("document id %q already exists", req.ID), http.StatusConflict)
	case errors.Is(err, engine.ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The document was accepted and will fold in; only the wait for
		// its batch timed out.
		http.Error(w, "request deadline exceeded before fold-in was published", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Stats is the /stats response.
type Stats struct {
	Terms             int     `json:"terms"`
	Documents         int     `json:"documents"`
	FoldedDocuments   int     `json:"folded_documents"`
	Factors           int     `json:"factors"`
	Sigma1            float64 `json:"sigma1"`
	OrthogonalityLoss float64 `json:"orthogonality_loss"`
	Generation        uint64  `json:"generation"`
	QueueDepth        int     `json:"queue_depth"`
	Compactions       int64   `json:"compactions"`
	Screening         bool    `json:"screening"`
	// Screening/IVF observability: the mirror's worst quantization
	// residual, the serving cluster index shape, and cumulative query-path
	// counters (see engine.Stats for semantics).
	MirrorMaxEps       float64 `json:"mirror_max_eps"`
	IVFClusters        int     `json:"ivf_clusters"`
	IVFUnclusteredTail int     `json:"ivf_unclustered_tail"`
	IVFRebuilds        int64   `json:"ivf_rebuilds"`
	Queries            int64   `json:"queries"`
	RescoreCandidates  int64   `json:"rescore_candidates"`
	ClustersScanned    int64   `json:"clusters_scanned"`
	ScannedRows        int64   `json:"scanned_rows"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.eng.Snapshot()
	setGeneration(w, snap)
	st := s.eng.Stats()
	s.writeJSON(w, Stats{
		Terms:             snap.Model.NumTerms(),
		Documents:         snap.Model.NumDocs(),
		FoldedDocuments:   snap.Model.FoldedDocs(),
		Factors:           snap.Model.K,
		Sigma1:            snap.Model.S[0],
		OrthogonalityLoss: snap.Model.DocOrthogonality(),
		Generation:         st.Generation,
		QueueDepth:         st.QueueDepth,
		Compactions:        st.Compactions,
		Screening:          st.Screening,
		MirrorMaxEps:       st.MirrorMaxEps,
		IVFClusters:        st.IVFClusters,
		IVFUnclusteredTail: st.IVFUnclusteredTail,
		IVFRebuilds:        st.IVFRebuilds,
		Queries:            st.Queries,
		RescoreCandidates:  st.RescoreCandidates,
		ClustersScanned:    st.ClustersScanned,
		ScannedRows:        st.ScannedRows,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, []gauge{
		{"lsi_snapshot_generation", "Current serving snapshot generation (monotonic).", "gauge", st.Generation},
		{"lsi_queue_depth", "Fold-in submissions waiting for the next batch tick.", "gauge", st.QueueDepth},
		{"lsi_compactions_total", "SVD-update compactions completed.", "counter", st.Compactions},
		{"lsi_documents", "Documents in the serving snapshot.", "gauge", st.Documents},
		{"lsi_folded_documents", "Documents folded in since the last SVD state.", "gauge", st.FoldedDocuments},
		{"lsi_screening_enabled", "1 when the float32 screening mirror serves queries, 0 on the exact-only path.", "gauge", boolGauge(st.Screening)},
		{"lsi_mirror_max_eps", "Worst per-row quantization residual of the float32 screening mirror.", "gauge", st.MirrorMaxEps},
		{"lsi_ivf_clusters", "Cells in the serving cluster index (0 when unindexed).", "gauge", st.IVFClusters},
		{"lsi_ivf_unclustered_tail", "Rows appended since the last cluster-index build; always scanned.", "gauge", st.IVFUnclusteredTail},
		{"lsi_ivf_rebuilds_total", "Cluster-index builds that have landed.", "counter", st.IVFRebuilds},
		{"lsi_queries_total", "Ranked queries served (batch rows counted individually).", "counter", st.Queries},
		{"lsi_rescore_candidates_total", "Rows rescored in float64 after certified screening, summed over queries.", "counter", st.RescoreCandidates},
		{"lsi_ivf_clusters_scanned_total", "IVF cells visited before the certified bound or probe cap stopped the scan, summed over queries.", "counter", st.ClustersScanned},
		{"lsi_scanned_rows_total", "Mirror rows touched by screening stage 1, summed over queries.", "counter", st.ScannedRows},
	})
}

// intParam parses a positive integer query parameter, returning def when
// absent and an error — which handlers turn into 400 — when present but
// not a positive integer.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("parameter %s must be a positive integer, got %q", name, v)
	}
	return n, nil
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func allZero(xs []float64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// writeJSON encodes v onto the response. By the time encoding fails the
// status line and part of the body may already be on the wire, so there
// is no valid way to switch to an error response — http.Error here would
// just interleave garbage into the stream. Log and drop instead.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}
