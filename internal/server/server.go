// Package server exposes an LSI database over HTTP — the shape of the
// paper's NETLIB deployment (§5.4), where LSI ran as a fuzzy search option
// over algorithms and article descriptions. Endpoints:
//
//	GET  /search?q=words&n=10     ranked documents for a free-text query
//	POST /search/batch            rank a block of queries in one gemm pass
//	GET  /terms?w=word&n=10       nearest indexed terms (online thesaurus)
//	POST /documents               fold a new document into the database
//	GET  /stats                   model dimensions and fold-in diagnostics
//
// New documents are folded in (Eq 7), so the service degrades gracefully
// exactly the way §4.3 describes: /stats reports the orthogonality loss so
// an operator can decide when to SVD-update or recompute offline.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/synonym"
)

// Server wraps a collection and its LSI model with an http.Handler.
type Server struct {
	mu    sync.RWMutex
	coll  *corpus.Collection
	model *core.Model
	docs  []corpus.Document // all documents, including folded-in ones
	mux   *http.ServeMux
}

// New builds a server around an existing collection and model. The model
// must have been built from the collection (same vocabulary and documents).
func New(coll *corpus.Collection, model *core.Model) (*Server, error) {
	if model.NumDocs() != coll.Size() {
		return nil, fmt.Errorf("server: model has %d docs, collection %d", model.NumDocs(), coll.Size())
	}
	s := &Server{
		coll:  coll,
		model: model,
		docs:  append([]corpus.Document(nil), coll.Docs...),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("/terms", s.handleTerms)
	s.mux.HandleFunc("/documents", s.handleDocuments)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchResult is one /search response row.
type SearchResult struct {
	ID     string  `json:"id"`
	Cosine float64 `json:"cosine"`
	Text   string  `json:"text,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n := intParam(r, "n", 10)
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw := s.coll.QueryVector(q)
	if allZero(raw) {
		writeJSON(w, []SearchResult{})
		return
	}
	// Bounded selection: only the n requested documents are ranked, not
	// the whole collection.
	ranked := s.model.RankTop(raw, n)
	out := make([]SearchResult, len(ranked))
	for i, h := range ranked {
		out[i] = SearchResult{ID: s.docs[h.Doc].ID, Cosine: h.Score, Text: s.docs[h.Doc].Text}
	}
	writeJSON(w, out)
}

// maxBatchQueries bounds one /search/batch request; a block this size is
// already enough to amortize the gemm, and an unbounded request is a
// memory foot-gun on a public endpoint.
const maxBatchQueries = 1024

// BatchSearchRequest is the /search/batch POST body.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	N       int      `json:"n"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > maxBatchQueries {
		http.Error(w, fmt.Sprintf("too many queries: %d > %d", len(req.Queries), maxBatchQueries), http.StatusBadRequest)
		return
	}
	n := req.N
	if n <= 0 {
		n = 10
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Vectorize every query; the non-empty ones are scored together as one
	// blocked gemm against the normalized document matrix.
	out := make([][]SearchResult, len(req.Queries))
	raws := make([][]float64, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		raw := s.coll.QueryVector(q)
		if allZero(raw) {
			out[i] = []SearchResult{}
			continue
		}
		raws = append(raws, raw)
		slots = append(slots, i)
	}
	for bi, ranked := range s.model.RankBatch(raws, n) {
		res := make([]SearchResult, len(ranked))
		for j, h := range ranked {
			res[j] = SearchResult{ID: s.docs[h.Doc].ID, Cosine: h.Score, Text: s.docs[h.Doc].Text}
		}
		out[slots[bi]] = res
	}
	writeJSON(w, out)
}

// TermResult is one /terms response row.
type TermResult struct {
	Term string `json:"term"`
}

func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	word := r.URL.Query().Get("w")
	if word == "" {
		http.Error(w, "missing w parameter", http.StatusBadRequest)
		return
	}
	n := intParam(r, "n", 10)
	s.mu.RLock()
	defer s.mu.RUnlock()
	near, err := synonym.NearestTerms(s.model, s.coll.Vocab, word, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := make([]TermResult, len(near))
	for i, t := range near {
		out[i] = TermResult{Term: t}
	}
	writeJSON(w, out)
}

// AddDocumentRequest is the /documents POST body.
type AddDocumentRequest struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req AddDocumentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Text == "" {
		http.Error(w, "empty document text", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.ID == "" {
		req.ID = fmt.Sprintf("doc-%d", len(s.docs))
	}
	doc := corpus.Document{ID: req.ID, Text: req.Text}
	s.model.FoldInDocs(s.coll.DocVectors([]corpus.Document{doc}))
	s.docs = append(s.docs, doc)
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]string{"id": req.ID})
}

// Stats is the /stats response.
type Stats struct {
	Terms             int     `json:"terms"`
	Documents         int     `json:"documents"`
	FoldedDocuments   int     `json:"folded_documents"`
	Factors           int     `json:"factors"`
	Sigma1            float64 `json:"sigma1"`
	OrthogonalityLoss float64 `json:"orthogonality_loss"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, Stats{
		Terms:             s.model.NumTerms(),
		Documents:         s.model.NumDocs(),
		FoldedDocuments:   s.model.FoldedDocs(),
		Factors:           s.model.K,
		Sigma1:            s.model.S[0],
		OrthogonalityLoss: s.model.DocOrthogonality(),
	})
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

func allZero(xs []float64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
