// Package server exposes an LSI database over HTTP — the shape of the
// paper's NETLIB deployment (§5.4), where LSI ran as a fuzzy search option
// over algorithms and article descriptions. Endpoints:
//
//	GET  /search?q=words&n=10     ranked documents for a free-text query
//	POST /search/batch            rank a block of queries in one gemm pass
//	GET  /terms?w=word&n=10       nearest indexed terms (online thesaurus)
//	POST /documents               fold a new document into the database
//	DELETE /docs/{id}             delete a document (tombstone, then fold-out)
//	GET  /stats                   model dimensions and fold-in diagnostics
//	GET  /metrics                 Prometheus text: counters, latencies, pipeline gauges
//
// Requests are served by a sharded scatter–gather tier
// (internal/shard): Options.Shards engines each own a slice of the
// corpus, queries fan out to all shards and merge exactly, and
// submissions route to their owner shard (reported in the X-LSI-Shard
// response header). Each shard serves immutable snapshots published by
// its internal/engine update pipeline: the read path performs one atomic
// pointer load per shard and never takes a lock, while fold-ins queue to
// that shard's background updater, and the router coordinates
// SVD-update compaction (§4.2) across shards when the global §4.3
// orthogonality loss crosses its threshold. Search responses carry an
// X-LSI-Generation header naming the per-shard generation vector
// ("3,4,2"; a bare number when unsharded) that served them; responses
// with equal generation vectors are byte-identical for identical
// requests — sharding changes throughput, never bytes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/synonym"
)

// Options configures the HTTP layer and its underlying serving tier.
type Options struct {
	// Shards is how many engine shards serve the corpus (default 1).
	// Results are byte-identical for every value; shards scale the
	// update pipeline and let concurrent query work spread across cores.
	Shards int
	// Engine parameterizes each shard's snapshot/update pipeline (queue
	// size, batch tick). Its CompactThreshold drives the router's
	// coordinated compaction monitor (shards never compact alone).
	Engine engine.Config
	// RequestTimeout bounds each request via its context; 0 disables.
	// An expired deadline yields 504 Gateway Timeout.
	RequestTimeout time.Duration
	// RetryAfter is the hint clients receive with a 503 when the fold-in
	// queue is full (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Logf receives diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Server wraps a collection and its LSI model with an http.Handler.
type Server struct {
	router  *shard.Router
	coll    *corpus.Collection
	mux     *http.ServeMux
	metrics *metrics
	timeout time.Duration
	retry   time.Duration
	logf    func(format string, args ...any)
}

// New builds a server around an existing collection and model with
// default options. The model must have been built from the collection
// (same vocabulary and documents).
func New(coll *corpus.Collection, model *core.Model) (*Server, error) {
	return NewWithOptions(coll, model, Options{})
}

// NewWithOptions is New with explicit pipeline and HTTP options. The
// serving tier takes ownership of the model: the caller must not mutate
// it afterwards.
func NewWithOptions(coll *corpus.Collection, model *core.Model, opts Options) (*Server, error) {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Engine.Logf == nil {
		opts.Engine.Logf = opts.Logf
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	router, err := shard.New(coll, model, shard.Config{
		Shards: opts.Shards,
		Engine: opts.Engine,
		// The engine-level threshold becomes the router's global one: same
		// measure (‖VᵀV−I‖_F over all document rows), coordinated landing.
		CompactThreshold: opts.Engine.CompactThreshold,
		Logf:             opts.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return newFromRouter(router, coll, opts), nil
}

// NewFromRouter wraps an already-constructed serving tier — the
// -load-model path, where the router was restored from a snapshot file
// instead of built from a collection and model. The router's own
// (vocabulary-only) collection parses queries; opts.Shards and the
// engine pipeline knobs are ignored, since the restored tier already
// has them.
func NewFromRouter(router *shard.Router, opts Options) *Server {
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	return newFromRouter(router, router.Collection(), opts)
}

func newFromRouter(router *shard.Router, coll *corpus.Collection, opts Options) *Server {
	s := &Server{
		router:  router,
		coll:    coll,
		mux:     http.NewServeMux(),
		metrics: newMetrics("search", "search_batch", "terms", "documents", "delete_document", "stats", "metrics"),
		timeout: opts.RequestTimeout,
		retry:   opts.RetryAfter,
		logf:    opts.Logf,
	}
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/search/batch", s.instrument("search_batch", s.handleSearchBatch))
	s.mux.HandleFunc("/terms", s.instrument("terms", s.handleTerms))
	s.mux.HandleFunc("/documents", s.instrument("documents", s.handleDocuments))
	s.mux.HandleFunc("/docs/", s.instrument("delete_document", s.handleDeleteDocument))
	s.mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// Router exposes the sharded serving tier (for shutdown wiring, stats
// and tests).
func (s *Server) Router() *shard.Router { return s.router }

// Engine exposes shard 0's pipeline — the only one on an unsharded
// server, which is what existing callers mean by "the engine". Sharded
// callers should use Router.
func (s *Server) Engine() *engine.Engine { return s.router.Shard(0) }

// Close stops the compaction monitor, drains every shard's fold-in
// queue and stops the update pipelines; after it returns, every
// acknowledged or queued document is part of some shard's final
// snapshot. Use it for graceful shutdown after http.Server.Shutdown.
func (s *Server) Close(ctx context.Context) error { return s.router.Close(ctx) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the robustness plumbing shared by every
// endpoint: a per-request context deadline (when configured), an
// up-front check that the deadline hasn't already expired, and
// status/latency recording for /metrics.
//
//lsilint:file-ignore walltime — request deadlines and latency metrics are wall-clock by nature
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if err := r.Context().Err(); err != nil {
			// The client is gone or the deadline already passed: don't
			// start work nobody will read.
			http.Error(sw, "request deadline exceeded", http.StatusGatewayTimeout)
		} else {
			h(sw, r)
		}
		s.metrics.observe(name, sw.code, time.Since(start))
	}
}

// SearchResult is one /search response row.
type SearchResult struct {
	ID     string  `json:"id"`
	Cosine float64 `json:"cosine"`
	Text   string  `json:"text,omitempty"`
}

// setGeneration stamps the per-shard generation vector that served a
// read ("3,4,2"; a bare number when unsharded), so clients (and the
// stress suite) can correlate responses with snapshots.
func setGeneration(w http.ResponseWriter, gens []uint64) {
	parts := make([]string, len(gens))
	for i, g := range gens {
		parts[i] = strconv.FormatUint(g, 10)
	}
	w.Header().Set("X-LSI-Generation", strings.Join(parts, ","))
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw := s.coll.QueryVector(q)
	if allZero(raw) {
		setGeneration(w, s.router.Generations())
		s.writeJSON(w, []SearchResult{})
		return
	}
	// Scatter–gather: one atomic load per shard pins immutable views, the
	// per-shard exact top-n merge under (score desc, submission order asc),
	// byte-identical to a single engine over the whole corpus.
	hits, gens := s.router.Search(raw, n)
	setGeneration(w, gens)
	s.writeJSON(w, s.results(hits))
}

func (s *Server) results(hits []shard.Hit) []SearchResult {
	out := make([]SearchResult, len(hits))
	for i, h := range hits {
		out[i] = SearchResult{ID: h.ID, Cosine: h.Score, Text: h.Text}
	}
	return out
}

// maxBatchQueries bounds one /search/batch request; a block this size is
// already enough to amortize the gemm, and an unbounded request is a
// memory foot-gun on a public endpoint.
const maxBatchQueries = 1024

// BatchSearchRequest is the /search/batch POST body.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	N       int      `json:"n"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > maxBatchQueries {
		http.Error(w, fmt.Sprintf("too many queries: %d > %d", len(req.Queries), maxBatchQueries), http.StatusBadRequest)
		return
	}
	n := req.N
	if n <= 0 {
		n = 10
	}
	// Vectorize every query; the non-empty ones scatter to every shard as
	// one block — each shard runs its own gemm-tiled TopKBatch over the
	// whole batch — and merge per query row.
	out := make([][]SearchResult, len(req.Queries))
	raws := make([][]float64, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		raw := s.coll.QueryVector(q)
		if allZero(raw) {
			out[i] = []SearchResult{}
			continue
		}
		raws = append(raws, raw)
		slots = append(slots, i)
	}
	rows, gens := s.router.SearchBatch(raws, n)
	setGeneration(w, gens)
	for bi, hits := range rows {
		out[slots[bi]] = s.results(hits)
	}
	s.writeJSON(w, out)
}

// TermResult is one /terms response row.
type TermResult struct {
	Term string `json:"term"`
}

func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	word := r.URL.Query().Get("w")
	if word == "" {
		http.Error(w, "missing w parameter", http.StatusBadRequest)
		return
	}
	n, err := intParam(r, "n", 10)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The term basis (U, S) is identical on every shard by construction;
	// shard 0's snapshot answers for all of them.
	snap := s.router.ShardSnapshot(0)
	setGeneration(w, s.router.Generations())
	near, err := synonym.NearestTerms(snap.Model, s.coll.Vocab, word, n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := make([]TermResult, len(near))
	for i, t := range near {
		out[i] = TermResult{Term: t}
	}
	s.writeJSON(w, out)
}

// AddDocumentRequest is the /documents POST body.
type AddDocumentRequest struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req AddDocumentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Text == "" {
		http.Error(w, "empty document text", http.StatusBadRequest)
		return
	}
	id, shardIdx, err := s.router.Submit(r.Context(), corpus.Document{ID: req.ID, Text: req.Text})
	if shardIdx >= 0 {
		// Which shard owns (or rejected) this document — placement is
		// stable, so clients can correlate backpressure with a shard.
		w.Header().Set("X-LSI-Shard", strconv.Itoa(shardIdx))
	}
	switch {
	case err == nil:
		w.WriteHeader(http.StatusCreated)
		s.writeJSON(w, map[string]string{"id": id})
	case errors.Is(err, engine.ErrQueueFull):
		// Backpressure, not failure: tell the client when to come back.
		// Only the owner shard's queue was full — other shards' backlogs
		// neither cause nor clear this 503, and the error says which queue
		// (with its depth/capacity) to wait for.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retry+time.Second-1)/time.Second)))
		http.Error(w, err.Error()+", retry later", http.StatusServiceUnavailable)
	case errors.Is(err, engine.ErrDuplicateID):
		http.Error(w, fmt.Sprintf("document id %q already exists", req.ID), http.StatusConflict)
	case errors.Is(err, engine.ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The document was accepted and will fold in; only the wait for
		// its batch timed out.
		http.Error(w, "request deadline exceeded before fold-in was published", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleDeleteDocument serves DELETE /docs/{id}: the document becomes
// invisible to every query before the 204 returns (tombstone), and its
// row is folded out of the model at the next coordinated compaction. The
// ID is released, so it can be resubmitted as a fresh document.
func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/docs/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "missing or malformed document id", http.StatusBadRequest)
		return
	}
	shardIdx, err := s.router.Delete(r.Context(), id)
	if shardIdx >= 0 {
		w.Header().Set("X-LSI-Shard", strconv.Itoa(shardIdx))
	}
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, engine.ErrUnknownID):
		http.Error(w, fmt.Sprintf("document id %q does not exist", id), http.StatusNotFound)
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.retry+time.Second-1)/time.Second)))
		http.Error(w, err.Error()+", retry later", http.StatusServiceUnavailable)
	case errors.Is(err, engine.ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The delete was accepted and will apply; only the wait for its
		// batch timed out.
		http.Error(w, "request deadline exceeded before delete was published", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ShardStats is one shard's block in the /stats response.
type ShardStats struct {
	Shard              int     `json:"shard"`
	Generation         uint64  `json:"generation"`
	Documents          int     `json:"documents"`
	Tombstones         int     `json:"tombstones"`
	FoldedDocuments    int     `json:"folded_documents"`
	QueueDepth         int     `json:"queue_depth"`
	Compactions        int64   `json:"compactions"`
	Screening          bool    `json:"screening"`
	MirrorMaxEps       float64 `json:"mirror_max_eps"`
	IVFClusters        int     `json:"ivf_clusters"`
	IVFUnclusteredTail int     `json:"ivf_unclustered_tail"`
	IVFRebuilds        int64   `json:"ivf_rebuilds"`
	Queries            int64   `json:"queries"`
	RescoreCandidates  int64   `json:"rescore_candidates"`
	ClustersScanned    int64   `json:"clusters_scanned"`
	ScannedRows        int64   `json:"scanned_rows"`
}

// Stats is the /stats response: corpus-wide aggregates (sums over
// shards; Generation is the highest shard generation, Compactions counts
// coordinated cycles) plus the full per-shard blocks.
type Stats struct {
	Terms             int     `json:"terms"`
	Documents         int     `json:"documents"`
	Tombstones        int     `json:"tombstones"`
	FoldedDocuments   int     `json:"folded_documents"`
	Factors           int     `json:"factors"`
	Sigma1            float64 `json:"sigma1"`
	OrthogonalityLoss float64 `json:"orthogonality_loss"`
	Generation        uint64  `json:"generation"`
	QueueDepth        int     `json:"queue_depth"`
	Compactions       int64   `json:"compactions"`
	Screening         bool    `json:"screening"`
	// Screening/IVF observability: the mirror's worst quantization
	// residual, the serving cluster index shape, and cumulative query-path
	// counters (see engine.Stats for semantics).
	MirrorMaxEps       float64      `json:"mirror_max_eps"`
	IVFClusters        int          `json:"ivf_clusters"`
	IVFUnclusteredTail int          `json:"ivf_unclustered_tail"`
	IVFRebuilds        int64        `json:"ivf_rebuilds"`
	Queries            int64        `json:"queries"`
	RescoreCandidates  int64        `json:"rescore_candidates"`
	ClustersScanned    int64        `json:"clusters_scanned"`
	ScannedRows        int64        `json:"scanned_rows"`
	Shards             int          `json:"shards"`
	Generations        []uint64     `json:"generations"`
	Compacting         bool         `json:"compacting"`
	PerShard           []ShardStats `json:"per_shard"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.router.Stats()
	setGeneration(w, st.Generations)
	// The term basis is shared; shard 0's snapshot answers for shape.
	snap := s.router.ShardSnapshot(0)
	out := Stats{
		Terms:              snap.Model.NumTerms(),
		Documents:          st.Documents,
		Tombstones:         st.Tombstones,
		FoldedDocuments:    st.FoldedDocuments,
		Factors:            snap.Model.K,
		Sigma1:             snap.Model.S[0],
		OrthogonalityLoss:  s.router.Orthogonality(),
		Generation:         maxGen(st.Generations),
		QueueDepth:         st.QueueDepth,
		Compactions:        st.Compactions,
		Screening:          st.Screening,
		MirrorMaxEps:       st.MirrorMaxEps,
		IVFClusters:        st.IVFClusters,
		IVFUnclusteredTail: st.IVFUnclusteredTail,
		IVFRebuilds:        st.IVFRebuilds,
		Queries:            st.Queries,
		RescoreCandidates:  st.RescoreCandidates,
		ClustersScanned:    st.ClustersScanned,
		ScannedRows:        st.ScannedRows,
		Shards:             st.Shards,
		Generations:        st.Generations,
		Compacting:         st.Compacting,
		PerShard:           make([]ShardStats, len(st.PerShard)),
	}
	for i, ss := range st.PerShard {
		out.PerShard[i] = ShardStats{
			Shard:              ss.Shard,
			Generation:         ss.Generation,
			Documents:          ss.Documents,
			Tombstones:         ss.Tombstones,
			FoldedDocuments:    ss.FoldedDocuments,
			QueueDepth:         ss.QueueDepth,
			Compactions:        ss.Compactions,
			Screening:          ss.Screening,
			MirrorMaxEps:       ss.MirrorMaxEps,
			IVFClusters:        ss.IVFClusters,
			IVFUnclusteredTail: ss.IVFUnclusteredTail,
			IVFRebuilds:        ss.IVFRebuilds,
			Queries:            ss.Queries,
			RescoreCandidates:  ss.RescoreCandidates,
			ClustersScanned:    ss.ClustersScanned,
			ScannedRows:        ss.ScannedRows,
		}
	}
	s.writeJSON(w, out)
}

func maxGen(gens []uint64) uint64 {
	var m uint64
	for _, g := range gens {
		if g > m {
			m = g
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.router.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// Per-shard series for the gauges whose aggregate hides the thing an
	// operator acts on: one hot queue, one shard lagging generations.
	genSeries := make([]labeledValue, len(st.PerShard))
	depthSeries := make([]labeledValue, len(st.PerShard))
	docSeries := make([]labeledValue, len(st.PerShard))
	for i, ss := range st.PerShard {
		label := strconv.Itoa(ss.Shard)
		genSeries[i] = labeledValue{label, ss.Generation}
		depthSeries[i] = labeledValue{label, ss.QueueDepth}
		docSeries[i] = labeledValue{label, ss.Documents}
	}
	s.metrics.render(w, []gauge{
		{"lsi_snapshot_generation", "Highest shard serving-snapshot generation (monotonic).", "gauge", maxGen(st.Generations)},
		{"lsi_queue_depth", "Fold-in submissions waiting for the next batch tick, summed over shards.", "gauge", st.QueueDepth},
		{"lsi_compactions_total", "Coordinated SVD-update compaction cycles completed.", "counter", st.Compactions},
		{"lsi_documents", "Documents in the serving snapshots, summed over shards.", "gauge", st.Documents},
		{"lsi_folded_documents", "Documents folded in since the last SVD state, summed over shards.", "gauge", st.FoldedDocuments},
		{"lsi_tombstones", "Deleted documents still physically present (folded out at the next compaction), summed over shards.", "gauge", st.Tombstones},
		{"lsi_shards", "Engine shards serving the corpus.", "gauge", st.Shards},
		{"lsi_screening_enabled", "1 when the float32 screening mirror serves queries on every shard, 0 on the exact-only path.", "gauge", boolGauge(st.Screening)},
		{"lsi_mirror_max_eps", "Worst per-row quantization residual of the float32 screening mirror across shards.", "gauge", st.MirrorMaxEps},
		{"lsi_ivf_clusters", "Cells in the serving cluster indexes, summed over shards (0 when unindexed).", "gauge", st.IVFClusters},
		{"lsi_ivf_unclustered_tail", "Rows appended since the last cluster-index build, summed over shards; always scanned.", "gauge", st.IVFUnclusteredTail},
		{"lsi_ivf_rebuilds_total", "Cluster-index builds that have landed, summed over shards.", "counter", st.IVFRebuilds},
		{"lsi_queries_total", "Ranked queries served (batch rows counted individually), summed over shards.", "counter", st.Queries},
		{"lsi_rescore_candidates_total", "Rows rescored in float64 after certified screening, summed over queries and shards.", "counter", st.RescoreCandidates},
		{"lsi_ivf_clusters_scanned_total", "IVF cells visited before the certified bound or probe cap stopped the scan, summed over queries and shards.", "counter", st.ClustersScanned},
		{"lsi_scanned_rows_total", "Mirror rows touched by screening stage 1, summed over queries and shards.", "counter", st.ScannedRows},
	}, []labeledGauge{
		{"lsi_shard_snapshot_generation", "Serving snapshot generation, by shard.", "gauge", "shard", genSeries},
		{"lsi_shard_queue_depth", "Fold-in submissions waiting for the next batch tick, by shard.", "gauge", "shard", depthSeries},
		{"lsi_shard_documents", "Documents in the serving snapshot, by shard.", "gauge", "shard", docSeries},
	})
}

// intParam parses a positive integer query parameter, returning def when
// absent and an error — which handlers turn into 400 — when present but
// not a positive integer.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("parameter %s must be a positive integer, got %q", name, v)
	}
	return n, nil
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func allZero(xs []float64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// writeJSON encodes v onto the response. By the time encoding fails the
// status line and part of the body may already be on the wire, so there
// is no valid way to switch to an error response — http.Error here would
// just interleave garbage into the stream. Log and drop instead.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}
