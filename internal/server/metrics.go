//lsilint:file-ignore walltime — request latency measurement is wall-clock by definition
package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, roughly
// quarter-decade spaced from 100µs to 10s — wide enough to cover a cache
// hit and an SVD-update alike.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointMetrics is one endpoint's counters: requests by status class
// and a cumulative latency histogram. Everything is atomic so the hot
// path never takes a lock.
type endpointMetrics struct {
	name    string
	byClass [6]atomic.Int64 // index = status/100 (1xx..5xx; 0 unused)
	buckets []atomic.Int64  // len(latencyBuckets); cumulative on render
	sumNs   atomic.Int64
	count   atomic.Int64
}

func (m *endpointMetrics) observe(status int, d time.Duration) {
	c := status / 100
	if c < 1 || c > 5 {
		c = 5
	}
	m.byClass[c].Add(1)
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.buckets[i].Add(1)
			break
		}
	}
	m.sumNs.Add(int64(d))
	m.count.Add(1)
}

// metrics aggregates per-endpoint counters. The endpoint set is fixed at
// construction, so lookups are reads of an immutable map.
type metrics struct {
	order []string
	byEP  map[string]*endpointMetrics
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{order: endpoints, byEP: make(map[string]*endpointMetrics, len(endpoints))}
	for _, ep := range endpoints {
		m.byEP[ep] = &endpointMetrics{name: ep, buckets: make([]atomic.Int64, len(latencyBuckets))}
	}
	return m
}

func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	if ep, ok := m.byEP[endpoint]; ok {
		ep.observe(status, d)
	}
}

// render writes the Prometheus text exposition format. Output order is
// the fixed construction order, so scrapes are deterministic.
func (m *metrics) render(w io.Writer, gauges []gauge, labeled []labeledGauge) {
	fmt.Fprintf(w, "# HELP lsi_requests_total Requests served, by endpoint and status class.\n")
	fmt.Fprintf(w, "# TYPE lsi_requests_total counter\n")
	for _, name := range m.order {
		ep := m.byEP[name]
		for c := 1; c <= 5; c++ {
			if n := ep.byClass[c].Load(); n > 0 {
				fmt.Fprintf(w, "lsi_requests_total{endpoint=%q,code=\"%dxx\"} %d\n", name, c, n)
			}
		}
	}
	fmt.Fprintf(w, "# HELP lsi_request_seconds Request latency histogram, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE lsi_request_seconds histogram\n")
	for _, name := range m.order {
		ep := m.byEP[name]
		if ep.count.Load() == 0 {
			continue
		}
		var cum int64
		for i, ub := range latencyBuckets {
			cum += ep.buckets[i].Load()
			fmt.Fprintf(w, "lsi_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		fmt.Fprintf(w, "lsi_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, ep.count.Load())
		fmt.Fprintf(w, "lsi_request_seconds_sum{endpoint=%q} %g\n", name, time.Duration(ep.sumNs.Load()).Seconds())
		fmt.Fprintf(w, "lsi_request_seconds_count{endpoint=%q} %d\n", name, ep.count.Load())
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", g.name, g.help, g.name, g.kind, g.name, g.value)
	}
	for _, lg := range labeled {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", lg.name, lg.help, lg.name, lg.kind)
		for _, v := range lg.values {
			fmt.Fprintf(w, "%s{%s=%q} %v\n", lg.name, lg.label, v.key, v.value)
		}
	}
}

// gauge is one tier-level scalar exported by /metrics.
type gauge struct {
	name, help, kind string
	value            any
}

// labeledGauge is one metric family with a per-shard (or similar) label:
// HELP/TYPE once, then one sample per labeled value, in shard order.
type labeledGauge struct {
	name, help, kind string
	label            string
	values           []labeledValue
}

type labeledValue struct {
	key   string
	value any
}
