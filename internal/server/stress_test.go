package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestStressServingUnderUpdates is the HTTP-level race/stress proof for
// the snapshot-isolated server. Reader goroutines hammer /search,
// /search/batch, and /terms while one writer streams /documents with a
// compaction threshold low enough that at least two SVD-update
// compactions complete mid-flight. Run under -race (make stress) it
// demonstrates, end to end through the handler stack:
//
//   - reads succeed throughout — no 5xx while fold-ins and compactions
//     publish new snapshots,
//   - the X-LSI-Generation header is monotonically non-decreasing per
//     reader, and
//   - responses carrying the same generation for the same request are
//     byte-identical (snapshot immutability observed at the wire).
func TestStressServingUnderUpdates(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s, _ := testServerOpts(t, Options{
		Engine: engine.Config{
			QueueSize:        1024,
			BatchTick:        200 * time.Microsecond,
			CompactThreshold: 1e-9, // every fold crosses it: maximum churn
		},
	})
	const (
		writes  = 40
		readers = 4
		reads   = 100
	)

	// First reader to see a (path, generation) pair pins the body;
	// everyone else landing on the same pair must match byte-for-byte.
	var pinMu sync.Mutex
	pinned := make(map[string][]byte)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < writes; i++ {
			body := strings.NewReader(fmt.Sprintf(`{"text":"depressed rats culture pressure %d"}`, i))
			req := httptest.NewRequest(http.MethodPost, "/documents", body)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated {
				t.Errorf("write %d: status %d: %s", i, rec.Code, rec.Body)
				return
			}
		}
	}()

	paths := []string{
		"/search?q=age+blood+abnormalities&n=8",
		"/search?q=oestrogen+detected+rise&n=8",
		"/terms?w=blood&n=5",
	}
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < reads; i++ {
				var rec *httptest.ResponseRecorder
				if i%4 == 3 {
					rec = postBatch(t, s, `{"queries":["blood culture","oestrogen rise"],"n":5}`)
				} else {
					rec = get(t, s, paths[i%len(paths)])
				}
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: status %d: %s", g, rec.Code, rec.Body)
					return
				}
				genHdr := rec.Header().Get("X-LSI-Generation")
				gen, err := strconv.ParseUint(genHdr, 10, 64)
				if err != nil {
					t.Errorf("reader %d: bad X-LSI-Generation %q: %v", g, genHdr, err)
					return
				}
				if gen < lastGen {
					t.Errorf("reader %d: generation went backwards %d -> %d", g, lastGen, gen)
					return
				}
				lastGen = gen
				if i%4 != 3 { // pin deterministic GET bodies only
					key := paths[i%len(paths)] + "@" + genHdr
					pinMu.Lock()
					if prev, ok := pinned[key]; ok {
						if !bytes.Equal(prev, rec.Body.Bytes()) {
							t.Errorf("reader %d: %s diverged within one generation\n got %s\nwant %s",
								g, key, rec.Body, prev)
						}
					} else {
						pinned[key] = append([]byte(nil), rec.Body.Bytes()...)
					}
					pinMu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	<-writerDone

	// Let the pipeline settle and check the end state through /stats and
	// /metrics — the acceptance criterion asks for a monotonically
	// increasing snapshot generation and ≥2 compactions visible there.
	deadline := time.Now().Add(10 * time.Second)
	var st Stats
	for {
		rec := get(t, s, "/stats")
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Documents == 14+writes && st.QueueDepth == 0 && st.Compactions >= 2 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Generation < uint64(st.Compactions)+1 {
		t.Fatalf("generation %d lower than compaction count %d", st.Generation, st.Compactions)
	}
	rec := get(t, s, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("lsi_documents %d", 14+writes),
		fmt.Sprintf("lsi_snapshot_generation %d", st.Generation),
		"lsi_folded_documents 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q after stress\n%s", want, body)
		}
	}
	if !strings.Contains(body, "lsi_compactions_total") {
		t.Errorf("metrics missing compaction counter\n%s", body)
	}
}
