package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
)

func shardedServer(t *testing.T, shards int) (*Server, *corpus.Collection) {
	t.Helper()
	return testServerOpts(t, Options{
		Shards: shards,
		Engine: engine.Config{BatchTick: time.Millisecond},
	})
}

// TestShardedSearchParity: HTTP responses — status, body bytes — from a
// sharded server match an unsharded one exactly, for /search and
// /search/batch, both on the seed corpus and after identical submission
// sequences. This is the tentpole acceptance pin at the protocol level.
func TestShardedSearchParity(t *testing.T) {
	s1, coll := shardedServer(t, 1)
	s3, _ := shardedServer(t, 3)

	queries := []string{
		"/search?q=age+blood+abnormalities&n=5",
		"/search?q=depressed+patients+fast+culture&n=8",
		"/search?q=oestrogen+detected+rise",
	}
	batchBody := `{"queries":["age blood abnormalities","depressed patients","","oestrogen rise"],"n":6}`
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			r1, r3 := get(t, s1, q), get(t, s3, q)
			if r1.Code != http.StatusOK || r3.Code != http.StatusOK {
				t.Fatalf("%s %s: status %d vs %d", stage, q, r1.Code, r3.Code)
			}
			if r1.Body.String() != r3.Body.String() {
				t.Fatalf("%s %s: bodies diverge\n1 shard: %s\n3 shards: %s", stage, q, r1.Body, r3.Body)
			}
		}
		b1 := postJSON(t, s1, "/search/batch", batchBody)
		b3 := postJSON(t, s3, "/search/batch", batchBody)
		if b1.Body.String() != b3.Body.String() {
			t.Fatalf("%s batch: bodies diverge\n1 shard: %s\n3 shards: %s", stage, b1.Body, b3.Body)
		}
	}

	check("static")
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"id":"par-%d","text":%q}`, i, coll.Docs[i].Text)
		r1, r3 := postDoc(s1, body), postDoc(s3, body)
		if r1.Code != http.StatusCreated || r3.Code != http.StatusCreated {
			t.Fatalf("submit %d: status %d vs %d", i, r1.Code, r3.Code)
		}
		if r3.Header().Get("X-LSI-Shard") == "" {
			t.Fatalf("submit %d: missing X-LSI-Shard header", i)
		}
	}
	check("after submits")

	// The generation header is a vector with one entry per shard.
	if gens := strings.Split(get(t, s3, "/search?q=blood").Header().Get("X-LSI-Generation"), ","); len(gens) != 3 {
		t.Fatalf("sharded generation header: %v", gens)
	}
	if gens := strings.Split(get(t, s1, "/search?q=blood").Header().Get("X-LSI-Generation"), ","); len(gens) != 1 {
		t.Fatalf("unsharded generation header: %v", gens)
	}
}

// TestShardedStatsAndMetrics: /stats grows per-shard blocks whose sums
// match the aggregates, and /metrics exposes shard-labeled gauges next
// to the corpus-wide ones.
func TestShardedStatsAndMetrics(t *testing.T) {
	s, coll := shardedServer(t, 3)
	for i := 0; i < 4; i++ {
		if rec := postDoc(s, fmt.Sprintf(`{"text":%q}`, coll.Docs[i].Text)); rec.Code != http.StatusCreated {
			t.Fatalf("submit %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || len(st.PerShard) != 3 || len(st.Generations) != 3 {
		t.Fatalf("shard shape: %+v", st)
	}
	docs, folded, queries := 0, 0, int64(0)
	for i, ss := range st.PerShard {
		if ss.Shard != i {
			t.Fatalf("per-shard block %d labeled %d", i, ss.Shard)
		}
		docs += ss.Documents
		folded += ss.FoldedDocuments
		queries += ss.Queries
	}
	if docs != st.Documents || folded != st.FoldedDocuments || queries != st.Queries {
		t.Fatalf("aggregates diverge from per-shard sums: %+v", st)
	}
	if st.Documents != coll.Size()+4 {
		t.Fatalf("%d documents want %d", st.Documents, coll.Size()+4)
	}

	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"lsi_shards 3",
		`lsi_shard_snapshot_generation{shard="0"}`,
		`lsi_shard_snapshot_generation{shard="2"}`,
		`lsi_shard_queue_depth{shard="1"}`,
		`lsi_shard_documents{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestShardedDuplicateAcrossShards: a duplicate ID is refused with 409
// no matter which shard owns the original.
func TestShardedDuplicateAcrossShards(t *testing.T) {
	s, coll := shardedServer(t, 3)
	body := fmt.Sprintf(`{"id":"dup","text":%q}`, coll.Docs[0].Text)
	if rec := postDoc(s, body); rec.Code != http.StatusCreated {
		t.Fatalf("first add: status %d", rec.Code)
	}
	if rec := postDoc(s, body); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate add: status %d want 409", rec.Code)
	}
	// Seed-corpus IDs are registered too.
	if rec := postDoc(s, fmt.Sprintf(`{"id":%q,"text":"x"}`, coll.Docs[5].ID)); rec.Code != http.StatusConflict {
		t.Fatalf("seed duplicate: status %d want 409", rec.Code)
	}
}

// TestShardedQueueFullIsPerShard: with never-draining one-slot queues,
// filling one shard 503s only that shard — a document owned by another
// shard is still accepted — and the 503 names the hot shard in both the
// header and the body.
func TestShardedQueueFullIsPerShard(t *testing.T) {
	s, coll := testServerOpts(t, Options{
		Shards:         2,
		Engine:         engine.Config{QueueSize: 1, BatchTick: time.Hour},
		RequestTimeout: 50 * time.Millisecond,
		RetryAfter:     2 * time.Second,
	})
	// Find IDs per owner shard by probing: submission reports its shard.
	submit := func(id string) *httptest.ResponseRecorder {
		return postDoc(s, fmt.Sprintf(`{"id":%q,"text":%q}`, id, coll.Docs[0].Text))
	}
	first := submit("qf-seed")
	if first.Code != http.StatusGatewayTimeout { // queued, tick never fires
		t.Fatalf("first submit: status %d", first.Code)
	}
	owner := first.Header().Get("X-LSI-Shard")
	if owner == "" {
		t.Fatal("first submit: no shard header")
	}
	// One queue is now full. Probe until both outcomes are seen: a 503
	// from the full shard, and an acceptance on the other shard — proof
	// that one shard's backpressure never rejects another shard's
	// documents. (The other shard's single slot eventually fills too; its
	// 503s must then name ITSELF, never the first shard.)
	acceptedOther, rejectedOwner := false, false
	for i := 0; i < 64 && !(acceptedOther && rejectedOwner); i++ {
		rec := submit(fmt.Sprintf("qf-probe-%d", i))
		shard := rec.Header().Get("X-LSI-Shard")
		switch rec.Code {
		case http.StatusServiceUnavailable:
			if got := rec.Header().Get("Retry-After"); got != "2" {
				t.Fatalf("Retry-After %q want \"2\"", got)
			}
			if !strings.Contains(rec.Body.String(), "shard "+shard) {
				t.Fatalf("503 body does not name its own shard %s: %s", shard, rec.Body)
			}
			if shard == owner {
				rejectedOwner = true
			} else if !acceptedOther {
				t.Fatalf("probe %d: shard %s 503ed before accepting anything", i, shard)
			}
		case http.StatusGatewayTimeout: // accepted and queued
			if shard != owner {
				acceptedOther = true
			} else {
				t.Fatalf("probe %d: full shard %s accepted a document", i, shard)
			}
		default:
			t.Fatalf("probe %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if !acceptedOther || !rejectedOwner {
		t.Fatalf("probes incomplete: acceptedOther=%v rejectedOwner=%v", acceptedOther, rejectedOwner)
	}
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, rec.Code, rec.Body)
	}
	return rec
}
