package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
)

func testServer(t *testing.T) (*Server, *corpus.Collection) {
	return testServerOpts(t, Options{})
}

func testServerOpts(t *testing.T, opts Options) (*Server, *corpus.Collection) {
	t.Helper()
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s, err := NewWithOptions(coll, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, coll
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestSearchEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/search?q=age+blood+abnormalities&n=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var results []SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].ID != "M9" {
		t.Fatalf("top result %s want M9", results[0].ID)
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Cosine < results[i].Cosine {
			t.Fatal("results not sorted")
		}
	}
}

// TestSearchByteStable pins the determinism contract for user-visible
// output: identical /search and /terms requests must produce
// byte-identical response bodies, both on repeated requests against one
// server and across two independently built models. Everything feeding
// these bodies — tokenization, SVD, scoring, tie-breaking, JSON
// encoding — is deterministic; lsilint's maporder check guards the rest
// of the tree against map-iteration order leaking into output.
func TestSearchByteStable(t *testing.T) {
	s1, _ := testServer(t)
	s2, _ := testServer(t)
	paths := []string{
		"/search?q=age+blood+abnormalities+culture&n=10",
		"/terms?w=oestrogen&n=6",
	}
	for _, path := range paths {
		first := get(t, s1, path)
		if first.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, first.Code, first.Body)
		}
		for i := 0; i < 5; i++ {
			if rec := get(t, s1, path); !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
				t.Fatalf("%s: request %d diverged from first response\n got %s\nwant %s",
					path, i, rec.Body, first.Body)
			}
		}
		if rec := get(t, s2, path); !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
			t.Fatalf("%s: independently built model diverged\n got %s\nwant %s",
				path, rec.Body, first.Body)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	if rec := get(t, s, "/search"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status %d", rec.Code)
	}
	// Query of pure stopwords/unknown words returns an empty list, not 500.
	rec := get(t, s, "/search?q=of+the+zzzz")
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown-word query: status %d", rec.Code)
	}
	var results []SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("expected empty results, got %d", len(results))
	}
	// Wrong method.
	req := httptest.NewRequest(http.MethodPost, "/search?q=x", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /search: status %d", rec2.Code)
	}
}

func TestTermsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/terms?w=oestrogen&n=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var terms []TermResult
	if err := json.Unmarshal(rec.Body.Bytes(), &terms); err != nil {
		t.Fatal(err)
	}
	if len(terms) != 4 {
		t.Fatalf("got %d terms", len(terms))
	}
	if rec := get(t, s, "/terms?w=notaword"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown term: status %d", rec.Code)
	}
	if rec := get(t, s, "/terms"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing w: status %d", rec.Code)
	}
}

func TestAddDocumentAndStats(t *testing.T) {
	s, _ := testServer(t)

	stats := func() Stats {
		rec := get(t, s, "/stats")
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		var st Stats
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	before := stats()
	if before.Documents != 14 || before.FoldedDocuments != 0 {
		t.Fatalf("initial stats %+v", before)
	}

	body := strings.NewReader(`{"id":"M15","text":"behavior of rats after detected rise in oestrogen"}`)
	req := httptest.NewRequest(http.MethodPost, "/documents", body)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("add doc status %d: %s", rec.Code, rec.Body)
	}

	after := stats()
	if after.Documents != 15 || after.FoldedDocuments != 1 {
		t.Fatalf("post-fold stats %+v", after)
	}
	if after.OrthogonalityLoss <= before.OrthogonalityLoss {
		t.Fatal("orthogonality loss should grow after folding")
	}

	// Screening/IVF observability: the mirror serves MED (so its worst
	// residual is a real positive scalar), the 14-doc collection is far
	// below the index build floor (no clusters, no rebuilds), and the
	// cumulative query counter ticked for the searches above.
	if !after.Screening || after.MirrorMaxEps <= 0 {
		t.Fatalf("mirror stats missing: %+v", after)
	}
	if after.IVFClusters != 0 || after.IVFUnclusteredTail != 0 || after.IVFRebuilds != 0 {
		t.Fatalf("14-doc collection reports an IVF index: %+v", after)
	}

	// The folded document is retrievable.
	sr := get(t, s, "/search?q=rats+oestrogen&n=15")
	var results []SearchResult
	if err := json.Unmarshal(sr.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results[:5] {
		if r.ID == "M15" {
			found = true
		}
	}
	if !found {
		t.Fatal("folded-in M15 not in top 5 for its own words")
	}

	// The cumulative query counter ticked for the search above.
	if final := stats(); final.Queries != after.Queries+1 {
		t.Fatalf("query counter %d after one search on %d", final.Queries, after.Queries)
	}
}

func TestAddDocumentValidation(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/documents", strings.NewReader("{bad json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/documents", strings.NewReader(`{"text":""}`))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty text: status %d", rec.Code)
	}
	if rec := get(t, s, "/documents"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /documents: status %d", rec.Code)
	}
}

func TestNewRejectsMismatchedModel(t *testing.T) {
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	model.FoldInDocs(coll.DocVectors(corpus.MEDUpdateTopics))
	if _, err := New(coll, model); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func postBatch(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/search/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestBatchSearchMatchesSequential(t *testing.T) {
	s, _ := testServer(t)
	queries := []string{
		"age blood abnormalities",
		"oestrogen detected rise",
		"of the zzzz", // vectorizes to zero: must get an empty slot, not shift others
		"depressed patients fast culture",
	}
	body, _ := json.Marshal(BatchSearchRequest{Queries: queries, N: 4})
	rec := postBatch(t, s, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var batch [][]SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d result lists for %d queries", len(batch), len(queries))
	}
	if len(batch[2]) != 0 {
		t.Fatalf("zero-word query slot not empty: %v", batch[2])
	}
	for i, q := range queries {
		rec := get(t, s, "/search?q="+strings.ReplaceAll(q, " ", "+")+"&n=4")
		var single []SearchResult
		if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("query %d: batch diverges from /search\n got %v\nwant %v", i, batch[i], single)
		}
	}
}

func TestBatchSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/search/batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search/batch: status %d", rec.Code)
	}
	if rec := postBatch(t, s, "{bad json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", rec.Code)
	}
	if rec := postBatch(t, s, `{"queries":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty queries: status %d", rec.Code)
	}
	big, _ := json.Marshal(BatchSearchRequest{Queries: make([]string, maxBatchQueries+1)})
	if rec := postBatch(t, s, string(big)); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", rec.Code)
	}
}

// postDoc POSTs one document body to /documents.
func postDoc(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/documents", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// expiredRequest builds a request whose context is already done, so the
// handler must bail with a timeout status instead of doing work.
func expiredRequest(method, path, body string) *http.Request {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return req.WithContext(ctx)
}

// TestIntParam is the table-driven regression for the old silent
// coercion: invalid n must surface as an error, not the default.
func TestIntParam(t *testing.T) {
	cases := []struct {
		raw     string
		want    int
		wantErr bool
	}{
		{"", 10, false},
		{"n=5", 5, false},
		{"n=1", 1, false},
		{"n=abc", 0, true},
		{"n=-3", 0, true},
		{"n=0", 0, true},
		{"n=2.5", 0, true},
		{"n=+++", 0, true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/search?"+tc.raw, nil)
		got, err := intParam(r, "n", 10)
		if (err != nil) != tc.wantErr || (!tc.wantErr && got != tc.want) {
			t.Errorf("intParam(%q) = (%d, %v), want (%d, err=%v)", tc.raw, got, err, tc.want, tc.wantErr)
		}
	}
}

// TestInvalidNReturns400 checks the HTTP surface of the same fix on both
// parameterized endpoints.
func TestInvalidNReturns400(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{
		"/search?q=blood&n=abc",
		"/search?q=blood&n=-3",
		"/search?q=blood&n=0",
		"/terms?w=blood&n=abc",
		"/terms?w=blood&n=-1",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400", path, rec.Code)
		}
	}
	// Valid n still works.
	if rec := get(t, s, "/search?q=blood&n=2"); rec.Code != http.StatusOK {
		t.Errorf("valid n: status %d", rec.Code)
	}
}

// TestWriteJSONEncodeFailure: when encoding fails after the header has
// gone out, the server must log and drop — not call http.Error into a
// half-written body (the old behavior, which corrupted the stream and
// triggered a superfluous WriteHeader).
func TestWriteJSONEncodeFailure(t *testing.T) {
	var logged []string
	s := &Server{logf: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]any{"bad": make(chan int)}) // unencodable
	if rec.Code != http.StatusOK {
		t.Fatalf("status rewritten to %d after partial write", rec.Code)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "encoding response") {
		t.Fatalf("expected one encode-failure log, got %v", logged)
	}
	if strings.Contains(rec.Body.String(), "chan") {
		t.Fatalf("error text leaked into body: %q", rec.Body.String())
	}
}

// TestDuplicateDocumentID pins the ID-collision satellite: an explicit
// duplicate is rejected with 409, and the auto-generated doc-%d can no
// longer collide with a user-supplied ID.
func TestDuplicateDocumentID(t *testing.T) {
	s, _ := testServer(t)
	if rec := postDoc(s, `{"id":"X1","text":"pressure in depressed patients"}`); rec.Code != http.StatusCreated {
		t.Fatalf("first add: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postDoc(s, `{"id":"X1","text":"another body"}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate add: status %d want 409", rec.Code)
	}
	// Squat on the next auto id, then add an anonymous document: it must
	// get a fresh id, not the squatted one (the old server produced a
	// second doc-15 here).
	if rec := postDoc(s, `{"id":"doc-15","text":"squatter"}`); rec.Code != http.StatusCreated {
		t.Fatalf("squatter add: status %d", rec.Code)
	}
	rec := postDoc(s, `{"text":"anonymous document about rats"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("anonymous add: status %d", rec.Code)
	}
	var resp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["id"] == "doc-15" {
		t.Fatal("auto id collided with user-supplied id")
	}
	// Every document appears exactly once in the final snapshot.
	snap := s.Engine().Snapshot()
	seen := map[string]int{}
	for j := 0; j < snap.NumDocs(); j++ {
		seen[snap.Doc(j).ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %s appears %d times", id, n)
		}
	}
}

// TestQueueFullBackpressure: with a one-slot queue and a tick that never
// fires, the second submission must get 503 with a Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	s, _ := testServerOpts(t, Options{
		Engine:         engine.Config{QueueSize: 1, BatchTick: time.Hour},
		RequestTimeout: 50 * time.Millisecond,
		RetryAfter:     2 * time.Second,
	})
	// Fills the queue; the request deadline makes the call return without
	// waiting for the (never-arriving) tick.
	rec := postDoc(s, `{"text":"first, queued"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued submit: status %d want 504", rec.Code)
	}
	rec = postDoc(s, `{"text":"second, rejected"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: status %d want 503: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q want \"2\"", got)
	}
	// Close drains the accepted document; the rejected one is gone.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if n := s.Engine().Snapshot().NumDocs(); n != 15 {
		t.Fatalf("after drain: %d docs want 15", n)
	}
}

// TestExpiredContextTimeout: a request whose context is already done gets
// a timeout status on every endpoint, before any work happens.
func TestExpiredContextTimeout(t *testing.T) {
	s, _ := testServer(t)
	cases := []*http.Request{
		expiredRequest(http.MethodGet, "/search?q=blood", ""),
		expiredRequest(http.MethodPost, "/search/batch", `{"queries":["blood"]}`),
		expiredRequest(http.MethodGet, "/terms?w=blood", ""),
		expiredRequest(http.MethodPost, "/documents", `{"text":"doomed"}`),
		expiredRequest(http.MethodGet, "/stats", ""),
	}
	for _, req := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusGatewayTimeout {
			t.Errorf("%s %s: status %d want 504", req.Method, req.URL.Path, rec.Code)
		}
	}
}

// TestRequestTimeoutOnSubmitWait: the per-request deadline expires while
// /documents waits for a batch that never comes → 504, but the document
// was accepted and survives the drain.
func TestRequestTimeoutOnSubmitWait(t *testing.T) {
	s, _ := testServerOpts(t, Options{
		Engine:         engine.Config{QueueSize: 8, BatchTick: time.Hour},
		RequestTimeout: 20 * time.Millisecond,
	})
	rec := postDoc(s, `{"id":"slow","text":"accepted but unacknowledged"}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d want 504: %s", rec.Code, rec.Body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	snap := s.Engine().Snapshot()
	found := false
	for j := 0; j < snap.NumDocs(); j++ {
		if snap.Doc(j).ID == "slow" {
			found = true
		}
	}
	if !found {
		t.Fatal("timed-out submission was lost instead of drained")
	}
}

// TestShutdownDrainsQueuedFoldIns is the drain satellite: submissions
// sitting in the queue when Close is called are folded in before it
// returns, so the final snapshot's document count matches submissions.
func TestShutdownDrainsQueuedFoldIns(t *testing.T) {
	s, _ := testServerOpts(t, Options{
		Engine:         engine.Config{QueueSize: 32, BatchTick: time.Hour},
		RequestTimeout: 20 * time.Millisecond,
	})
	const n = 7
	for i := 0; i < n; i++ {
		rec := postDoc(s, fmt.Sprintf(`{"text":"queued doc %d"}`, i))
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("submit %d: status %d", i, rec.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().Snapshot().NumDocs(); got != 14+n {
		t.Fatalf("after drain: %d docs want %d", got, 14+n)
	}
	// A post-shutdown submission is refused, not hung.
	if rec := postDoc(s, `{"text":"late"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close submit: status %d want 503", rec.Code)
	}
}

// TestMetricsEndpoint: the stdlib exposition carries per-endpoint
// counters, latency histograms, and the pipeline gauges.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	get(t, s, "/search?q=blood&n=3")
	get(t, s, "/search?q=") // 400: missing q
	postDoc(s, `{"text":"metrics fodder"}`)
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`lsi_requests_total{endpoint="search",code="2xx"} 1`,
		`lsi_requests_total{endpoint="search",code="4xx"} 1`,
		`lsi_requests_total{endpoint="documents",code="2xx"} 1`,
		`lsi_request_seconds_bucket{endpoint="search",le="+Inf"} 2`,
		`lsi_request_seconds_count{endpoint="search"} 2`,
		"lsi_snapshot_generation 2",
		"lsi_queue_depth 0",
		"lsi_compactions_total 0",
		"lsi_documents 15",
		"lsi_folded_documents 1",
		"lsi_mirror_max_eps ",
		"lsi_ivf_clusters 0",
		"lsi_ivf_unclustered_tail 0",
		"lsi_ivf_rebuilds_total 0",
		"lsi_queries_total 1",
		"lsi_rescore_candidates_total 0",
		"lsi_ivf_clusters_scanned_total 0",
		"lsi_scanned_rows_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

// TestSearchParityWithLockedPath pins the acceptance criterion that the
// snapshot read path returns byte-identical /search responses to the
// pre-snapshot lock-based implementation: project the query on the model,
// rank with the model's own cached engine (exactly what the old handler
// did under RLock), encode with the same encoder, and compare bytes.
func TestSearchParityWithLockedPath(t *testing.T) {
	s, coll := testServer(t)
	// An independently built, identical model stands in for the pre-PR
	// server's state (builds are deterministic; TestSearchByteStable
	// already pins that property).
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"age+blood+abnormalities&n=3",
		"oestrogen+detected+rise&n=7",
		"depressed+patients&n=14",
	} {
		rec := get(t, s, "/search?q="+q)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		parts := strings.SplitN(q, "&n=", 2)
		raw := coll.QueryVector(strings.ReplaceAll(parts[0], "+", " "))
		n := 10
		fmt.Sscanf(parts[1], "%d", &n)
		ranked := model.RankTop(raw, n) // the old locked path
		want := make([]SearchResult, len(ranked))
		for i, h := range ranked {
			want[i] = SearchResult{ID: coll.Docs[h.Doc].ID, Cosine: h.Score, Text: coll.Docs[h.Doc].Text}
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Body.Bytes(), buf.Bytes()) {
			t.Fatalf("query %q diverged from locked path\n got %s\nwant %s", q, rec.Body, buf.String())
		}
	}
}

// TestConcurrentSearchAndFold hammers /search and /search/batch from
// several goroutines while documents fold in concurrently. Fold-in
// grows the document matrix and lazily extends the norm cache, so this
// (run under -race) is the proof that the cache's internal locking is
// sound against the server's RLock-only read path.
func TestConcurrentSearchAndFold(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s, _ := testServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			body := strings.NewReader(fmt.Sprintf(`{"text":"depressed patients fast %d"}`, i))
			req := httptest.NewRequest(http.MethodPost, "/documents", body)
			s.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					rec := get(t, s, "/search?q=blood+culture&n=5")
					if rec.Code != http.StatusOK {
						t.Errorf("search during folding: status %d", rec.Code)
						return
					}
				} else {
					rec := postBatch(t, s, `{"queries":["blood culture","oestrogen rise"],"n":5}`)
					if rec.Code != http.StatusOK {
						t.Errorf("batch search during folding: status %d", rec.Code)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
}
