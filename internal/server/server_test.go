package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func testServer(t *testing.T) (*Server, *corpus.Collection) {
	t.Helper()
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(coll, model)
	if err != nil {
		t.Fatal(err)
	}
	return s, coll
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestSearchEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/search?q=age+blood+abnormalities&n=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var results []SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].ID != "M9" {
		t.Fatalf("top result %s want M9", results[0].ID)
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Cosine < results[i].Cosine {
			t.Fatal("results not sorted")
		}
	}
}

// TestSearchByteStable pins the determinism contract for user-visible
// output: identical /search and /terms requests must produce
// byte-identical response bodies, both on repeated requests against one
// server and across two independently built models. Everything feeding
// these bodies — tokenization, SVD, scoring, tie-breaking, JSON
// encoding — is deterministic; lsilint's maporder check guards the rest
// of the tree against map-iteration order leaking into output.
func TestSearchByteStable(t *testing.T) {
	s1, _ := testServer(t)
	s2, _ := testServer(t)
	paths := []string{
		"/search?q=age+blood+abnormalities+culture&n=10",
		"/terms?w=oestrogen&n=6",
	}
	for _, path := range paths {
		first := get(t, s1, path)
		if first.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, first.Code, first.Body)
		}
		for i := 0; i < 5; i++ {
			if rec := get(t, s1, path); !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
				t.Fatalf("%s: request %d diverged from first response\n got %s\nwant %s",
					path, i, rec.Body, first.Body)
			}
		}
		if rec := get(t, s2, path); !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
			t.Fatalf("%s: independently built model diverged\n got %s\nwant %s",
				path, rec.Body, first.Body)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	if rec := get(t, s, "/search"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status %d", rec.Code)
	}
	// Query of pure stopwords/unknown words returns an empty list, not 500.
	rec := get(t, s, "/search?q=of+the+zzzz")
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown-word query: status %d", rec.Code)
	}
	var results []SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("expected empty results, got %d", len(results))
	}
	// Wrong method.
	req := httptest.NewRequest(http.MethodPost, "/search?q=x", nil)
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /search: status %d", rec2.Code)
	}
}

func TestTermsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/terms?w=oestrogen&n=4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var terms []TermResult
	if err := json.Unmarshal(rec.Body.Bytes(), &terms); err != nil {
		t.Fatal(err)
	}
	if len(terms) != 4 {
		t.Fatalf("got %d terms", len(terms))
	}
	if rec := get(t, s, "/terms?w=notaword"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown term: status %d", rec.Code)
	}
	if rec := get(t, s, "/terms"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing w: status %d", rec.Code)
	}
}

func TestAddDocumentAndStats(t *testing.T) {
	s, _ := testServer(t)

	stats := func() Stats {
		rec := get(t, s, "/stats")
		if rec.Code != http.StatusOK {
			t.Fatalf("stats status %d", rec.Code)
		}
		var st Stats
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	before := stats()
	if before.Documents != 14 || before.FoldedDocuments != 0 {
		t.Fatalf("initial stats %+v", before)
	}

	body := strings.NewReader(`{"id":"M15","text":"behavior of rats after detected rise in oestrogen"}`)
	req := httptest.NewRequest(http.MethodPost, "/documents", body)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("add doc status %d: %s", rec.Code, rec.Body)
	}

	after := stats()
	if after.Documents != 15 || after.FoldedDocuments != 1 {
		t.Fatalf("post-fold stats %+v", after)
	}
	if after.OrthogonalityLoss <= before.OrthogonalityLoss {
		t.Fatal("orthogonality loss should grow after folding")
	}

	// The folded document is retrievable.
	sr := get(t, s, "/search?q=rats+oestrogen&n=15")
	var results []SearchResult
	if err := json.Unmarshal(sr.Body.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results[:5] {
		if r.ID == "M15" {
			found = true
		}
	}
	if !found {
		t.Fatal("folded-in M15 not in top 5 for its own words")
	}
}

func TestAddDocumentValidation(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/documents", strings.NewReader("{bad json"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/documents", strings.NewReader(`{"text":""}`))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty text: status %d", rec.Code)
	}
	if rec := get(t, s, "/documents"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /documents: status %d", rec.Code)
	}
}

func TestNewRejectsMismatchedModel(t *testing.T) {
	coll := corpus.MED()
	model, err := core.BuildCollection(coll, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	model.FoldInDocs(coll.DocVectors(corpus.MEDUpdateTopics))
	if _, err := New(coll, model); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func postBatch(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/search/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestBatchSearchMatchesSequential(t *testing.T) {
	s, _ := testServer(t)
	queries := []string{
		"age blood abnormalities",
		"oestrogen detected rise",
		"of the zzzz", // vectorizes to zero: must get an empty slot, not shift others
		"depressed patients fast culture",
	}
	body, _ := json.Marshal(BatchSearchRequest{Queries: queries, N: 4})
	rec := postBatch(t, s, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var batch [][]SearchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d result lists for %d queries", len(batch), len(queries))
	}
	if len(batch[2]) != 0 {
		t.Fatalf("zero-word query slot not empty: %v", batch[2])
	}
	for i, q := range queries {
		rec := get(t, s, "/search?q="+strings.ReplaceAll(q, " ", "+")+"&n=4")
		var single []SearchResult
		if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("query %d: batch diverges from /search\n got %v\nwant %v", i, batch[i], single)
		}
	}
}

func TestBatchSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/search/batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search/batch: status %d", rec.Code)
	}
	if rec := postBatch(t, s, "{bad json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", rec.Code)
	}
	if rec := postBatch(t, s, `{"queries":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty queries: status %d", rec.Code)
	}
	big, _ := json.Marshal(BatchSearchRequest{Queries: make([]string, maxBatchQueries+1)})
	if rec := postBatch(t, s, string(big)); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", rec.Code)
	}
}

// TestConcurrentSearchAndFold hammers /search and /search/batch from
// several goroutines while documents fold in concurrently. Fold-in
// grows the document matrix and lazily extends the norm cache, so this
// (run under -race) is the proof that the cache's internal locking is
// sound against the server's RLock-only read path.
func TestConcurrentSearchAndFold(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s, _ := testServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			body := strings.NewReader(fmt.Sprintf(`{"text":"depressed patients fast %d"}`, i))
			req := httptest.NewRequest(http.MethodPost, "/documents", body)
			s.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					rec := get(t, s, "/search?q=blood+culture&n=5")
					if rec.Code != http.StatusOK {
						t.Errorf("search during folding: status %d", rec.Code)
						return
					}
				} else {
					rec := postBatch(t, s, `{"queries":["blood culture","oestrogen rise"],"n":5}`)
					if rec.Code != http.StatusOK {
						t.Errorf("batch search during folding: status %d", rec.Code)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
}
