package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %dx%d data %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("Set/At roundtrip failed: %v", m.At(1, 2))
	}
	for _, v := range []float64{m.At(0, 0), m.At(0, 1), m.At(1, 0)} {
		if v != 0 {
			t.Fatalf("fresh matrix not zeroed")
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range At")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	d := Diag([]float64{1, 2, 3})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			wantI, wantD := 0.0, 0.0
			if i == j {
				wantI = 1
				wantD = float64(i + 1)
			}
			if i3.At(i, j) != wantI || d.At(i, j) != wantD {
				t.Fatalf("identity/diag wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 4)
	if !m.T().T().Equal(m, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestSliceAndAugment(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := NewFromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Fatalf("slice wrong:\n%v", s)
	}
	ac := m.Slice(0, 3, 0, 1).AugmentCols(m.Slice(0, 3, 1, 3))
	if !ac.Equal(m, 0) {
		t.Fatal("AugmentCols does not reassemble")
	}
	ar := m.Slice(0, 1, 0, 3).AugmentRows(m.Slice(1, 3, 0, 3))
	if !ar.Equal(m, 0) {
		t.Fatal("AugmentRows does not reassemble")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-14) {
		t.Fatalf("Mul wrong:\n%v", got)
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 97, 64) // big enough to trip the parallel path
	b := randomMatrix(rng, 64, 53)
	got := Mul(a, b)
	want := New(97, 53)
	mulRange(want, a, b, 0, a.Rows)
	if !got.Equal(want, 1e-12) {
		t.Fatal("parallel Mul differs from serial")
	}
}

func TestMulTAndMulBT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 8, 5)
	b := randomMatrix(rng, 8, 6)
	if !MulT(a, b).Equal(Mul(a.T(), b), 1e-12) {
		t.Fatal("MulT != AᵀB")
	}
	c := randomMatrix(rng, 7, 5)
	if !MulBT(a, c).Equal(Mul(a, c.T()), 1e-12) {
		t.Fatal("MulBT != ABᵀ")
	}
}

func TestMulVecVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 6, 4)
	x := make([]float64, 4)
	y := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	ax := MulVec(a, x)
	for i := 0; i < 6; i++ {
		if math.Abs(ax[i]-Dot(a.Row(i), x)) > 1e-13 {
			t.Fatal("MulVec row mismatch")
		}
	}
	aty := MulVecT(a, y)
	want := MulVec(a.T(), y)
	for i := range aty {
		if math.Abs(aty[i]-want[i]) > 1e-13 {
			t.Fatal("MulVecT mismatch")
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestDotCosineNorm(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Dot(x, []float64{1, 1}) != 7 {
		t.Fatal("Dot wrong")
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Fatalf("orthogonal cosine = %v", c)
	}
	if c := Cosine(x, []float64{6, 8}); math.Abs(c-1) > 1e-15 {
		t.Fatalf("parallel cosine = %v", c)
	}
	if Cosine(x, []float64{0, 0}) != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := 1e300
	n := Norm2([]float64{big, big})
	want := big * math.Sqrt(2)
	if math.IsInf(n, 0) || math.Abs(n-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow guard failed: %v", n)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	n := Normalize(x)
	if n != 5 || math.Abs(Norm2(x)-1) > 1e-15 {
		t.Fatalf("Normalize: n=%v |x|=%v", n, Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("zero vector should return 0")
	}
}

func TestScaleColsMatchesDiagMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 5, 3)
	d := []float64{2, -1, 0.5}
	want := Mul(a, Diag(d))
	got := ScaleCols(a.Clone(), d)
	if !got.Equal(want, 1e-14) {
		t.Fatal("ScaleCols != A·diag(d)")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromRows([][]float64{{3, 0}, {0, 4}})
	if f := m.FrobeniusNorm(); math.Abs(f-5) > 1e-14 {
		t.Fatalf("Frobenius = %v", f)
	}
}

// Property: ‖A‖_F² == Σσᵢ² (Theorem 2.1, norms property).
func TestFrobeniusEqualsSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		a := randomMatrix(rng, 6+trial, 4)
		f := SVDJacobi(a)
		var ssq float64
		for _, s := range f.S {
			ssq += s * s
		}
		nf := a.FrobeniusNorm()
		if math.Abs(math.Sqrt(ssq)-nf) > 1e-10*nf {
			t.Fatalf("‖A‖_F %v != sqrt(Σσ²) %v", nf, math.Sqrt(ssq))
		}
	}
}

func TestOrthogonalityError(t *testing.T) {
	if e := OrthogonalityError(Identity(4)); e != 0 {
		t.Fatalf("identity orthogonality error %v", e)
	}
	// A matrix with a duplicated column is maximally non-orthogonal.
	m := NewFromRows([][]float64{{1, 1}, {0, 0}})
	if e := OrthogonalityError(m); e < 1 {
		t.Fatalf("duplicated column error too small: %v", e)
	}
}

// quick-check: (A+B)−B == A elementwise for generated shapes.
func TestAddSubRoundTripQuick(t *testing.T) {
	f := func(seed int64, r8, c8 uint8) bool {
		r := int(r8%6) + 1
		c := int(c8%6) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, r, c)
		b := randomMatrix(rng, r, c)
		return a.Add(b).Sub(b).Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// quick-check: Mul is associative within tolerance.
func TestMulAssociativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4, 5)
		b := randomMatrix(rng, 5, 3)
		c := randomMatrix(rng, 3, 6)
		return Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
