package dense

import (
	"errors"
	"math"
)

// This file holds the kernels behind the Vecharynski–Saad fast
// SVD-updating strategy (arXiv:1310.2008) and the Cholesky-based
// downdating path: Golub–Kahan bidiagonalization of a dense block, and
// upper-triangular Cholesky/inverse helpers. See docs/ALGORITHMS.md
// ("Golub–Kahan projection updating") for the surrounding math.

// GKFactors is the result of GKBidiag: C·Q = X·B with X (k×l) and
// Q (p×l) column-orthonormal and B (l×l) upper bidiagonal, so
// C ≈ X·B·Qᵀ. The approximation is exact (to roundoff) when l reaches
// rank(C); otherwise the spectral error is at least σ_{l+1}(C), the
// bound the Vecharynski–Saad residual analysis is built on.
type GKFactors struct {
	X *Matrix // k×l, orthonormal columns
	B *Matrix // l×l upper bidiagonal
	Q *Matrix // p×l, orthonormal columns
}

// gkBreakdownTol is the relative threshold below which a new Lanczos
// direction is treated as numerically zero (breakdown).
const gkBreakdownTol = 1e-13

// GKBidiag runs l steps of Golub–Kahan–Lanczos bidiagonalization on the
// k×p matrix c with full (two-pass modified Gram–Schmidt)
// reorthogonalization, the dense-block variant Vecharynski & Saad use to
// replace the inner SVD of the update block. The start vector is the
// deterministic normalized Cᵀ·1, so repeated runs are byte-identical. On
// breakdown (the Krylov space became invariant before step l) the
// recurrence restarts from the next row of C independent of the current
// Q; if no independent direction remains, the row space is exhausted and
// the factorization is returned early with fewer than l columns — at
// that point it reproduces C exactly.
func GKBidiag(c *Matrix, l int) *GKFactors {
	k, p := c.Rows, c.Cols
	if l > p {
		l = p
	}
	if l > k {
		l = k
	}
	if l < 0 {
		l = 0
	}
	// Bases are accumulated transposed (one Lanczos vector per row) so
	// reorthogonalization walks contiguous row views.
	xt := New(l, k)
	qt := New(l, p)
	alpha := make([]float64, l)
	beta := make([]float64, l) // beta[j] couples columns j and j+1
	u := make([]float64, k)
	w := make([]float64, p)
	scale := c.FrobeniusNorm()
	if scale == 0 || l == 0 {
		return &GKFactors{X: New(k, 0), B: New(0, 0), Q: New(p, 0)}
	}
	tol := gkBreakdownTol * scale

	// Start and restart directions are drawn from the row space of C
	// (candidates Cᵀe_t = rows of C): a q chain inside row(C) exhausts it
	// in exactly rank(C) breakdown-free steps, which is what makes the
	// factorization exact once l reaches the rank. A start with a
	// component outside row(C) would waste a Q column on a direction C
	// annihilates.
	//
	// rowStart writes row t of C orthogonalized against the first j rows
	// of qt into w. Returns false when that row is already (numerically)
	// inside span(Q).
	rowStart := func(t, j int) bool {
		copy(w, c.Row(t))
		reorthRows(qt, j, w)
		if Norm2(w) <= tol {
			return false
		}
		Normalize(w)
		return true
	}
	// nextStart finds any unit start direction in row(C) orthogonal to
	// the first j rows of qt. Returns false when span(Q) already covers
	// the whole row space.
	nextStart := func(j int) bool {
		for t := 0; t < k; t++ {
			if rowStart(t, j) {
				return true
			}
		}
		return false
	}

	// Deterministic start: normalized Cᵀ·1 (all-ones combination of the
	// rows), falling back to individual rows when the rows cancel.
	for i := range u {
		u[i] = 1
	}
	MulVecTInto(c, u, w)
	if Norm2(w) <= tol {
		if !nextStart(0) {
			return &GKFactors{X: New(k, 0), B: New(0, 0), Q: New(p, 0)}
		}
	} else {
		Normalize(w)
	}

	steps := 0
	for j := 0; j < l; j++ {
		// u = C·q_j − β_{j-1}·x_{j-1}, reorthogonalized against X.
		MulVecInto(c, w, u)
		reorthRows(xt, j, u)
		a := Normalize(u)
		if a <= tol {
			// q_j adds nothing to the range (it fell in the null space).
			// Sweep the row-space restart directions for one that does.
			a = 0
			for t := 0; t < k && a <= tol; t++ {
				if !rowStart(t, j) {
					continue
				}
				MulVecInto(c, w, u)
				reorthRows(xt, j, u)
				a = Normalize(u)
			}
			if a <= tol {
				break
			}
		}
		copy(qt.Row(j), w)
		copy(xt.Row(j), u)
		alpha[j] = a
		steps = j + 1
		if j+1 == l {
			break
		}
		// w = Cᵀ·x_j − α_j·q_j, reorthogonalized against Q.
		MulVecTInto(c, u, w)
		reorthRows(qt, j+1, w)
		b := Normalize(w)
		if b <= tol {
			// Invariant subspace: restart from an unexplored direction with
			// β_j = 0, keeping B upper bidiagonal (block diagonal).
			if !nextStart(j + 1) {
				break
			}
			b = 0
		}
		beta[j] = b
	}

	bm := New(steps, steps)
	for j := 0; j < steps; j++ {
		bm.Set(j, j, alpha[j])
		if j+1 < steps {
			bm.Set(j, j+1, beta[j])
		}
	}
	return &GKFactors{X: xt.Slice(0, steps, 0, k).T(), B: bm, Q: qt.Slice(0, steps, 0, p).T()}
}

// reorthRows orthogonalizes v against the first j rows of basis with two
// modified Gram–Schmidt passes — the full-reorthogonalization inner loop
// of GKBidiag, run O(l²) times per factorization over row views only.
//
//lsilint:noalloc
func reorthRows(basis *Matrix, j int, v []float64) {
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < j; i++ {
			row := basis.Row(i)
			Axpy(-Dot(row, v), row, v)
		}
	}
}

// ErrNotPosDef reports a Cholesky factorization applied to a matrix that
// is not (numerically) symmetric positive definite.
var ErrNotPosDef = errors.New("dense: matrix is not positive definite")

// CholUpper computes the upper-triangular Cholesky factor R of a
// symmetric positive definite matrix g, so that g = RᵀR. Only the upper
// triangle of g is read. The summation order is fixed, so the factor is
// deterministic for identical input bytes.
func CholUpper(g *Matrix) (*Matrix, error) {
	n := g.Rows
	if g.Cols != n {
		panic("dense: CholUpper needs a square matrix")
	}
	r := New(n, n)
	for i := 0; i < n; i++ {
		d := g.At(i, i)
		for t := 0; t < i; t++ {
			rti := r.At(t, i)
			d -= rti * rti
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPosDef
		}
		rii := math.Sqrt(d)
		r.Set(i, i, rii)
		for j := i + 1; j < n; j++ {
			s := g.At(i, j)
			for t := 0; t < i; t++ {
				s -= r.At(t, i) * r.At(t, j)
			}
			r.Set(i, j, s/rii)
		}
	}
	return r, nil
}

// InvertUpper returns the inverse of an upper-triangular matrix r by
// back substitution on each unit vector. It errors on pivots too small
// to divide by, mirroring SolveUpperTriangular.
func InvertUpper(r *Matrix) (*Matrix, error) {
	n := r.Rows
	if r.Cols != n {
		panic("dense: InvertUpper needs a square matrix")
	}
	inv := New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i >= 0; i-- {
			s := 0.0
			if i == j {
				s = 1
			}
			for t := i + 1; t <= j; t++ {
				s -= r.At(i, t) * inv.At(t, j)
			}
			piv := r.At(i, i)
			if math.Abs(piv) < 1e-300 {
				return nil, errors.New("dense: singular triangular matrix")
			}
			inv.Set(i, j, s/piv)
		}
	}
	return inv, nil
}
