package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigSymTridiagonalKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3 with vectors (1,-1)/√2, (1,1)/√2.
	vals, vecs, err := EigSymTridiagonal([]float64{2, 2}, []float64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector property: T v = λ v.
	for j := 0; j < 2; j++ {
		v0, v1 := vecs.At(0, j), vecs.At(1, j)
		if math.Abs(2*v0+v1-vals[j]*v0) > 1e-12 || math.Abs(v0+2*v1-vals[j]*v1) > 1e-12 {
			t.Fatalf("eigenvector %d wrong", j)
		}
	}
}

func TestEigSymTridiagonalDiagonal(t *testing.T) {
	vals, _, err := EigSymTridiagonal([]float64{5, -1, 3}, []float64{0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 3, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-14 {
			t.Fatalf("vals = %v", vals)
		}
	}
}

// Cross-check against the SVD: the eigenvalues of the tridiagonal BᵀB of a
// bidiagonal matrix are the squared singular values.
func TestEigSymTridiagonalVsSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 12
	diag := make([]float64, n)
	super := make([]float64, n-1)
	b := New(n, n)
	for i := 0; i < n; i++ {
		diag[i] = rng.Float64() + 0.5
		b.Set(i, i, diag[i])
		if i+1 < n {
			super[i] = rng.Float64()
			b.Set(i, i+1, super[i])
		}
	}
	// T = BᵀB is tridiagonal with:
	// T[0,0]=d0², T[i,i]=dᵢ²+eᵢ₋₁², T[i,i+1]=dᵢ·eᵢ.
	td := make([]float64, n)
	te := make([]float64, n-1)
	td[0] = diag[0] * diag[0]
	for i := 1; i < n; i++ {
		td[i] = diag[i]*diag[i] + super[i-1]*super[i-1]
	}
	for i := 0; i < n-1; i++ {
		te[i] = diag[i] * super[i]
	}
	vals, vecs, err := EigSymTridiagonal(td, te, true)
	if err != nil {
		t.Fatal(err)
	}
	f := SVDJacobi(b)
	for i := 0; i < n; i++ {
		want := f.S[n-1-i] * f.S[n-1-i] // ascending vs descending
		if math.Abs(vals[i]-want) > 1e-9*(1+want) {
			t.Fatalf("eig %d = %v want σ² = %v", i, vals[i], want)
		}
	}
	if e := OrthogonalityError(vecs); e > 1e-10 {
		t.Fatalf("eigenvectors not orthonormal: %v", e)
	}
}

func TestEigSymTridiagonalEmptyAndSingle(t *testing.T) {
	if vals, _, err := EigSymTridiagonal(nil, nil, false); err != nil || len(vals) != 0 {
		t.Fatalf("empty: %v %v", vals, err)
	}
	vals, vecs, err := EigSymTridiagonal([]float64{7}, nil, true)
	if err != nil || vals[0] != 7 || vecs.At(0, 0) != 1 {
		t.Fatalf("single: %v %v %v", vals, vecs, err)
	}
}

func TestEigSymTridiagonalSizeMismatch(t *testing.T) {
	if _, _, err := EigSymTridiagonal([]float64{1, 2}, []float64{1, 2, 3}, false); err == nil {
		t.Fatal("expected size error")
	}
}
