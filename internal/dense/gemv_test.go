package dense

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotUnrolledMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 1001} {
		x, y := randVec(rng, n), randVec(rng, n)
		got := dotUnrolled(x, y)
		want := Dot(x, y)
		// Different accumulator layouts round differently; agreement must be
		// to relative machine precision, not bitwise.
		scale := 1.0
		for i := range x {
			scale += math.Abs(x[i] * y[i])
		}
		if math.Abs(got-want) > 1e-13*scale {
			t.Fatalf("n=%d: dotUnrolled=%v Dot=%v", n, got, want)
		}
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, tc := range []struct{ r, c int }{{1, 1}, {3, 7}, {40, 25}, {300, 300}} {
		a := randMat(rng, tc.r, tc.c)
		x := randVec(rng, tc.c)
		want := MulVec(a, x)
		got := make([]float64, tc.r)
		MulVecInto(a, x, got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%dx%d: y[%d]=%v want %v", tc.r, tc.c, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTIntoMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct{ r, c int }{{1, 1}, {7, 3}, {25, 40}, {300, 300}} {
		a := randMat(rng, tc.r, tc.c)
		x := randVec(rng, tc.r)
		want := MulVecT(a, x)
		got := randVec(rng, tc.c) // nonzero garbage: must be overwritten
		MulVecTInto(a, x, got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("%dx%d: y[%d]=%v want %v", tc.r, tc.c, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randMat(rng, 13, 9)
	x := randVec(rng, 13)
	y0 := randVec(rng, 9)
	y := append([]float64(nil), y0...)
	MulVecTAddInto(-2.5, a, x, y)
	atx := MulVecT(a, x)
	for i := range y {
		want := y0[i] - 2.5*atx[i]
		if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("y[%d]=%v want %v", i, y[i], want)
		}
	}
}

// The parallel kernels must be bit-stable: identical output for any worker
// count, because each output element is always summed in the same order.
func TestGemvKernelsWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	// 600×600 = 360000 > parallelThreshold, so GOMAXPROCS(4) engages the
	// parallel paths.
	a := randMat(rng, 600, 600)
	x := randVec(rng, 600)

	old := runtime.GOMAXPROCS(1)
	y1 := make([]float64, 600)
	MulVecInto(a, x, y1)
	z1 := make([]float64, 600)
	MulVecTInto(a, x, z1)
	w1 := randVec(rand.New(rand.NewSource(26)), 600)
	w1b := append([]float64(nil), w1...)
	MulVecTAddInto(-1, a, x, w1b)

	runtime.GOMAXPROCS(4)
	y4 := make([]float64, 600)
	MulVecInto(a, x, y4)
	z4 := make([]float64, 600)
	MulVecTInto(a, x, z4)
	w4b := append([]float64(nil), w1...)
	MulVecTAddInto(-1, a, x, w4b)
	runtime.GOMAXPROCS(old)

	for i := 0; i < 600; i++ {
		if y1[i] != y4[i] {
			t.Fatalf("MulVecInto not worker-count invariant at %d: %v vs %v", i, y1[i], y4[i])
		}
		if z1[i] != z4[i] {
			t.Fatalf("MulVecTInto not worker-count invariant at %d: %v vs %v", i, z1[i], z4[i])
		}
		if w1b[i] != w4b[i] {
			t.Fatalf("MulVecTAddInto not worker-count invariant at %d: %v vs %v", i, w1b[i], w4b[i])
		}
	}
}

func TestMulVecIntoPanicsOnDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(3, 4)
	MulVecInto(a, make([]float64, 4), make([]float64, 2))
}

func BenchmarkMulVecInto1000(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	a := randMat(rng, 1000, 1000)
	x := randVec(rng, 1000)
	y := make([]float64, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVecInto(a, x, y)
	}
}

func BenchmarkMulVecTAddInto1000(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	a := randMat(rng, 1000, 1000)
	x := randVec(rng, 1000)
	y := make([]float64, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVecTAddInto(-1, a, x, y)
	}
}
