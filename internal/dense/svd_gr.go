package dense

import (
	"fmt"
	"math"
	"sort"
)

// SVDGolubReinsch computes the thin SVD of a via Householder
// bidiagonalization followed by implicit-shift QR iteration on the
// bidiagonal form — the classical Golub–Reinsch algorithm that SVDPACK and
// LAPACK descend from. It is the fast path used for the small projected
// matrices inside the Lanczos solver and the SVD-updating phases; its
// output is cross-validated against SVDJacobi in the tests.
//
// Matrices with more columns than rows are handled by transposing.
func SVDGolubReinsch(a *Matrix) (*SVDFactors, error) {
	if a.Rows < a.Cols {
		f, err := SVDGolubReinsch(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDFactors{U: f.V, S: f.S, V: f.U}, nil
	}
	m, n := a.Rows, a.Cols
	if n == 0 {
		return &SVDFactors{U: New(m, 0), S: nil, V: New(0, 0)}, nil
	}

	u := a.Clone() // becomes U in place
	w := make([]float64, n)
	rv1 := make([]float64, n)
	v := New(n, n)

	var g, scale, anorm float64

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l := i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(u.At(k, i))
			}
			if scale != 0 {
				var s float64
				for k := i; k < m; k++ {
					u.Set(k, i, u.At(k, i)/scale)
					s += u.At(k, i) * u.At(k, i)
				}
				f := u.At(i, i)
				g = -math.Copysign(math.Sqrt(s), f)
				h := f*g - s
				u.Set(i, i, f-g)
				for j := l; j < n; j++ {
					var sum float64
					for k := i; k < m; k++ {
						sum += u.At(k, i) * u.At(k, j)
					}
					fac := sum / h
					for k := i; k < m; k++ {
						u.Set(k, j, u.At(k, j)+fac*u.At(k, i))
					}
				}
				for k := i; k < m; k++ {
					u.Set(k, i, u.At(k, i)*scale)
				}
			}
		}
		w[i] = scale * g
		g, scale = 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(u.At(i, k))
			}
			if scale != 0 {
				var s float64
				for k := l; k < n; k++ {
					u.Set(i, k, u.At(i, k)/scale)
					s += u.At(i, k) * u.At(i, k)
				}
				f := u.At(i, l)
				g = -math.Copysign(math.Sqrt(s), f)
				h := f*g - s
				u.Set(i, l, f-g)
				for k := l; k < n; k++ {
					rv1[k] = u.At(i, k) / h
				}
				for j := l; j < m; j++ {
					var sum float64
					for k := l; k < n; k++ {
						sum += u.At(j, k) * u.At(i, k)
					}
					for k := l; k < n; k++ {
						u.Set(j, k, u.At(j, k)+sum*rv1[k])
					}
				}
				for k := l; k < n; k++ {
					u.Set(i, k, u.At(i, k)*scale)
				}
			}
		}
		if an := math.Abs(w[i]) + math.Abs(rv1[i]); an > anorm {
			anorm = an
		}
	}

	// Accumulate right-hand transformations.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		if i < n-1 {
			if g != 0 {
				for j := l; j < n; j++ {
					v.Set(j, i, (u.At(i, j)/u.At(i, l))/g)
				}
				for j := l; j < n; j++ {
					var s float64
					for k := l; k < n; k++ {
						s += u.At(i, k) * v.At(k, j)
					}
					for k := l; k < n; k++ {
						v.Set(k, j, v.At(k, j)+s*v.At(k, i))
					}
				}
			}
			for j := l; j < n; j++ {
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		}
		v.Set(i, i, 1)
		g = rv1[i]
	}

	// Accumulate left-hand transformations.
	for i := minInt(m, n) - 1; i >= 0; i-- {
		l := i + 1
		g = w[i]
		for j := l; j < n; j++ {
			u.Set(i, j, 0)
		}
		if g != 0 {
			g = 1 / g
			for j := l; j < n; j++ {
				var s float64
				for k := l; k < m; k++ {
					s += u.At(k, i) * u.At(k, j)
				}
				f := (s / u.At(i, i)) * g
				for k := i; k < m; k++ {
					u.Set(k, j, u.At(k, j)+f*u.At(k, i))
				}
			}
			for j := i; j < m; j++ {
				u.Set(j, i, u.At(j, i)*g)
			}
		} else {
			for j := i; j < m; j++ {
				u.Set(j, i, 0)
			}
		}
		u.Set(i, i, u.At(i, i)+1)
	}

	// Diagonalize the bidiagonal form by implicit-shift QR.
	const maxIter = 75
	for k := n - 1; k >= 0; k-- {
		for iter := 0; ; iter++ {
			if iter > maxIter {
				return nil, fmt.Errorf("dense: Golub-Reinsch SVD did not converge for singular value %d", k)
			}
			flag := true
			var l, nm int
			for l = k; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm { //lsilint:ignore floatcmp — negligibility test: exact equality after absorption is the point
					flag = false
					break
				}
				if math.Abs(w[nm])+anorm == anorm { //lsilint:ignore floatcmp — negligibility test
					break
				}
			}
			if flag {
				// Cancellation of rv1[l] for l > 0 with w[l-1] ≈ 0.
				c, s := 0.0, 1.0
				for i := l; i <= k; i++ {
					f := s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm { //lsilint:ignore floatcmp — negligibility test
						break
					}
					g = w[i]
					h := pythag(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j := 0; j < m; j++ {
						y := u.At(j, nm)
						z := u.At(j, i)
						u.Set(j, nm, y*c+z*s)
						u.Set(j, i, z*c-y*s)
					}
				}
			}
			z := w[k]
			if l == k {
				// Converged; enforce non-negative singular value.
				if z < 0 {
					w[k] = -z
					for j := 0; j < n; j++ {
						v.Set(j, k, -v.At(j, k))
					}
				}
				break
			}
			// Shift from bottom 2x2 minor.
			x := w[l]
			nm = k - 1
			y := w[nm]
			g = rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = pythag(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+math.Copysign(g, f)))-h)) / x
			c, s := 1.0, 1.0
			for j := l; j <= nm; j++ {
				i := j + 1
				g = rv1[i]
				y = w[i]
				h = s * g
				g = c * g
				zz := pythag(f, h)
				rv1[j] = zz
				c = f / zz
				s = h / zz
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y *= c
				for jj := 0; jj < n; jj++ {
					xv := v.At(jj, j)
					zv := v.At(jj, i)
					v.Set(jj, j, xv*c+zv*s)
					v.Set(jj, i, zv*c-xv*s)
				}
				zz = pythag(f, h)
				w[j] = zz
				if zz != 0 {
					zz = 1 / zz
					c = f * zz
					s = h * zz
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj := 0; jj < m; jj++ {
					yu := u.At(jj, j)
					zu := u.At(jj, i)
					u.Set(jj, j, yu*c+zu*s)
					u.Set(jj, i, zu*c-yu*s)
				}
			}
			rv1[l] = 0
			rv1[k] = f
			w[k] = x
		}
	}

	// Sort singular values descending, permuting U and V columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] > w[idx[j]] })
	uo := New(m, n)
	vo := New(n, n)
	so := make([]float64, n)
	for out, src := range idx {
		so[out] = w[src]
		for i := 0; i < m; i++ {
			uo.Set(i, out, u.At(i, src))
		}
		for i := 0; i < n; i++ {
			vo.Set(i, out, v.At(i, src))
		}
	}
	return &SVDFactors{U: uo, S: so, V: vo}, nil
}

// pythag returns sqrt(a²+b²) without destructive overflow or underflow.
func pythag(a, b float64) float64 {
	absa, absb := math.Abs(a), math.Abs(b)
	if absa > absb {
		r := absb / absa
		return absa * math.Sqrt(1+r*r)
	}
	if absb == 0 {
		return 0
	}
	r := absa / absb
	return absb * math.Sqrt(1+r*r)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SVD computes the thin SVD of a, preferring the fast Golub–Reinsch path
// and falling back to the unconditionally convergent Jacobi method in the
// (rare) event the QR iteration fails to converge.
func SVD(a *Matrix) *SVDFactors {
	f, err := SVDGolubReinsch(a)
	if err != nil {
		return SVDJacobi(a)
	}
	return f
}
