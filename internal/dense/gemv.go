package dense

import (
	"fmt"
	"runtime"
	"sync"
)

// This file holds the in-place, parallel matrix–vector kernels behind the
// blocked Lanczos build path. All of them are bit-stable for any worker
// count: work is partitioned so that every output element is produced by
// exactly one worker summing contributions in ascending index order — the
// same order the serial kernel uses — so GOMAXPROCS changes wall-clock
// time, never the rounded result (the same discipline as MulT/MulBTInto).

// dotUnrolled is Dot with four independent accumulators folded in a fixed
// order. Go does not auto-vectorize reductions, so the serial Dot chains
// every add through one register; splitting the sum gives the CPU
// instruction-level parallelism worth ~2-3× on long vectors. The
// accumulator layout is constant, so the result is deterministic (though
// it rounds differently from the single-accumulator Dot).
//
//lsilint:noalloc
func dotUnrolled(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// MulVecInto computes y = a·x into the caller's buffer (len(y) == a.Rows).
// Rows are partitioned across workers; each y[i] is one unrolled dot
// product, so the result is identical for any worker count.
func MulVecInto(a *Matrix, x, y []float64) {
	if a.Cols != len(x) || a.Rows != len(y) {
		panic(fmt.Sprintf("dense: MulVecInto dims x=%d y=%d want %d,%d", len(x), len(y), a.Cols, a.Rows))
	}
	nw := runtime.GOMAXPROCS(0)
	if a.Rows*a.Cols < parallelThreshold || nw < 2 || a.Rows < 2 {
		mulVecRange(a, x, y, 0, a.Rows)
		return
	}
	if nw > a.Rows {
		nw = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulVecRange(a, x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

//lsilint:noalloc
func mulVecRange(a *Matrix, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = dotUnrolled(a.Row(i), x)
	}
}

// MulVecTInto computes y = aᵀ·x into the caller's buffer
// (len(y) == a.Cols), overwriting it.
func MulVecTInto(a *Matrix, x, y []float64) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("dense: MulVecTInto dims x=%d y=%d want %d,%d", len(x), len(y), a.Rows, a.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	mulVecTAcc(a, 1, x, y)
}

// MulVecTAddInto computes y += alpha·aᵀ·x in place — the second half of a
// blocked reorthogonalization step (v ← v − Bᵀ·c is alpha = −1).
func MulVecTAddInto(alpha float64, a *Matrix, x, y []float64) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("dense: MulVecTAddInto dims x=%d y=%d want %d,%d", len(x), len(y), a.Rows, a.Cols))
	}
	mulVecTAcc(a, alpha, x, y)
}

// mulVecTAcc accumulates y += alpha·aᵀ·x. The output index range is
// partitioned across workers; each y[j] receives its contributions in
// ascending row order regardless of the partition, so the sum — and its
// rounding — is the same for any worker count. Traversal is row-major
// (k outer), keeping every memory access contiguous.
func mulVecTAcc(a *Matrix, alpha float64, x, y []float64) {
	nw := runtime.GOMAXPROCS(0)
	if a.Rows*a.Cols < parallelThreshold || nw < 2 || a.Cols < 2 {
		mulVecTAccRange(a, alpha, x, y, 0, a.Cols)
		return
	}
	if nw > a.Cols {
		nw = a.Cols
	}
	var wg sync.WaitGroup
	chunk := (a.Cols + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > a.Cols {
			hi = a.Cols
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulVecTAccRange(a, alpha, x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

//lsilint:noalloc
func mulVecTAccRange(a *Matrix, alpha float64, x, y []float64, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		s := alpha * x[k]
		if s == 0 {
			continue
		}
		row := a.Row(k)[lo:hi]
		out := y[lo:hi]
		i := 0
		for ; i+4 <= len(row); i += 4 {
			out[i] += s * row[i]
			out[i+1] += s * row[i+1]
			out[i+2] += s * row[i+2]
			out[i+3] += s * row[i+3]
		}
		for ; i < len(row); i++ {
			out[i] += s * row[i]
		}
	}
}
