package dense

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which Mul and
// friends stay serial; spawning goroutines for tiny products costs more
// than it saves.
const parallelThreshold = 1 << 16

// Mul returns a·b. Large products are partitioned by rows of the result
// across GOMAXPROCS goroutines; the inner loops are written i-k-j so the
// innermost traversal is contiguous in both b and the output.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul inner dims %d != %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Matrix) {
	work := a.Rows * a.Cols * b.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 || a.Rows < 2 {
		mulRange(out, a, b, 0, a.Rows)
		return
	}
	if nw > a.Rows {
		nw = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo,hi) of out = a·b with an ikj loop order.
func mulRange(out, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns aᵀ·b without materializing the transpose.
func MulT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: MulT inner dims %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	// outᵀ accumulation: out[i][j] = Σ_k a[k][i] b[k][j]
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulBT returns a·bᵀ without materializing the transpose.
func MulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulBT inner dims %d != %d", a.Cols, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// MulVec returns a·x for a vector x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec dims %d != %d", a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulVecT returns aᵀ·x for a vector x.
func MulVecT(a *Matrix, x []float64) []float64 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("dense: MulVecT dims %d != %d", a.Rows, len(x)))
	}
	out := make([]float64, a.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// ScaleCols multiplies column j of a by d[j], in place, and returns a.
// With d = Σ this turns singular-vector matrices into the σ-scaled
// coordinates the paper plots in Figures 4–9.
func ScaleCols(a *Matrix, d []float64) *Matrix {
	if a.Cols != len(d) {
		panic(fmt.Sprintf("dense: ScaleCols dims %d != %d", a.Cols, len(d)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] *= d[j]
		}
	}
	return a
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot lens %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := v
		if a < 0 {
			a = -a
		}
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy lens %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left untouched and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}

// Cosine returns the cosine of the angle between x and y, or 0 when either
// vector is zero. This is the similarity measure of §2.2.
func Cosine(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}
