package dense

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which Mul and
// friends stay serial; spawning goroutines for tiny products costs more
// than it saves.
const parallelThreshold = 1 << 16

// Mul returns a·b. Large products are partitioned by rows of the result
// across GOMAXPROCS goroutines; the inner loops are written i-k-j so the
// innermost traversal is contiguous in both b and the output.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul inner dims %d != %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Matrix) {
	work := a.Rows * a.Cols * b.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 || a.Rows < 2 {
		mulRange(out, a, b, 0, a.Rows)
		return
	}
	if nw > a.Rows {
		nw = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo,hi) of out = a·b with an ikj loop order.
//
//lsilint:noalloc
func mulRange(out, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns aᵀ·b without materializing the transpose. Large products
// run in parallel: when the output has enough rows they are partitioned
// across workers (per-element summation order identical to the serial
// loop); for tall-skinny operands with a small output — the
// OrthogonalityError and SVD-updating shapes — the shared k dimension is
// split into a fixed number of strips with private accumulators reduced
// in strip order, so the result does not depend on GOMAXPROCS.
func MulT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: MulT inner dims %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 {
		mulTRange(out, a, b, 0, a.Cols)
		return out
	}
	if a.Cols >= nw {
		var wg sync.WaitGroup
		chunk := (a.Cols + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > a.Cols {
				hi = a.Cols
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulTRange(out, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return out
	}
	// Tall-skinny: strip the k dimension. The strip count is a constant
	// (not GOMAXPROCS) so the reduction order — and hence the rounded
	// result — is machine-width independent.
	const strips = 8
	partials := make([]*Matrix, strips)
	var wg sync.WaitGroup
	chunk := (a.Rows + strips - 1) / strips
	for s := 0; s < strips; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			p := New(a.Cols, b.Cols)
			mulTStrip(p, a, b, lo, hi)
			partials[s] = p
		}(s, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p == nil {
			continue
		}
		for i, v := range p.Data {
			out.Data[i] += v
		}
	}
	return out
}

// mulTRange computes output rows [lo,hi) of out = aᵀ·b:
// out[i][j] = Σ_k a[k][i]·b[k][j], k ascending (same order as the serial
// kernel regardless of how [lo,hi) is partitioned).
//
//lsilint:noalloc
func mulTRange(out, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// mulTStrip accumulates the contribution of shared-dimension rows [lo,hi)
// into p (the full output shape).
//
//lsilint:noalloc
func mulTStrip(p, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for k := lo; k < hi; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			prow := p.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				prow[j] += av * bv
			}
		}
	}
}

// MulBT returns a·bᵀ without materializing the transpose.
func MulBT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MulBTInto(out, a, b)
	return out
}

// MulBTInto computes out = a·bᵀ into an existing a.Rows×b.Rows matrix —
// the gemm behind batched query scoring, where reusing the score block
// across batches matters. Work is partitioned across workers along
// whichever operand has more rows, and each worker sweeps b in blocks so
// a handful of b rows stay cache-hot across consecutive a rows. Every
// output element is a single ascending-index dot product, so results are
// byte-identical to the serial kernel for any worker count.
func MulBTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulBT inner dims %d != %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBT out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	work := a.Rows * b.Rows * a.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 {
		mulBTRange(out, a, b, 0, a.Rows, 0, b.Rows)
		return
	}
	var wg sync.WaitGroup
	if a.Rows >= b.Rows {
		if nw > a.Rows {
			nw = a.Rows
		}
		chunk := (a.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > a.Rows {
				hi = a.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTRange(out, a, b, lo, hi, 0, b.Rows)
			}(lo, hi)
		}
	} else {
		// Few a rows (a small query batch against a large collection):
		// split the b rows, i.e. disjoint column ranges of out.
		if nw > b.Rows {
			nw = b.Rows
		}
		chunk := (b.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > b.Rows {
				hi = b.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTRange(out, a, b, 0, a.Rows, lo, hi)
			}(lo, hi)
		}
	}
	wg.Wait()
}

// mulBTBlock is how many rows of b a worker keeps hot while sweeping its
// a rows: 48 rows × a few hundred columns of float64 fits comfortably in
// L2 alongside the current a row.
const mulBTBlock = 48

// mulBTRange fills out[i][j] = a.Row(i)·b.Row(j) for i in [i0,i1), j in
// [j0,j1), blocking over j for cache reuse.
//
//lsilint:noalloc
func mulBTRange(out, a, b *Matrix, i0, i1, j0, j1 int) {
	for jb := j0; jb < j1; jb += mulBTBlock {
		jend := jb + mulBTBlock
		if jend > j1 {
			jend = j1
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := jb; j < jend; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	}
}

// MulVec returns a·x for a vector x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec dims %d != %d", a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulVecT returns aᵀ·x for a vector x.
func MulVecT(a *Matrix, x []float64) []float64 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("dense: MulVecT dims %d != %d", a.Rows, len(x)))
	}
	out := make([]float64, a.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// ScaleCols multiplies column j of a by d[j], in place, and returns a.
// With d = Σ this turns singular-vector matrices into the σ-scaled
// coordinates the paper plots in Figures 4–9.
func ScaleCols(a *Matrix, d []float64) *Matrix {
	if a.Cols != len(d) {
		panic(fmt.Sprintf("dense: ScaleCols dims %d != %d", a.Cols, len(d)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] *= d[j]
		}
	}
	return a
}

// Dot returns the inner product of x and y.
//
//lsilint:noalloc
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Dot lens %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
//
//lsilint:noalloc
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := v
		if a < 0 {
			a = -a
		}
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place.
//
//lsilint:noalloc
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: Axpy lens %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by alpha in place.
//
//lsilint:noalloc
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left untouched and 0 is returned.
//
//lsilint:noalloc
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}

// Cosine returns the cosine of the angle between x and y, or 0 when either
// vector is zero. This is the similarity measure of §2.2.
func Cosine(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}
