package dense

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Int8 companion kernels for the three-tier exact top-k scan: the coarse
// screening pass streams a scalar-quantized mirror of the normalized
// document matrix at one byte per coordinate — a quarter of the float32
// mirror's traffic — with one float64 scale per row. The integer dot
// product of two quantized rows is EXACT (int32 accumulation never
// rounds), so the only error between the quantized score and the true
// one is the quantization residual itself, which is measured per row at
// build time. Like the float32 kernels, these routines never decide a
// final score — only a provably safe candidate set (see internal/rank
// and docs/ALGORITHMS.md for the bracket derivation).

// MaxI8Dim is the widest row the int8 kernels accept: every product is
// bounded by 127² < 2¹⁴, so int32 accumulation of MaxI8Dim terms stays
// below 2³¹ with headroom. Callers (the rank-layer tier builder) skip
// the int8 tier for wider rows instead of risking overflow.
const MaxI8Dim = 1 << 16

// MatrixI8 is a dense row-major int8 matrix — storage for the quantized
// screening tier. It mirrors Matrix's field layout instead of being
// generic: the types never mix inside a kernel.
type MatrixI8 struct {
	Rows, Cols int
	Data       []int8 // len == Rows*Cols, Data[i*Cols+j] == element (i,j)
}

// NewI8 returns a zeroed r×c int8 matrix.
func NewI8(r, c int) *MatrixI8 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &MatrixI8{Rows: r, Cols: c, Data: make([]int8, r*c)}
}

// Row returns a view (not a copy) of row i.
func (m *MatrixI8) Row(i int) []int8 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// MatrixI32 is a dense row-major int32 matrix — the raw integer score
// blocks the int8 gemm produces.
type MatrixI32 struct {
	Rows, Cols int
	Data       []int32
}

// NewI32 returns a zeroed r×c int32 matrix.
func NewI32(r, c int) *MatrixI32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &MatrixI32{Rows: r, Cols: c, Data: make([]int32, r*c)}
}

// Row returns a view (not a copy) of row i.
func (m *MatrixI32) Row(i int) []int32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// DotI8 returns the int32 inner product of x and y. Unlike the float
// kernels the result is exact for any accumulation order — each product
// is at most 127² and len(x) ≤ MaxI8Dim keeps the sum inside int32 — so
// the unroll is purely a throughput matter.
//
//lsilint:noalloc
func DotI8(x, y []int8) int32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: DotI8 lens %d != %d", len(x), len(y)))
	}
	y = y[:len(x)] // bounds-check elimination inside the unrolled loop
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += int32(x[i]) * int32(y[i])
		s1 += int32(x[i+1]) * int32(y[i+1])
		s2 += int32(x[i+2]) * int32(y[i+2])
		s3 += int32(x[i+3]) * int32(y[i+3])
	}
	for ; i < len(x); i++ {
		s0 += int32(x[i]) * int32(y[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// QuantizeI8 writes the symmetric scalar quantization of src into dst
// and returns the scale: s = max|src|/127, dst[j] = round(src[j]/s)
// clamped to [−127, 127]. A zero vector quantizes to scale 0 and all
// zeros. The clamp matters: s is itself rounded, so src[j]/s can land a
// hair above 127 for the extreme coordinate.
//
//lsilint:noalloc
func QuantizeI8(dst []int8, src []float64) float64 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("dense: QuantizeI8 lens %d != %d", len(dst), len(src)))
	}
	var maxAbs float64
	for _, v := range src {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 { //lsilint:ignore floatcmp — exact zero-vector test; any nonzero maxAbs is a valid divisor
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range src {
		q := math.Round(v * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// ResidualI8 returns ‖x − scale·q‖₂, accumulated in float64 — the
// per-row quantization residual the certified int8 bracket is built
// from. Inputs are unit-scale (normalized rows and queries), so plain
// squared accumulation cannot overflow.
//
//lsilint:noalloc
func ResidualI8(x []float64, q []int8, scale float64) float64 {
	if len(x) != len(q) {
		panic(fmt.Sprintf("dense: ResidualI8 lens %d != %d", len(x), len(q)))
	}
	var s float64
	for i, v := range x {
		d := v - scale*float64(q[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// MulBTI8Into computes out = a·bᵀ into an existing a.Rows×b.Rows int32
// matrix — the integer gemm behind batched query screening, structured
// exactly like MulBTF32Into: work splits across workers along whichever
// operand has more rows, and each worker sweeps b in blocks so a handful
// of b rows stay cache-hot across consecutive a rows. Every output
// element is one exact DotI8, so the result is identical for any worker
// count — and, unlike the float gemms, for any summation order too.
func MulBTI8Into(out *MatrixI32, a, b *MatrixI8) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulBTI8 inner dims %d != %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBTI8 out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	work := a.Rows * b.Rows * a.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 {
		mulBTI8Range(out, a, b, 0, a.Rows, 0, b.Rows)
		return
	}
	var wg sync.WaitGroup
	if a.Rows >= b.Rows {
		if nw > a.Rows {
			nw = a.Rows
		}
		chunk := (a.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > a.Rows {
				hi = a.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTI8Range(out, a, b, lo, hi, 0, b.Rows)
			}(lo, hi)
		}
	} else {
		// Few a rows (a query block against a large tier): split the b
		// rows, i.e. disjoint column ranges of out.
		if nw > b.Rows {
			nw = b.Rows
		}
		chunk := (b.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > b.Rows {
				hi = b.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTI8Range(out, a, b, 0, a.Rows, lo, hi)
			}(lo, hi)
		}
	}
	wg.Wait()
}

// mulBTI8Block is how many rows of b a worker keeps hot while sweeping
// its a rows — four times the float32 block, since int8 rows are a
// quarter of the bytes and the same L2 budget holds four times as many.
const mulBTI8Block = 384

// mulBTI8Range fills out[i][j] = a.Row(i)·b.Row(j) for i in [i0,i1),
// j in [j0,j1), blocking over j for cache reuse.
//
//lsilint:noalloc
func mulBTI8Range(out *MatrixI32, a, b *MatrixI8, i0, i1, j0, j1 int) {
	for jb := j0; jb < j1; jb += mulBTI8Block {
		jend := jb + mulBTI8Block
		if jend > j1 {
			jend = j1
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := jb; j < jend; j++ {
				orow[j] = DotI8(arow, b.Row(j))
			}
		}
	}
}
