package dense

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// mulTRef is the straightforward serial reference for aᵀ·b.
func mulTRef(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// mulBTRef is the straightforward serial reference for a·bᵀ.
func mulBTRef(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			out.Set(i, j, Dot(a.Row(i), b.Row(j)))
		}
	}
	return out
}

func maxDiff(a, b *Matrix) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// TestMulTParallelShapes drives both parallel strategies — wide outputs
// (row partitioning) and tall-skinny operands (k-strips with ordered
// reduction) — against the serial reference.
func TestMulTParallelShapes(t *testing.T) {
	old := runtime.GOMAXPROCS(4) // force the parallel branches even on 1 CPU
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ rows, aCols, bCols int }{
		{8, 5, 7},      // tiny: serial branch
		{40, 60, 50},   // wide output: row partitioning
		{5000, 3, 12},  // tall-skinny: strip reduction (a.Cols < workers)
		{3000, 2, 400}, // tall-skinny with a wide b
	}
	for _, c := range cases {
		a := randMat(rng, c.rows, c.aCols)
		b := randMat(rng, c.rows, c.bCols)
		got := MulT(a, b)
		want := mulTRef(a, b)
		if d := maxDiff(got, want); d > 1e-10*float64(c.rows) {
			t.Fatalf("MulT %dx%d · %dx%d: max diff %v", c.rows, c.aCols, c.rows, c.bCols, d)
		}
	}
}

// TestMulTStripDeterministic: the strip reduction must give the same bits
// on every run (fixed strip count, ordered reduction).
func TestMulTStripDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 6000, 3)
	b := randMat(rng, 6000, 9)
	first := MulT(a, b)
	for i := 0; i < 5; i++ {
		if again := MulT(a, b); !first.Equal(again, 0) {
			t.Fatal("MulT strip path is nondeterministic")
		}
	}
}

// TestMulBTParallelMatchesSerial: both partitioning directions must be
// byte-identical to the serial kernel (every element is one ascending
// dot product regardless of which worker computes it).
func TestMulBTParallelMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(13))
	cases := []struct{ aRows, bRows, cols int }{
		{6, 7, 5},      // tiny: serial
		{300, 40, 30},  // many a rows: partition a
		{4, 9000, 20},  // query-batch shape: partition b
		{200, 200, 64}, // square, crosses several cache blocks
	}
	for _, c := range cases {
		a := randMat(rng, c.aRows, c.cols)
		b := randMat(rng, c.bRows, c.cols)
		got := MulBT(a, b)
		want := mulBTRef(a, b)
		if !got.Equal(want, 0) {
			t.Fatalf("MulBT %dx%d · (%dx%d)ᵀ differs from serial reference", c.aRows, c.cols, c.bRows, c.cols)
		}
	}
}

func TestMulBTIntoValidatesShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad out shape")
		}
	}()
	MulBTInto(New(2, 2), New(2, 3), New(4, 3))
}
