package dense

import (
	"fmt"
	"math"
	"sort"
)

// EigSymTridiagonal computes all eigenvalues and (optionally) eigenvectors
// of a symmetric tridiagonal matrix with diagonal d (length n) and
// subdiagonal e (length n-1), by the implicit QL method with Wilkinson
// shifts — the classical tql2 routine. It is the inner solver for the
// Gram-matrix Lanczos path (las2 works with the tridiagonal projection of
// AᵀA; §4.2's "Lanczos-type procedure to approximate the eigensystem of
// GᵀG").
//
// Returns eigenvalues ascending and, when wantVectors, the matrix whose
// columns are the corresponding eigenvectors.
func EigSymTridiagonal(d, e []float64, wantVectors bool) ([]float64, *Matrix, error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, fmt.Errorf("dense: tridiagonal sizes d=%d e=%d", n, len(e))
	}
	if n == 0 {
		return nil, New(0, 0), nil
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)

	var z *Matrix
	if wantVectors {
		z = Identity(n)
	}

	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small subdiagonal element to split at.
			var m int
			for m = l; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 2.220446049250313e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				return nil, nil, fmt.Errorf("dense: tridiagonal QL did not converge at row %d", l)
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := pythag(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = pythag(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*f)
						z.Set(k, i, c*z.At(k, i)-s*f)
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort ascending, permuting eigenvectors to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dd[idx[a]] < dd[idx[b]] })
	vals := make([]float64, n)
	var vecs *Matrix
	if z != nil {
		vecs = New(n, n)
	}
	for out, src := range idx {
		vals[out] = dd[src]
		if z != nil {
			for k := 0; k < n; k++ {
				vecs.Set(k, out, z.At(k, src))
			}
		}
	}
	return vals, vecs, nil
}
