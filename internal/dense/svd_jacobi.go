package dense

import (
	"fmt"
	"math"
	"sort"
)

// SVDFactors holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with U m×r, V n×r column-orthonormal and S sorted descending, r = min(m,n)
// (or k for truncated results).
type SVDFactors struct {
	U *Matrix
	S []float64
	V *Matrix
}

// Truncate returns the rank-k head of the decomposition (shared storage is
// not reused; the result owns fresh matrices).
func (f *SVDFactors) Truncate(k int) *SVDFactors {
	if k > len(f.S) {
		k = len(f.S)
	}
	s := make([]float64, k)
	copy(s, f.S[:k])
	return &SVDFactors{
		U: f.U.Slice(0, f.U.Rows, 0, k),
		S: s,
		V: f.V.Slice(0, f.V.Rows, 0, k),
	}
}

// Reconstruct returns U·diag(S)·Vᵀ, i.e. A_k of Eq (2) when the factors are
// truncated to rank k.
func (f *SVDFactors) Reconstruct() *Matrix {
	us := f.U.Clone()
	ScaleCols(us, f.S)
	return MulBT(us, f.V)
}

// Rank returns the numerical rank: the number of singular values above
// max(m,n)·eps·σ₁ (the usual LAPACK-style threshold).
func (f *SVDFactors) Rank(m, n int) int {
	if len(f.S) == 0 || f.S[0] == 0 {
		return 0
	}
	tol := float64(maxInt(m, n)) * 2.220446049250313e-16 * f.S[0]
	r := 0
	for _, s := range f.S {
		if s > tol {
			r++
		}
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SVDJacobi computes the thin SVD of a by one-sided Jacobi rotations.
// It is slower than Golub–Reinsch for large matrices but simple, extremely
// accurate (singular values to nearly full relative precision), and serves
// as the gold standard the bidiagonal-QR implementation is tested against.
//
// Matrices with more columns than rows are handled by transposing.
func SVDJacobi(a *Matrix) *SVDFactors {
	if a.Rows < a.Cols {
		f := SVDJacobi(a.T())
		return &SVDFactors{U: f.V, S: f.S, V: f.U}
	}
	m, n := a.Rows, a.Cols
	// Work on columns of a copy of A; V accumulates the rotations.
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	eps := 2.220446049250313e-16
	tol := 10 * float64(m) * eps

	cols := make([][]float64, n)
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = w.Col(j)
		vcols[j] = v.Col(j)
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp, cq := cols[p], cols[q]
				alpha := Dot(cp, cp)
				beta := Dot(cq, cq)
				gamma := Dot(cp, cq)
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off++
				// Classic one-sided Jacobi rotation zeroing the (p,q)
				// off-diagonal of the implicit Gram matrix.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta > 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					tp := cp[i]
					cp[i] = c*tp - s*cq[i]
					cq[i] = s*tp + c*cq[i]
				}
				for i := 0; i < n; i++ {
					tp := vcols[p][i]
					vcols[p][i] = c*tp - s*vcols[q][i]
					vcols[q][i] = s*tp + c*vcols[q][i]
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Singular values are the column norms of the rotated matrix; U's
	// columns are the normalized columns.
	type pair struct {
		s   float64
		idx int
	}
	pairs := make([]pair, n)
	for j := 0; j < n; j++ {
		pairs[j] = pair{Norm2(cols[j]), j}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	u := New(m, n)
	vOut := New(n, n)
	s := make([]float64, n)
	for out, pr := range pairs {
		s[out] = pr.s
		cp := cols[pr.idx]
		if pr.s > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, out, cp[i]/pr.s)
			}
		}
		vc := vcols[pr.idx]
		for i := 0; i < n; i++ {
			vOut.Set(i, out, vc[i])
		}
	}
	// Columns of U for zero singular values are left zero; callers that need
	// a full orthonormal basis should re-orthonormalize, which no LSI code
	// path requires (k is always below the numerical rank in practice).
	return &SVDFactors{U: u, S: s, V: vOut}
}

// FixSigns flips the sign of each singular-vector pair so the entry of V
// with the largest magnitude in each column is positive. The SVD is unique
// only up to per-column signs; golden tests and plotted figures use this
// convention for reproducibility.
func (f *SVDFactors) FixSigns() *SVDFactors {
	for j := 0; j < f.V.Cols; j++ {
		best, bestAbs := 0.0, -1.0
		for i := 0; i < f.V.Rows; i++ {
			if a := math.Abs(f.V.At(i, j)); a > bestAbs {
				bestAbs = a
				best = f.V.At(i, j)
			}
		}
		if best < 0 {
			for i := 0; i < f.V.Rows; i++ {
				f.V.Set(i, j, -f.V.At(i, j))
			}
			for i := 0; i < f.U.Rows; i++ {
				f.U.Set(i, j, -f.U.At(i, j))
			}
		}
	}
	return f
}

// ResidualNorm returns ‖A − U diag(S) Vᵀ‖_F / ‖A‖_F, a convergence and
// correctness check (1 ≫ result for a full SVD; for a rank-k truncation it
// equals sqrt(Σ_{i>k} σᵢ²)/‖A‖_F by the Eckart–Young theorem of §2).
func (f *SVDFactors) ResidualNorm(a *Matrix) float64 {
	na := a.FrobeniusNorm()
	if na == 0 {
		return 0
	}
	diff := a.Sub(f.Reconstruct())
	return diff.FrobeniusNorm() / na
}

func (f *SVDFactors) String() string {
	return fmt.Sprintf("SVD{U:%dx%d S:%d V:%dx%d}", f.U.Rows, f.U.Cols, len(f.S), f.V.Rows, f.V.Cols)
}
