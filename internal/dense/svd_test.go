package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkSVD validates the three defining properties of a thin SVD of a:
// orthonormal U and V columns, descending non-negative S, and exact
// reconstruction.
func checkSVD(t *testing.T, a *Matrix, f *SVDFactors, tol float64) {
	t.Helper()
	if e := OrthogonalityError(f.U); e > tol {
		t.Fatalf("UᵀU−I error %v > %v", e, tol)
	}
	if e := OrthogonalityError(f.V); e > tol {
		t.Fatalf("VᵀV−I error %v > %v", e, tol)
	}
	for i, s := range f.S {
		if s < 0 {
			t.Fatalf("negative singular value σ%d = %v", i, s)
		}
		if i > 0 && f.S[i-1] < s-1e-12 {
			t.Fatalf("singular values not sorted: σ%d=%v σ%d=%v", i-1, f.S[i-1], i, s)
		}
	}
	if r := f.ResidualNorm(a); r > tol {
		t.Fatalf("reconstruction residual %v > %v", r, tol)
	}
}

func TestSVDJacobiKnownValues(t *testing.T) {
	// A = [[3,0],[0,-2]] has singular values {3,2}.
	a := NewFromRows([][]float64{{3, 0}, {0, -2}})
	f := SVDJacobi(a)
	if math.Abs(f.S[0]-3) > 1e-14 || math.Abs(f.S[1]-2) > 1e-14 {
		t.Fatalf("S = %v", f.S)
	}
	checkSVD(t, a, f, 1e-12)
}

func TestSVDJacobiRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range [][2]int{{5, 3}, {3, 5}, {10, 10}, {1, 4}, {4, 1}, {20, 7}} {
		a := randomMatrix(rng, shape[0], shape[1])
		checkSVD(t, a, SVDJacobi(a), 1e-10)
	}
}

func TestSVDJacobiRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := New(6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	f := SVDJacobi(a)
	if f.Rank(6, 4) != 1 {
		t.Fatalf("rank = %d want 1 (S=%v)", f.Rank(6, 4), f.S)
	}
	if r := f.Truncate(1).ResidualNorm(a); r > 1e-12 {
		t.Fatalf("rank-1 truncation residual %v", r)
	}
}

func TestSVDJacobiZeroMatrix(t *testing.T) {
	a := New(4, 3)
	f := SVDJacobi(a)
	for _, s := range f.S {
		if s != 0 {
			t.Fatalf("zero matrix has σ=%v", s)
		}
	}
}

func TestSVDGolubReinschMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{6, 4}, {4, 6}, {12, 12}, {30, 9}, {2, 2}, {1, 1}} {
		a := randomMatrix(rng, shape[0], shape[1])
		gr, err := SVDGolubReinsch(a)
		if err != nil {
			t.Fatalf("GR failed on %v: %v", shape, err)
		}
		ja := SVDJacobi(a)
		checkSVD(t, a, gr, 1e-9)
		for i := range gr.S {
			if math.Abs(gr.S[i]-ja.S[i]) > 1e-9*(1+ja.S[0]) {
				t.Fatalf("shape %v σ%d: GR %v vs Jacobi %v", shape, i, gr.S[i], ja.S[i])
			}
		}
	}
}

func TestSVDGolubReinschGradedMatrix(t *testing.T) {
	// Widely spread singular values exercise the shift logic.
	d := []float64{1e8, 1e4, 1, 1e-4, 1e-8}
	rng := rand.New(rand.NewSource(12))
	// Random orthogonal factors via QR of random matrices.
	qu := QR(randomMatrix(rng, 8, 5)).Q
	qv := QR(randomMatrix(rng, 5, 5)).Q
	a := Mul(ScaleCols(qu.Clone(), d), qv.T())
	f, err := SVDGolubReinsch(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range d {
		if math.Abs(f.S[i]-want) > 1e-7*want+1e-9*d[0] {
			t.Fatalf("σ%d = %v want %v", i, f.S[i], want)
		}
	}
}

func TestEckartYoungOptimality(t *testing.T) {
	// ‖A − A_k‖_F² == Σ_{i>k} σᵢ² (Theorem 2.2).
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 9, 6)
	f := SVDJacobi(a)
	for k := 1; k < 6; k++ {
		ak := f.Truncate(k).Reconstruct()
		var tail float64
		for _, s := range f.S[k:] {
			tail += s * s
		}
		got := a.Sub(ak).FrobeniusNorm()
		if math.Abs(got-math.Sqrt(tail)) > 1e-10 {
			t.Fatalf("k=%d: ‖A−A_k‖=%v want %v", k, got, math.Sqrt(tail))
		}
	}
}

func TestTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomMatrix(rng, 7, 5)
	f := SVDJacobi(a)
	tr := f.Truncate(2)
	if tr.U.Cols != 2 || tr.V.Cols != 2 || len(tr.S) != 2 {
		t.Fatal("truncate shape wrong")
	}
	// Truncating past the rank is a no-op on length.
	if len(f.Truncate(99).S) != 5 {
		t.Fatal("over-truncate should clamp")
	}
}

func TestFixSignsDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomMatrix(rng, 6, 4)
	f1 := SVDJacobi(a).FixSigns()
	f2 := SVDJacobi(a.Clone()).FixSigns()
	if !f1.U.Equal(f2.U, 1e-12) || !f1.V.Equal(f2.V, 1e-12) {
		t.Fatal("FixSigns not deterministic")
	}
	// Reconstruction is invariant under sign fixing.
	if r := f1.ResidualNorm(a); r > 1e-10 {
		t.Fatalf("FixSigns broke reconstruction: %v", r)
	}
}

func TestSVDFacadeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomMatrix(rng, 10, 6)
	checkSVD(t, a, SVD(a), 1e-9)
}

func TestQRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shape := range [][2]int{{5, 3}, {8, 8}, {20, 4}, {3, 3}} {
		a := randomMatrix(rng, shape[0], shape[1])
		f := QR(a)
		if e := OrthogonalityError(f.Q); e > 1e-10 {
			t.Fatalf("Q not orthonormal: %v", e)
		}
		if !Mul(f.Q, f.R).Equal(a, 1e-10) {
			t.Fatal("QR != A")
		}
		for i := 1; i < f.R.Rows; i++ {
			for j := 0; j < i; j++ {
				if f.R.At(i, j) != 0 {
					t.Fatal("R not upper triangular")
				}
			}
		}
	}
}

func TestQRWithZeroColumn(t *testing.T) {
	a := NewFromRows([][]float64{{1, 0, 2}, {0, 0, 1}, {1, 0, 0}})
	f := QR(a)
	if !Mul(f.Q, f.R).Equal(a, 1e-12) {
		t.Fatal("QR of zero-column matrix wrong")
	}
}

func TestLeastSquares(t *testing.T) {
	// Fit y = 2x + 1 exactly.
	a := NewFromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Residual must be orthogonal to the column space: Aᵀ(Ax−b)=0.
	rng := rand.New(rand.NewSource(18))
	a := randomMatrix(rng, 10, 3)
	b := make([]float64, 10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := MulVec(a, x)
	for i := range res {
		res[i] -= b[i]
	}
	g := MulVecT(a, res)
	for _, v := range g {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("normal equations violated: %v", g)
		}
	}
}

func TestGramSchmidt(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomMatrix(rng, 8, 4)
	GramSchmidt(a)
	if e := OrthogonalityError(a); e > 1e-12 {
		t.Fatalf("GramSchmidt orthogonality %v", e)
	}
}

func TestSolveUpperTriangularSingular(t *testing.T) {
	r := NewFromRows([][]float64{{1, 2}, {0, 0}})
	if _, err := SolveUpperTriangular(r, []float64{1, 1}); err == nil {
		t.Fatal("expected error for singular system")
	}
}

// Property test: singular values are invariant under orthogonal column
// permutation of A.
func TestSingularValuePermutationInvarianceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 6, 4)
		perm := rng.Perm(4)
		b := New(6, 4)
		for j, p := range perm {
			b.SetCol(j, a.Col(p))
		}
		sa := SVDJacobi(a).S
		sb := SVDJacobi(b).S
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-9*(1+sa[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property test: σ₁ equals the spectral norm estimated by power iteration.
func TestLargestSingularValueIsSpectralNormQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 7, 5)
		s1 := SVDJacobi(a).S[0]
		// Power iteration on AᵀA.
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		Normalize(x)
		for it := 0; it < 500; it++ {
			y := MulVecT(a, MulVec(a, x))
			Normalize(y)
			x = y
		}
		est := Norm2(MulVec(a, x))
		return math.Abs(est-s1) < 1e-6*(1+s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSVDJacobi100x50(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomMatrix(rng, 100, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVDJacobi(a)
	}
}

func BenchmarkSVDGolubReinsch100x50(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomMatrix(rng, 100, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVDGolubReinsch(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulDense200(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	x := randomMatrix(rng, 200, 200)
	y := randomMatrix(rng, 200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
