package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestGKBidiagOrthonormalAndExactAtFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{6, 10}, {10, 6}, {8, 8}} {
		k, p := dims[0], dims[1]
		c := randMat(rng, k, p)
		l := k
		if p < l {
			l = p
		}
		gk := GKBidiag(c, l)
		if gk.B.Rows != l {
			t.Fatalf("%dx%d: got %d GK steps want %d", k, p, gk.B.Rows, l)
		}
		if e := OrthogonalityError(gk.X); e > 1e-12 {
			t.Fatalf("X orthogonality error %g", e)
		}
		if e := OrthogonalityError(gk.Q); e > 1e-12 {
			t.Fatalf("Q orthogonality error %g", e)
		}
		// B upper bidiagonal.
		for i := 0; i < gk.B.Rows; i++ {
			for j := 0; j < gk.B.Cols; j++ {
				if j != i && j != i+1 && gk.B.At(i, j) != 0 {
					t.Fatalf("B[%d][%d]=%g not bidiagonal", i, j, gk.B.At(i, j))
				}
			}
		}
		// At full rank C = X·B·Qᵀ exactly (to roundoff).
		rec := Mul(gk.X, Mul(gk.B, gk.Q.T()))
		if d := rec.Sub(c).FrobeniusNorm(); d > 1e-10*c.FrobeniusNorm() {
			t.Fatalf("%dx%d full-rank reconstruction error %g", k, p, d)
		}
	}
}

func TestGKBidiagTruncationResidualShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randMat(rng, 12, 40)
	prev := math.Inf(1)
	for _, l := range []int{2, 4, 8, 12} {
		gk := GKBidiag(c, l)
		res := Mul(gk.X, Mul(gk.B, gk.Q.T())).Sub(c).FrobeniusNorm()
		if res > prev+1e-12 {
			t.Fatalf("residual grew at l=%d: %g > %g", l, res, prev)
		}
		prev = res
	}
	if prev > 1e-10*c.FrobeniusNorm() {
		t.Fatalf("full-rank residual %g", prev)
	}
}

func TestGKBidiagRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// rank-3 matrix: product of 8x3 and 3x20, plus duplicated columns.
	c := Mul(randMat(rng, 8, 3), randMat(rng, 3, 20))
	gk := GKBidiag(c, 8)
	if gk.B.Rows > 4 {
		t.Fatalf("rank-3 input yielded %d GK steps", gk.B.Rows)
	}
	rec := Mul(gk.X, Mul(gk.B, gk.Q.T()))
	if d := rec.Sub(c).FrobeniusNorm(); d > 1e-10*c.FrobeniusNorm() {
		t.Fatalf("rank-deficient reconstruction error %g", d)
	}
}

func TestGKBidiagZeroAndEmpty(t *testing.T) {
	z := New(5, 7)
	gk := GKBidiag(z, 4)
	if gk.B.Rows != 0 || gk.X.Cols != 0 || gk.Q.Cols != 0 {
		t.Fatalf("zero matrix: got %d steps", gk.B.Rows)
	}
	e := New(5, 0)
	gk = GKBidiag(e, 4)
	if gk.B.Rows != 0 {
		t.Fatalf("empty matrix: got %d steps", gk.B.Rows)
	}
}

func TestGKBidiagDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randMat(rng, 9, 30)
	a := GKBidiag(c, 5)
	b := GKBidiag(c.Clone(), 5)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("X differs between identical runs")
		}
	}
	for i := range a.Q.Data {
		if a.Q.Data[i] != b.Q.Data[i] {
			t.Fatal("Q differs between identical runs")
		}
	}
}

func TestCholUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 20, 6)
	g := MulT(a, a) // SPD (w.h.p.)
	r, err := CholUpper(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R[%d][%d]=%g below diagonal", i, j, r.At(i, j))
			}
		}
	}
	if d := MulT(r, r).Sub(g).FrobeniusNorm(); d > 1e-10*g.FrobeniusNorm() {
		t.Fatalf("RᵀR − G error %g", d)
	}
	// Singular Gram fails.
	b := New(2, 3)
	b.Set(0, 0, 1)
	b.Set(1, 1, 1)
	if _, err := CholUpper(MulT(b, b)); err == nil {
		t.Fatal("singular Gram accepted")
	}
}

func TestInvertUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randMat(rng, 15, 5)
	r, err := CholUpper(MulT(a, a))
	if err != nil {
		t.Fatal(err)
	}
	ri, err := InvertUpper(r)
	if err != nil {
		t.Fatal(err)
	}
	if d := Mul(r, ri).Sub(Identity(5)).FrobeniusNorm(); d > 1e-10 {
		t.Fatalf("R·R⁻¹ − I error %g", d)
	}
}
