package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccumF32(t *testing.T) {
	dst := []float64{1, 2, 3}
	AccumF32(dst, []float32{0.5, -2, 10})
	want := []float64{1.5, 0, 13}
	for i, v := range dst {
		if v != want[i] {
			t.Fatalf("dst[%d] = %v want %v", i, v, want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AccumF32(dst, []float32{1})
}

func TestAccumF32KeepsLowBits(t *testing.T) {
	// Summing many small float32 values into a float64 accumulator must
	// not quantize the running sum back to float32.
	dst := []float64{0}
	for i := 0; i < 1 << 12; i++ {
		AccumF32(dst, []float32{0x1p-12})
	}
	if math.Abs(dst[0]-1) > 1e-9 {
		t.Fatalf("accumulated %v want 1", dst[0])
	}
}

func TestArgBestF32(t *testing.T) {
	dots := []float32{1, 5, 5, 2}
	adj := []float32{0, 1, 1, -4}
	// Scores: 1, 4, 4, 6 → index 3 wins.
	if got := ArgBestF32(dots, adj); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
	// Exact tie between 1 and 2 → lowest index.
	if got := ArgBestF32([]float32{0, 7, 7}, []float32{0, 0, 0}); got != 1 {
		t.Fatalf("tie broke to %d want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty input did not panic")
		}
	}()
	ArgBestF32(nil, nil)
}

func TestDistNorm2(t *testing.T) {
	if d := DistNorm2([]float64{1, 0}, []float64{0, 1}); math.Abs(d-math.Sqrt2) > 1e-15 {
		t.Fatalf("got %v want √2", d)
	}
	if d := DistNorm2([]float64{3, 4}, []float64{3, 4}); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	rng := rand.New(rand.NewSource(9))
	x, y := make([]float64, 33), make([]float64, 33)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	// Agrees with the axpy+norm formulation.
	diff := make([]float64, len(x))
	copy(diff, x)
	Axpy(-1, y, diff)
	if d, want := DistNorm2(x, y), Norm2(diff); math.Abs(d-want) > 1e-12*want {
		t.Fatalf("got %v want %v", d, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DistNorm2(x, y[:5])
}
