package dense

import (
	"fmt"
	"math"
)

// Centroid kernels for the IVF cluster index (internal/rank/ivf.go):
// k-means accumulation and assignment over the float32 screening mirror,
// plus the float64 distance the certified cluster radii are computed
// with. Like the blas32 screening kernels, the float32 routines only
// shape the *candidate structure* (which rows land in which cluster) —
// every certified quantity (centroid, radius, bound) is evaluated in
// float64 against the float64 cache, so clustering quality affects
// performance, never correctness.

// AccumF32 adds x element-wise into the float64 accumulator dst — the
// centroid update step, accumulated in float64 so summing many float32
// rows cannot lose low bits to cancellation.
//
//lsilint:noalloc
func AccumF32(dst []float64, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dense: AccumF32 lens %d != %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] += float64(v)
	}
}

// ArgBestF32 returns the index j maximizing dots[j] - adj[j], lowest
// index on exact ties — the assignment step of k-means on unit-scale
// rows, where nearest-centroid by squared Euclidean distance reduces to
// argmax(row·c_j - ‖c_j‖²/2) and adj carries the precomputed ‖c_j‖²/2.
// The scan order is fixed, so the result is deterministic for any
// worker count upstream.
//
//lsilint:noalloc
func ArgBestF32(dots, adj []float32) int {
	if len(dots) != len(adj) || len(dots) == 0 {
		panic(fmt.Sprintf("dense: ArgBestF32 lens %d, %d", len(dots), len(adj)))
	}
	best := 0
	bv := dots[0] - adj[0]
	for j := 1; j < len(dots); j++ {
		if d := dots[j] - adj[j]; d > bv {
			best, bv = j, d
		}
	}
	return best
}

// DistNorm2 returns ‖x − y‖₂ in float64 — the certified cluster radius
// ingredient. Inputs are unit-scale (normalized rows and centroids), so
// plain squared accumulation cannot overflow.
//
//lsilint:noalloc
func DistNorm2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: DistNorm2 lens %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}
