package dense

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Float32 companion kernels for the two-stage exact top-k scan: the
// screening pass streams a half-width mirror of the normalized document
// matrix, so the bandwidth-bound part of query scoring moves half the
// bytes of the float64 path. Only *screening* runs in float32 — every
// surviving candidate is rescored with the float64 kernels, so these
// routines never decide a final score, only a provably safe candidate
// set (see internal/rank and docs/ALGORITHMS.md for the error bound).

// MatrixF32 is a dense row-major float32 matrix — storage for screening
// mirrors and screened score blocks. It deliberately mirrors Matrix's
// field layout instead of being generic: the two types never mix inside
// a kernel.
type MatrixF32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, Data[i*Cols+j] == element (i,j)
}

// NewF32 returns a zeroed r×c float32 matrix.
func NewF32(r, c int) *MatrixF32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &MatrixF32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// Row returns a view (not a copy) of row i.
func (m *MatrixF32) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// DotF32 returns the float32 inner product of x and y. Four independent
// accumulators break the floating-point add dependency chain, so the
// screening scan runs at multiply-add throughput instead of add latency
// — the reason the mirror pass beats the float64 scan by more than the
// 2× bandwidth ratio. Any summation order stays inside the standard
// |fl(x·y) − x·y| ≤ γ_n·‖x‖·‖y‖ bound the rescue threshold is built on.
//
//lsilint:noalloc
func DotF32(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: DotF32 lens %d != %d", len(x), len(y)))
	}
	y = y[:len(x)] // bounds-check elimination inside the unrolled loop
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(x); i += 8 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
		s4 += x[i+4] * y[i+4]
		s5 += x[i+5] * y[i+5]
		s6 += x[i+6] * y[i+6]
		s7 += x[i+7] * y[i+7]
	}
	var t float32
	for ; i < len(x); i++ {
		t += x[i] * y[i]
	}
	return (((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7))) + t
}

// ConvertF32 rounds src element-wise to float32 into dst — the
// quantization step that builds mirror rows and query mirrors.
//
//lsilint:noalloc
func ConvertF32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("dense: ConvertF32 lens %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// ResidualF32 returns ‖x − y‖₂ with y read back as exact reals — the
// per-row quantization residual that the Cauchy–Schwarz screening bound
// is built from. Inputs are unit-scale (normalized rows and queries), so
// plain squared accumulation cannot overflow.
//
//lsilint:noalloc
func ResidualF32(x []float64, y []float32) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dense: ResidualF32 lens %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - float64(y[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Norm2F32 returns the Euclidean norm of x, accumulated in float64.
// Like ResidualF32 it is meant for unit-scale screening vectors, so it
// skips Norm2's overflow scaling.
//
//lsilint:noalloc
func Norm2F32(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MulBTF32Into computes out = a·bᵀ into an existing a.Rows×b.Rows float32
// matrix — the gemm behind batched query screening, structured exactly
// like the float64 MulBTInto: work splits across workers along whichever
// operand has more rows, and each worker sweeps b in blocks so a handful
// of b rows stay cache-hot across consecutive a rows. Every output
// element is one DotF32, so the result is identical for any worker count.
func MulBTF32Into(out, a, b *MatrixF32) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulBTF32 inner dims %d != %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulBTF32 out %dx%d want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	work := a.Rows * b.Rows * a.Cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 {
		mulBTF32Range(out, a, b, 0, a.Rows, 0, b.Rows)
		return
	}
	var wg sync.WaitGroup
	if a.Rows >= b.Rows {
		if nw > a.Rows {
			nw = a.Rows
		}
		chunk := (a.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > a.Rows {
				hi = a.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTF32Range(out, a, b, lo, hi, 0, b.Rows)
			}(lo, hi)
		}
	} else {
		// Few a rows (a query block against a large mirror): split the b
		// rows, i.e. disjoint column ranges of out.
		if nw > b.Rows {
			nw = b.Rows
		}
		chunk := (b.Rows + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > b.Rows {
				hi = b.Rows
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mulBTF32Range(out, a, b, 0, a.Rows, lo, hi)
			}(lo, hi)
		}
	}
	wg.Wait()
}

// mulBTF32Block is how many rows of b a worker keeps hot while sweeping
// its a rows — twice the float64 block, since float32 rows are half the
// bytes and the same L2 budget holds twice as many of them.
const mulBTF32Block = 96

// mulBTF32Range fills out[i][j] = a.Row(i)·b.Row(j) for i in [i0,i1),
// j in [j0,j1), blocking over j for cache reuse.
//
//lsilint:noalloc
func mulBTF32Range(out, a, b *MatrixF32, i0, i1, j0, j1 int) {
	for jb := j0; jb < j1; jb += mulBTF32Block {
		jend := jb + mulBTF32Block
		if jend > j1 {
			jend = j1
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := jb; j < jend; j++ {
				orow[j] = DotF32(arow, b.Row(j))
			}
		}
	}
}
