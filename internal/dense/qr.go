package dense

import (
	"fmt"
	"math"
)

// QRFactors holds a thin (economy) QR factorization A = Q·R with
// Q m×n column-orthonormal and R n×n upper triangular (for m ≥ n).
type QRFactors struct {
	Q *Matrix
	R *Matrix
}

// QR computes a thin Householder QR factorization of a (m ≥ n required).
// Householder reflectors are accumulated into an explicit thin Q, which is
// what the SVD-updating phases need (they multiply small Q factors into
// existing singular-vector matrices).
func QR(a *Matrix) *QRFactors {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dense: QR needs rows >= cols, got %dx%d", m, n))
	}
	r := a.Clone()
	// vs[k] stores the k-th Householder vector (length m-k, v[0] ≡ 1 implicit
	// in the standard formulation; we store the full scaled vector instead).
	vs := make([][]float64, n)
	betas := make([]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder vector annihilating r[k+1:m, k].
		x := make([]float64, m-k)
		for i := k; i < m; i++ {
			x[i-k] = r.At(i, k)
		}
		alpha := Norm2(x)
		if x[0] > 0 {
			alpha = -alpha
		}
		v := x
		v[0] -= alpha
		vn := Norm2(v)
		if vn == 0 || alpha == 0 {
			// Column already zero below the diagonal; identity reflector.
			vs[k] = nil
			betas[k] = 0
			continue
		}
		ScaleVec(1/vn, v)
		vs[k] = v
		betas[k] = 2

		// Apply H = I − 2vvᵀ to r[k:m, k:n].
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
	}

	// Accumulate thin Q by applying reflectors to the first n columns of I.
	q := New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}

	rOut := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rOut.Set(i, j, r.At(i, j))
		}
	}
	return &QRFactors{Q: q, R: rOut}
}

// SolveUpperTriangular solves R x = b for upper-triangular R by back
// substitution. Zero (or numerically tiny) pivots yield an error.
func SolveUpperTriangular(r *Matrix, b []float64) ([]float64, error) {
	n := r.Rows
	if r.Cols != n || len(b) != n {
		return nil, fmt.Errorf("dense: SolveUpperTriangular shape %dx%d, b %d", r.Rows, r.Cols, len(b))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		p := r.At(i, i)
		if math.Abs(p) < 1e-300 {
			return nil, fmt.Errorf("dense: singular triangular system at pivot %d", i)
		}
		x[i] = s / p
	}
	return x, nil
}

// LeastSquares solves min ‖Ax − b‖₂ via QR (m ≥ n, full column rank).
// The SVD is "commonly used in the solution of unconstrained linear least
// squares problems" (§2); this QR route is the cross-check used in tests.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("dense: LeastSquares dims %d != %d", a.Rows, len(b))
	}
	f := QR(a)
	qtb := MulVecT(f.Q, b)
	return SolveUpperTriangular(f.R, qtb)
}

// GramSchmidt orthonormalizes the columns of a in place using modified
// Gram–Schmidt with one reorthogonalization pass. Columns that become
// numerically zero are replaced by zero vectors. Returns a for chaining.
func GramSchmidt(a *Matrix) *Matrix {
	n := a.Cols
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = a.Col(j)
	}
	for j := 0; j < n; j++ {
		v := cols[j]
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				Axpy(-Dot(cols[i], v), cols[i], v)
			}
		}
		if Normalize(v) < 1e-13 {
			for i := range v {
				v[i] = 0
			}
		}
		a.SetCol(j, v)
		cols[j] = v
	}
	return a
}
