package dense

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDotI8 is the reference the unrolled kernel is pinned against —
// int64 accumulation, so any int32 overflow in the kernel would show.
func naiveDotI8(x, y []int8) int64 {
	var s int64
	for i := range x {
		s += int64(x[i]) * int64(y[i])
	}
	return s
}

func randI8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

func TestDotI8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 100, 1000} {
		x, y := randI8(rng, n), randI8(rng, n)
		got := DotI8(x, y)
		want := naiveDotI8(x, y)
		if int64(got) != want {
			t.Fatalf("n=%d: DotI8 = %d, want %d", n, got, want)
		}
	}
}

func TestDotI8WorstCaseNoOverflow(t *testing.T) {
	// Every term at the maximum magnitude, at the widest supported row:
	// the sum must still be exact in int32.
	x := make([]int8, MaxI8Dim)
	for i := range x {
		x[i] = 127
	}
	got := DotI8(x, x)
	want := naiveDotI8(x, x)
	if want > math.MaxInt32 {
		t.Fatalf("MaxI8Dim too large: worst-case dot %d overflows int32", want)
	}
	if int64(got) != want {
		t.Fatalf("worst-case DotI8 = %d, want %d", got, want)
	}
}

func TestQuantizeI8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 64, 301} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		q := make([]int8, n)
		scale := QuantizeI8(q, src)
		if scale <= 0 {
			t.Fatalf("n=%d: nonpositive scale %v for nonzero input", n, scale)
		}
		// Per-coordinate error of symmetric round-to-nearest is at most
		// half a step.
		for i, v := range src {
			if d := math.Abs(v - scale*float64(q[i])); d > scale/2*(1+1e-12) {
				t.Fatalf("coord %d: |%v - %v·%d| = %v exceeds scale/2", i, v, scale, q[i], d)
			}
		}
		// The residual matches a direct computation.
		want := 0.0
		for i, v := range src {
			d := v - scale*float64(q[i])
			want += d * d
		}
		want = math.Sqrt(want)
		if got := ResidualI8(src, q, scale); got != want {
			t.Fatalf("ResidualI8 = %v, want %v", got, want)
		}
	}
}

func TestQuantizeI8ZeroVector(t *testing.T) {
	src := make([]float64, 7)
	q := []int8{1, 2, 3, 4, 5, 6, 7} // stale garbage must be cleared
	if scale := QuantizeI8(q, src); scale != 0 {
		t.Fatalf("zero vector scale = %v, want 0", scale)
	}
	for i, v := range q {
		if v != 0 {
			t.Fatalf("q[%d] = %d, want 0", i, v)
		}
	}
	if r := ResidualI8(src, q, 0); r != 0 {
		t.Fatalf("zero-vector residual = %v, want 0", r)
	}
}

func TestQuantizeI8ExtremeCoordinateClamps(t *testing.T) {
	// The extreme coordinate divides to exactly ±127 in real arithmetic;
	// the float division may land above, and must clamp, never wrap.
	src := []float64{1e-300, -1e-300, 1e-308, -1e-308, 0.3}
	q := make([]int8, len(src))
	QuantizeI8(q, src)
	for i, v := range q {
		if v > 127 || v < -127 {
			t.Fatalf("q[%d] = %d out of [-127,127]", i, v)
		}
	}
	if q[4] != 127 {
		t.Fatalf("extreme coordinate q = %d, want 127", q[4])
	}
}

func TestMulBTI8IntoMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct{ ar, br, c int }{
		{1, 1, 1}, {3, 5, 8}, {17, 400, 33}, {64, 1000, 50},
	} {
		a := &MatrixI8{Rows: shape.ar, Cols: shape.c, Data: randI8(rng, shape.ar*shape.c)}
		b := &MatrixI8{Rows: shape.br, Cols: shape.c, Data: randI8(rng, shape.br*shape.c)}
		out := NewI32(shape.ar, shape.br)
		MulBTI8Into(out, a, b)
		for i := 0; i < shape.ar; i++ {
			for j := 0; j < shape.br; j++ {
				if want := DotI8(a.Row(i), b.Row(j)); out.Row(i)[j] != want {
					t.Fatalf("shape %+v: out[%d][%d] = %d, want %d", shape, i, j, out.Row(i)[j], want)
				}
			}
		}
	}
}
