package dense

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func randomF32(rng *rand.Rand, r, c int) *MatrixF32 {
	m := NewF32(r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestDotF32Exact checks the unrolled kernel against a naive float32
// accumulation promoted to float64 per term — the two need not agree
// bitwise (different summation orders), so we bound the difference by a
// conservative rounding envelope, and separately pin a handful of small
// exact cases where no rounding can occur.
func TestDotF32Exact(t *testing.T) {
	for n, want := range map[int]float32{0: 0, 1: 2, 2: 6, 3: 12, 5: 30, 9: 90} {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(i + 1) // small integers: float32 arithmetic is exact
			y[i] = 2
		}
		if got := DotF32(x, y); got != want {
			t.Fatalf("n=%d: DotF32 = %v, want %v", n, got, want)
		}
	}
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{4, 7, 16, 33, 100, 1023} {
		x := make([]float32, n)
		y := make([]float32, n)
		var naive float64
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
			naive += float64(x[i]) * float64(y[i])
		}
		got := float64(DotF32(x, y))
		// γ-style envelope: n+1 roundings at float32 precision on the
		// magnitude sum.
		var mag float64
		for i := range x {
			mag += math.Abs(float64(x[i]) * float64(y[i]))
		}
		if tol := float64(n+1) * (1.0 / (1 << 23)) * (mag + 1); math.Abs(got-naive) > tol {
			t.Fatalf("n=%d: DotF32 = %v, naive %v, tol %v", n, got, naive, tol)
		}
	}
}

func TestDotF32PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotF32 accepted mismatched lengths")
		}
	}()
	DotF32(make([]float32, 3), make([]float32, 4))
}

// TestConvertResidualNorm checks the mirror-building helpers:
// ConvertF32 must round each element to nearest float32, ResidualF32
// must equal the Euclidean norm of the conversion error, Norm2F32 the
// float64-accumulated norm of the float32 vector.
func TestConvertResidualNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n = 257
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	dst := make([]float32, n)
	ConvertF32(dst, src)
	var wantResid, wantNorm float64
	for i := range src {
		if dst[i] != float32(src[i]) {
			t.Fatalf("elem %d: ConvertF32 gave %v want %v", i, dst[i], float32(src[i]))
		}
		d := src[i] - float64(dst[i])
		wantResid += d * d
		wantNorm += float64(dst[i]) * float64(dst[i])
	}
	wantResid = math.Sqrt(wantResid)
	wantNorm = math.Sqrt(wantNorm)
	if got := ResidualF32(src, dst); math.Abs(got-wantResid) > 1e-12*(1+wantResid) {
		t.Fatalf("ResidualF32 = %v want %v", got, wantResid)
	}
	if got := Norm2F32(dst); math.Abs(got-wantNorm) > 1e-12*(1+wantNorm) {
		t.Fatalf("Norm2F32 = %v want %v", got, wantNorm)
	}
}

// TestMulBTF32IntoMatchesDot pins the tiled gemm to the dot kernel it
// reorders: every output cell must be bit-identical to DotF32 of the
// corresponding rows, and identical across worker counts — the screening
// threshold derives from these scores, so nondeterminism here would make
// candidate sets (though never final results) flap between runs.
func TestMulBTF32IntoMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cases := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 5, 8},
		{32, 200, 48},          // one tile
		{97, 301, 129},         // ragged tiles on every edge
		{8, parallelThreshold/32 + 5, 4}, // crosses the parallel threshold
	}
	for _, tc := range cases {
		a := randomF32(rng, tc.m, tc.k)
		b := randomF32(rng, tc.n, tc.k)
		var ref *MatrixF32
		for _, nw := range []int{1, 2, 3, 7} {
			runtime.GOMAXPROCS(nw)
			out := NewF32(tc.m, tc.n)
			MulBTF32Into(out, a, b)
			for i := 0; i < tc.m; i++ {
				for j := 0; j < tc.n; j++ {
					if want := DotF32(a.Row(i), b.Row(j)); out.Data[i*tc.n+j] != want {
						t.Fatalf("%dx%dx%d nw=%d: out[%d,%d]=%v want %v",
							tc.m, tc.n, tc.k, nw, i, j, out.Data[i*tc.n+j], want)
					}
				}
			}
			if ref == nil {
				ref = out
			} else {
				for p, v := range out.Data {
					if math.Float32bits(v) != math.Float32bits(ref.Data[p]) {
						t.Fatalf("%dx%dx%d: nw=%d diverges from nw=1 at %d", tc.m, tc.n, tc.k, nw, p)
					}
				}
			}
		}
	}
	runtime.GOMAXPROCS(runtime.NumCPU())
}

func BenchmarkDotF32(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	x := make([]float32, 256)
	y := make([]float32, 256)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(len(x)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF32 = DotF32(x, y)
	}
}

var sinkF32 float32
