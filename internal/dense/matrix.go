// Package dense provides dense matrix storage and the dense linear-algebra
// kernels the LSI pipeline needs: BLAS-like multiply routines, Householder
// QR, and two independent SVD implementations (one-sided Jacobi and
// Golub–Reinsch bidiagonal QR). Everything is float64 and row-major.
//
// The package is self-contained (stdlib only) and deliberately small: it is
// the workhorse under internal/lanczos (small projected problems) and
// internal/core (the worked 18×14 example, SVD-updating phases), not a
// general-purpose BLAS replacement.
package dense

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] == element (i,j)
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices; all rows must share a length.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged row %d: len %d want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Data[i*len(d)+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol overwrites column j with v (len(v) must equal Rows).
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("dense: SetCol len %d want %d", len(v), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := New(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Slice returns a copy of the submatrix with rows [r0,r1) and cols [c0,c1).
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("dense: bad slice [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	s := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return s
}

// AugmentCols returns [m | b] (horizontal concatenation).
func (m *Matrix) AugmentCols(b *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("dense: AugmentCols rows %d != %d", m.Rows, b.Rows))
	}
	out := New(m.Rows, m.Cols+b.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
		copy(out.Row(i)[m.Cols:], b.Row(i))
	}
	return out
}

// AugmentRows returns [m ; b] (vertical concatenation).
func (m *Matrix) AugmentRows(b *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: AugmentRows cols %d != %d", m.Cols, b.Cols))
	}
	out := New(m.Rows+b.Rows, m.Cols)
	copy(out.Data[:len(m.Data)], m.Data)
	copy(out.Data[len(m.Data):], b.Data)
	return out
}

// FlipColumns negates the columns of m marked in flip, in place — the
// applicator for a sign convention decided externally (FixSigns'
// decision computed across distributed row blocks of one conceptual
// matrix; see core.CombineSignFlips). Columns beyond len(flip) are left
// alone.
func FlipColumns(m *Matrix, flip []bool) {
	w := len(flip)
	if w > m.Cols {
		w = m.Cols
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := 0; j < w; j++ {
			if flip[j] {
				row[j] = -row[j]
			}
		}
	}
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: Add shape %dx%d != %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("dense: Sub shape %dx%d != %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range m.Data {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value (zero for empty).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether every element of m and b agrees within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% 9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// OrthogonalityError returns ‖QᵀQ − I‖_F for the columns of Q — the measure
// the paper uses in §4.3 to quantify the distortion folding-in introduces.
func OrthogonalityError(q *Matrix) float64 {
	g := MulT(q, q) // QᵀQ
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Cols+i] -= 1
	}
	return g.FrobeniusNorm()
}
