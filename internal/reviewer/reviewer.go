// Package reviewer implements the "matching people instead of documents"
// application of §5.4: reviewers are represented by texts they have
// written, submissions by their abstracts, and papers are assigned to the
// closest reviewers in LSI space subject to the paper's two constraints —
// "each paper was reviewed p times and each reviewer received no more than
// r papers."
package reviewer

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/weight"
)

// Assigner holds the LSI space built from reviewer texts.
type Assigner struct {
	Model     *core.Model
	Reviewers *corpus.Collection
}

// Config parameterizes New.
type Config struct {
	K      int
	Scheme weight.Scheme
	Seed   int64
}

// New builds the reviewer space: one "document" per reviewer.
func New(reviewerTexts []corpus.Document, opts Config, parse func([]corpus.Document) *corpus.Collection) (*Assigner, error) {
	coll := parse(reviewerTexts)
	m, err := core.BuildCollection(coll, core.Config{K: opts.K, Scheme: opts.Scheme, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("reviewer: %w", err)
	}
	return &Assigner{Model: m, Reviewers: coll}, nil
}

// Similarities returns the cosine of one submission abstract against every
// reviewer.
func (a *Assigner) Similarities(abstract string) []float64 {
	qhat := a.Model.ProjectQuery(a.Reviewers.QueryVector(abstract))
	return a.Model.CosinesAll(qhat)
}

// Assignment maps paper index → reviewer indices.
type Assignment [][]int

// Assign distributes papers to reviewers: each paper gets reviewersPerPaper
// reviewers, no reviewer gets more than maxPerReviewer papers. The greedy
// strategy processes (paper, reviewer) pairs in descending similarity,
// which maximizes total similarity well in practice (the paper reports the
// automatic assignments were "as good as those of human experts").
func (a *Assigner) Assign(abstracts []string, reviewersPerPaper, maxPerReviewer int) (Assignment, error) {
	nPapers, nRev := len(abstracts), a.Reviewers.Size()
	if reviewersPerPaper <= 0 || maxPerReviewer <= 0 {
		return nil, fmt.Errorf("reviewer: constraints must be positive")
	}
	if nPapers*reviewersPerPaper > nRev*maxPerReviewer {
		return nil, fmt.Errorf("reviewer: infeasible: %d paper-slots > %d reviewer-slots",
			nPapers*reviewersPerPaper, nRev*maxPerReviewer)
	}
	type pair struct {
		paper, rev int
		score      float64
	}
	pairs := make([]pair, 0, nPapers*nRev)
	for p, abs := range abstracts {
		for r, s := range a.Similarities(abs) {
			pairs = append(pairs, pair{p, r, s})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].paper != pairs[j].paper {
			return pairs[i].paper < pairs[j].paper
		}
		return pairs[i].rev < pairs[j].rev
	})

	out := make(Assignment, nPapers)
	load := make([]int, nRev)
	assigned := make([]map[int]bool, nPapers)
	for i := range assigned {
		assigned[i] = map[int]bool{}
	}
	remaining := nPapers * reviewersPerPaper
	for _, pr := range pairs {
		if remaining == 0 {
			break
		}
		if len(out[pr.paper]) >= reviewersPerPaper || load[pr.rev] >= maxPerReviewer || assigned[pr.paper][pr.rev] {
			continue
		}
		out[pr.paper] = append(out[pr.paper], pr.rev)
		assigned[pr.paper][pr.rev] = true
		load[pr.rev]++
		remaining--
	}
	if remaining > 0 {
		// Greedy got stuck (possible under tight capacity): finish with any
		// reviewer that has spare capacity, and when none qualifies for a
		// paper, free one up with a single augmenting swap — move some other
		// paper off a reviewer this paper can still take.
		for p := range out {
			for len(out[p]) < reviewersPerPaper {
				if !placeOrSwap(out, assigned, load, p, nRev, maxPerReviewer) {
					return nil, fmt.Errorf("reviewer: could not complete assignment for paper %d", p)
				}
			}
		}
	}
	return out, nil
}

// placeOrSwap assigns one more reviewer to paper p, directly if any
// reviewer has spare capacity, otherwise via one augmenting swap. Reports
// whether it succeeded.
func placeOrSwap(out Assignment, assigned []map[int]bool, load []int, p, nRev, maxPerReviewer int) bool {
	for r := 0; r < nRev; r++ {
		if load[r] < maxPerReviewer && !assigned[p][r] {
			out[p] = append(out[p], r)
			assigned[p][r] = true
			load[r]++
			return true
		}
	}
	// Every reviewer p could take is full. Find a full reviewer r (not on
	// p) and a paper p2 on r that can move to some reviewer r2 with space.
	for r := 0; r < nRev; r++ {
		if assigned[p][r] {
			continue
		}
		for p2 := range out {
			if p2 == p || !assigned[p2][r] {
				continue
			}
			for r2 := 0; r2 < nRev; r2++ {
				if load[r2] >= maxPerReviewer || assigned[p2][r2] {
					continue
				}
				// Move p2: r → r2, then give r to p.
				for i, rr := range out[p2] {
					if rr == r {
						out[p2][i] = r2
						break
					}
				}
				delete(assigned[p2], r)
				assigned[p2][r2] = true
				load[r2]++
				// r's load is unchanged by the move (lost p2, gains p).
				out[p] = append(out[p], r)
				assigned[p][r] = true
				return true
			}
		}
	}
	return false
}

// TotalSimilarity scores an assignment: the sum of paper–reviewer cosines,
// the objective the greedy pass maximizes.
func (a *Assigner) TotalSimilarity(abstracts []string, asg Assignment) float64 {
	var sum float64
	for p, revs := range asg {
		sims := a.Similarities(abstracts[p])
		for _, r := range revs {
			sum += sims[r]
		}
	}
	return sum
}

// MeanReviewerSimilarity is TotalSimilarity normalized per assignment slot.
func (a *Assigner) MeanReviewerSimilarity(abstracts []string, asg Assignment) float64 {
	slots := 0
	for _, revs := range asg {
		slots += len(revs)
	}
	if slots == 0 {
		return 0
	}
	return a.TotalSimilarity(abstracts, asg) / float64(slots)
}

// RandomBaselineSimilarity computes the expected per-slot similarity of a
// random feasible assignment: the mean over all paper–reviewer pairs.
func (a *Assigner) RandomBaselineSimilarity(abstracts []string) float64 {
	var sum float64
	var n int
	for _, abs := range abstracts {
		for _, s := range a.Similarities(abs) {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
