package reviewer

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/text"
)

// fixture builds reviewers from a synthetic collection: reviewer r's
// "written text" is the concatenation of topic-r documents; submissions are
// other documents of known topics.
func fixture(t *testing.T) (*Assigner, []string, []int) {
	t.Helper()
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 21, Topics: 6, Docs: 120, DocLen: 40,
	})
	perTopic := map[int][]string{}
	for j, topic := range s.DocTopic {
		perTopic[topic] = append(perTopic[topic], s.Docs[j].Text)
	}
	var reviewers []corpus.Document
	for topic := 0; topic < s.Options.Topics; topic++ {
		txt := ""
		for _, d := range perTopic[topic][:10] {
			txt += d + " "
		}
		reviewers = append(reviewers, corpus.Document{
			ID:   fmt.Sprintf("R%d", topic),
			Text: txt,
		})
	}
	// Each topic's words appear in exactly one reviewer's text, so the
	// "must appear in >1 document" rule would erase the entire signal;
	// index every word instead.
	parse := func(docs []corpus.Document) *corpus.Collection {
		return corpus.New(docs, text.ParseOptions{MinDocs: 1})
	}
	a, err := New(reviewers, Config{K: 5}, parse)
	if err != nil {
		t.Fatal(err)
	}
	// Submissions: the remaining docs of each topic.
	var abstracts []string
	var topics []int
	for topic := 0; topic < s.Options.Topics; topic++ {
		for _, d := range perTopic[topic][10:13] {
			abstracts = append(abstracts, d)
			topics = append(topics, topic)
		}
	}
	return a, abstracts, topics
}

func TestSimilaritiesFavorOwnTopicReviewer(t *testing.T) {
	a, abstracts, topics := fixture(t)
	correct := 0
	for i, abs := range abstracts {
		sims := a.Similarities(abs)
		best := 0
		for r := 1; r < len(sims); r++ {
			if sims[r] > sims[best] {
				best = r
			}
		}
		if best == topics[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(abstracts)); frac < 0.8 {
		t.Fatalf("only %v of submissions matched their topic reviewer", frac)
	}
}

func TestAssignRespectsConstraints(t *testing.T) {
	a, abstracts, _ := fixture(t)
	const perPaper, maxLoad = 2, 8
	asg, err := a.Assign(abstracts, perPaper, maxLoad)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != len(abstracts) {
		t.Fatalf("assignment covers %d papers", len(asg))
	}
	load := map[int]int{}
	for p, revs := range asg {
		if len(revs) != perPaper {
			t.Fatalf("paper %d has %d reviewers", p, len(revs))
		}
		seen := map[int]bool{}
		for _, r := range revs {
			if seen[r] {
				t.Fatalf("paper %d assigned reviewer %d twice", p, r)
			}
			seen[r] = true
			load[r]++
		}
	}
	for r, l := range load {
		if l > maxLoad {
			t.Fatalf("reviewer %d overloaded: %d", r, l)
		}
	}
}

func TestAssignInfeasibleRejected(t *testing.T) {
	a, abstracts, _ := fixture(t)
	if _, err := a.Assign(abstracts, 10, 1); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, err := a.Assign(abstracts, 0, 5); err == nil {
		t.Fatal("expected constraint error")
	}
}

// The greedy assignment should beat a random assignment on mean similarity
// — the quality claim behind "as good as those of human experts".
func TestAssignmentBeatsRandomBaseline(t *testing.T) {
	a, abstracts, _ := fixture(t)
	asg, err := a.Assign(abstracts, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MeanReviewerSimilarity(abstracts, asg)
	baseline := a.RandomBaselineSimilarity(abstracts)
	if got <= baseline {
		t.Fatalf("greedy similarity %v ≤ random baseline %v", got, baseline)
	}
}

// Tight capacity forces the greedy pass into its completion path; the
// constraints must still hold.
func TestAssignTightCapacity(t *testing.T) {
	a, abstracts, _ := fixture(t)
	nRev := a.Reviewers.Size()
	perPaper := 2
	// Exactly enough slots.
	maxLoad := (len(abstracts)*perPaper + nRev - 1) / nRev
	asg, err := a.Assign(abstracts, perPaper, maxLoad)
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for _, revs := range asg {
		if len(revs) != perPaper {
			t.Fatal("paper under-reviewed under tight capacity")
		}
		for _, r := range revs {
			load[r]++
		}
	}
	for r, l := range load {
		if l > maxLoad {
			t.Fatalf("reviewer %d overloaded: %d > %d", r, l, maxLoad)
		}
	}
}
