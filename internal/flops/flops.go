// Package flops encodes Table 7 of the paper: analytic floating-point
// operation counts for the six ways of incorporating new information into
// an LSI database.
//
// The paper gives the general sparse-SVD cost model
//
//	I·cost(GᵀG·x) + trp·cost(G·x)
//
// (I Lanczos iterations, trp accepted triplets) and instantiates it per
// method; the scanned table's formulas are typographically damaged, so this
// package re-derives each row from the §4.2 algorithms under that model.
// Every qualitative conclusion the paper draws from the table is preserved
// and tested: folding-in ≪ SVD-updating for d ≪ n; the update's expense is
// dominated by the dense O(2k²m + 2k²n) rotations of Eq (13); recomputation
// scales with nnz of the enlarged matrix.
package flops

import "fmt"

// Params are the symbols of Table 6.
type Params struct {
	M   int // terms in the original matrix
	N   int // documents in the original matrix
	K   int // retained factors
	P   int // new documents
	Q   int // new terms
	J   int // terms with adjusted weights
	I   int // Lanczos iterations
	Trp int // accepted singular triplets
	// NNZA, NNZD, NNZT, NNZZ are the nonzero counts of A, D, T and Z_j.
	NNZA, NNZD, NNZT, NNZZ int
}

// Validate reports parameter combinations that make no sense.
func (p Params) Validate() error {
	if p.M <= 0 || p.N <= 0 || p.K <= 0 {
		return fmt.Errorf("flops: m, n, k must be positive (m=%d n=%d k=%d)", p.M, p.N, p.K)
	}
	if p.I <= 0 || p.Trp <= 0 {
		return fmt.Errorf("flops: Lanczos iterations and triplets must be positive (I=%d trp=%d)", p.I, p.Trp)
	}
	return nil
}

// FoldingInDocuments is Table 7's "Folding-in documents": 2mkp flops — one
// dense m×k projection qᵀU_kΣ_k⁻¹ per new document (Eq 7).
func FoldingInDocuments(p Params) float64 {
	return 2 * f(p.M) * f(p.K) * f(p.P)
}

// FoldingInTerms is "Folding-in terms": 2nkq flops (Eq 8).
func FoldingInTerms(p Params) float64 {
	return 2 * f(p.N) * f(p.K) * f(p.Q)
}

// rotate is the dense post-multiplication U_k·U_F and V_k·V_F of Eq (13):
// "The expense in SVD-updating can be attributed to the O(2k²m + 2k²n)
// flops associated with the dense matrix multiplications involving U_k and
// V_k."
func rotate(p Params) float64 {
	return (2*f(p.K)*f(p.K) - f(p.K)) * (f(p.M) + f(p.N))
}

// SVDUpdatingDocuments: project the new columns (2k·nnz(D)), run the
// Lanczos model on the small k×(k+p) matrix F = (Σ_k | U_kᵀD), then apply
// the dense rotations.
func SVDUpdatingDocuments(p Params) float64 {
	project := 2 * f(p.K) * f(p.NNZD)
	small := f(p.I)*4*f(p.K)*f(p.P+1) + f(p.Trp)*2*f(p.K)*f(p.P+1)
	return project + small + rotate(p)
}

// SVDUpdatingTerms: symmetric to the document phase with
// H = (Σ_k ; T·V_k), (k+q)×k.
func SVDUpdatingTerms(p Params) float64 {
	project := 2 * f(p.K) * f(p.NNZT)
	small := f(p.I)*4*f(p.K)*f(p.Q+1) + f(p.Trp)*2*f(p.K)*f(p.Q+1)
	return project + small + rotate(p)
}

// SVDUpdatingCorrection: form Z_jᵀV_k (2k·nnz(Z)), U_kᵀY_j (row selection,
// 2kj), the k×k product Q = Σ_k + (U_kᵀY_j)(Z_jᵀV_k) (2k²j), the small SVD,
// and the rotations.
func SVDUpdatingCorrection(p Params) float64 {
	project := 2*f(p.K)*f(p.NNZZ) + 2*f(p.K)*f(p.J) + 2*f(p.K)*f(p.K)*f(p.J)
	small := f(p.I)*4*f(p.K)*f(p.K) + f(p.Trp)*2*f(p.K)*f(p.K)
	return project + small + rotate(p)
}

// RecomputingSVD applies the paper's cost model to the enlarged
// (m+q)×(n+p) matrix Ã: each GᵀG·x costs 4·nnz(Ã) plus the 2(m+q+n+p)k
// basis arithmetic per iteration; extraction costs 2·nnz(Ã) per accepted
// triplet.
func RecomputingSVD(p Params) float64 {
	nnz := f(p.NNZA + p.NNZD + p.NNZT)
	dims := f(p.M+p.Q) + f(p.N+p.P)
	iterations := f(p.I) * (4*nnz + 2*dims*f(p.K))
	extract := f(p.Trp) * 2 * nnz
	return iterations + extract
}

// Row is one line of the generated Table 7 comparison.
type Row struct {
	Method string
	Flops  float64
}

// Table evaluates all six methods for one parameter set, in the paper's
// row order.
func Table(p Params) []Row {
	return []Row{
		{"SVD-updating documents", SVDUpdatingDocuments(p)},
		{"SVD-updating terms", SVDUpdatingTerms(p)},
		{"SVD-updating correction", SVDUpdatingCorrection(p)},
		{"Folding-in documents", FoldingInDocuments(p)},
		{"Folding-in terms", FoldingInTerms(p)},
		{"Recomputing the SVD", RecomputingSVD(p)},
	}
}

func f(x int) float64 { return float64(x) }
