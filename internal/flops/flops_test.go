package flops

import "testing"

// typical returns a realistic TREC-scale parameter set (§5.3): 70k docs,
// 90k terms, k=200, very sparse A.
func typical() Params {
	return Params{
		M: 90000, N: 70000, K: 200,
		P: 100, Q: 100, J: 50,
		I: 300, Trp: 200,
		NNZA: 6_000_000, NNZD: 8_000, NNZT: 8_000, NNZZ: 4_000,
	}
}

func TestValidate(t *testing.T) {
	p := typical()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for k=0")
	}
	bad = p
	bad.I = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for I=0")
	}
}

func TestFoldingInFormulas(t *testing.T) {
	p := Params{M: 10, N: 20, K: 3, P: 5, Q: 7, I: 1, Trp: 1}
	if got := FoldingInDocuments(p); got != 2*10*3*5 {
		t.Fatalf("folding docs = %v", got)
	}
	if got := FoldingInTerms(p); got != 2*20*3*7 {
		t.Fatalf("folding terms = %v", got)
	}
}

// The paper's headline comparison: folding-in a few documents costs far
// fewer flops than SVD-updating, which costs far fewer than recomputing.
func TestCostOrderingSmallUpdate(t *testing.T) {
	p := typical()
	p.P, p.NNZD = 10, 800 // d ≪ n
	fold := FoldingInDocuments(p)
	upd := SVDUpdatingDocuments(p)
	rec := RecomputingSVD(p)
	if !(fold < upd && upd < rec) {
		t.Fatalf("expected fold (%g) < update (%g) < recompute (%g)", fold, upd, rec)
	}
	// The gap should be an order of magnitude for d ≪ n.
	if upd/fold < 10 {
		t.Fatalf("update/fold ratio only %v", upd/fold)
	}
}

// "The expense in SVD-updating can be attributed to the O(2k²m + 2k²n)
// flops associated with the dense matrix multiplications" — the rotate term
// grows quadratically in k.
func TestUpdateCostGrowsQuadraticallyInK(t *testing.T) {
	// Zero out the iteration terms so only the dense rotation
	// (2k²−k)(m+n) remains, then doubling k must ~quadruple the cost.
	p := typical()
	p.P, p.NNZD, p.I, p.Trp = 0, 0, 0, 0
	c1 := SVDUpdatingDocuments(p)
	p.K *= 2
	c2 := SVDUpdatingDocuments(p)
	ratio := c2 / c1
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("doubling k should ~quadruple the rotation cost; ratio %v", ratio)
	}
}

func TestAllCostsMonotoneInUpdateSize(t *testing.T) {
	p := typical()
	grow := func(f func(Params) float64, bump func(*Params)) {
		t.Helper()
		small := f(p)
		big := p
		bump(&big)
		if f(big) <= small {
			t.Fatalf("cost not monotone in update size")
		}
	}
	grow(FoldingInDocuments, func(q *Params) { q.P *= 10 })
	grow(FoldingInTerms, func(q *Params) { q.Q *= 10 })
	grow(SVDUpdatingDocuments, func(q *Params) { q.P *= 10; q.NNZD *= 10 })
	grow(SVDUpdatingTerms, func(q *Params) { q.Q *= 10; q.NNZT *= 10 })
	grow(SVDUpdatingCorrection, func(q *Params) { q.J *= 10; q.NNZZ *= 10 })
	grow(RecomputingSVD, func(q *Params) { q.NNZD *= 100; q.P *= 100 })
}

func TestTableHasSixRows(t *testing.T) {
	rows := Table(typical())
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Flops <= 0 {
			t.Fatalf("%s has non-positive cost %v", r.Method, r.Flops)
		}
		if seen[r.Method] {
			t.Fatalf("duplicate row %s", r.Method)
		}
		seen[r.Method] = true
	}
}

// There is a crossover: for large enough p relative to n, folding-in's
// advantage over a single SVD-update shrinks (the per-document projection
// is linear in p while the update's fixed k²(m+n) rotation amortizes).
func TestFoldUpdateGapShrinksWithP(t *testing.T) {
	p := typical()
	ratioAt := func(pp int) float64 {
		q := p
		q.P = pp
		q.NNZD = 80 * pp
		return SVDUpdatingDocuments(q) / FoldingInDocuments(q)
	}
	if !(ratioAt(10) > ratioAt(1000)) {
		t.Fatalf("expected ratio to shrink: %v vs %v", ratioAt(10), ratioAt(1000))
	}
}
