// Package neighbors addresses the third open computational issue of §5.6:
// "efficiently comparing queries to documents (i.e., finding near neighbors
// in high-dimension spaces)". It provides an exact parallel scan and a
// cluster-pruned (inverted-file) index over the k-space document vectors:
// spherical k-means partitions the documents, a query probes only the
// closest partitions, trading a tunable amount of recall for a large
// reduction in cosine evaluations.
package neighbors

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dense"
	"repro/internal/rank"
)

// Hit is one retrieved neighbor.
type Hit struct {
	Doc   int
	Score float64
}

// ExactScan returns the top-n documents by cosine to q, scanning every row
// of vectors (an r×k matrix of document vectors). The query norm is paid
// once — each row then costs one dot and one row norm — and rows are
// partitioned across GOMAXPROCS goroutines.
func ExactScan(vectors *dense.Matrix, q []float64, n int) []Hit {
	scores := make([]float64, vectors.Rows)
	qn := append([]float64(nil), q...)
	dense.Normalize(qn)
	nw := runtime.GOMAXPROCS(0)
	if nw > vectors.Rows {
		nw = vectors.Rows
	}
	if nw < 1 {
		nw = 1
	}
	var wg sync.WaitGroup
	chunk := (vectors.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > vectors.Rows {
			hi = vectors.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				scores[i] = rowCosine(qn, vectors.Row(i), dense.Norm2(vectors.Row(i)))
			}
		}(lo, hi)
	}
	wg.Wait()
	return topN(scores, nil, n)
}

// rowCosine scores a unit-normalized query against a row with a known
// norm: dot(qn, row)/‖row‖, 0 for zero rows — the cosine convention.
func rowCosine(qn, row []float64, rowNorm float64) float64 {
	if rowNorm == 0 {
		return 0
	}
	return dense.Dot(qn, row) / rowNorm
}

// topN selects the n best (score, doc) pairs via bounded heap selection —
// O(len(scores)·log n) instead of a full sort, identical output including
// tie order. ids maps local index → document id (nil for identity).
func topN(scores []float64, ids []int, n int) []Hit {
	items := rank.TopK(scores, ids, n)
	hits := make([]Hit, len(items))
	for i, it := range items {
		hits[i] = Hit{Doc: it.Doc, Score: it.Score}
	}
	return hits
}

// Index is a cluster-pruned approximate nearest-neighbor structure.
type Index struct {
	vectors   *dense.Matrix
	norms     []float64 // cached Euclidean norm of each vectors row
	centroids *dense.Matrix
	members   [][]int // cluster → document indices
}

// Options configures Build.
type Options struct {
	// Clusters is the number of k-means partitions (default ≈ √n).
	Clusters int
	// Iterations bounds the k-means refinement (default 20).
	Iterations int
	Seed       int64
}

// Build clusters the document vectors. vectors is r×k; the index keeps a
// reference (no copy), so callers must not mutate it afterwards.
func Build(vectors *dense.Matrix, opts Options) (*Index, error) {
	n := vectors.Rows
	if n == 0 {
		return nil, fmt.Errorf("neighbors: empty vector set")
	}
	c := opts.Clusters
	if c <= 0 {
		c = intSqrt(n)
	}
	if c > n {
		c = n
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20
	}
	rng := rand.New(rand.NewSource(opts.Seed + 0xa11))

	// Spherical k-means on normalized vectors; the row norms are kept so
	// Search can score a candidate with one dot product and one divide.
	k := vectors.Cols
	norm := dense.New(n, k)
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(norm.Row(i), vectors.Row(i))
		norms[i] = dense.Normalize(norm.Row(i))
	}
	centroids := dense.New(c, k)
	for i, p := range rng.Perm(n)[:c] {
		copy(centroids.Row(i), norm.Row(p))
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestScore := 0, -2.0
			for cl := 0; cl < c; cl++ {
				if s := dense.Dot(norm.Row(i), centroids.Row(cl)); s > bestScore {
					bestScore, best = s, cl
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		next := dense.New(c, k)
		counts := make([]int, c)
		for i := 0; i < n; i++ {
			dense.Axpy(1, norm.Row(i), next.Row(assign[i]))
			counts[assign[i]]++
		}
		for cl := 0; cl < c; cl++ {
			if counts[cl] == 0 {
				// Re-seed an empty cluster from a random document.
				copy(next.Row(cl), norm.Row(rng.Intn(n)))
			}
			dense.Normalize(next.Row(cl))
		}
		centroids = next
	}
	members := make([][]int, c)
	for i, cl := range assign {
		members[cl] = append(members[cl], i)
	}
	return &Index{vectors: vectors, norms: norms, centroids: centroids, members: members}, nil
}

// Clusters returns the number of partitions.
func (ix *Index) Clusters() int { return ix.centroids.Rows }

// Search returns the top-n neighbors of q, probing the nProbe closest
// clusters (0 means a sensible default of max(1, clusters/8)). It also
// reports how many cosine evaluations were spent, the measure of work the
// index exists to reduce.
func (ix *Index) Search(q []float64, n, nProbe int) ([]Hit, int) {
	c := ix.Clusters()
	if nProbe <= 0 {
		nProbe = c / 8
		if nProbe < 1 {
			nProbe = 1
		}
	}
	if nProbe > c {
		nProbe = c
	}
	// The query norm is paid once for the whole probe, not per candidate.
	qn := append([]float64(nil), q...)
	dense.Normalize(qn)
	// Rank clusters by centroid cosine (centroids are unit vectors).
	order := topN(centroidScores(ix, qn), nil, nProbe)
	// Size the candidate buffers from the probed clusters' member counts
	// instead of growing them with append.
	total := 0
	for _, cl := range order {
		total += len(ix.members[cl.Doc])
	}
	scores := make([]float64, 0, total)
	ids := make([]int, 0, total)
	evals := c
	for _, cl := range order {
		for _, doc := range ix.members[cl.Doc] {
			scores = append(scores, rowCosine(qn, ix.vectors.Row(doc), ix.norms[doc]))
			ids = append(ids, doc)
			evals++
		}
	}
	return topN(scores, ids, n), evals
}

// centroidScores scores a unit-normalized query against every (unit)
// centroid with a plain dot product.
func centroidScores(ix *Index, qn []float64) []float64 {
	out := make([]float64, ix.Clusters())
	for cl := range out {
		out[cl] = dense.Dot(qn, ix.centroids.Row(cl))
	}
	return out
}

// Recall computes |approx ∩ exact| / |exact| for two hit lists — the
// quality metric for the pruned search.
func Recall(approx, exact []Hit) float64 {
	if len(exact) == 0 {
		return 0
	}
	set := make(map[int]bool, len(approx))
	for _, h := range approx {
		set[h.Doc] = true
	}
	hit := 0
	for _, h := range exact {
		if set[h.Doc] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
