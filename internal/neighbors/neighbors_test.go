package neighbors

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// clusteredVectors generates nPerCluster vectors around each of nClusters
// random unit directions in k dimensions.
func clusteredVectors(rng *rand.Rand, nClusters, nPerCluster, k int, spread float64) (*dense.Matrix, []int) {
	centers := dense.New(nClusters, k)
	for c := 0; c < nClusters; c++ {
		for j := 0; j < k; j++ {
			centers.Set(c, j, rng.NormFloat64())
		}
		dense.Normalize(centers.Row(c))
	}
	m := dense.New(nClusters*nPerCluster, k)
	labels := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c := i % nClusters
		labels[i] = c
		row := m.Row(i)
		copy(row, centers.Row(c))
		for j := range row {
			row[j] += spread * rng.NormFloat64()
		}
	}
	return m, labels
}

func TestExactScanFindsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := clusteredVectors(rng, 4, 25, 8, 0.1)
	q := append([]float64(nil), m.Row(17)...)
	hits := ExactScan(m, q, 5)
	if len(hits) != 5 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].Doc != 17 {
		t.Fatalf("nearest to row 17 is %d", hits[0].Doc)
	}
	if math.Abs(hits[0].Score-1) > 1e-12 {
		t.Fatalf("self-cosine %v", hits[0].Score)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Score < hits[i].Score {
			t.Fatal("hits not sorted")
		}
	}
}

func TestExactScanTopNClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := clusteredVectors(rng, 2, 5, 4, 0.1)
	if got := ExactScan(m, m.Row(0), 100); len(got) != 10 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestIndexHighRecallWithFewProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := clusteredVectors(rng, 10, 100, 16, 0.15)
	ix, err := Build(m, Options{Clusters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var recallSum float64
	var evalsSum int
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		q := append([]float64(nil), m.Row(rng.Intn(m.Rows))...)
		exact := ExactScan(m, q, 10)
		approx, evals := ix.Search(q, 10, 2)
		recallSum += Recall(approx, exact)
		evalsSum += evals
	}
	recall := recallSum / queries
	meanEvals := evalsSum / queries
	if recall < 0.9 {
		t.Fatalf("recall@10 = %v with 2 probes on well-separated clusters", recall)
	}
	if meanEvals >= m.Rows {
		t.Fatalf("pruned search evaluated %d cosines ≥ full scan %d", meanEvals, m.Rows)
	}
}

func TestMoreProbesMoreRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := clusteredVectors(rng, 8, 60, 12, 0.4) // overlapping clusters
	ix, err := Build(m, Options{Clusters: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(probes int) float64 {
		var sum float64
		for qi := 0; qi < 15; qi++ {
			q := append([]float64(nil), m.Row(qi*7%m.Rows)...)
			exact := ExactScan(m, q, 10)
			approx, _ := ix.Search(q, 10, probes)
			sum += Recall(approx, exact)
		}
		return sum / 15
	}
	r1, rAll := recallAt(1), recallAt(8)
	if rAll < r1-1e-9 {
		t.Fatalf("probing all clusters (%v) worse than one (%v)", rAll, r1)
	}
	if rAll < 0.999 {
		t.Fatalf("full probe should be exact: %v", rAll)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(dense.New(0, 4), Options{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	// More clusters than vectors clamps.
	rng := rand.New(rand.NewSource(5))
	m, _ := clusteredVectors(rng, 2, 3, 4, 0.1)
	ix, err := Build(m, Options{Clusters: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Clusters() > m.Rows {
		t.Fatalf("clusters %d > vectors %d", ix.Clusters(), m.Rows)
	}
}

func TestIndexDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := clusteredVectors(rng, 5, 40, 8, 0.2)
	ix1, _ := Build(m, Options{Clusters: 5, Seed: 9})
	ix2, _ := Build(m, Options{Clusters: 5, Seed: 9})
	q := m.Row(3)
	h1, _ := ix1.Search(q, 5, 2)
	h2, _ := ix2.Search(q, 5, 2)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("same seed, different results")
		}
	}
}

func TestRecallMetric(t *testing.T) {
	exact := []Hit{{Doc: 1}, {Doc: 2}, {Doc: 3}, {Doc: 4}}
	approx := []Hit{{Doc: 2}, {Doc: 4}, {Doc: 9}}
	if r := Recall(approx, exact); r != 0.5 {
		t.Fatalf("recall %v want 0.5", r)
	}
	if r := Recall(nil, nil); r != 0 {
		t.Fatalf("empty recall %v", r)
	}
}

func BenchmarkExactScan(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m, _ := clusteredVectors(rng, 20, 500, 100, 0.2) // 10k docs, k=100
	q := m.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactScan(m, q, 10)
	}
}

func BenchmarkClusterPrunedSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m, _ := clusteredVectors(rng, 20, 500, 100, 0.2)
	ix, err := Build(m, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := m.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10, 4)
	}
}
