package index

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/text"
	"repro/internal/weight"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := Build(corpus.MEDTopics, corpus.MEDParseOptions(),
		core.Config{K: 2, Scheme: weight.LogEntropy, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildAndQuery(t *testing.T) {
	ix := buildTestIndex(t)
	if ix.Coll.Terms() != 18 || ix.Coll.Size() != 14 {
		t.Fatalf("shape %dx%d", ix.Coll.Terms(), ix.Coll.Size())
	}
	ranked := ix.Model.Rank(ix.Coll.QueryVector(corpus.MEDQuery))
	if ix.Coll.Docs[ranked[0].Doc].ID != "M9" {
		t.Fatalf("top doc %s", ix.Coll.Docs[ranked[0].Doc].ID)
	}
}

func TestBuildRejectsEmptyVocabulary(t *testing.T) {
	docs := []corpus.Document{{ID: "a", Text: "unique words only here"}}
	if _, err := Build(docs, text.ParseOptions{MinDocs: 2}, core.Config{K: 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRoundTripInMemory(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same vocabulary, same rankings.
	if got.Coll.Terms() != ix.Coll.Terms() {
		t.Fatal("vocabulary size changed")
	}
	for i, term := range ix.Coll.Vocab.Terms {
		if got.Coll.Vocab.Terms[i] != term {
			t.Fatal("vocabulary order changed")
		}
	}
	q := got.Coll.QueryVector(corpus.MEDQuery)
	r1 := ix.Model.Rank(ix.Coll.QueryVector(corpus.MEDQuery))
	r2 := got.Model.Rank(q)
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc || math.Abs(r1[i].Score-r2[i].Score) > 1e-15 {
			t.Fatal("loaded index ranks differently")
		}
	}
	// Alias survives: "cultures" still folds.
	qv := got.Coll.QueryVector("cultures")
	if qv[got.Coll.Vocab.Index["culture"]] != 1 {
		t.Fatal("alias lost in round trip")
	}
}

func TestRoundTripPreservesFoldedDocs(t *testing.T) {
	ix := buildTestIndex(t)
	for _, d := range corpus.MEDUpdateTopics {
		ix.AddFolded(d)
	}
	if ix.NumDocs() != 16 || ix.Doc(15).ID != "M16" {
		t.Fatalf("AddFolded bookkeeping wrong: %d docs", ix.NumDocs())
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.NumDocs() != 16 || got.Model.FoldedDocs() != 2 {
		t.Fatalf("folded state lost: %d docs, %d folded", got.Model.NumDocs(), got.Model.FoldedDocs())
	}
	// The folded documents' metadata survives too.
	if got.NumDocs() != 16 || got.Doc(14).ID != "M15" || got.Doc(15).ID != "M16" {
		t.Fatalf("folded metadata lost: %d docs, last %q", got.NumDocs(), got.Doc(got.NumDocs()-1).ID)
	}
	// A model folded outside AddFolded cannot be persisted consistently —
	// Read must reject the mismatch rather than mis-index documents.
	ix2 := buildTestIndex(t)
	ix2.Model.FoldInDocs(ix2.Coll.DocVectors(corpus.MEDUpdateTopics))
	var buf2 bytes.Buffer
	if _, err := ix2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf2); err == nil {
		t.Fatal("expected metadata/model mismatch error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "med.lsi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coll.Size() != 14 {
		t.Fatalf("loaded %d docs", got.Coll.Size())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.lsi")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected error")
	}
	// Huge header length.
	big := make([]byte, 8)
	big[7] = 0xff
	if _, err := Read(bytes.NewReader(big)); err == nil {
		t.Fatal("expected error for implausible header")
	}
}
