// Package index bundles an LSI model with the vocabulary and document
// metadata it was built from, and persists the bundle to a single file —
// the on-disk form of "an LSI-generated database" (§2.3). The paper's TREC
// SVD took 18 CPU-hours; a database you cannot store and reload is not a
// database.
//
// File layout: a JSON header (vocabulary, document IDs, parse options)
// length-prefixed with a uint64, followed by the core.Model binary format.
package index

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/text"
)

// Index is a queryable LSI database: the factor model plus everything
// needed to turn raw text into vectors over the same vocabulary.
type Index struct {
	Model *core.Model
	Coll  *corpus.Collection
	// Extra holds documents folded in after the build (via AddFolded).
	// Their vectors live in Model.V after row Coll.Size()-1; their text is
	// kept here so persistence round-trips them.
	Extra []corpus.Document
}

// AddFolded folds a document into the model (Eq 7) and records it so the
// index can be saved and reloaded with the addition intact.
func (ix *Index) AddFolded(d corpus.Document) {
	ix.Model.FoldInDocs(ix.Coll.DocVectors([]corpus.Document{d}))
	ix.Extra = append(ix.Extra, d)
}

// Doc returns document j's metadata across the built and folded-in sets.
func (ix *Index) Doc(j int) corpus.Document {
	if j < ix.Coll.Size() {
		return ix.Coll.Docs[j]
	}
	return ix.Extra[j-ix.Coll.Size()]
}

// NumDocs returns the total document count (built + folded).
func (ix *Index) NumDocs() int { return ix.Coll.Size() + len(ix.Extra) }

// Build constructs an index from documents.
func Build(docs []corpus.Document, parse text.ParseOptions, cfg core.Config) (*Index, error) {
	coll := corpus.New(docs, parse)
	if coll.Terms() == 0 {
		return nil, fmt.Errorf("index: no indexable terms in %d documents", len(docs))
	}
	m, err := core.BuildCollection(coll, cfg)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	return &Index{Model: m, Coll: coll}, nil
}

// header is the JSON-encoded metadata block.
type header struct {
	Version    int               `json:"version"`
	DocIDs     []string          `json:"doc_ids"`
	DocTexts   []string          `json:"doc_texts"`
	ExtraIDs   []string          `json:"extra_ids,omitempty"`
	ExtraTexts []string          `json:"extra_texts,omitempty"`
	MinDocs    int               `json:"min_docs"`
	MinLength  int               `json:"min_length"`
	Bigrams    bool              `json:"bigrams"`
	Aliases    map[string]string `json:"aliases,omitempty"`
}

const headerVersion = 1

// WriteTo serializes the index.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	h := header{
		Version: headerVersion,
	}
	for _, d := range ix.Coll.Docs {
		h.DocIDs = append(h.DocIDs, d.ID)
		h.DocTexts = append(h.DocTexts, d.Text)
	}
	for _, d := range ix.Extra {
		h.ExtraIDs = append(h.ExtraIDs, d.ID)
		h.ExtraTexts = append(h.ExtraTexts, d.Text)
	}
	opts := ix.Coll.ParseOptions()
	h.MinDocs = opts.MinDocs
	h.MinLength = opts.MinLength
	h.Bigrams = opts.IncludeBigrams
	h.Aliases = opts.Aliases
	hb, err := json.Marshal(h)
	if err != nil {
		return 0, err
	}
	var n int64
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(hb))); err != nil {
		return n, err
	}
	n += 8
	hn, err := bw.Write(hb)
	n += int64(hn)
	if err != nil {
		return n, err
	}
	mn, err := ix.Model.WriteTo(bw)
	n += mn
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read deserializes an index written by WriteTo. The collection (and its
// term–document matrix) is rebuilt from the stored documents and parse
// options; the factor model is loaded verbatim, so a model that was
// SVD-updated or folded after building is restored exactly as saved.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var hlen uint64
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("index: reading header length: %w", err)
	}
	if hlen > 1<<30 {
		return nil, fmt.Errorf("index: implausible header length %d", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(br, hb); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	var h header
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, fmt.Errorf("index: decoding header: %w", err)
	}
	if h.Version != headerVersion {
		return nil, fmt.Errorf("index: unsupported version %d", h.Version)
	}
	if len(h.DocIDs) != len(h.DocTexts) || len(h.ExtraIDs) != len(h.ExtraTexts) {
		return nil, fmt.Errorf("index: corrupt header: %d/%d ids vs %d/%d texts",
			len(h.DocIDs), len(h.ExtraIDs), len(h.DocTexts), len(h.ExtraTexts))
	}
	docs := make([]corpus.Document, len(h.DocIDs))
	for i := range docs {
		docs[i] = corpus.Document{ID: h.DocIDs[i], Text: h.DocTexts[i]}
	}
	coll := corpus.New(docs, text.ParseOptions{
		MinDocs:        h.MinDocs,
		MinLength:      h.MinLength,
		IncludeBigrams: h.Bigrams,
		Aliases:        h.Aliases,
	})
	m, err := core.ReadModel(br)
	if err != nil {
		return nil, err
	}
	if m.NumTerms() < coll.Terms() {
		return nil, fmt.Errorf("index: model has %d terms, vocabulary %d", m.NumTerms(), coll.Terms())
	}
	extra := make([]corpus.Document, len(h.ExtraIDs))
	for i := range extra {
		extra[i] = corpus.Document{ID: h.ExtraIDs[i], Text: h.ExtraTexts[i]}
	}
	if m.NumDocs() != coll.Size()+len(extra) {
		return nil, fmt.Errorf("index: model has %d docs, metadata %d+%d",
			m.NumDocs(), coll.Size(), len(extra))
	}
	return &Index{Model: m, Coll: coll, Extra: extra}, nil
}

// Save writes the index to a file.
func (ix *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index from a file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
