package experiments

// timing experiment: fold-in vs update vs recompute wall-clock is the measurement.
//lsilint:file-ignore walltime

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/flops"
	"repro/internal/lanczos"
	"repro/internal/text"
	"repro/internal/weight"
)

func init() {
	register("table7", "computational complexity of updating methods (Table 7)", runTable7)
	register("orthogonality", "orthogonality loss from folding-in vs retrieval quality (§4.3)", runOrthogonality)
	register("trecscale", "sample-then-fold-in pipeline for large collections (§5.3)", runTRECScale)
	register("svdmethods", "Lanczos vs randomized vs dense SVD (§5.6 ablation)", runSVDMethods)
}

func runTable7(seed int64) (*Result, error) {
	r := &Result{ID: "table7", Title: "Analytic flop counts for the six updating methods",
		Paper: "folding-in ≪ SVD-updating for d ≪ n; update cost dominated by O(2k²(m+n)) dense rotations"}
	base := flops.Params{
		M: 90000, N: 70000, K: 200,
		I: 300, Trp: 200,
		NNZA: 6_000_000,
	}
	r.addf("TREC-scale parameters: m=%d n=%d k=%d nnz(A)=%d", base.M, base.N, base.K, base.NNZA)
	for _, p := range []int{10, 100, 1000, 10000} {
		pp := base
		pp.P, pp.Q, pp.J = p, p, p/2+1
		pp.NNZD, pp.NNZT, pp.NNZZ = 80*p, 80*p, 40*p
		if err := pp.Validate(); err != nil {
			return nil, err
		}
		r.addf("-- p = q = %d new items --", p)
		for _, row := range flops.Table(pp) {
			r.addf("  %-28s %14.4g flops", row.Method, row.Flops)
		}
		r.metric(fmt.Sprintf("fold_docs_p%d", p), flops.FoldingInDocuments(pp))
		r.metric(fmt.Sprintf("update_docs_p%d", p), flops.SVDUpdatingDocuments(pp))
		r.metric(fmt.Sprintf("recompute_p%d", p), flops.RecomputingSVD(pp))
	}
	// Measured wall-clock on a real (scaled-down) instance, same ordering.
	s := corpus.GenerateSynth(corpus.SynthOptions{Seed: seed, Topics: 10, Docs: 400, DocLen: 40})
	d := s.DocVectors(extraDocs(s, 20, seed))
	build := func() *core.Model {
		m, err := core.BuildCollection(s.Collection, core.Config{K: 30, Seed: seed})
		if err != nil {
			panic(err)
		}
		return m
	}
	m1 := build()
	t0 := time.Now()
	m1.FoldInDocs(d)
	foldT := time.Since(t0)
	m2 := build()
	t0 = time.Now()
	if err := m2.UpdateDocs(d); err != nil {
		return nil, err
	}
	updT := time.Since(t0)
	t0 = time.Now()
	if _, err := core.Build(s.TD.AugmentCols(d), core.Config{K: 30, Seed: seed}); err != nil {
		return nil, err
	}
	recT := time.Since(t0)
	r.addf("measured (m=%d n=%d k=30, +20 docs): fold %v, update %v, recompute %v",
		s.Terms(), s.Size(), foldT, updT, recT)
	r.metric("measured_fold_ns", float64(foldT.Nanoseconds()))
	r.metric("measured_update_ns", float64(updT.Nanoseconds()))
	r.metric("measured_recompute_ns", float64(recT.Nanoseconds()))
	return r, nil
}

// extraDocs generates p additional documents from the same topic model by
// regenerating a larger corpus with the same seed and taking the tail.
func extraDocs(s *corpus.Synth, p int, seed int64) []corpus.Document {
	opts := s.Options
	opts.Docs += p
	big := corpus.GenerateSynth(opts)
	return big.Docs[s.Options.Docs:]
}

func runOrthogonality(seed int64) (*Result, error) {
	r := &Result{ID: "orthogonality", Title: "‖V̂ᵀV̂−I‖ growth under folding-in, and its retrieval cost",
		Paper: "folding-in corrupts orthogonality; monitoring the loss and correlating it with returned-document quality is posed as future research"}
	opts := corpus.SynthOptions{Seed: seed + 3, Topics: 8, Docs: 480, DocLen: 40, QueriesPerTopic: 2}
	full := corpus.GenerateSynth(opts)
	// Train on the first half, then fold in batches of the rest.
	nTrain := 240
	train := corpus.New(full.Docs[:nTrain], text.ParseOptions{MinDocs: 2})
	m, err := core.BuildCollection(train, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	// Recompute reference over the full collection for the quality target.
	batch := 48
	r.addf("%10s %14s %10s", "folded", "‖V̂ᵀV̂−I‖F", "mean AP")
	apNow := func() float64 {
		var sum float64
		var n int
		for _, q := range full.Queries {
			rel := map[int]bool{}
			for _, j := range q.Relevant {
				if j < m.NumDocs() {
					rel[j] = true
				}
			}
			if len(rel) == 0 {
				continue
			}
			ranked := m.Rank(train.Vocab.Count(q.Text))
			ranking := make([]int, len(ranked))
			for i, x := range ranked {
				ranking[i] = x.Doc
			}
			sum += eval.AveragePrecisionAtLevels(ranking, rel, nil)
			n++
		}
		return sum / float64(n)
	}
	var losses []float64
	for folded := 0; nTrain+folded < len(full.Docs); folded += batch {
		end := nTrain + folded + batch
		if end > len(full.Docs) {
			end = len(full.Docs)
		}
		loss := m.DocOrthogonality()
		ap := apNow()
		r.addf("%10d %14.6f %10.3f", folded, loss, ap)
		r.metric(fmt.Sprintf("loss_after_%d", folded), loss)
		r.metric(fmt.Sprintf("ap_after_%d", folded), ap)
		losses = append(losses, loss)
		m.FoldInDocs(train.DocVectors(full.Docs[nTrain+folded : end]))
	}
	monotone := 1.0
	for i := 1; i < len(losses); i++ {
		if losses[i] < losses[i-1]-1e-12 {
			monotone = 0
		}
	}
	r.metric("loss_monotone", monotone)
	return r, nil
}

func runTRECScale(seed int64) (*Result, error) {
	r := &Result{ID: "trecscale", Title: "Sample the collection, SVD the sample, fold in the rest",
		Paper: "TREC: SVD of a ~70k-document sample, remaining documents folded in; retrieval advantage 16%"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 17, Topics: 10, Docs: 600, DocLen: 40, QueriesPerTopic: 2,
	})
	// SVD on a 1/3 sample, fold in the remaining 2/3 — the paper's recipe.
	nSample := 200
	sample := corpus.New(s.Docs[:nSample], text.ParseOptions{MinDocs: 2})
	m, err := core.BuildCollection(sample, core.Config{K: 24, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	m.FoldInDocs(sample.DocVectors(s.Docs[nSample:]))
	if m.NumDocs() != s.Size() {
		return nil, fmt.Errorf("trecscale: folded model has %d docs want %d", m.NumDocs(), s.Size())
	}
	var sumAP float64
	var nq int
	for _, q := range s.Queries {
		ranked := m.Rank(sample.Vocab.Count(q.Text))
		ranking := make([]int, len(ranked))
		for i, x := range ranked {
			ranking[i] = x.Doc
		}
		sumAP += eval.AveragePrecisionAtLevels(ranking, eval.RelevantSet(q.Relevant), nil)
		nq++
	}
	sampledAP := sumAP / float64(nq)
	fullAP, err := apLSI(s, 24, weight.LogEntropy, seed)
	if err != nil {
		return nil, err
	}
	r.addf("full-SVD AP:            %.3f", fullAP)
	r.addf("sample+fold-in AP:      %.3f (SVD on %d/%d docs)", sampledAP, nSample, s.Size())
	r.addf("retention:              %.1f%%", 100*sampledAP/fullAP)
	r.metric("full_ap", fullAP)
	r.metric("sampled_ap", sampledAP)
	r.metric("retention", sampledAP/fullAP)
	return r, nil
}

func runSVDMethods(seed int64) (*Result, error) {
	r := &Result{ID: "svdmethods", Title: "Truncated-SVD engines on a sparse term–document matrix",
		Paper: "computing the truncated SVD of extremely large sparse matrices is the open issue of §5.6"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 23, Topics: 12, Docs: 800, DocLen: 50,
	})
	w := weight.Apply(s.TD, weight.LogEntropy)
	op := lanczos.OpCSR(w)
	k := 30

	t0 := time.Now()
	// Topic spectra cluster tightly, so give the recurrence more room than
	// the 4k default before declaring failure.
	lz, err := lanczos.TruncatedSVD(op, lanczos.Options{K: k, Seed: seed, MaxSteps: 10 * k})
	if err != nil {
		return nil, err
	}
	lzT := time.Since(t0)
	t0 = time.Now()
	// Clustered topic spectra need extra oversampling and power iterations
	// for the sketch to resolve the trailing retained triplets.
	rd := lanczos.RandomizedSVD(op, lanczos.RandomizedOptions{K: k, Seed: seed, Oversample: 20, PowerIters: 4})
	rdT := time.Since(t0)

	r.addf("matrix: %d×%d, nnz=%d (density %.4f%%), k=%d", w.Rows, w.Cols, w.NNZ(), 100*w.Density(), k)
	r.addf("%-12s %10s %12s %10s", "method", "time", "matvecs", "residual")
	r.addf("%-12s %10v %12d %10.2e", "lanczos", lzT, lz.MatVecs, lanczos.Verify(op, lz))
	r.addf("%-12s %10v %12d %10.2e", "randomized", rdT, rd.MatVecs, lanczos.Verify(op, rd))
	maxDiff := 0.0
	for i := 0; i < k; i++ {
		if d := abs(lz.S[i]-rd.S[i]) / lz.S[0]; d > maxDiff {
			maxDiff = d
		}
	}
	r.addf("max relative σ disagreement: %.2e", maxDiff)
	r.metric("lanczos_ns", float64(lzT.Nanoseconds()))
	r.metric("randomized_ns", float64(rdT.Nanoseconds()))
	r.metric("lanczos_residual", lanczos.Verify(op, lz))
	r.metric("randomized_residual", lanczos.Verify(op, rd))
	r.metric("sigma_disagreement", maxDiff)
	return r, nil
}
