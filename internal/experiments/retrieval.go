package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/filter"
	"repro/internal/vsm"
	"repro/internal/weight"
)

func init() {
	register("retrieval", "LSI vs keyword vector matching across vocabulary-mismatch levels (§5.1)", runRetrieval)
	register("weighting", "term-weighting scheme comparison (§5.1: log×entropy best)", runWeighting)
	register("feedback", "relevance feedback: query replaced by 1 or 3 relevant docs (§5.1)", runFeedback)
	register("kfactors", "retrieval performance vs number of factors k (§5.2)", runKFactors)
}

// retrievalCollection builds a judged benchmark. synonyms controls the
// vocabulary-mismatch regime: each concept has that many interchangeable
// surface words and every document commits fully to one variant per
// concept, so with 6 variants a 5-word query shares no literal word with a
// third of its relevant documents — the regime where "the queries and
// relevant documents do not share many words" (§5.1).
func retrievalCollection(seed int64, synonyms int) *corpus.Synth {
	return corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed, Topics: 10, Docs: 300, DocLen: 40,
		SynonymsPerConcept: synonyms, DocVariantLoyalty: 1.0,
		PolysemyFrac: 0.2, NoiseFrac: 0.35,
		QueriesPerTopic: 3, QueryLen: 5,
	})
}

// apLSI and apVSM compute mean average precision at the paper's recall
// levels for the two systems on a judged collection.
func apLSI(s *corpus.Synth, k int, scheme weight.Scheme, seed int64) (float64, error) {
	m, err := core.BuildCollection(s.Collection, core.Config{K: k, Scheme: scheme, Seed: seed})
	if err != nil {
		return 0, err
	}
	var rankings [][]int
	var rels []map[int]bool
	for _, q := range s.Queries {
		ranked := m.Rank(s.QueryVector(q.Text))
		ranking := make([]int, len(ranked))
		for i, r := range ranked {
			ranking[i] = r.Doc
		}
		rankings = append(rankings, ranking)
		rels = append(rels, eval.RelevantSet(q.Relevant))
	}
	return eval.MeanAveragePrecision(rankings, rels, nil), nil
}

// buildVSM constructs the keyword baseline model for a judged collection.
func buildVSM(s *corpus.Synth) *vsm.Model {
	return vsm.Build(s.TD, weight.LogEntropy)
}

func apVSM(s *corpus.Synth, scheme weight.Scheme) float64 {
	m := vsm.Build(s.TD, scheme)
	var rankings [][]int
	var rels []map[int]bool
	for _, q := range s.Queries {
		rankings = append(rankings, eval.RankingFromScores(m.Scores(s.QueryVector(q.Text))))
		rels = append(rels, eval.RelevantSet(q.Relevant))
	}
	return eval.MeanAveragePrecision(rankings, rels, nil)
}

func runRetrieval(seed int64) (*Result, error) {
	r := &Result{ID: "retrieval", Title: "Average precision: LSI vs keyword vector matching",
		Paper: "LSI ranged from comparable to 30% better; best when queries and relevant docs share few words"}
	r.addf("%-22s %8s %8s %9s", "synonyms/concept", "LSI", "keyword", "advantage")
	for _, syn := range []int{1, 3, 6} {
		s := retrievalCollection(seed+int64(syn)*101, syn)
		lsi, err := apLSI(s, 20, weight.LogEntropy, seed)
		if err != nil {
			return nil, err
		}
		kw := apVSM(s, weight.LogEntropy)
		adv := eval.Improvement(lsi, kw)
		r.addf("%-22d %8.3f %8.3f %8.1f%%", syn, lsi, kw, adv)
		r.metric(fmt.Sprintf("lsi_ap_syn%d", syn), lsi)
		r.metric(fmt.Sprintf("vsm_ap_syn%d", syn), kw)
		r.metric(fmt.Sprintf("advantage_pct_syn%d", syn), adv)
	}
	return r, nil
}

func runWeighting(seed int64) (*Result, error) {
	r := &Result{ID: "weighting", Title: "Mean average precision by weighting scheme (5 collections)",
		Paper: "log×entropy was 40% more effective than raw term weighting, averaged over five collections"}
	schemes := weight.AllSchemes()
	sums := make([]float64, len(schemes))
	const nColl = 5
	for c := 0; c < nColl; c++ {
		// Bursty Zipfian noise is the regime where weighting matters: raw
		// counts are dominated by uninformative high-frequency words.
		s := corpus.GenerateSynth(corpus.SynthOptions{
			Seed: seed + int64(c)*977, Topics: 10, Docs: 200, DocLen: 60,
			SynonymsPerConcept: 4, DocVariantLoyalty: 1.0,
			NoiseFrac: 0.5, NoiseWords: 40, NoiseZipf: true, NoiseBurst: 6,
			QueriesPerTopic: 3, QueryLen: 5,
		})
		for i, sc := range schemes {
			ap, err := apLSI(s, 20, sc, seed)
			if err != nil {
				return nil, err
			}
			sums[i] += ap
		}
	}
	var rawAP, logEntropyAP float64
	r.addf("%-16s %8s", "scheme", "mean AP")
	for i, sc := range schemes {
		ap := sums[i] / nColl
		r.addf("%-16s %8.3f", sc.String(), ap)
		r.metric("ap_"+sc.String(), ap)
		if sc == weight.Raw {
			rawAP = ap
		}
		if sc == weight.LogEntropy {
			logEntropyAP = ap
		}
	}
	r.metric("logentropy_vs_raw_pct", eval.Improvement(logEntropyAP, rawAP))
	return r, nil
}

func runFeedback(seed int64) (*Result, error) {
	r := &Result{ID: "feedback", Title: "Relevance feedback: replace query with relevant-document vectors",
		Paper: "first relevant doc: +33%; mean of first three: +67%"}
	// Feedback pays off when the initial query is impoverished (the paper:
	// "many words from relevant documents augment the initial query which
	// is usually quite impoverished") — short queries, heavy synonymy.
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed, Topics: 10, Docs: 300, DocLen: 40,
		SynonymsPerConcept: 6, DocVariantLoyalty: 1.0,
		PolysemyFrac: 0.25, NoiseFrac: 0.4,
		QueriesPerTopic: 3, QueryLen: 2,
	})
	m, err := core.BuildCollection(s.Collection, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	apFor := func(profileOf func(q corpus.Query) []float64) float64 {
		var rankings [][]int
		var rels []map[int]bool
		for _, q := range s.Queries {
			ranked := m.RankVector(profileOf(q))
			ranking := make([]int, len(ranked))
			for i, x := range ranked {
				ranking[i] = x.Doc
			}
			rankings = append(rankings, ranking)
			// The docs used as feedback are "already seen"; keep judging on
			// the full relevant set as the paper's residual-free evaluation.
			rels = append(rels, eval.RelevantSet(q.Relevant))
		}
		return eval.MeanAveragePrecision(rankings, rels, nil)
	}
	base := apFor(func(q corpus.Query) []float64 {
		return m.ProjectQuery(s.QueryVector(q.Text))
	})
	fb1 := apFor(func(q corpus.Query) []float64 {
		p, _ := filter.ReplaceWithFeedback(m, q.Relevant, 1)
		return p.Vector
	})
	fb3 := apFor(func(q corpus.Query) []float64 {
		p, _ := filter.ReplaceWithFeedback(m, q.Relevant, 3)
		return p.Vector
	})
	r.addf("%-26s %8s %9s", "method", "mean AP", "vs query")
	r.addf("%-26s %8.3f %9s", "raw query", base, "—")
	r.addf("%-26s %8.3f %8.1f%%", "1 relevant doc", fb1, eval.Improvement(fb1, base))
	r.addf("%-26s %8.3f %8.1f%%", "mean of 3 relevant docs", fb3, eval.Improvement(fb3, base))
	r.metric("ap_query", base)
	r.metric("ap_feedback1", fb1)
	r.metric("ap_feedback3", fb3)
	r.metric("gain1_pct", eval.Improvement(fb1, base))
	r.metric("gain3_pct", eval.Improvement(fb3, base))
	return r, nil
}

func runKFactors(seed int64) (*Result, error) {
	r := &Result{ID: "kfactors", Title: "Average precision vs number of factors k",
		Paper: "large initial rise, peak well below the vocabulary size, slow decline toward word-based performance"}
	s := retrievalCollection(seed, 4)
	kw := apVSM(s, weight.LogEntropy)
	r.addf("keyword baseline AP = %.3f", kw)
	r.addf("%6s %10s %12s", "k", "LSI AP", "A_k-cosine AP")
	best, bestK := 0.0, 0
	var first, last, lastRecon float64
	ks := []int{2, 5, 10, 20, 40, 80, 150, 290}
	for _, k := range ks {
		ap, err := apLSI(s, k, weight.LogEntropy, seed)
		if err != nil {
			return nil, err
		}
		// Second series: cosine against the reconstructed A_k (the Σ-scaled
		// convention), whose k→n limit is exactly keyword matching.
		m, err := core.BuildCollection(s.Collection, core.Config{K: k, Scheme: weight.LogEntropy, Seed: seed})
		if err != nil {
			return nil, err
		}
		var rankings [][]int
		var rels []map[int]bool
		for _, q := range s.Queries {
			ranked := m.RankReconstruction(s.QueryVector(q.Text))
			ranking := make([]int, len(ranked))
			for i, x := range ranked {
				ranking[i] = x.Doc
			}
			rankings = append(rankings, ranking)
			rels = append(rels, eval.RelevantSet(q.Relevant))
		}
		recon := eval.MeanAveragePrecision(rankings, rels, nil)
		r.addf("%6d %10.3f %12.3f", k, ap, recon)
		r.metric(fmt.Sprintf("ap_k%d", k), ap)
		r.metric(fmt.Sprintf("recon_ap_k%d", k), recon)
		if ap > best {
			best, bestK = ap, k
		}
		if k == ks[0] {
			first = ap
		}
		last = ap
		lastRecon = recon
	}
	r.metric("best_k", float64(bestK))
	r.metric("best_ap", best)
	r.metric("first_ap", first)
	r.metric("last_ap", last)
	r.metric("last_recon_ap", lastRecon)
	r.metric("vsm_ap", kw)
	return r, nil
}
