package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/vsm"
)

func init() {
	register("table3", "18×14 term–document matrix from the Table 2 topics", runTable3)
	register("fig4", "two-dimensional term/document coordinates (k=2)", runFig4)
	register("fig5", "derived coordinates for the query \"age blood abnormalities\"", runFig5)
	register("fig6", "LSI retrieval vs lexical matching for the example query", runFig6)
	register("table4", "returned documents at cosine ≥ 0.40 for k = 2, 4, 8", runTable4)
	register("fig7", "folding-in the Table 5 topics M15, M16", runFig7)
	register("fig8", "recomputing the SVD of the 18×16 matrix", runFig8)
	register("fig9", "SVD-updating with the Table 5 topics", runFig9)
}

func medModel(k int) (*corpus.Collection, *core.Model, error) {
	c := corpus.MED()
	m, err := core.BuildCollection(c, core.Config{K: k, Method: core.MethodDense})
	return c, m, err
}

func runTable3(seed int64) (*Result, error) {
	c := corpus.MED()
	r := &Result{ID: "table3", Title: "Term–document matrix (Table 3)",
		Paper: "18 terms × 14 topics, raw counts, keyword-in->1-topic parsing rule"}
	header := "term           "
	for j := 1; j <= 14; j++ {
		header += fmt.Sprintf("%3s", fmt.Sprintf("M%d", j))
	}
	r.Lines = append(r.Lines, header)
	d := c.TD.Dense()
	mismatches := 0.0
	for i, term := range c.Vocab.Terms {
		row := fmt.Sprintf("%-15s", term)
		for j := range d[i] {
			row += fmt.Sprintf("%3.0f", d[i][j])
			if d[i][j] != corpus.MEDMatrix[i][j] { //lsilint:ignore floatcmp — exact match against the paper's integer matrix is the assertion
				mismatches++
			}
		}
		r.Lines = append(r.Lines, row)
	}
	r.metric("terms", float64(c.Terms()))
	r.metric("docs", float64(c.Size()))
	r.metric("cells_differing_from_table3", mismatches)
	return r, nil
}

func runFig4(seed int64) (*Result, error) {
	c, m, err := medModel(2)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig4", Title: "σ-scaled coordinates of 18 terms and 14 topics (k=2)",
		Paper: "behaviour/hormone topics cluster opposite blood-disease/fasting topics on factor 2"}
	tc, dc := m.TermCoords(), m.DocCoords()
	r.addf("%-15s %9s %9s", "term", "x", "y")
	for i, t := range c.Vocab.Terms {
		r.addf("%-15s %9.4f %9.4f", t, tc.At(i, 0), tc.At(i, 1))
	}
	r.addf("%-15s %9s %9s", "topic", "x", "y")
	for j, d := range c.Docs {
		r.addf("%-15s %9.4f %9.4f", d.ID, dc.At(j, 0), dc.At(j, 1))
	}
	// Cluster separation metric: mean factor-2 coordinate of the behaviour
	// group minus the fasting group (sign-normalized to the M1 side).
	sgn := 1.0
	if dc.At(0, 1) < 0 {
		sgn = -1
	}
	behaviour := []int{0, 1, 2, 3, 4, 5}
	fasting := []int{9, 11, 12, 13}
	var bSum, fSum float64
	for _, j := range behaviour {
		bSum += sgn * dc.At(j, 1)
	}
	for _, j := range fasting {
		fSum += sgn * dc.At(j, 1)
	}
	r.metric("behaviour_group_mean_y", bSum/float64(len(behaviour)))
	r.metric("fasting_group_mean_y", fSum/float64(len(fasting)))
	return r, nil
}

func runFig5(seed int64) (*Result, error) {
	c, m, err := medModel(2)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig5", Title: "Query coordinates via Eq (6)",
		Paper: "σ₁=3.5919 σ₂=2.6471, q̂=(0.1491, −0.1199) on the paper's matrix revision"}
	q := c.QueryVector(corpus.MEDQuery)
	qhat := m.ProjectQuery(q)
	r.addf("query %q -> indexed terms: age blood abnormalities", corpus.MEDQuery)
	r.addf("sigma = (%.4f, %.4f)", m.S[0], m.S[1])
	r.addf("qhat  = (%.4f, %.4f)", qhat[0], qhat[1])
	r.metric("sigma1", m.S[0])
	r.metric("sigma2", m.S[1])
	r.metric("qhat_x", qhat[0])
	r.metric("qhat_y", qhat[1])
	return r, nil
}

func runFig6(seed int64) (*Result, error) {
	c, m, err := medModel(2)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig6", Title: "LSI cosine ranking vs lexical matching",
		Paper: "cosine>.85 → {M8,M9,M12}; lexical → {M1,M8,M10,M11,M12}; M9 retrieved only by LSI"}
	q := c.QueryVector(corpus.MEDQuery)
	ranked := m.Rank(q)
	r.addf("%-5s %8s", "topic", "cosine")
	for _, x := range ranked {
		r.addf("%-5s %8.3f", c.Docs[x.Doc].ID, x.Score)
	}
	lex := vsm.LexicalMatch(c.TD, q, 1)
	var ids []string
	for _, j := range lex {
		ids = append(ids, c.Docs[j].ID)
	}
	r.addf("lexical matches: %s", strings.Join(ids, " "))
	r.metric("top1_is_M9", boolMetric(c.Docs[ranked[0].Doc].ID == "M9"))
	r.metric("lexical_count", float64(len(lex)))
	scores := map[string]float64{}
	for _, x := range ranked {
		scores[c.Docs[x.Doc].ID] = x.Score
	}
	r.metric("cos_M8", scores["M8"])
	r.metric("cos_M9", scores["M9"])
	r.metric("cos_M12", scores["M12"])
	return r, nil
}

func runTable4(seed int64) (*Result, error) {
	c := corpus.MED()
	r := &Result{ID: "table4", Title: "Returned documents (cosine ≥ 0.40) by number of factors",
		Paper: "k=2: 11 docs led by M9 1.00; k=4: 5 docs led by M8; k=8: 4 docs led by M8"}
	q := c.QueryVector(corpus.MEDQuery)
	for _, k := range []int{2, 4, 8} {
		m, err := core.BuildCollection(c, core.Config{K: k, Method: core.MethodDense})
		if err != nil {
			return nil, err
		}
		hits := m.AboveThreshold(m.ProjectQuery(q), 0.40)
		var cells []string
		for _, h := range hits {
			cells = append(cells, fmt.Sprintf("%s %.2f", c.Docs[h.Doc].ID, h.Score))
		}
		r.addf("k=%d: %s", k, strings.Join(cells, "  "))
		r.metric(fmt.Sprintf("returned_k%d", k), float64(len(hits)))
		if len(hits) > 0 {
			r.metric(fmt.Sprintf("top_cos_k%d", k), hits[0].Score)
		}
	}
	return r, nil
}

func runFig7(seed int64) (*Result, error) {
	c, m, err := medModel(2)
	if err != nil {
		return nil, err
	}
	before := m.DocCoords()
	m.FoldInDocs(c.DocVectors(corpus.MEDUpdateTopics))
	after := m.DocCoords()
	r := &Result{ID: "fig7", Title: "Folding-in M15 and M16 (Eq 7)",
		Paper: "original coordinates unchanged; M15/M16 placed by projection; orthogonality lost"}
	ids := append([]corpus.Document{}, c.Docs...)
	ids = append(ids, corpus.MEDUpdateTopics...)
	r.addf("%-5s %9s %9s", "topic", "x", "y")
	for j, d := range ids {
		r.addf("%-5s %9.4f %9.4f", d.ID, after.At(j, 0), after.At(j, 1))
	}
	maxMove := 0.0
	for j := 0; j < 14; j++ {
		for f := 0; f < 2; f++ {
			if d := abs(after.At(j, f) - before.At(j, f)); d > maxMove {
				maxMove = d
			}
		}
	}
	r.metric("max_existing_coord_movement", maxMove)
	r.metric("doc_orthogonality_loss", m.DocOrthogonality())
	return r, nil
}

func runFig8(seed int64) (*Result, error) {
	c := corpus.MED()
	ext := c.Extend(corpus.MEDUpdateTopics, corpus.MEDParseOptions())
	m, err := core.BuildCollection(ext, core.Config{K: 2, Method: core.MethodDense})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig8", Title: "Recomputed SVD of the 18×16 matrix Ã",
		Paper: "rats topics {M13,M14,M15} form a well-defined cluster; latent structure redefined"}
	dc := m.DocCoords()
	r.addf("%-5s %9s %9s", "topic", "x", "y")
	for j, d := range ext.Docs {
		r.addf("%-5s %9.4f %9.4f", d.ID, dc.At(j, 0), dc.At(j, 1))
	}
	r.metric("rats_cluster_cohesion", clusterCohesion(m, []int{12, 13, 14}))
	r.metric("sigma1", m.S[0])
	return r, nil
}

func runFig9(seed int64) (*Result, error) {
	c, m, err := medModel(2)
	if err != nil {
		return nil, err
	}
	if err := m.UpdateDocs(c.DocVectors(corpus.MEDUpdateTopics)); err != nil {
		return nil, err
	}
	r := &Result{ID: "fig9", Title: "SVD-updating with M15 and M16 (Eq 10 phase)",
		Paper: "clustering similar to Fig 8 (recompute), unlike Fig 7 (folding-in); orthogonality kept"}
	dc := m.DocCoords()
	ids := append([]corpus.Document{}, c.Docs...)
	ids = append(ids, corpus.MEDUpdateTopics...)
	r.addf("%-5s %9s %9s", "topic", "x", "y")
	for j, d := range ids {
		r.addf("%-5s %9.4f %9.4f", d.ID, dc.At(j, 0), dc.At(j, 1))
	}
	r.metric("doc_orthogonality_loss", m.DocOrthogonality())
	r.metric("rats_cluster_cohesion", clusterCohesion(m, []int{12, 13, 14}))
	r.metric("sigma1", m.S[0])

	// Folding-in comparison for the report.
	_, folded, err := medModel(2)
	if err != nil {
		return nil, err
	}
	folded.FoldInDocs(c.DocVectors(corpus.MEDUpdateTopics))
	r.metric("foldin_orthogonality_loss", folded.DocOrthogonality())
	return r, nil
}

func clusterCohesion(m *core.Model, docs []int) float64 {
	var sum float64
	var n int
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			sum += dense.Cosine(m.DocVector(docs[i]), m.DocVector(docs[j]))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
