package experiments

import (
	"testing"
)

// run executes a registered experiment with the fixed test seed.
func run(t *testing.T, id string) *Result {
	t.Helper()
	r, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := r.Run(1)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func want(t *testing.T, res *Result, name string, pred func(float64) bool, desc string) {
	t.Helper()
	v, ok := res.Metrics[name]
	if !ok {
		t.Fatalf("%s: metric %q missing (have %v)", res.ID, name, res.Metrics)
	}
	if !pred(v) {
		t.Errorf("%s: metric %s = %v violates: %s", res.ID, name, v, desc)
	}
}

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"table3", "fig4", "fig5", "fig6", "table4", "fig7", "fig8", "fig9",
		"retrieval", "weighting", "feedback", "kfactors",
		"table7", "orthogonality", "trecscale", "svdmethods",
		"filtering", "crosslang", "synonym", "noisy", "spelling", "reviewers",
		"trecqueries", "pooling", "phrases", "neighbors", "anim3d",
		"weightupdate", "negfeedback",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := Lookup("definitely-not-an-experiment"); ok {
		t.Error("Lookup accepted a bogus id")
	}
}

func TestTable3ExactReproduction(t *testing.T) {
	res := run(t, "table3")
	want(t, res, "terms", func(v float64) bool { return v == 18 }, "18 terms")
	want(t, res, "docs", func(v float64) bool { return v == 14 }, "14 topics")
	want(t, res, "cells_differing_from_table3", func(v float64) bool { return v == 0 },
		"parser reproduces the Table 3 matrix exactly")
}

func TestFig4ClusterSeparation(t *testing.T) {
	res := run(t, "fig4")
	b := res.Metrics["behaviour_group_mean_y"]
	f := res.Metrics["fasting_group_mean_y"]
	if b*f >= 0 {
		t.Fatalf("behaviour (%v) and fasting (%v) groups on the same side of factor 2", b, f)
	}
}

func TestFig5NearPublishedValues(t *testing.T) {
	res := run(t, "fig5")
	// Paper prints σ=(3.5919, 2.6471) and q̂=(0.1491, −0.1199) for its
	// revision of the matrix; the Table 2–derived matrix gives values
	// within a few percent (see EXPERIMENTS.md).
	want(t, res, "sigma1", func(v float64) bool { return v > 3.45 && v < 3.65 }, "σ1 ≈ 3.5–3.6")
	want(t, res, "sigma2", func(v float64) bool { return v > 2.6 && v < 2.72 }, "σ2 ≈ 2.65")
	// Factor signs are arbitrary (fixed only by our convention), so assert
	// magnitudes: paper prints |q̂| = (0.1491, 0.1199).
	qx, qy := res.Metrics["qhat_x"], res.Metrics["qhat_y"]
	if a := absf(qx); a < 0.10 || a > 0.20 {
		t.Fatalf("|q̂_x| = %v out of the published neighbourhood of 0.149", a)
	}
	if a := absf(qy); a < 0.06 || a > 0.18 {
		t.Fatalf("|q̂_y| = %v out of the published neighbourhood of 0.120", a)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig6RetrievalStory(t *testing.T) {
	res := run(t, "fig6")
	want(t, res, "top1_is_M9", func(v float64) bool { return v == 1 }, "M9 ranked first")
	want(t, res, "lexical_count", func(v float64) bool { return v == 5 }, "lexical set has 5 docs")
	for _, m := range []string{"cos_M8", "cos_M9", "cos_M12"} {
		want(t, res, m, func(v float64) bool { return v >= 0.79 }, "high-cosine set includes it")
	}
}

func TestTable4SetShrinksWithK(t *testing.T) {
	res := run(t, "table4")
	k2 := res.Metrics["returned_k2"]
	k4 := res.Metrics["returned_k4"]
	k8 := res.Metrics["returned_k8"]
	if !(k2 > k4 && k4 >= k8) {
		t.Fatalf("returned-set sizes should shrink with k: %v %v %v (Table 4: 11, 5, 4)", k2, k4, k8)
	}
}

func TestFig7FoldInFreezesCoordinates(t *testing.T) {
	res := run(t, "fig7")
	want(t, res, "max_existing_coord_movement", func(v float64) bool { return v == 0 },
		"existing topics do not move")
	want(t, res, "doc_orthogonality_loss", func(v float64) bool { return v > 1e-6 },
		"folding-in corrupts orthogonality")
}

func TestFig8RatsCluster(t *testing.T) {
	res := run(t, "fig8")
	want(t, res, "rats_cluster_cohesion", func(v float64) bool { return v > 0.9 },
		"{M13,M14,M15} form a well-defined cluster after recompute")
}

func TestFig9UpdateKeepsOrthogonality(t *testing.T) {
	res := run(t, "fig9")
	want(t, res, "doc_orthogonality_loss", func(v float64) bool { return v < 1e-8 },
		"SVD-updating maintains orthogonality")
	want(t, res, "foldin_orthogonality_loss", func(v float64) bool { return v > 1e-6 },
		"folding-in does not")
}

func TestRetrievalAdvantageGrowsWithMismatch(t *testing.T) {
	res := run(t, "retrieval")
	a1 := res.Metrics["advantage_pct_syn1"]
	a3 := res.Metrics["advantage_pct_syn3"]
	a6 := res.Metrics["advantage_pct_syn6"]
	if !(a6 > a3 && a3 > a1) {
		t.Fatalf("advantage should grow with vocabulary mismatch: %v %v %v", a1, a3, a6)
	}
	if a6 < 15 {
		t.Fatalf("high-mismatch advantage %v%% below the paper's regime (up to 30%%)", a6)
	}
	if a1 > 10 {
		t.Fatalf("no-synonymy advantage %v%% should be 'comparable'", a1)
	}
}

func TestWeightingLogEntropyBeatsRaw(t *testing.T) {
	res := run(t, "weighting")
	want(t, res, "logentropy_vs_raw_pct", func(v float64) bool { return v > 20 },
		"log×entropy substantially better than raw (paper: +40%)")
	le := res.Metrics["ap_log×entropy"]
	for name, v := range res.Metrics {
		if name == "logentropy_vs_raw_pct" {
			continue
		}
		if len(name) > 3 && name[:3] == "ap_" && v > le+0.05 {
			t.Errorf("scheme %s (%v) clearly beats log×entropy (%v)", name, v, le)
		}
	}
}

func TestFeedbackGainsOrdered(t *testing.T) {
	res := run(t, "feedback")
	base := res.Metrics["ap_query"]
	fb1 := res.Metrics["ap_feedback1"]
	fb3 := res.Metrics["ap_feedback3"]
	if !(fb3 > fb1 && fb1 > base) {
		t.Fatalf("expected fb3 > fb1 > query: %v %v %v (paper: +67%% > +33%% > base)", fb3, fb1, base)
	}
}

func TestKFactorsHumpAndLimit(t *testing.T) {
	res := run(t, "kfactors")
	first := res.Metrics["first_ap"]
	best := res.Metrics["best_ap"]
	last := res.Metrics["last_ap"]
	bestK := res.Metrics["best_k"]
	if !(best > first && best > last) {
		t.Fatalf("no hump: first %v best %v last %v", first, best, last)
	}
	if bestK >= 290 {
		t.Fatalf("peak at max k (%v): no dimension-reduction benefit", bestK)
	}
	// The Σ-scaled (A_k-cosine) series approaches keyword performance at
	// k → n, §5.2's limit argument.
	lastRecon := res.Metrics["last_recon_ap"]
	vsm := res.Metrics["vsm_ap"]
	if d := lastRecon - vsm; d > 0.05 || d < -0.05 {
		t.Fatalf("A_k-cosine at full k (%v) should approach keyword AP (%v)", lastRecon, vsm)
	}
}

func TestTable7Orderings(t *testing.T) {
	res := run(t, "table7")
	for _, p := range []int{10, 100} {
		fold := res.Metrics[metricName("fold_docs_p", p)]
		upd := res.Metrics[metricName("update_docs_p", p)]
		rec := res.Metrics[metricName("recompute_p", p)]
		if !(fold < upd && upd < rec) {
			t.Fatalf("p=%d: want fold (%g) < update (%g) < recompute (%g)", p, fold, upd, rec)
		}
	}
	// Measured wall-clock: folding is fastest; recompute slowest.
	mf := res.Metrics["measured_fold_ns"]
	mu := res.Metrics["measured_update_ns"]
	mr := res.Metrics["measured_recompute_ns"]
	if !(mf < mu) {
		t.Errorf("measured: fold (%v ns) should beat update (%v ns)", mf, mu)
	}
	if !(mf < mr) {
		t.Errorf("measured: fold (%v ns) should beat recompute (%v ns)", mf, mr)
	}
}

func metricName(prefix string, p int) string {
	return prefix + itoa(p)
}

func itoa(p int) string {
	if p == 0 {
		return "0"
	}
	var b []byte
	for p > 0 {
		b = append([]byte{byte('0' + p%10)}, b...)
		p /= 10
	}
	return string(b)
}

func TestOrthogonalityLossMonotone(t *testing.T) {
	res := run(t, "orthogonality")
	want(t, res, "loss_monotone", func(v float64) bool { return v == 1 },
		"‖V̂ᵀV̂−I‖ grows monotonically with folded documents")
	want(t, res, "loss_after_0", func(v float64) bool { return v < 1e-8 },
		"fresh model is orthogonal")
}

func TestTRECScaleRetention(t *testing.T) {
	res := run(t, "trecscale")
	want(t, res, "retention", func(v float64) bool { return v > 0.85 },
		"sample+fold-in retains most of full-SVD quality")
}

func TestSVDMethodsAgree(t *testing.T) {
	res := run(t, "svdmethods")
	want(t, res, "lanczos_residual", func(v float64) bool { return v < 1e-7 },
		"Lanczos triplets are accurate")
	want(t, res, "sigma_disagreement", func(v float64) bool { return v < 0.02 },
		"randomized SVD agrees with Lanczos on the leading spectrum")
}

func TestFilteringAdvantage(t *testing.T) {
	res := run(t, "filtering")
	want(t, res, "advantage_pct", func(v float64) bool { return v > 10 },
		"LSI filtering advantage at least 10% (paper: 12–23%)")
}

func TestCrossLanguageEffective(t *testing.T) {
	res := run(t, "crosslang")
	enfr := res.Metrics["en_to_fr"]
	fren := res.Metrics["fr_to_en"]
	enen := res.Metrics["en_to_en"]
	if enfr < 0.7 || fren < 0.7 {
		t.Fatalf("cross-language precision too low: EN→FR %v, FR→EN %v", enfr, fren)
	}
	// "As effective as first translating": within 15% of monolingual.
	if enfr < 0.85*enen {
		t.Fatalf("EN→FR (%v) far below monolingual EN→EN (%v)", enfr, enen)
	}
}

func TestSynonymLSIBeatsOverlap(t *testing.T) {
	res := run(t, "synonym")
	lsi := res.Metrics["lsi_accuracy"]
	overlap := res.Metrics["overlap_accuracy"]
	if lsi < 0.5 {
		t.Fatalf("LSI synonym accuracy %v below 0.5 (paper: 64%%)", lsi)
	}
	if overlap > 0.45 {
		t.Fatalf("word-overlap accuracy %v too high (paper: 33%%, chance 25%%)", overlap)
	}
	if lsi <= overlap {
		t.Fatalf("LSI (%v) must beat overlap (%v)", lsi, overlap)
	}
}

func TestNoisyInputRobust(t *testing.T) {
	res := run(t, "noisy")
	clean := res.Metrics["ap_clean"]
	at88 := res.Metrics["ap_rate88"]
	// "Not disrupted": within 10% of clean at the paper's 8.8% error rate.
	if at88 < 0.9*clean {
		t.Fatalf("AP at 8.8%% corruption (%v) dropped more than 10%% from clean (%v)", at88, clean)
	}
}

func TestSpellingAccuracy(t *testing.T) {
	res := run(t, "spelling")
	want(t, res, "top1", func(v float64) bool { return v >= 0.8 }, "top-1 ≥ 80%")
	want(t, res, "top3", func(v float64) bool { return v >= res.Metrics["top1"] }, "top-3 ≥ top-1")
}

func TestReviewersQuality(t *testing.T) {
	res := run(t, "reviewers")
	want(t, res, "topic_expert_fraction", func(v float64) bool { return v >= 0.9 },
		"nearly every paper reaches its topic expert")
	if res.Metrics["mean_similarity"] <= res.Metrics["random_similarity"] {
		t.Fatal("assignment no better than random")
	}
}

func TestRenderIncludesEverything(t *testing.T) {
	res := run(t, "fig5")
	out := Render(res)
	for _, frag := range []string{"=== fig5", "paper:", "metrics:", "sigma1"} {
		if !containsStr(out, frag) {
			t.Fatalf("rendered output missing %q", frag)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestTRECQueriesShrinkAdvantage(t *testing.T) {
	res := run(t, "trecqueries")
	short := res.Metrics["advantage_pct_qlen2"]
	mid := res.Metrics["advantage_pct_qlen8"]
	long := res.Metrics["advantage_pct_qlen40"]
	if !(short > mid && mid > long) {
		t.Fatalf("advantage should shrink with query richness: %v %v %v", short, mid, long)
	}
	if long > 20 {
		t.Fatalf("rich-query advantage %v%% should be modest (paper: 16%%)", long)
	}
}

func TestPoolingPenalizesUnpooledSystem(t *testing.T) {
	res := run(t, "pooling")
	if res.Metrics["pooling_penalty"] <= 0 {
		t.Fatalf("keyword-only pooling should undervalue LSI: penalty %v",
			res.Metrics["pooling_penalty"])
	}
}

func TestPhrasesDoNotHurt(t *testing.T) {
	res := run(t, "phrases")
	uni := res.Metrics["ap_unigram"]
	bi := res.Metrics["ap_bigram"]
	if bi < uni-0.03 {
		t.Fatalf("bigram rows degraded AP: %v vs %v", bi, uni)
	}
	if res.Metrics["ap_bigram_rows"] <= res.Metrics["ap_unigram_rows"] {
		t.Fatal("bigram vocabulary should be larger")
	}
}

func TestNeighborsTradeoff(t *testing.T) {
	res := run(t, "neighbors")
	// Recall grows with probes; evaluations stay well below a full scan.
	if res.Metrics["recall_probes8"] < res.Metrics["recall_probes1"] {
		t.Fatal("recall should not fall with more probes")
	}
	if res.Metrics["recall_probes2"] < 0.9 {
		t.Fatalf("recall@10 with 2 probes %v", res.Metrics["recall_probes2"])
	}
	if res.Metrics["evals_probes2"] > res.Metrics["docs"]/4 {
		t.Fatalf("2-probe search evaluated %v cosines of %v docs",
			res.Metrics["evals_probes2"], res.Metrics["docs"])
	}
}

func TestAnim3DKeyframes(t *testing.T) {
	res := run(t, "anim3d")
	if res.Metrics["total_doc_movement"] <= 0 {
		t.Fatal("SVD-updating should move documents relative to folding-in")
	}
	if res.Metrics["updated_orthogonality"] > 1e-8 {
		t.Fatal("updated model should be orthogonal")
	}
	if res.Metrics["folded_orthogonality"] < 1e-6 {
		t.Fatal("folded model should not be orthogonal")
	}
}

func TestWeightUpdateExperiment(t *testing.T) {
	res := run(t, "weightupdate")
	want(t, res, "max_sigma_error", func(v float64) bool { return v < 0.05 },
		"corrected spectrum tracks the recomputed one")
	want(t, res, "orthogonality", func(v float64) bool { return v < 1e-9 },
		"correction preserves orthogonality")
}

func TestNegativeFeedbackExperiment(t *testing.T) {
	res := run(t, "negfeedback")
	if res.Metrics["negative_gain"] < 0 {
		t.Fatalf("best gamma should not lose to positive-only: gain %v",
			res.Metrics["negative_gain"])
	}
	// Classic Rocchio shape: aggressive gamma overshoots.
	if res.Metrics["ap_gamma1.00"] > res.Metrics["best_ap"]+1e-12 {
		t.Fatal("gamma sweep should have an interior or positive-side optimum")
	}
}
