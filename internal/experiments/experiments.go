// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the §5 application results, as structured text reports.
// Each experiment returns a Result with formatted lines (what cmd/lsibench
// prints) and named metrics (what the tests and EXPERIMENTS.md assert
// against the paper's claims).
package experiments

import (
	"fmt"
	"sort"
)

// Result is one regenerated table/figure.
type Result struct {
	ID      string
	Title   string
	Paper   string // what the paper reports, for side-by-side comparison
	Lines   []string
	Metrics map[string]float64
}

func (r *Result) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(seed int64) (*Result, error)
}

var registry []Runner

func register(id, title string, run func(seed int64) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in registration (paper) order.
func All() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	return out
}

// IDs lists every experiment id.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, r := range registry {
		ids[i] = r.ID
	}
	return ids
}

// Lookup finds an experiment by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// sortedMetricNames aids deterministic printing of metric maps.
func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Render formats a result for terminal output.
func Render(r *Result) string {
	out := fmt.Sprintf("=== %s — %s ===\n", r.ID, r.Title)
	if r.Paper != "" {
		out += "paper: " + r.Paper + "\n"
	}
	for _, l := range r.Lines {
		out += l + "\n"
	}
	if len(r.Metrics) > 0 {
		out += "metrics:\n"
		for _, n := range sortedMetricNames(r.Metrics) {
			out += fmt.Sprintf("  %-40s %12.6g\n", n, r.Metrics[n])
		}
	}
	return out
}
