package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/filter"
	"repro/internal/reviewer"
	"repro/internal/spell"
	"repro/internal/synonym"
	"repro/internal/text"
	"repro/internal/vsm"
	"repro/internal/weight"
	"repro/internal/xlang"
)

func init() {
	register("filtering", "information filtering: LSI vs keyword profiles (§5.3)", runFiltering)
	register("crosslang", "cross-language retrieval in a joint LSI space (§5.4)", runCrossLang)
	register("synonym", "TOEFL-style synonym test: LSI vs word overlap (§5.4)", runSynonym)
	register("noisy", "retrieval robustness under OCR-style corruption (§5.4)", runNoisy)
	register("spelling", "n-gram LSI spelling correction (§5.4)", runSpelling)
	register("reviewers", "reviewer assignment with p×r constraints (§5.4)", runReviewers)
}

func runFiltering(seed int64) (*Result, error) {
	r := &Result{ID: "filtering", Title: "Filtering a document stream against standing profiles",
		Paper: "LSI showed 12–23% advantages over keyword matching for filtering Netnews articles"}
	// Train on an initial sample, then filter a stream of unseen docs.
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 31, Topics: 8, Docs: 400, DocLen: 40,
		QueriesPerTopic: 2, SynonymsPerConcept: 6, DocVariantLoyalty: 1.0,
		PolysemyFrac: 0.2, NoiseFrac: 0.35, QueryLen: 5,
	})
	nTrain := 240
	trainDocs := s.Docs[:nTrain]
	train := corpus.New(trainDocs, text.ParseOptions{MinDocs: 2})
	m, err := core.BuildCollection(train, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	kw := vsm.Build(train.TD, weight.LogEntropy)

	// The stream is the held-out tail, re-counted under the training vocab.
	streamDocs := s.Docs[nTrain:]
	stream := make([][]float64, len(streamDocs))
	for i, d := range streamDocs {
		stream[i] = train.Vocab.Count(d.Text)
	}
	var lsiAP, kwAP float64
	var nq int
	for _, q := range s.Queries {
		rel := map[int]bool{}
		for _, j := range q.Relevant {
			if j >= nTrain {
				rel[j-nTrain] = true
			}
		}
		if len(rel) == 0 {
			continue
		}
		nq++
		qv := train.Vocab.Count(q.Text)
		p := filter.FromQuery(m, qv, 0)
		lsiAP += eval.AveragePrecisionAtLevels(p.RankStream(m, stream), rel, nil)
		kwScores := make([]float64, len(stream))
		for i, d := range stream {
			kwScores[i] = kw.PairCosine(qv, d)
		}
		kwAP += eval.AveragePrecisionAtLevels(eval.RankingFromScores(kwScores), rel, nil)
	}
	lsiAP /= float64(nq)
	kwAP /= float64(nq)
	r.addf("%-22s %8s", "system", "mean AP")
	r.addf("%-22s %8.3f", "LSI profile", lsiAP)
	r.addf("%-22s %8.3f", "keyword profile", kwAP)
	r.addf("advantage: %.1f%%", eval.Improvement(lsiAP, kwAP))
	r.metric("lsi_ap", lsiAP)
	r.metric("keyword_ap", kwAP)
	r.metric("advantage_pct", eval.Improvement(lsiAP, kwAP))
	return r, nil
}

func runCrossLang(seed int64) (*Result, error) {
	r := &Result{ID: "crosslang", Title: "English↔French retrieval in the joint space",
		Paper: "cross-language retrieval as effective as translating queries; no lexical overlap needed"}
	b := corpus.GenerateBilingual(corpus.BilingualOptions{Seed: seed + 5})
	mono := append(append([]corpus.Document(nil), b.MonoEN...), b.MonoFR...)
	ix, err := xlang.Build(b.Training, mono, xlang.Config{K: 16, Seed: seed})
	if err != nil {
		return nil, err
	}
	nEN := len(b.MonoEN)
	score := func(queries []corpus.Query, topics []int, docTopics []int, offset int) float64 {
		var sum float64
		for qi, q := range queries {
			ranked := ix.Query(q.Text)
			// Precision at the topic size among target-language docs.
			perTopic := 0
			for _, t := range docTopics {
				if t == topics[qi] {
					perTopic++
				}
			}
			hits, seen := 0, 0
			for _, x := range ranked {
				di := x.Doc - offset
				if di < 0 || di >= len(docTopics) {
					continue
				}
				if docTopics[di] == topics[qi] {
					hits++
				}
				seen++
				if seen >= perTopic {
					break
				}
			}
			sum += float64(hits) / float64(perTopic)
		}
		return sum / float64(len(queries))
	}
	enToFR := score(b.QueriesEN, b.QueryTopicEN, b.MonoFRTopic, nEN)
	frToEN := score(b.QueriesFR, b.QueryTopicFR, b.MonoENTopic, 0)
	enToEN := score(b.QueriesEN, b.QueryTopicEN, b.MonoENTopic, 0)
	r.addf("EN→FR precision@topic = %.3f", enToFR)
	r.addf("FR→EN precision@topic = %.3f", frToEN)
	r.addf("EN→EN (monolingual)   = %.3f", enToEN)
	r.metric("en_to_fr", enToFR)
	r.metric("fr_to_en", frToEN)
	r.metric("en_to_en", enToEN)
	return r, nil
}

func runSynonym(seed int64) (*Result, error) {
	r := &Result{ID: "synonym", Title: "Synonym test accuracy",
		Paper: "LSI 64% correct vs 33% for word overlap (chance 25%), matching the average ETS test-taker"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 77, Topics: 10, Docs: 300, DocLen: 40,
		SynonymsPerConcept: 3, DocVariantLoyalty: 1.0,
	})
	b := synonym.GenerateBenchmark(s, 80, seed)
	m, err := core.BuildCollection(s.Collection, core.Config{K: 20, Seed: seed})
	if err != nil {
		return nil, err
	}
	lsi, err := synonym.ScoreLSI(b, m)
	if err != nil {
		return nil, err
	}
	overlap, err := synonym.ScoreWordOverlap(b)
	if err != nil {
		return nil, err
	}
	r.addf("items: %d (4 alternatives each; chance = 25%%)", len(b.Items))
	r.addf("LSI          %.1f%%", 100*lsi)
	r.addf("word overlap %.1f%%", 100*overlap)
	r.metric("lsi_accuracy", lsi)
	r.metric("overlap_accuracy", overlap)
	return r, nil
}

func runNoisy(seed int64) (*Result, error) {
	r := &Result{ID: "noisy", Title: "Retrieval under OCR-style word corruption",
		Paper: "with an 8.8% word error rate, LSI retrieval was not disrupted relative to clean text"}
	base := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 13, Topics: 8, Docs: 240, DocLen: 40, QueriesPerTopic: 2,
	})
	cleanAP, err := apLSI(base, 16, weight.LogEntropy, seed)
	if err != nil {
		return nil, err
	}
	r.addf("%-12s %8s %12s", "error rate", "AP", "vs clean")
	r.addf("%-12s %8.3f %12s", "0.0%", cleanAP, "—")
	r.metric("ap_clean", cleanAP)
	for _, rate := range []float64{0.088, 0.20} {
		noisyDocs, realized := corpus.NewCorruptor(rate, seed).CorruptDocs(base.Docs)
		coll := corpus.New(noisyDocs, text.ParseOptions{MinDocs: 2})
		noisy := &corpus.Synth{
			Judged:   &corpus.Judged{Collection: coll, Queries: base.Queries},
			DocTopic: base.DocTopic,
			Options:  base.Options,
		}
		ap, err := apLSI(noisy, 16, weight.LogEntropy, seed)
		if err != nil {
			return nil, err
		}
		r.addf("%-12s %8.3f %11.1f%%", fmt.Sprintf("%.1f%%", 100*realized), ap, eval.Improvement(ap, cleanAP))
		r.metric(fmt.Sprintf("ap_rate%.0f", rate*1000), ap)
	}
	return r, nil
}

func runSpelling(seed int64) (*Result, error) {
	r := &Result{ID: "spelling", Title: "Spelling correction via n-gram × word LSI",
		Paper: "input word's n-gram vector folded in; nearest dictionary word returned as the correction"}
	dict := []string{
		"information", "retrieval", "latent", "semantic", "indexing",
		"singular", "value", "decomposition", "matrix", "sparse", "document",
		"query", "vector", "cosine", "factor", "update", "folding",
		"orthogonal", "lanczos", "truncated", "precision", "recall",
		"relevance", "feedback", "filtering", "synonym", "polysemy",
		"lexical", "keyword", "database", "cluster", "dimension",
	}
	c, err := spell.New(dict, spell.Config{K: 28, Seed: seed})
	if err != nil {
		return nil, err
	}
	pairs := [][2]string{
		{"informaton", "information"}, {"retreival", "retrieval"},
		{"semantik", "semantic"}, {"indexng", "indexing"},
		{"singuler", "singular"}, {"matrxi", "matrix"},
		{"documnet", "document"}, {"qeury", "query"},
		{"relevence", "relevance"}, {"feedbak", "feedback"},
		{"clutser", "cluster"}, {"dimensoin", "dimension"},
	}
	top1 := c.Accuracy(pairs, 1)
	top3 := c.Accuracy(pairs, 3)
	r.addf("dictionary: %d words, test: %d single-edit misspellings", len(dict), len(pairs))
	r.addf("top-1 accuracy: %.1f%%", 100*top1)
	r.addf("top-3 accuracy: %.1f%%", 100*top3)
	for _, p := range pairs[:4] {
		r.addf("  %-12s -> %s", p[0], c.Correct(p[0]))
	}
	r.metric("top1", top1)
	r.metric("top3", top3)
	return r, nil
}

func runReviewers(seed int64) (*Result, error) {
	r := &Result{ID: "reviewers", Title: "Automatic reviewer assignment",
		Paper: "hundreds of papers assigned in under an hour, judged as good as human experts"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 99, Topics: 6, Docs: 120, DocLen: 40,
	})
	perTopic := map[int][]string{}
	for j, topic := range s.DocTopic {
		perTopic[topic] = append(perTopic[topic], s.Docs[j].Text)
	}
	var reviewers []corpus.Document
	for topic := 0; topic < s.Options.Topics; topic++ {
		reviewers = append(reviewers, corpus.Document{
			ID:   fmt.Sprintf("R%d", topic),
			Text: strings.Join(perTopic[topic][:10], " "),
		})
	}
	asn, err := reviewer.New(reviewers, reviewer.Config{K: 5, Seed: seed},
		func(docs []corpus.Document) *corpus.Collection {
			// Topic words appear in one reviewer's text only; index all.
			return corpus.New(docs, text.ParseOptions{MinDocs: 1})
		})
	if err != nil {
		return nil, err
	}
	var abstracts []string
	var topics []int
	for topic := 0; topic < s.Options.Topics; topic++ {
		for _, d := range perTopic[topic][10:14] {
			abstracts = append(abstracts, d)
			topics = append(topics, topic)
		}
	}
	asg, err := asn.Assign(abstracts, 2, 10)
	if err != nil {
		return nil, err
	}
	correctTop := 0
	for p, revs := range asg {
		for _, rev := range revs {
			if rev == topics[p] {
				correctTop++
				break
			}
		}
	}
	mean := asn.MeanReviewerSimilarity(abstracts, asg)
	random := asn.RandomBaselineSimilarity(abstracts)
	r.addf("papers: %d, reviewers: %d, 2 reviewers/paper, ≤10 papers/reviewer", len(abstracts), len(reviewers))
	r.addf("papers whose topic expert is among assigned reviewers: %d/%d", correctTop, len(abstracts))
	r.addf("mean assigned similarity %.3f vs random baseline %.3f", mean, random)
	r.metric("topic_expert_fraction", float64(correctTop)/float64(len(abstracts)))
	r.metric("mean_similarity", mean)
	r.metric("random_similarity", random)
	return r, nil
}
