package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/neighbors"
	"repro/internal/text"
	"repro/internal/weight"
)

func init() {
	register("trecqueries", "LSI advantage shrinks for rich TREC-style queries (§5.3)", runTRECQueries)
	register("pooling", "pooled relevance judgments bias against unpooled systems (§5.1 fn 1)", runPooling)
	register("phrases", "phrase (bigram) descriptors as extra matrix rows (§5.4)", runPhrases)
	register("neighbors", "near-neighbor search in k-space: pruning vs recall (§5.6)", runNeighbors)
	register("anim3d", "k=3 coordinates before/after updating — the §4.5 animation keyframes", runAnim3D)
}

// runTRECQueries reproduces the §5.3 observation: "the fact that the TREC
// queries are quite rich means that smaller advantages would be expected
// for LSI" — long, detailed queries (TREC averaged >50 words) leave less
// room for latent expansion than the 1–2 word interactive queries.
func runTRECQueries(seed int64) (*Result, error) {
	r := &Result{ID: "trecqueries", Title: "LSI advantage vs query richness",
		Paper: "TREC's >50-word queries gave LSI 16% (retrieval), below the ~30% seen with short queries"}
	r.addf("%-14s %8s %8s %10s", "query length", "LSI", "keyword", "advantage")
	var advShort, advLong float64
	for _, qlen := range []int{2, 8, 40} {
		s := corpus.GenerateSynth(corpus.SynthOptions{
			Seed: seed + int64(qlen)*13, Topics: 10, Docs: 300, DocLen: 40,
			SynonymsPerConcept: 6, DocVariantLoyalty: 1.0,
			PolysemyFrac: 0.2, NoiseFrac: 0.35,
			QueriesPerTopic: 3, QueryLen: qlen,
		})
		lsi, err := apLSI(s, 20, weight.LogEntropy, seed)
		if err != nil {
			return nil, err
		}
		kw := apVSM(s, weight.LogEntropy)
		adv := eval.Improvement(lsi, kw)
		r.addf("%-14d %8.3f %8.3f %9.1f%%", qlen, lsi, kw, adv)
		r.metric(fmt.Sprintf("advantage_pct_qlen%d", qlen), adv)
		if qlen == 2 {
			advShort = adv
		}
		if qlen == 40 {
			advLong = adv
		}
	}
	r.metric("short_minus_long_pct", advShort-advLong)
	return r, nil
}

// runPooling demonstrates the evaluation hazard of §5.1's footnote: a
// system whose runs were not pooled is undervalued because its unique
// relevant documents carry no judgments.
func runPooling(seed int64) (*Result, error) {
	r := &Result{ID: "pooling", Title: "Pooled judgments vs exhaustive judgments",
		Paper: "\"most of the top-ranked documents for new systems will hopefully be contained in the pool\" — when they are not, the new system is undervalued"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 41, Topics: 10, Docs: 300, DocLen: 40,
		SynonymsPerConcept: 6, DocVariantLoyalty: 1.0, QueriesPerTopic: 3, QueryLen: 4,
	})
	// The pooled system is keyword matching; LSI is the "new system".
	kw := apVSM(s, weight.LogEntropy)
	lsiTrue, err := apLSI(s, 20, weight.LogEntropy, seed)
	if err != nil {
		return nil, err
	}
	m, err := core.BuildCollection(s.Collection, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	kwModel := buildVSM(s)
	var lsiPooledSum float64
	for _, q := range s.Queries {
		kwRanking := eval.RankingFromScores(kwModel.Scores(s.QueryVector(q.Text)))
		ranked := m.Rank(s.QueryVector(q.Text))
		lsiRanking := make([]int, len(ranked))
		for i, x := range ranked {
			lsiRanking[i] = x.Doc
		}
		// Pool only the keyword system's top 20.
		pool := eval.Pool([][]int{kwRanking}, 20)
		pj := eval.PooledJudgments(eval.RelevantSet(q.Relevant), pool)
		lsiPooledSum += eval.AveragePrecisionAtLevels(lsiRanking, pj, nil)
	}
	lsiPooled := lsiPooledSum / float64(len(s.Queries))
	r.addf("keyword (pooled system) AP:        %.3f", kw)
	r.addf("LSI under exhaustive judgments:    %.3f", lsiTrue)
	r.addf("LSI under keyword-only pooling:    %.3f", lsiPooled)
	r.metric("lsi_true", lsiTrue)
	r.metric("lsi_pooled", lsiPooled)
	r.metric("pooling_penalty", lsiTrue-lsiPooled)
	return r, nil
}

// runPhrases measures adding bigram descriptors as extra rows — the §5.4
// generalization "phrases or n-grams could also be included as rows in the
// matrix".
func runPhrases(seed int64) (*Result, error) {
	r := &Result{ID: "phrases", Title: "Unigram vs unigram+bigram descriptor rows",
		Paper: "the LSI method can be applied to any descriptor–object matrix"}
	gen := func(bigrams bool) (*corpus.Synth, *corpus.Collection) {
		s := corpus.GenerateSynth(corpus.SynthOptions{
			Seed: seed + 53, Topics: 8, Docs: 240, DocLen: 40,
			SynonymsPerConcept: 4, DocVariantLoyalty: 1.0, QueriesPerTopic: 3,
		})
		if !bigrams {
			return s, s.Collection
		}
		coll := corpus.New(s.Docs, text.ParseOptions{MinDocs: 2, IncludeBigrams: true})
		return s, coll
	}
	for _, bigrams := range []bool{false, true} {
		s, coll := gen(bigrams)
		m, err := core.BuildCollection(coll, core.Config{K: 16, Scheme: weight.LogEntropy, Seed: seed})
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, q := range s.Queries {
			ranked := m.Rank(coll.QueryVector(q.Text))
			ranking := make([]int, len(ranked))
			for i, x := range ranked {
				ranking[i] = x.Doc
			}
			sum += eval.AveragePrecisionAtLevels(ranking, eval.RelevantSet(q.Relevant), nil)
		}
		ap := sum / float64(len(s.Queries))
		label := "unigrams"
		key := "ap_unigram"
		if bigrams {
			label = "unigrams+bigrams"
			key = "ap_bigram"
		}
		r.addf("%-18s rows=%5d  AP=%.3f", label, coll.Terms(), ap)
		r.metric(key, ap)
		r.metric(key+"_rows", float64(coll.Terms()))
	}
	return r, nil
}

// runNeighbors measures the §5.6 open issue: cosine evaluations vs recall
// for cluster-pruned near-neighbor search over document vectors.
func runNeighbors(seed int64) (*Result, error) {
	r := &Result{ID: "neighbors", Title: "Cluster-pruned nearest-neighbor search over k-space",
		Paper: "efficiently comparing queries to documents — finding near neighbors in high-dimension spaces (§5.6)"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 61, Topics: 16, Docs: 1600, DocLen: 40, QueriesPerTopic: 1,
	})
	m, err := core.BuildCollection(s.Collection, core.Config{K: 32, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	ix, err := neighbors.Build(m.V, neighbors.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	r.addf("documents: %d, clusters: %d", m.NumDocs(), ix.Clusters())
	r.addf("%8s %10s %12s", "probes", "recall@10", "cos-evals")
	for _, probes := range []int{1, 2, 4, 8} {
		var recallSum float64
		var evalSum int
		for _, q := range s.Queries {
			qhat := m.ProjectQuery(s.QueryVector(q.Text))
			exact := neighbors.ExactScan(m.V, qhat, 10)
			approx, evals := ix.Search(qhat, 10, probes)
			recallSum += neighbors.Recall(approx, exact)
			evalSum += evals
		}
		recall := recallSum / float64(len(s.Queries))
		evals := evalSum / len(s.Queries)
		r.addf("%8d %10.3f %12d", probes, recall, evals)
		r.metric(fmt.Sprintf("recall_probes%d", probes), recall)
		r.metric(fmt.Sprintf("evals_probes%d", probes), float64(evals))
	}
	r.metric("docs", float64(m.NumDocs()))
	return r, nil
}

// runAnim3D emits the §4.5 animation's keyframes: the k=3 positions of
// every term and document before the update, after folding-in, and after
// SVD-updating — "all terms and documents are shown moving to the
// positions they would assume if SVD-updating is used."
func runAnim3D(seed int64) (*Result, error) {
	c := corpus.MED()
	folded, err := core.BuildCollection(c, core.Config{K: 3, Method: core.MethodDense})
	if err != nil {
		return nil, err
	}
	updated, err := core.BuildCollection(c, core.Config{K: 3, Method: core.MethodDense})
	if err != nil {
		return nil, err
	}
	d := c.DocVectors(corpus.MEDUpdateTopics)
	folded.FoldInDocs(d)
	if err := updated.UpdateDocs(d); err != nil {
		return nil, err
	}
	r := &Result{ID: "anim3d", Title: "3-D keyframes: folded-in vs SVD-updated positions",
		Paper: "the video shows M15/M16 folded in, then all terms and documents moving to their SVD-updated positions"}
	fc, uc := folded.DocCoords(), updated.DocCoords()
	ids := append([]corpus.Document{}, c.Docs...)
	ids = append(ids, corpus.MEDUpdateTopics...)
	r.addf("%-5s %28s %28s", "doc", "folded (x,y,z)", "updated (x,y,z)")
	var totalMove float64
	for j, doc := range ids {
		r.addf("%-5s (%+.3f, %+.3f, %+.3f)   (%+.3f, %+.3f, %+.3f)",
			doc.ID, fc.At(j, 0), fc.At(j, 1), fc.At(j, 2),
			uc.At(j, 0), uc.At(j, 1), uc.At(j, 2))
		for f := 0; f < 3; f++ {
			totalMove += abs(uc.At(j, f) - fc.At(j, f))
		}
	}
	r.metric("total_doc_movement", totalMove)
	r.metric("folded_orthogonality", folded.DocOrthogonality())
	r.metric("updated_orthogonality", updated.DocOrthogonality())
	return r, nil
}
