package experiments

import (
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/eval"
	"repro/internal/filter"
	"repro/internal/weight"
)

func init() {
	register("weightupdate", "weight-correction phase of SVD-updating (§4.2, Eq 12)", runWeightUpdate)
	register("negfeedback", "negative relevance feedback — the §5.1 unexplored extension", runNegFeedback)
}

// runWeightUpdate exercises the correction step end to end: global term
// weights drift as a collection grows (entropy weights depend on the whole
// row), and Eq (12) folds the difference into the factors without
// recomputing. We compare the corrected model's singular values against a
// full recompute of the reweighted matrix.
func runWeightUpdate(seed int64) (*Result, error) {
	r := &Result{ID: "weightupdate", Title: "Term-weight correction W = A_k + Y_jZ_jᵀ",
		Paper: "the correction step is performed after terms or documents have been SVD-updated and the term weightings of the original matrix have changed"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 7, Topics: 6, Docs: 120, DocLen: 30,
	})
	// Build with raw weighting at full-ish rank so the correction algebra
	// is exact over the perturbation's row/column spaces.
	k := 40
	m, err := core.BuildCollection(s.Collection, core.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	// Reweight the 5 highest-df terms: multiply their rows by 0.5 (an
	// entropy-style down-weighting). Z_j holds (new − old) per document.
	type dfTerm struct{ term, df int }
	var byDF []dfTerm
	for i := 0; i < s.TD.Rows; i++ {
		byDF = append(byDF, dfTerm{i, s.TD.RowNNZ(i)})
	}
	// Selection by df, descending (simple partial sort).
	for i := 0; i < 5; i++ {
		best := i
		for j := i + 1; j < len(byDF); j++ {
			if byDF[j].df > byDF[best].df {
				best = j
			}
		}
		byDF[i], byDF[best] = byDF[best], byDF[i]
	}
	termIdx := []int{byDF[0].term, byDF[1].term, byDF[2].term, byDF[3].term, byDF[4].term}
	z := dense.New(s.Size(), len(termIdx))
	reweighted := dense.NewFromRows(s.TD.Dense())
	for c, ti := range termIdx {
		for j := 0; j < s.Size(); j++ {
			old := reweighted.At(ti, j)
			z.Set(j, c, -0.5*old)
			reweighted.Set(ti, j, 0.5*old)
		}
	}
	if err := m.CorrectWeights(termIdx, z); err != nil {
		return nil, err
	}
	full := dense.SVDJacobi(reweighted).Truncate(m.K)
	worst := 0.0
	for i := range m.S {
		if d := abs(m.S[i]-full.S[i]) / (1 + full.S[0]); d > worst {
			worst = d
		}
	}
	r.addf("reweighted %d terms (×0.5) over %d documents, k=%d", len(termIdx), s.Size(), m.K)
	r.addf("max relative σ error vs recompute: %.2e", worst)
	r.addf("orthogonality after correction: %.2e", m.DocOrthogonality())
	r.metric("max_sigma_error", worst)
	r.metric("orthogonality", m.DocOrthogonality())
	return r, nil
}

// runNegFeedback measures the extension the paper marks unexplored: moving
// the profile away from judged-irrelevant documents.
func runNegFeedback(seed int64) (*Result, error) {
	r := &Result{ID: "negfeedback", Title: "Negative relevance feedback (Rocchio-style, γ sweep)",
		Paper: "\"the use of negative information has not yet been exploited in LSI\" — implemented here as future work"}
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: seed + 71, Topics: 10, Docs: 300, DocLen: 40,
		SynonymsPerConcept: 6, DocVariantLoyalty: 1.0,
		PolysemyFrac: 0.3, QueriesPerTopic: 3, QueryLen: 3,
	})
	m, err := core.BuildCollection(s.Collection, core.Config{K: 20, Scheme: weight.LogEntropy, Seed: seed})
	if err != nil {
		return nil, err
	}
	apFor := func(gamma float64) (float64, error) {
		var rankings [][]int
		var rels []map[int]bool
		for _, q := range s.Queries {
			// Judged irrelevant: the top 3 non-relevant docs of the raw
			// query's ranking — what a user would actually mark.
			relSet := eval.RelevantSet(q.Relevant)
			base := m.Rank(s.QueryVector(q.Text))
			var irrelevant []int
			for _, x := range base {
				if !relSet[x.Doc] {
					irrelevant = append(irrelevant, x.Doc)
				}
				if len(irrelevant) == 3 {
					break
				}
			}
			p, err := filter.NegativeFeedback(m, q.Relevant[:2], irrelevant, gamma)
			if err != nil {
				return 0, err
			}
			ranked := m.RankVector(p.Vector)
			ranking := make([]int, len(ranked))
			for i, x := range ranked {
				ranking[i] = x.Doc
			}
			rankings = append(rankings, ranking)
			rels = append(rels, relSet)
		}
		return eval.MeanAveragePrecision(rankings, rels, nil), nil
	}
	r.addf("%8s %8s", "gamma", "mean AP")
	var ap0 float64
	best := 0.0
	for _, gamma := range []float64{0, 0.25, 0.5, 1.0} {
		ap, err := apFor(gamma)
		if err != nil {
			return nil, err
		}
		r.addf("%8.2f %8.3f", gamma, ap)
		r.metric(metricFloat("ap_gamma", gamma), ap)
		if gamma == 0 {
			ap0 = ap
		}
		if ap > best {
			best = ap
		}
	}
	r.metric("best_ap", best)
	r.metric("ap_positive_only", ap0)
	r.metric("negative_gain", best-ap0)
	return r, nil
}

func metricFloat(prefix string, v float64) string {
	// two-decimal suffix without fmt in the hot path is unnecessary; keep
	// it simple and deterministic.
	return prefix + fixed2(v)
}

func fixed2(v float64) string {
	n := int(v*100 + 0.5)
	digits := []byte{'0' + byte(n/100), '.', '0' + byte((n/10)%10), '0' + byte(n%10)}
	return string(digits)
}
