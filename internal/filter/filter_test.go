package filter

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// fixture builds a small synthetic collection and model.
func fixture(t *testing.T) (*corpus.Synth, *core.Model) {
	t.Helper()
	s := corpus.GenerateSynth(corpus.SynthOptions{
		Seed: 42, Topics: 4, Docs: 60, DocLen: 30, QueriesPerTopic: 1,
	})
	m, err := core.BuildCollection(s.Collection, core.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestFromQueryProfileMatchesOwnTopic(t *testing.T) {
	s, m := fixture(t)
	q := s.Queries[0]
	p := FromQuery(m, s.QueryVector(q.Text), 0.3)
	// Score every original document against the profile; relevant docs
	// should average higher than non-relevant ones.
	rel := map[int]bool{}
	for _, j := range q.Relevant {
		rel[j] = true
	}
	var relSum, irrSum float64
	var relN, irrN int
	for j := range s.Docs {
		score := p.Match(m, s.TD.Col(j))
		if rel[j] {
			relSum += score
			relN++
		} else {
			irrSum += score
			irrN++
		}
	}
	if relSum/float64(relN) <= irrSum/float64(irrN) {
		t.Fatalf("relevant mean %v ≤ irrelevant mean %v",
			relSum/float64(relN), irrSum/float64(irrN))
	}
}

func TestFromRelevantDocsCentroid(t *testing.T) {
	_, m := fixture(t)
	p, err := FromRelevantDocs(m, []int{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for c := range p.Vector {
		want := (m.DocVector(0)[c] + m.DocVector(1)[c]) / 2
		if math.Abs(p.Vector[c]-want) > 1e-12 {
			t.Fatal("centroid wrong")
		}
	}
	if _, err := FromRelevantDocs(m, nil, 0.5); err == nil {
		t.Fatal("expected error for empty doc list")
	}
	if _, err := FromRelevantDocs(m, []int{9999}, 0.5); err == nil {
		t.Fatal("expected error for out-of-range doc")
	}
}

func TestReplaceWithFeedbackVariants(t *testing.T) {
	_, m := fixture(t)
	rel := []int{3, 7, 11, 15}
	p1, err := ReplaceWithFeedback(m, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range p1.Vector {
		if math.Abs(p1.Vector[c]-m.DocVector(3)[c]) > 1e-12 {
			t.Fatal("1-doc feedback should equal the first relevant doc")
		}
	}
	p3, err := ReplaceWithFeedback(m, rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := range p3.Vector {
		want := (m.DocVector(3)[c] + m.DocVector(7)[c] + m.DocVector(11)[c]) / 3
		if math.Abs(p3.Vector[c]-want) > 1e-12 {
			t.Fatal("3-doc feedback centroid wrong")
		}
	}
	// nDocs beyond the list clamps.
	if _, err := ReplaceWithFeedback(m, rel[:2], 5); err != nil {
		t.Fatal(err)
	}
}

func TestStreamThreshold(t *testing.T) {
	s, m := fixture(t)
	q := s.Queries[0]
	p := FromQuery(m, s.QueryVector(q.Text), 0)
	stream := [][]float64{
		s.TD.Col(q.Relevant[0]),
		s.TD.Col(q.Relevant[1]),
	}
	// Threshold 0 recommends everything with non-negative cosine.
	got := p.Stream(m, stream)
	if len(got) == 0 {
		t.Fatal("nothing recommended at threshold 0")
	}
	// Impossible threshold recommends nothing.
	p.Threshold = 1.1
	if got := p.Stream(m, stream); len(got) != 0 {
		t.Fatalf("recommended %v above cosine 1", got)
	}
}

func TestRankStreamOrdering(t *testing.T) {
	s, m := fixture(t)
	q := s.Queries[0]
	p := FromQuery(m, s.QueryVector(q.Text), 0)
	var stream [][]float64
	for j := 0; j < 10; j++ {
		stream = append(stream, s.TD.Col(j))
	}
	order := p.RankStream(m, stream)
	if len(order) != 10 {
		t.Fatalf("rank stream len %d", len(order))
	}
	prev := math.Inf(1)
	for _, i := range order {
		score := p.Match(m, stream[i])
		if score > prev+1e-12 {
			t.Fatal("RankStream not descending")
		}
		prev = score
	}
}

// Relevance feedback improves retrieval over the raw query — the paper's
// +33%/+67% finding, in shape.
func TestFeedbackImprovesRetrieval(t *testing.T) {
	s, m := fixture(t)
	betterCount, total := 0, 0
	for _, q := range s.Queries {
		qProfile := FromQuery(m, s.QueryVector(q.Text), 0)
		fbProfile, err := ReplaceWithFeedback(m, q.Relevant, 3)
		if err != nil {
			t.Fatal(err)
		}
		var stream [][]float64
		rel := map[int]bool{}
		for j := 0; j < s.Size(); j++ {
			stream = append(stream, s.TD.Col(j))
		}
		for _, j := range q.Relevant {
			rel[j] = true
		}
		precAt := func(p *Profile) float64 {
			order := p.RankStream(m, stream)
			hits := 0
			for _, j := range order[:10] {
				if rel[j] {
					hits++
				}
			}
			return float64(hits) / 10
		}
		total++
		if precAt(fbProfile) >= precAt(qProfile) {
			betterCount++
		}
	}
	if betterCount*2 < total {
		t.Fatalf("feedback helped on only %d/%d queries", betterCount, total)
	}
}

func TestNegativeFeedbackMovesAwayFromIrrelevant(t *testing.T) {
	s, m := fixture(t)
	q := s.Queries[0]
	// Irrelevant docs: any docs of a different topic.
	var irrelevant []int
	qTopic := s.DocTopic[q.Relevant[0]]
	for j, topic := range s.DocTopic {
		if topic != qTopic {
			irrelevant = append(irrelevant, j)
		}
		if len(irrelevant) == 5 {
			break
		}
	}
	pos, err := NegativeFeedback(m, q.Relevant[:3], nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := NegativeFeedback(m, q.Relevant[:3], irrelevant, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The negative-feedback profile must score the irrelevant documents
	// lower than the positive-only profile does, while keeping relevant
	// documents high.
	var posIrr, negIrr float64
	for _, j := range irrelevant {
		posIrr += m.Similarity(pos.Vector, j)
		negIrr += m.Similarity(neg.Vector, j)
	}
	if negIrr >= posIrr {
		t.Fatalf("negative feedback did not push away irrelevant docs: %v vs %v", negIrr, posIrr)
	}
	var negRel float64
	for _, j := range q.Relevant[:3] {
		negRel += m.Similarity(neg.Vector, j) / 3
	}
	if negRel < 0.5 {
		t.Fatalf("negative feedback destroyed relevant similarity: %v", negRel)
	}
}

func TestNegativeFeedbackValidation(t *testing.T) {
	_, m := fixture(t)
	if _, err := NegativeFeedback(m, nil, []int{0}, 0.5); err == nil {
		t.Fatal("expected error for empty relevant set")
	}
	if _, err := NegativeFeedback(m, []int{0}, []int{1}, -1); err == nil {
		t.Fatal("expected error for negative gamma")
	}
	// No irrelevant docs degrades to positive-only.
	p, err := NegativeFeedback(m, []int{0, 1}, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := FromRelevantDocs(m, []int{0, 1}, 0)
	for c := range p.Vector {
		if p.Vector[c] != ref.Vector[c] {
			t.Fatal("gamma with no irrelevant docs should be positive-only")
		}
	}
}
