// Package filter implements information filtering over an LSI space
// (§5.3): "a user has a relatively stable long-term interest or profile,
// and new documents are constantly received and matched against this
// standing interest." Profiles are k-space vectors; incoming documents are
// folded in (projected) and recommended when their cosine to the profile
// exceeds a threshold. Relevance feedback (§5.1) improves the profile by
// replacing the query with known-relevant documents — the method whose
// 33%/67% gains the harness reproduces.
package filter

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dense"
)

// Profile is a standing interest vector in the model's k-space.
type Profile struct {
	Vector []float64
	// Threshold is the minimum cosine for a recommendation.
	Threshold float64
}

// FromQuery builds a profile from a raw query term-frequency vector.
func FromQuery(m *core.Model, rawQuery []float64, threshold float64) *Profile {
	return &Profile{Vector: m.ProjectQuery(rawQuery), Threshold: threshold}
}

// FromRelevantDocs builds a profile as the centroid of known-relevant
// document vectors — "the most effective method used vectors derived from
// known relevant documents (like relevance feedback) combined with LSI
// matching" (§5.3).
func FromRelevantDocs(m *core.Model, docIdx []int, threshold float64) (*Profile, error) {
	if len(docIdx) == 0 {
		return nil, fmt.Errorf("filter: no relevant documents supplied")
	}
	v := make([]float64, m.K)
	for _, j := range docIdx {
		if j < 0 || j >= m.NumDocs() {
			return nil, fmt.Errorf("filter: doc index %d out of range %d", j, m.NumDocs())
		}
		dense.Axpy(1, m.DocVector(j), v)
	}
	dense.ScaleVec(1/float64(len(docIdx)), v)
	return &Profile{Vector: v, Threshold: threshold}, nil
}

// ReplaceWithFeedback implements the paper's relevance-feedback rule: the
// query vector is replaced by the vector sum (centroid) of the first nDocs
// documents the user marked relevant. With nDocs=1 this is the "+33%"
// variant, with nDocs=3 the "+67%" variant of §5.1.
func ReplaceWithFeedback(m *core.Model, relevant []int, nDocs int) (*Profile, error) {
	if nDocs <= 0 {
		nDocs = 1
	}
	if nDocs > len(relevant) {
		nDocs = len(relevant)
	}
	return FromRelevantDocs(m, relevant[:nDocs], 0)
}

// NegativeFeedback implements the extension the paper flags as unexplored:
// "the use of negative information has not yet been exploited in LSI; for
// example, by moving the query away from documents which the user has
// indicated are irrelevant" (§5.1). The profile becomes the Rocchio-style
// combination  centroid(relevant) − gamma·centroid(irrelevant).
func NegativeFeedback(m *core.Model, relevant, irrelevant []int, gamma float64) (*Profile, error) {
	pos, err := FromRelevantDocs(m, relevant, 0)
	if err != nil {
		return nil, err
	}
	if len(irrelevant) == 0 || gamma == 0 {
		return pos, nil
	}
	if gamma < 0 {
		return nil, fmt.Errorf("filter: negative gamma %v", gamma)
	}
	neg, err := FromRelevantDocs(m, irrelevant, 0)
	if err != nil {
		return nil, err
	}
	v := append([]float64(nil), pos.Vector...)
	dense.Axpy(-gamma, neg.Vector, v)
	return &Profile{Vector: v}, nil
}

// Match scores one incoming document (raw counts over the model's
// vocabulary) against the profile without mutating the model.
func (p *Profile) Match(m *core.Model, rawDoc []float64) float64 {
	return dense.Cosine(p.Vector, m.ProjectQuery(rawDoc))
}

// Recommend reports whether the incoming document clears the threshold.
func (p *Profile) Recommend(m *core.Model, rawDoc []float64) bool {
	return p.Match(m, rawDoc) >= p.Threshold
}

// Stream filters a batch of incoming documents, returning the indices of
// recommended ones in arrival order — selective dissemination of
// information, in the paper's vocabulary.
func (p *Profile) Stream(m *core.Model, rawDocs [][]float64) []int {
	var out []int
	for i, d := range rawDocs {
		if p.Recommend(m, d) {
			out = append(out, i)
		}
	}
	return out
}

// RankStream scores every incoming document and returns indices sorted by
// descending cosine (for evaluation with ranked metrics).
func (p *Profile) RankStream(m *core.Model, rawDocs [][]float64) []int {
	scores := make([]float64, len(rawDocs))
	for i, d := range rawDocs {
		scores[i] = p.Match(m, d)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] { //lsilint:ignore floatcmp — total-order tie-break needs bit equality
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
