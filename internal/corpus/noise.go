package corpus

import (
	"math/rand"
	"strings"
)

// Corruptor injects OCR-style character noise into text at a configurable
// word error rate, simulating the pen-machine recognizer input of Nielsen
// et al. (§5.4 Noisy Input), whose word-level error rate was 8.8%.
type Corruptor struct {
	// WordErrorRate is the probability a given word is corrupted.
	WordErrorRate float64
	rng           *rand.Rand
}

// NewCorruptor returns a deterministic corruptor with the given word error
// rate in [0, 1].
func NewCorruptor(wordErrorRate float64, seed int64) *Corruptor {
	if wordErrorRate < 0 {
		wordErrorRate = 0
	}
	if wordErrorRate > 1 {
		wordErrorRate = 1
	}
	return &Corruptor{WordErrorRate: wordErrorRate, rng: rand.New(rand.NewSource(seed + 0x0c4))}
}

// CorruptWord applies one random character-level edit (substitution,
// deletion, insertion, or transposition) to w — the signature error classes
// of optical character recognition.
func (c *Corruptor) CorruptWord(w string) string {
	r := []rune(w)
	if len(r) == 0 {
		return w
	}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	pos := c.rng.Intn(len(r))
	switch c.rng.Intn(4) {
	case 0: // substitution (e.g. Dumais → Duniais-style confusion)
		r[pos] = rune(letters[c.rng.Intn(len(letters))])
	case 1: // deletion
		if len(r) > 1 {
			r = append(r[:pos], r[pos+1:]...)
		} else {
			r[pos] = rune(letters[c.rng.Intn(len(letters))])
		}
	case 2: // insertion
		r = append(r[:pos], append([]rune{rune(letters[c.rng.Intn(len(letters))])}, r[pos:]...)...)
	default: // transposition
		if pos+1 < len(r) {
			r[pos], r[pos+1] = r[pos+1], r[pos]
		} else if pos > 0 {
			r[pos-1], r[pos] = r[pos], r[pos-1]
		} else {
			r[pos] = rune(letters[c.rng.Intn(len(letters))])
		}
	}
	return string(r)
}

// CorruptText corrupts each whitespace-separated word independently with
// probability WordErrorRate and returns the noisy text plus the realized
// word error count.
func (c *Corruptor) CorruptText(s string) (string, int) {
	words := strings.Fields(s)
	errors := 0
	for i, w := range words {
		if c.rng.Float64() < c.WordErrorRate {
			words[i] = c.CorruptWord(w)
			errors++
		}
	}
	return strings.Join(words, " "), errors
}

// CorruptDocs returns a corrupted copy of docs and the overall realized
// word error rate.
func (c *Corruptor) CorruptDocs(docs []Document) ([]Document, float64) {
	out := make([]Document, len(docs))
	words, errs := 0, 0
	for i, d := range docs {
		noisy, e := c.CorruptText(d.Text)
		out[i] = Document{ID: d.ID, Text: noisy}
		errs += e
		words += len(strings.Fields(d.Text))
	}
	rate := 0.0
	if words > 0 {
		rate = float64(errs) / float64(words)
	}
	return out, rate
}
