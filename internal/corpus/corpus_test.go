package corpus

import (
	"math"
	"strings"
	"testing"

	"repro/internal/text"
)

func TestMEDVocabularyIsTable3(t *testing.T) {
	c := MED()
	if c.Terms() != 18 || c.Size() != 14 {
		t.Fatalf("MED shape %dx%d want 18x14", c.Terms(), c.Size())
	}
	for i, want := range MEDTerms {
		if c.Vocab.Terms[i] != want {
			t.Fatalf("term %d = %q want %q", i, c.Vocab.Terms[i], want)
		}
	}
}

func TestMEDMatrixMatchesTable3(t *testing.T) {
	c := MED()
	got := c.TD.Dense()
	for i := range MEDMatrix {
		for j := range MEDMatrix[i] {
			if got[i][j] != MEDMatrix[i][j] {
				t.Fatalf("cell (%s, M%d): parsed %v, Table 3 %v",
					MEDTerms[i], j+1, got[i][j], MEDMatrix[i][j])
			}
		}
	}
}

func TestMEDQueryVector(t *testing.T) {
	c := MED()
	q := c.QueryVector(MEDQuery)
	// "of", "children", "with" drop out; age, blood, abnormalities remain.
	var hits []string
	for i, v := range q {
		if v != 0 {
			hits = append(hits, c.Vocab.Terms[i])
		}
	}
	want := "abnormalities age blood"
	if strings.Join(hits, " ") != want {
		t.Fatalf("query terms %v want %q", hits, want)
	}
}

func TestMEDUpdateTopicsVectors(t *testing.T) {
	c := MED()
	d := c.DocVectors(MEDUpdateTopics)
	if d.Rows != 18 || d.Cols != 2 {
		t.Fatalf("D shape %dx%d", d.Rows, d.Cols)
	}
	// M15 "behavior of rats after detected rise in oestrogen":
	// behavior, rats, rise, oestrogen are indexed.
	idx := c.Vocab.Index
	for _, term := range []string{"behavior", "rats", "rise", "oestrogen"} {
		if d.At(idx[term], 0) != 1 {
			t.Fatalf("M15 lacks %q", term)
		}
	}
	// M16 "depressed patients who feel the pressure to fast".
	for _, term := range []string{"depressed", "patients", "pressure", "fast"} {
		if d.At(idx[term], 1) != 1 {
			t.Fatalf("M16 lacks %q", term)
		}
	}
	if d.NNZ() != 8 {
		t.Fatalf("D nnz = %d want 8", d.NNZ())
	}
}

func TestExtendRebuildsVocabulary(t *testing.T) {
	c := MED()
	ext := c.Extend(MEDUpdateTopics, MEDParseOptions())
	if ext.Size() != 16 {
		t.Fatalf("extended size %d", ext.Size())
	}
	// Extending does not change the vocabulary here: M15/M16 reuse words.
	if ext.Terms() != 18 {
		t.Fatalf("extended terms %d", ext.Terms())
	}
	// Original untouched.
	if c.Size() != 14 {
		t.Fatal("Extend mutated the receiver")
	}
}

func TestSynthDeterminism(t *testing.T) {
	a := GenerateSynth(SynthOptions{Seed: 5, Docs: 40, Topics: 4})
	b := GenerateSynth(SynthOptions{Seed: 5, Docs: 40, Topics: 4})
	if a.Size() != b.Size() || a.Terms() != b.Terms() {
		t.Fatal("same seed, different shapes")
	}
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatal("same seed, different documents")
		}
	}
	c := GenerateSynth(SynthOptions{Seed: 6, Docs: 40, Topics: 4})
	same := true
	for i := range a.Docs {
		if a.Docs[i].Text != c.Docs[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSynthStructure(t *testing.T) {
	s := GenerateSynth(SynthOptions{Seed: 1, Docs: 60, Topics: 6, QueriesPerTopic: 2})
	if len(s.Queries) != 12 {
		t.Fatalf("queries = %d", len(s.Queries))
	}
	if len(s.DocTopic) != 60 {
		t.Fatalf("DocTopic len %d", len(s.DocTopic))
	}
	// Every query's relevant docs share its topic.
	for _, q := range s.Queries {
		if len(q.Relevant) == 0 {
			t.Fatalf("query %s has no relevant docs", q.ID)
		}
		topic := s.DocTopic[q.Relevant[0]]
		for _, j := range q.Relevant {
			if s.DocTopic[j] != topic {
				t.Fatalf("query %s mixes topics", q.ID)
			}
		}
	}
	// Balanced topics.
	counts := map[int]int{}
	for _, tp := range s.DocTopic {
		counts[tp]++
	}
	for tp, n := range counts {
		if n != 10 {
			t.Fatalf("topic %d has %d docs", tp, n)
		}
	}
	if len(s.SynonymGroups) == 0 {
		t.Fatal("no synonym groups recorded")
	}
}

func TestSynthMatrixConsistency(t *testing.T) {
	s := GenerateSynth(SynthOptions{Seed: 2, Docs: 30, Topics: 3})
	if s.TD.Rows != s.Terms() || s.TD.Cols != 30 {
		t.Fatalf("TD shape %dx%d", s.TD.Rows, s.TD.Cols)
	}
	// Column sums equal the number of indexed tokens per doc.
	for j := 0; j < 5; j++ {
		var colSum float64
		for i := 0; i < s.TD.Rows; i++ {
			colSum += s.TD.At(i, j)
		}
		cnt := s.Vocab.Count(s.Docs[j].Text)
		var want float64
		for _, v := range cnt {
			want += v
		}
		if colSum != want {
			t.Fatalf("doc %d: TD colsum %v != recount %v", j, colSum, want)
		}
	}
}

func TestBilingualNoLexicalLeakage(t *testing.T) {
	b := GenerateBilingual(BilingualOptions{Seed: 3})
	for _, d := range b.MonoEN {
		if strings.Contains(d.Text, "fr") {
			t.Fatal("EN doc contains FR word")
		}
	}
	for _, q := range b.QueriesEN {
		if strings.Contains(q.Text, "fr") {
			t.Fatal("EN query contains FR word")
		}
	}
	// Dual abstracts contain both.
	found := false
	for _, d := range b.Training.Docs {
		if strings.Contains(d.Text, "en") && strings.Contains(d.Text, "fr") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no dual-language training abstract")
	}
}

func TestBilingualRelevanceIsCrossLanguage(t *testing.T) {
	b := GenerateBilingual(BilingualOptions{Seed: 4})
	for i, q := range b.QueriesEN {
		topic := b.QueryTopicEN[i]
		for _, j := range q.Relevant {
			if b.MonoFRTopic[j] != topic {
				t.Fatal("EN query relevant set crosses topics")
			}
		}
	}
}

func TestCorruptorRate(t *testing.T) {
	docs := make([]Document, 50)
	for i := range docs {
		docs[i] = Document{Text: strings.Repeat("information retrieval latent semantic indexing ", 10)}
	}
	_, rate := NewCorruptor(0.088, 1).CorruptDocs(docs)
	if math.Abs(rate-0.088) > 0.02 {
		t.Fatalf("realized rate %v want ≈0.088", rate)
	}
	clean, rate0 := NewCorruptor(0, 1).CorruptDocs(docs)
	if rate0 != 0 {
		t.Fatal("zero-rate corruptor corrupted something")
	}
	for i := range clean {
		if clean[i].Text != strings.Join(strings.Fields(docs[i].Text), " ") {
			t.Fatal("zero-rate corruptor altered text")
		}
	}
}

func TestCorruptWordEditsOnce(t *testing.T) {
	c := NewCorruptor(1, 2)
	for i := 0; i < 200; i++ {
		w := "semantic"
		got := c.CorruptWord(w)
		// Exactly one edit: length differs by at most 1.
		if d := len(got) - len(w); d < -1 || d > 1 {
			t.Fatalf("corrupt %q -> %q: more than one edit", w, got)
		}
	}
	// Single-letter words survive without panicking.
	if got := c.CorruptWord("a"); got == "" {
		t.Fatal("single-letter word vanished")
	}
	if got := c.CorruptWord(""); got != "" {
		t.Fatal("empty word should pass through")
	}
}

func TestNGramIndex(t *testing.T) {
	ix := NewNGramIndex([]string{"cat", "cart", "dog"})
	if ix.M.Cols != 3 {
		t.Fatalf("cols %d", ix.M.Cols)
	}
	// "^c" gram is shared by cat and cart.
	gid, ok := ix.GramID["^c"]
	if !ok {
		t.Fatal("missing boundary bigram")
	}
	if ix.M.At(gid, 0) != 1 || ix.M.At(gid, 1) != 1 || ix.M.At(gid, 2) != 0 {
		t.Fatal("bigram counts wrong")
	}
	// A misspelling shares most grams with its source word.
	q := ix.QueryVector("catt")
	var catScore, dogScore float64
	for i := range q {
		catScore += q[i] * ix.M.At(i, 0)
		dogScore += q[i] * ix.M.At(i, 2)
	}
	if catScore <= dogScore {
		t.Fatalf("catt should overlap cat (%v) more than dog (%v)", catScore, dogScore)
	}
}

func TestWordGramsBoundaries(t *testing.T) {
	g := wordGrams("ab")
	// ^a ab b$ ^ab ab$
	want := map[string]bool{"^a": true, "ab": true, "b$": true, "^ab": true, "ab$": true}
	if len(g) != len(want) {
		t.Fatalf("grams %v", g)
	}
	for _, x := range g {
		if !want[x] {
			t.Fatalf("unexpected gram %q", x)
		}
	}
}

func TestNewCollectionEmptyDocs(t *testing.T) {
	c := New(nil, text.ParseOptions{})
	if c.Size() != 0 || c.Terms() != 0 {
		t.Fatal("empty collection should be empty")
	}
}

func TestMultilingualStructure(t *testing.T) {
	ml := GenerateMultilingual(MultilingualOptions{Seed: 5})
	if len(ml.Languages) != 3 {
		t.Fatalf("languages %v", ml.Languages)
	}
	if ml.Training.Size() != 90 {
		t.Fatalf("training size %d", ml.Training.Size())
	}
	for _, lang := range ml.Languages {
		if len(ml.Mono[lang]) != 30 || len(ml.MonoTopic[lang]) != 30 {
			t.Fatalf("%s mono docs %d", lang, len(ml.Mono[lang]))
		}
		if len(ml.Queries[lang]) != 6 {
			t.Fatalf("%s queries %d", lang, len(ml.Queries[lang]))
		}
	}
	// Combined abstracts contain every language's words.
	first := ml.Training.Docs[0].Text
	for _, lang := range ml.Languages {
		if !strings.Contains(first, lang+"t") {
			t.Fatalf("combined abstract lacks %s words", lang)
		}
	}
}

func TestMultilingualDeterminism(t *testing.T) {
	a := GenerateMultilingual(MultilingualOptions{Seed: 6})
	b := GenerateMultilingual(MultilingualOptions{Seed: 6})
	for i := range a.Training.Docs {
		if a.Training.Docs[i].Text != b.Training.Docs[i].Text {
			t.Fatal("same seed, different corpora")
		}
	}
}

func TestZipfNoiseSkewsFrequencies(t *testing.T) {
	uniform := GenerateSynth(SynthOptions{
		Seed: 7, Topics: 4, Docs: 100, DocLen: 50, NoiseFrac: 0.6, NoiseWords: 20,
	})
	zipf := GenerateSynth(SynthOptions{
		Seed: 7, Topics: 4, Docs: 100, DocLen: 50, NoiseFrac: 0.6, NoiseWords: 20,
		NoiseZipf: true,
	})
	// Measure the max/median noise-word global frequency ratio.
	skew := func(s *Synth) float64 {
		var freqs []float64
		for i, term := range s.Vocab.Terms {
			if strings.HasPrefix(term, "noise") {
				var gf float64
				s.TD.Row(i, func(_ int, v float64) { gf += v })
				freqs = append(freqs, gf)
				_ = i
			}
		}
		if len(freqs) < 2 {
			t.Fatal("no noise words indexed")
		}
		max, sum := 0.0, 0.0
		for _, f := range freqs {
			if f > max {
				max = f
			}
			sum += f
		}
		return max / (sum / float64(len(freqs)))
	}
	if su, sz := skew(uniform), skew(zipf); sz < 2*su {
		t.Fatalf("zipf skew %v should far exceed uniform skew %v", sz, su)
	}
}

func TestNoiseBurstRepeatsWords(t *testing.T) {
	burst := GenerateSynth(SynthOptions{
		Seed: 8, Topics: 4, Docs: 50, DocLen: 40, NoiseFrac: 0.5, NoiseBurst: 6,
	})
	// With bursts, some document must contain the same noise word 3+ times.
	found := false
	for _, d := range burst.Docs {
		counts := map[string]int{}
		for _, w := range strings.Fields(d.Text) {
			if strings.HasPrefix(w, "noise") {
				counts[w]++
				if counts[w] >= 3 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no bursty repetition observed")
	}
	// Document length is respected.
	for _, d := range burst.Docs {
		if n := len(strings.Fields(d.Text)); n != 40 {
			t.Fatalf("doc length %d want 40", n)
		}
	}
}

// TestSubsetSharesVocabAndExtractsColumns: a round-robin Subset keeps
// the global vocabulary (same pointer), the selected docs in order, and
// TD columns equal to the parent's.
func TestSubsetSharesVocabAndExtractsColumns(t *testing.T) {
	c := MED()
	idx := []int{1, 4, 7, 10, 13}
	s := c.Subset(idx)
	if s.Vocab != c.Vocab {
		t.Fatal("Subset rebuilt the vocabulary")
	}
	if s.ParseOptions().MinDocs != c.ParseOptions().MinDocs {
		t.Fatal("Subset dropped parse options")
	}
	if s.Size() != len(idx) || s.Terms() != c.Terms() {
		t.Fatalf("Subset shape %dx%d want %dx%d", s.Terms(), s.Size(), c.Terms(), len(idx))
	}
	parent := c.TD.Dense()
	sub := s.TD.Dense()
	for r, j := range idx {
		if s.Docs[r].ID != c.Docs[j].ID {
			t.Fatalf("doc %d = %q want %q", r, s.Docs[r].ID, c.Docs[j].ID)
		}
		for i := 0; i < c.Terms(); i++ {
			if sub[i][r] != parent[i][j] {
				t.Fatalf("TD(%d,%d) = %v want parent (%d,%d) = %v", i, r, sub[i][r], i, j, parent[i][j])
			}
		}
	}
	// Empty subset is well-formed.
	e := c.Subset(nil)
	if e.Size() != 0 || e.Terms() != c.Terms() {
		t.Fatalf("empty subset shape %dx%d", e.Terms(), e.Size())
	}
}
