package corpus

import "repro/internal/text"

// MEDTopics are the 14 medical topics of Table 2, drawn from the MEDLINE
// testbed of 1033 biomedical abstracts. The keyword tagging in the paper
// folds the plural "cultures" (topic M8) into the keyword "culture"; the
// MEDParseOptions alias reproduces that.
var MEDTopics = []Document{
	{ID: "M1", Text: "study of depressed patients after discharge with regard to age of onset and culture"},
	{ID: "M2", Text: "culture of pleuropneumonia like organisms found in vaginal discharge of patients"},
	{ID: "M3", Text: "study showed oestrogen production is depressed by ovarian irradiation"},
	{ID: "M4", Text: "cortisone rapidly depressed the secondary rise in oestrogen output of patients"},
	{ID: "M5", Text: "boys tend to react to death anxiety by acting out behavior while girls tended to become depressed"},
	{ID: "M6", Text: "changes in children's behavior following hospitalization studied a week after discharge"},
	{ID: "M7", Text: "surgical technique to close ventricular septal defects"},
	{ID: "M8", Text: "chromosomal abnormalities in blood cultures and bone marrow from leukaemic patients"},
	{ID: "M9", Text: "study of christmas disease with respect to generation and culture"},
	{ID: "M10", Text: "insulin not responsible for metabolic abnormalities accompanying a prolonged fast"},
	{ID: "M11", Text: "close relationship between high blood pressure and vascular disease"},
	{ID: "M12", Text: "mouse kidneys show a decline with respect to age in the ability to concentrate the urine during a water fast"},
	{ID: "M13", Text: "fast cell generation in the eye lens epithelium of rats"},
	{ID: "M14", Text: "fast rise of cerebral oxygen pressure in rats"},
}

// MEDUpdateTopics are the two fictitious topics of Table 5 used by the
// folding-in and SVD-updating examples. M15 pairs oestrogen/rise with rats;
// M16 uses "pressure" in a behavioural rather than circulatory sense.
var MEDUpdateTopics = []Document{
	{ID: "M15", Text: "behavior of rats after detected rise in oestrogen"},
	{ID: "M16", Text: "depressed patients who feel the pressure to fast"},
}

// MEDQuery is the §3.1 example query; after stop-word removal it reduces to
// "age blood abnormalities".
const MEDQuery = "age of children with blood abnormalities"

// MEDParseOptions reproduce the paper's parsing rule: a keyword must occur
// in more than one topic, and "cultures" folds into "culture".
func MEDParseOptions() text.ParseOptions {
	return text.ParseOptions{
		MinDocs: 2,
		Aliases: map[string]string{"cultures": "culture"},
	}
}

// MED returns the 18-term × 14-document collection of Tables 2–3.
func MED() *Collection {
	return New(MEDTopics, MEDParseOptions())
}

// MEDTerms is the expected 18-term vocabulary of Table 3, in the sorted
// order the index produces. Note: the row the supplied scan of Table 3
// shows for "respect" places its first occurrence in column M8; the topic
// texts of Table 2 put "respect" in M9 and M12 (M8 contains no such word),
// so this reproduction follows the texts. Figure 5's printed U₂ values
// confirm the text-derived matrix (see the golden test in internal/core).
var MEDTerms = []string{
	"abnormalities", "age", "behavior", "blood", "close", "culture",
	"depressed", "discharge", "disease", "fast", "generation", "oestrogen",
	"patients", "pressure", "rats", "respect", "rise", "study",
}

// MEDMatrix is Table 3: the 18×14 raw term–document matrix, rows in
// MEDTerms order, columns M1..M14.
var MEDMatrix = [][]float64{
	{0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0}, // abnormalities
	{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0}, // age
	{0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}, // behavior
	{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0}, // blood
	{0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0}, // close
	{1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0}, // culture
	{1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // depressed
	{1, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}, // discharge
	{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0}, // disease
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1}, // fast
	{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0}, // generation
	{0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // oestrogen
	{1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}, // patients
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1}, // pressure
	{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1}, // rats
	{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0}, // respect
	{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, // rise
	{1, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0}, // study
}
