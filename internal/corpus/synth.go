package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/text"
)

// SynthOptions parameterizes the synthetic topic-model collection that
// stands in for the paper's proprietary test collections. Documents are
// generated from latent topics; each topic's concepts have several
// interchangeable surface words (synonyms), and each document commits to
// one variant per concept — so two documents about the same topic often
// share few literal words, the vocabulary-mismatch regime where "LSI
// performs best relative to standard vector methods" (§5.1).
type SynthOptions struct {
	Seed int64
	// Topics is the number of latent topics (default 10).
	Topics int
	// ConceptsPerTopic is the number of concept slots per topic (default 8).
	ConceptsPerTopic int
	// SynonymsPerConcept is the number of interchangeable surface words per
	// concept (default 3). 1 disables synonymy entirely.
	SynonymsPerConcept int
	// PolysemyFrac is the fraction of concepts whose surface words are
	// shared verbatim with a second topic (default 0.1) — the "polysemy"
	// failure mode of lexical matching.
	PolysemyFrac float64
	// Docs is the number of documents (default 200).
	Docs int
	// DocLen is the token count per document (default 40).
	DocLen int
	// NoiseWords is the size of the shared topic-neutral vocabulary
	// (default 30); NoiseFrac of each document's tokens draw from it
	// (default 0.3).
	NoiseWords int
	NoiseFrac  float64
	// NoiseZipf draws noise words from a 1/rank (Zipf-like) distribution
	// instead of uniformly, and NoiseBurst > 1 emits each chosen noise word
	// in runs of up to that many repetitions — together these produce the
	// bursty high-frequency function words whose damping is exactly what
	// local log weighting and global entropy weighting exist for (§5.1).
	NoiseZipf  bool
	NoiseBurst int
	// QueriesPerTopic is the number of relevance-judged queries generated
	// per topic (default 2); QueryLen is their token count (default 6).
	QueriesPerTopic int
	QueryLen        int
	// DocVariantLoyalty is the probability a document re-uses its chosen
	// synonym variant for a concept rather than sampling uniformly
	// (default 0.9). High loyalty ⇒ strong vocabulary mismatch across
	// documents of the same topic.
	DocVariantLoyalty float64
}

func (o *SynthOptions) fill() {
	if o.Topics <= 0 {
		o.Topics = 10
	}
	if o.ConceptsPerTopic <= 0 {
		o.ConceptsPerTopic = 8
	}
	if o.SynonymsPerConcept <= 0 {
		o.SynonymsPerConcept = 3
	}
	if o.PolysemyFrac < 0 {
		o.PolysemyFrac = 0
	} else if o.PolysemyFrac == 0 {
		o.PolysemyFrac = 0.1
	}
	if o.Docs <= 0 {
		o.Docs = 200
	}
	if o.DocLen <= 0 {
		o.DocLen = 40
	}
	if o.NoiseWords <= 0 {
		o.NoiseWords = 30
	}
	if o.NoiseFrac <= 0 {
		o.NoiseFrac = 0.3
	}
	if o.QueriesPerTopic <= 0 {
		o.QueriesPerTopic = 2
	}
	if o.QueryLen <= 0 {
		o.QueryLen = 6
	}
	if o.NoiseBurst <= 0 {
		o.NoiseBurst = 1
	}
	if o.DocVariantLoyalty <= 0 {
		o.DocVariantLoyalty = 0.9
	}
}

// Synth is a generated judged collection plus its generation ground truth.
type Synth struct {
	*Judged
	// DocTopic[j] is the latent topic of document j.
	DocTopic []int
	// SynonymGroups lists the surface-word groups that were generated as
	// interchangeable — ground truth for the synonym test of §5.4.
	SynonymGroups [][]string
	Options       SynthOptions
}

// concept is one latent meaning slot with its interchangeable surfaces.
type concept struct {
	words []string
}

// GenerateSynth builds a synthetic judged collection. All randomness flows
// from Options.Seed, so a given option set is fully reproducible.
func GenerateSynth(opts SynthOptions) *Synth {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed + 0xc0ffee))

	// Build topics: each a list of concepts, each concept a synonym group.
	topics := make([][]concept, opts.Topics)
	var groups [][]string
	wordID := 0
	newWord := func(prefix string) string {
		wordID++
		return fmt.Sprintf("%s%04d", prefix, wordID)
	}
	for t := range topics {
		topics[t] = make([]concept, opts.ConceptsPerTopic)
		for c := range topics[t] {
			words := make([]string, opts.SynonymsPerConcept)
			for v := range words {
				words[v] = newWord(fmt.Sprintf("t%02dc%02dw", t, c))
			}
			topics[t][c] = concept{words: words}
			if len(words) > 1 {
				groups = append(groups, words)
			}
		}
	}
	// Polysemy: overwrite a fraction of concepts in each topic with the
	// surface words of a concept from another topic (same strings, two
	// meanings).
	if opts.Topics > 1 {
		nPoly := int(opts.PolysemyFrac * float64(opts.ConceptsPerTopic))
		for t := range topics {
			for p := 0; p < nPoly; p++ {
				other := rng.Intn(opts.Topics - 1)
				if other >= t {
					other++
				}
				src := rng.Intn(opts.ConceptsPerTopic)
				dst := rng.Intn(opts.ConceptsPerTopic)
				topics[t][dst] = topics[other][src]
			}
		}
	}
	noise := make([]string, opts.NoiseWords)
	for i := range noise {
		noise[i] = newWord("noise")
	}
	// Cumulative 1/rank weights for Zipf-like noise selection.
	zipfCum := make([]float64, len(noise))
	total := 0.0
	for i := range noise {
		total += 1 / float64(i+1)
		zipfCum[i] = total
	}
	pickNoise := func() string {
		if !opts.NoiseZipf {
			return noise[rng.Intn(len(noise))]
		}
		x := rng.Float64() * total
		for i, c := range zipfCum {
			if x <= c {
				return noise[i]
			}
		}
		return noise[len(noise)-1]
	}

	// Documents.
	docs := make([]Document, opts.Docs)
	docTopic := make([]int, opts.Docs)
	for j := range docs {
		t := j % opts.Topics // balanced assignment
		docTopic[j] = t
		// Per-document preferred variant for every concept.
		pref := make([]int, opts.ConceptsPerTopic)
		for c := range pref {
			pref[c] = rng.Intn(opts.SynonymsPerConcept)
		}
		toks := make([]string, 0, opts.DocLen)
		for w := 0; w < opts.DocLen; w++ {
			if rng.Float64() < opts.NoiseFrac {
				word := pickNoise()
				burst := 1
				if opts.NoiseBurst > 1 {
					burst = 1 + rng.Intn(opts.NoiseBurst)
				}
				for b := 0; b < burst && w < opts.DocLen; b++ {
					toks = append(toks, word)
					w++
				}
				w--
				continue
			}
			c := rng.Intn(opts.ConceptsPerTopic)
			v := pref[c]
			if rng.Float64() >= opts.DocVariantLoyalty {
				v = rng.Intn(opts.SynonymsPerConcept)
			}
			toks = append(toks, topics[t][c].words[v])
		}
		docs[j] = Document{ID: fmt.Sprintf("D%04d", j), Text: joinTokens(toks)}
	}

	coll := New(docs, text.ParseOptions{MinDocs: 2})

	// Queries: sample concepts from a topic with uniformly random variant
	// choice — a query author does not know which synonym the documents
	// prefer. Every document of the topic is relevant.
	var queries []Query
	relByTopic := make([][]int, opts.Topics)
	for j, t := range docTopic {
		relByTopic[t] = append(relByTopic[t], j)
	}
	for t := 0; t < opts.Topics; t++ {
		for qn := 0; qn < opts.QueriesPerTopic; qn++ {
			toks := make([]string, opts.QueryLen)
			for w := range toks {
				c := rng.Intn(opts.ConceptsPerTopic)
				toks[w] = topics[t][c].words[rng.Intn(opts.SynonymsPerConcept)]
			}
			queries = append(queries, Query{
				ID:       fmt.Sprintf("Q%02d-%d", t, qn),
				Text:     joinTokens(toks),
				Relevant: append([]int(nil), relByTopic[t]...),
			})
		}
	}

	return &Synth{
		Judged:        &Judged{Collection: coll, Queries: queries},
		DocTopic:      docTopic,
		SynonymGroups: groups,
		Options:       opts,
	}
}

func joinTokens(toks []string) string {
	n := 0
	for _, t := range toks {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range toks {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
