package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/text"
)

// BilingualOptions parameterizes the synthetic paired-abstract corpus that
// stands in for the French/English Hansard abstracts of Landauer & Littman
// (§5.4 Cross-Language Retrieval). Every concept has one surface word per
// language; "dual" training abstracts contain both versions, exactly the
// combined-abstract construction the paper describes.
type BilingualOptions struct {
	Seed             int64
	Topics           int // default 8
	ConceptsPerTopic int // default 10
	// TrainingDocs is the number of dual-language abstracts the joint space
	// is trained on (default 120).
	TrainingDocs int
	// MonoDocs is the number of monolingual documents per language folded in
	// afterwards (default 60 each).
	MonoDocs int
	DocLen   int // tokens per monolingual half (default 30)
	Queries  int // per language (default 10)
	QueryLen int // default 6
}

func (o *BilingualOptions) fill() {
	if o.Topics <= 0 {
		o.Topics = 8
	}
	if o.ConceptsPerTopic <= 0 {
		o.ConceptsPerTopic = 10
	}
	if o.TrainingDocs <= 0 {
		o.TrainingDocs = 120
	}
	if o.MonoDocs <= 0 {
		o.MonoDocs = 60
	}
	if o.DocLen <= 0 {
		o.DocLen = 30
	}
	if o.Queries <= 0 {
		o.Queries = 10
	}
	if o.QueryLen <= 0 {
		o.QueryLen = 6
	}
}

// Bilingual is a generated cross-language benchmark.
type Bilingual struct {
	// Training is the collection of dual-language combined abstracts the
	// joint LSI space is computed from.
	Training *Collection
	// MonoEN and MonoFR are monolingual documents (one topic each) to be
	// folded into the joint space.
	MonoEN, MonoFR []Document
	// MonoENTopic and MonoFRTopic give each monolingual doc's topic.
	MonoENTopic, MonoFRTopic []int
	// QueriesEN and QueriesFR are monolingual queries; relevance is
	// topic-level: a query is relevant to every mono document of its topic
	// in the *other* language.
	QueriesEN, QueriesFR []Query
	// QueryTopicEN/FR give each query's topic.
	QueryTopicEN, QueryTopicFR []int
	Options                    BilingualOptions
}

// GenerateBilingual builds the benchmark. English surfaces are "en…" words,
// French surfaces "fr…" words; the generator guarantees no string is shared
// between languages, so any cross-language retrieval success is due to the
// latent space, never lexical overlap.
func GenerateBilingual(opts BilingualOptions) *Bilingual {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed + 0xb111))

	type biconcept struct{ en, fr string }
	topics := make([][]biconcept, opts.Topics)
	id := 0
	for t := range topics {
		topics[t] = make([]biconcept, opts.ConceptsPerTopic)
		for c := range topics[t] {
			id++
			topics[t][c] = biconcept{
				en: fmt.Sprintf("en%05d", id),
				fr: fmt.Sprintf("fr%05d", id),
			}
		}
	}

	sampleTokens := func(t int, n int, lang string) []string {
		toks := make([]string, n)
		for i := range toks {
			c := topics[t][rng.Intn(opts.ConceptsPerTopic)]
			if lang == "en" {
				toks[i] = c.en
			} else {
				toks[i] = c.fr
			}
		}
		return toks
	}

	// Dual training abstracts: EN half + FR half about the same topic.
	train := make([]Document, opts.TrainingDocs)
	for j := range train {
		t := j % opts.Topics
		toks := append(sampleTokens(t, opts.DocLen, "en"), sampleTokens(t, opts.DocLen, "fr")...)
		train[j] = Document{ID: fmt.Sprintf("DUAL%04d", j), Text: joinTokens(toks)}
	}
	training := New(train, text.ParseOptions{MinDocs: 2})

	mono := func(lang string) ([]Document, []int) {
		docs := make([]Document, opts.MonoDocs)
		tops := make([]int, opts.MonoDocs)
		for j := range docs {
			t := j % opts.Topics
			tops[j] = t
			docs[j] = Document{
				ID:   fmt.Sprintf("%s%04d", lang, j),
				Text: joinTokens(sampleTokens(t, opts.DocLen, lang)),
			}
		}
		return docs, tops
	}
	monoEN, topEN := mono("en")
	monoFR, topFR := mono("fr")

	queries := func(lang string, otherTopics []int) ([]Query, []int) {
		qs := make([]Query, opts.Queries)
		qt := make([]int, opts.Queries)
		for i := range qs {
			t := i % opts.Topics
			qt[i] = t
			var rel []int
			for j, dt := range otherTopics {
				if dt == t {
					rel = append(rel, j)
				}
			}
			qs[i] = Query{
				ID:       fmt.Sprintf("Q%s%02d", lang, i),
				Text:     joinTokens(sampleTokens(t, opts.QueryLen, lang)),
				Relevant: rel,
			}
		}
		return qs, qt
	}
	qEN, qtEN := queries("en", topFR) // EN queries judged against FR docs
	qFR, qtFR := queries("fr", topEN)

	return &Bilingual{
		Training:     training,
		MonoEN:       monoEN,
		MonoFR:       monoFR,
		MonoENTopic:  topEN,
		MonoFRTopic:  topFR,
		QueriesEN:    qEN,
		QueriesFR:    qFR,
		QueryTopicEN: qtEN,
		QueryTopicFR: qtFR,
		Options:      opts,
	}
}
