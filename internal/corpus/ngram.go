package corpus

import (
	"sort"

	"repro/internal/sparse"
)

// NGramIndex is the descriptor–object matrix of Kukich's spelling
// application (§5.4): "the rows were unigrams and bigrams and the columns
// were correctly spelled words." This implementation uses character bigrams
// and trigrams (with boundary markers) as the descriptors; it demonstrates
// the paper's point that LSI applies to any descriptor–object matrix, not
// just terms × documents.
type NGramIndex struct {
	Words  []string
	Grams  []string
	GramID map[string]int
	// M is the grams×words count matrix.
	M *sparse.CSR
}

// wordGrams returns the padded character bigrams and trigrams of w.
func wordGrams(w string) []string {
	padded := "^" + w + "$"
	r := []rune(padded)
	var out []string
	for i := 0; i+1 < len(r); i++ {
		out = append(out, string(r[i:i+2]))
	}
	for i := 0; i+2 < len(r); i++ {
		out = append(out, string(r[i:i+3]))
	}
	return out
}

// NewNGramIndex builds the gram×word matrix over a dictionary.
func NewNGramIndex(words []string) *NGramIndex {
	gramSet := map[string]bool{}
	for _, w := range words {
		for _, g := range wordGrams(w) {
			gramSet[g] = true
		}
	}
	grams := make([]string, 0, len(gramSet))
	for g := range gramSet {
		grams = append(grams, g)
	}
	sort.Strings(grams)
	gid := make(map[string]int, len(grams))
	for i, g := range grams {
		gid[g] = i
	}
	b := sparse.NewBuilder(len(grams), len(words))
	for j, w := range words {
		for _, g := range wordGrams(w) {
			b.Add(gid[g], j, 1)
		}
	}
	return &NGramIndex{Words: words, Grams: grams, GramID: gid, M: b.Build()}
}

// QueryVector returns the gram-count vector of an input word (possibly
// misspelled); grams unseen in the dictionary are dropped, mirroring how
// unindexed terms drop out of document queries.
func (ix *NGramIndex) QueryVector(w string) []float64 {
	out := make([]float64, len(ix.Grams))
	for _, g := range wordGrams(w) {
		if i, ok := ix.GramID[g]; ok {
			out[i]++
		}
	}
	return out
}
