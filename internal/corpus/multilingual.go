package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/text"
)

// MultilingualOptions parameterizes an N-language joint corpus. §5.4 notes
// the method "has shown almost as good results for retrieving English
// abstracts and Japanese Kanji ideographs, and for multilingual
// translations (English and Greek) of the Bible" — i.e. nothing in the
// construction is pairwise; this generator builds combined abstracts
// containing all languages at once.
type MultilingualOptions struct {
	Seed int64
	// Languages are the language tags (each becomes a surface-word prefix);
	// default {"en", "fr", "el"}.
	Languages        []string
	Topics           int // default 6
	ConceptsPerTopic int // default 10
	TrainingDocs     int // default 90 combined abstracts
	MonoDocsPerLang  int // default 30
	DocLen           int // tokens per language section (default 25)
	QueriesPerLang   int // default 6
	QueryLen         int // default 5
}

func (o *MultilingualOptions) fill() {
	if len(o.Languages) == 0 {
		o.Languages = []string{"en", "fr", "el"}
	}
	if o.Topics <= 0 {
		o.Topics = 6
	}
	if o.ConceptsPerTopic <= 0 {
		o.ConceptsPerTopic = 10
	}
	if o.TrainingDocs <= 0 {
		o.TrainingDocs = 90
	}
	if o.MonoDocsPerLang <= 0 {
		o.MonoDocsPerLang = 30
	}
	if o.DocLen <= 0 {
		o.DocLen = 25
	}
	if o.QueriesPerLang <= 0 {
		o.QueriesPerLang = 6
	}
	if o.QueryLen <= 0 {
		o.QueryLen = 5
	}
}

// Multilingual is the generated N-language benchmark.
type Multilingual struct {
	Languages []string
	// Training holds the combined abstracts (every language's rendering of
	// the same topic concatenated), the joint space's training set.
	Training *Collection
	// Mono[lang] are monolingual documents; MonoTopic[lang] their topics.
	Mono      map[string][]Document
	MonoTopic map[string][]int
	// Queries[lang] are monolingual queries; QueryTopic[lang] their topics.
	Queries    map[string][]string
	QueryTopic map[string][]int
	Options    MultilingualOptions
}

// GenerateMultilingual builds the benchmark; languages share no surface
// strings, so all cross-language structure comes from the combined
// abstracts.
func GenerateMultilingual(opts MultilingualOptions) *Multilingual {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed + 0x3149))

	// concept c of topic t has one word per language.
	word := func(lang string, t, c int) string {
		return fmt.Sprintf("%st%02dc%02d", lang, t, c)
	}
	sample := func(lang string, t, n int) []string {
		toks := make([]string, n)
		for i := range toks {
			toks[i] = word(lang, t, rng.Intn(opts.ConceptsPerTopic))
		}
		return toks
	}

	train := make([]Document, opts.TrainingDocs)
	for j := range train {
		t := j % opts.Topics
		var toks []string
		for _, lang := range opts.Languages {
			toks = append(toks, sample(lang, t, opts.DocLen)...)
		}
		train[j] = Document{ID: fmt.Sprintf("MULTI%04d", j), Text: joinTokens(toks)}
	}
	training := New(train, text.ParseOptions{MinDocs: 2})

	mono := map[string][]Document{}
	monoTopic := map[string][]int{}
	queries := map[string][]string{}
	queryTopic := map[string][]int{}
	for _, lang := range opts.Languages {
		docs := make([]Document, opts.MonoDocsPerLang)
		tops := make([]int, opts.MonoDocsPerLang)
		for j := range docs {
			t := j % opts.Topics
			tops[j] = t
			docs[j] = Document{
				ID:   fmt.Sprintf("%s%04d", lang, j),
				Text: joinTokens(sample(lang, t, opts.DocLen)),
			}
		}
		mono[lang] = docs
		monoTopic[lang] = tops
		qs := make([]string, opts.QueriesPerLang)
		qt := make([]int, opts.QueriesPerLang)
		for i := range qs {
			t := i % opts.Topics
			qt[i] = t
			qs[i] = joinTokens(sample(lang, t, opts.QueryLen))
		}
		queries[lang] = qs
		queryTopic[lang] = qt
	}
	return &Multilingual{
		Languages:  opts.Languages,
		Training:   training,
		Mono:       mono,
		MonoTopic:  monoTopic,
		Queries:    queries,
		QueryTopic: queryTopic,
		Options:    opts,
	}
}
