// Package corpus supplies the document collections the experiments run on:
// the paper's §3 MEDLINE example verbatim, and synthetic generators that
// stand in for the proprietary test collections (MED, encyclopedia, TREC,
// TOEFL, bilingual Hansards, OCR data) with the same statistical structure —
// latent topics expressed through variable word choice, which is exactly
// the phenomenon ("synonymy … polysemy", §1) LSI exists to model.
package corpus

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/text"
)

// Document is one text object with a stable identifier.
type Document struct {
	ID   string
	Text string
}

// Collection couples documents with their vocabulary and the raw
// term–document count matrix A of Eq (4): element (i,j) is the frequency of
// term i in document j.
type Collection struct {
	Docs  []Document
	Vocab *text.Vocabulary
	// TD is the m×n raw count matrix (m = Vocab.Size(), n = len(Docs)).
	TD   *sparse.CSR
	opts text.ParseOptions
}

// New builds a Collection from documents under the given parsing options.
func New(docs []Document, opts text.ParseOptions) *Collection {
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	vocab := text.BuildVocabulary(texts, opts)
	b := sparse.NewBuilder(vocab.Size(), len(docs))
	for j, d := range docs {
		for i, f := range vocab.Count(d.Text) {
			if f != 0 {
				b.Add(i, j, f)
			}
		}
	}
	return &Collection{Docs: docs, Vocab: vocab, TD: b.Build(), opts: opts}
}

// ParseOptions returns the options the collection was parsed with (useful
// for persisting and for extending with the same rules).
func (c *Collection) ParseOptions() text.ParseOptions { return c.opts }

// Restore rebuilds a Collection against an already-fixed vocabulary —
// the snapshot-restore constructor. Where New derives the vocabulary
// from the documents (document-frequency filtering and all), Restore
// takes it as given and only re-extracts the count matrix, one linear
// parse per document: cheap next to the SVD the snapshot exists to
// avoid, and exact — counting is deterministic, so TD is bit-identical
// to what the original process held.
func Restore(docs []Document, vocab *text.Vocabulary, opts text.ParseOptions) *Collection {
	b := sparse.NewBuilder(vocab.Size(), len(docs))
	for j, d := range docs {
		for i, f := range vocab.Count(d.Text) {
			if f != 0 {
				b.Add(i, j, f)
			}
		}
	}
	return &Collection{Docs: docs, Vocab: vocab, TD: b.Build(), opts: opts}
}

// Terms returns the number of indexing terms (m).
func (c *Collection) Terms() int { return c.Vocab.Size() }

// Size returns the number of documents (n).
func (c *Collection) Size() int { return len(c.Docs) }

// QueryVector returns the raw term-frequency vector for a query string
// under the collection's vocabulary; non-indexed words are dropped, as the
// paper drops "of", "children", "with" from the §3.1 example query.
func (c *Collection) QueryVector(q string) []float64 {
	return c.Vocab.Count(q)
}

// DocVectors builds the raw count matrix for additional documents under
// the existing vocabulary — the D (m×p) matrix of Eq (10) used by both
// folding-in and SVD-updating.
func (c *Collection) DocVectors(docs []Document) *sparse.CSR {
	b := sparse.NewBuilder(c.Terms(), len(docs))
	for j, d := range docs {
		for i, f := range c.Vocab.Count(d.Text) {
			if f != 0 {
				b.Add(i, j, f)
			}
		}
	}
	return b.Build()
}

// Subset returns a Collection over the documents idx (kept in the given
// order) sharing the receiver's vocabulary and parsing options — the
// shard constructor: the vocabulary stays global so every shard parses,
// weights and projects identically, while documents are local. TD
// columns are re-extracted from the parent matrix in one O(nnz) pass.
func (c *Collection) Subset(idx []int) *Collection {
	docs := make([]Document, len(idx))
	pos := make([]int, c.Size())
	for j := range pos {
		pos[j] = -1
	}
	for r, j := range idx {
		docs[r] = c.Docs[j]
		pos[j] = r
	}
	b := sparse.NewBuilder(c.Terms(), len(idx))
	for i := 0; i < c.TD.Rows; i++ {
		c.TD.Row(i, func(j int, v float64) {
			if r := pos[j]; r >= 0 {
				b.Add(i, r, v)
			}
		})
	}
	return &Collection{Docs: docs, Vocab: c.Vocab, TD: b.Build(), opts: c.opts}
}

// Extend returns a new Collection over the union of documents with a
// vocabulary rebuilt under the same parsing options — the "recomputing the
// SVD" path of §3.4, which lets new terms join the index.
func (c *Collection) Extend(docs []Document, opts text.ParseOptions) *Collection {
	all := make([]Document, 0, len(c.Docs)+len(docs))
	all = append(all, c.Docs...)
	all = append(all, docs...)
	return New(all, opts)
}

// Query pairs a query string with the indices of its relevant documents —
// the "test collection" structure of §5.1 (documents, queries, relevance
// judgements).
type Query struct {
	ID       string
	Text     string
	Relevant []int // document indices within the owning Collection
}

// Judged is a Collection plus relevance-judged queries.
type Judged struct {
	*Collection
	Queries []Query
}

func (q Query) String() string {
	return fmt.Sprintf("%s(%q, %d relevant)", q.ID, q.Text, len(q.Relevant))
}
