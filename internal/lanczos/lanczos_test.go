package lanczos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func randomSparse(rng *rand.Rand, r, c int, density float64) *sparse.CSR {
	b := sparse.NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// knownSpectrum builds a dense matrix with a prescribed spectrum via random
// orthogonal factors.
func knownSpectrum(rng *rand.Rand, m, n int, s []float64) *dense.Matrix {
	qu := dense.GramSchmidt(randomDense(rng, m, len(s)))
	qv := dense.GramSchmidt(randomDense(rng, n, len(s)))
	return dense.MulBT(dense.ScaleCols(qu, s), qv)
}

func randomDense(rng *rand.Rand, r, c int) *dense.Matrix {
	m := dense.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestTruncatedSVDMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomSparse(rng, 60, 40, 0.15)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	for _, k := range []int{1, 3, 8} {
		res, err := TruncatedSVD(OpCSR(a), Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := 0; i < k; i++ {
			if math.Abs(res.S[i]-ref.S[i]) > 1e-8*(1+ref.S[0]) {
				t.Fatalf("k=%d σ%d: lanczos %v dense %v", k, i, res.S[i], ref.S[i])
			}
		}
		if v := Verify(OpCSR(a), res); v > 1e-8 {
			t.Fatalf("k=%d residual %v", k, v)
		}
		if e := dense.OrthogonalityError(res.U); e > 1e-8 {
			t.Fatalf("k=%d U orthogonality %v", k, e)
		}
		if e := dense.OrthogonalityError(res.V); e > 1e-8 {
			t.Fatalf("k=%d V orthogonality %v", k, e)
		}
	}
}

func TestTruncatedSVDKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	want := []float64{50, 20, 10, 5, 2, 1, 0.5, 0.1}
	a := knownSpectrum(rng, 80, 60, want)
	res, err := TruncatedSVD(OpDense(a), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(res.S[i]-want[i]) > 1e-8*want[0] {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], want[i])
		}
	}
	if !res.Converged {
		t.Fatal("should report convergence")
	}
}

func TestTruncatedSVDClusteredSpectrum(t *testing.T) {
	// Nearly equal leading singular values are the hard case for Lanczos.
	rng := rand.New(rand.NewSource(3))
	want := []float64{10, 9.999, 9.998, 1, 0.5}
	a := knownSpectrum(rng, 50, 30, want)
	res, err := TruncatedSVD(OpDense(a), Options{K: 3, MaxSteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.S[i]-want[i]) > 1e-6 {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], want[i])
		}
	}
}

func TestTruncatedSVDExactRank(t *testing.T) {
	// Rank-2 matrix; asking for more triplets than the rank must still work
	// (breakdown path) and report zeros or truncate.
	rng := rand.New(rand.NewSource(4))
	a := knownSpectrum(rng, 20, 15, []float64{3, 2})
	res, err := TruncatedSVD(OpDense(a), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.S[0] < 2.9 || math.Abs(res.S[1]-2) > 1e-8 {
		t.Fatalf("S = %v", res.S)
	}
	for _, s := range res.S[2:] {
		if s > 1e-8 {
			t.Fatalf("spurious singular value %v beyond rank", s)
		}
	}
}

func TestTruncatedSVDKEqualsMinDim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSparse(rng, 10, 6, 0.5)
	res, err := TruncatedSVD(OpCSR(a), Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	for i := range res.S {
		if math.Abs(res.S[i]-ref.S[i]) > 1e-8*(1+ref.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], ref.S[i])
		}
	}
}

func TestTruncatedSVDZeroMatrix(t *testing.T) {
	a := sparse.NewBuilder(5, 4).Build()
	res, err := TruncatedSVD(OpCSR(a), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.S {
		if s > 1e-12 {
			t.Fatalf("zero matrix σ=%v", s)
		}
	}
}

func TestTruncatedSVDTallAndWide(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range [][2]int{{100, 10}, {10, 100}} {
		a := randomSparse(rng, shape[0], shape[1], 0.3)
		res, err := TruncatedSVD(OpCSR(a), Options{K: 4})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
		for i := 0; i < 4; i++ {
			if math.Abs(res.S[i]-ref.S[i]) > 1e-7*(1+ref.S[0]) {
				t.Fatalf("%v σ%d: %v want %v", shape, i, res.S[i], ref.S[i])
			}
		}
	}
}

func TestNoReorthDegradesOrthogonality(t *testing.T) {
	// The ablation claim: without reorthogonalization the Lanczos basis
	// loses orthogonality once convergence sets in; with it, it doesn't.
	rng := rand.New(rand.NewSource(7))
	a := knownSpectrum(rng, 120, 90, []float64{100, 50, 25, 12, 6, 3, 1.5, 0.7, 0.3, 0.1})
	full, err := TruncatedSVD(OpDense(a), Options{K: 6, MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	none, _ := TruncatedSVD(OpDense(a), Options{K: 6, MaxSteps: 60, Reorth: NoReorth})
	ef := dense.OrthogonalityError(full.U)
	en := dense.OrthogonalityError(none.U)
	if ef > 1e-8 {
		t.Fatalf("full reorth orthogonality %v", ef)
	}
	if en < ef {
		t.Fatalf("expected NoReorth (%v) to be worse than FullReorth (%v)", en, ef)
	}
}

func TestMatVecCountReported(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSparse(rng, 40, 30, 0.2)
	res, err := TruncatedSVD(OpCSR(a), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatVecs < 2*res.Steps {
		t.Fatalf("MatVecs %d < 2·Steps %d", res.MatVecs, res.Steps)
	}
}

func TestRandomizedSVDAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	want := []float64{40, 15, 8, 3, 1, 0.4, 0.2, 0.05}
	a := knownSpectrum(rng, 150, 100, want)
	res := RandomizedSVD(OpDense(a), RandomizedOptions{K: 4, Seed: 1})
	for i := 0; i < 4; i++ {
		if math.Abs(res.S[i]-want[i]) > 1e-4*want[0] {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], want[i])
		}
	}
	if v := Verify(OpDense(a), res); v > 1e-4 {
		t.Fatalf("randomized residual %v", v)
	}
}

func TestRandomizedSVDDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomSparse(rng, 50, 40, 0.2)
	r1 := RandomizedSVD(OpCSR(a), RandomizedOptions{K: 3, Seed: 7})
	r2 := RandomizedSVD(OpCSR(a), RandomizedOptions{K: 3, Seed: 7})
	for i := range r1.S {
		if r1.S[i] != r2.S[i] {
			t.Fatal("same seed should give identical results")
		}
	}
}

func TestOperatorAdapters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSparse(rng, 6, 4, 0.5)
	d := dense.NewFromRows(s.Dense())
	so, do := OpCSR(s), OpDense(d)
	sm, sn := so.Dims()
	dm, dn := do.Dims()
	if sm != dm || sn != dn {
		t.Fatal("dims disagree")
	}
	x := []float64{1, -2, 3, 0.5}
	y1 := make([]float64, 6)
	y2 := make([]float64, 6)
	so.Apply(x, y1)
	do.Apply(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-13 {
			t.Fatal("Apply disagrees between adapters")
		}
	}
}

func BenchmarkLanczosK10(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomSparse(rng, 5000, 1000, 0.01)
	op := OpCSR(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A random matrix's bulk spectrum is tightly clustered, so give the
		// recurrence more room than the 4k default.
		if _, err := TruncatedSVD(op, Options{K: 10, MaxSteps: 250}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomizedK10(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomSparse(rng, 5000, 1000, 0.01)
	op := OpCSR(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomizedSVD(op, RandomizedOptions{K: 10, Seed: int64(i)})
	}
}
