package lanczos

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dense"
)

// Property test: the blocked build path and the frozen seed path must agree
// on the singular values to 1e-8 (relative to σ₁) and both must pass the
// a-posteriori Verify residual, across a spread of random sparse shapes.
func TestBlockedMatchesReference(t *testing.T) {
	shapes := []struct {
		m, n    int
		density float64
		k       int
		seed    int64
	}{
		{60, 40, 0.15, 8, 101},
		{40, 60, 0.15, 8, 102},
		{120, 80, 0.08, 12, 103},
		{80, 120, 0.08, 12, 104},
		{200, 150, 0.05, 10, 105},
		{30, 30, 0.4, 30, 106}, // K = min dim: exact factorization
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(sh.seed))
		a := randomSparse(rng, sh.m, sh.n, sh.density)
		op := OpCSR(a)
		opts := Options{K: sh.k, Tol: 1e-10, Seed: 7}

		got, errB := TruncatedSVD(op, opts)
		want, errR := TruncatedSVDReference(op, opts)
		if (errB == nil) != (errR == nil) {
			t.Fatalf("%dx%d k=%d: convergence disagreement blocked=%v reference=%v",
				sh.m, sh.n, sh.k, errB, errR)
		}
		if len(got.S) != len(want.S) {
			t.Fatalf("%dx%d k=%d: %d singular values, reference %d",
				sh.m, sh.n, sh.k, len(got.S), len(want.S))
		}
		sigma1 := 1.0
		if len(want.S) > 0 {
			sigma1 = math.Max(want.S[0], 1.0)
		}
		for i := range got.S {
			if math.Abs(got.S[i]-want.S[i]) > 1e-8*sigma1 {
				t.Fatalf("%dx%d k=%d: σ[%d] = %.15g reference %.15g",
					sh.m, sh.n, sh.k, i, got.S[i], want.S[i])
			}
		}
		if r := Verify(op, got); r > 1e-8 {
			t.Fatalf("%dx%d k=%d: blocked Verify residual %g", sh.m, sh.n, sh.k, r)
		}
		if ru, rv := dense.OrthogonalityError(got.U), dense.OrthogonalityError(got.V); ru > 1e-8 || rv > 1e-8 {
			t.Fatalf("%dx%d k=%d: orthogonality U=%g V=%g", sh.m, sh.n, sh.k, ru, rv)
		}
	}
}

// Residual accounting: the blocked path may not verify worse than the seed
// path on the same problem (acceptance criterion of the build benchmark).
func TestBlockedResidualNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomSparse(rng, 250, 180, 0.05)
	op := OpCSR(a)
	opts := Options{K: 16, Seed: 3}
	got, _ := TruncatedSVD(op, opts)
	want, _ := TruncatedSVDReference(op, opts)
	rg, rw := Verify(op, got), Verify(op, want)
	// Allow one decade of slack for rounding-order differences on top of
	// "no worse": both are ~1e-14 in practice, the tolerance guards against
	// a real regression to 1e-9 territory.
	if rg > 10*rw+1e-12 {
		t.Fatalf("blocked residual %g vs reference %g", rg, rw)
	}
}

// Two concurrent TruncatedSVD calls sharing one CSR must not race: the
// solver may only read the operator. Run under -race in `make check`.
func TestConcurrentSharedCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomSparse(rng, 150, 100, 0.08)
	op := OpCSR(a)
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := TruncatedSVD(op, Options{K: 8, MaxSteps: 100, Seed: int64(40 + g)})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			results[g] = r
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Different seeds, same matrix: singular values agree, bases may differ
	// in sign.
	for i := range results[0].S {
		if math.Abs(results[0].S[i]-results[1].S[i]) > 1e-8*(1+results[0].S[0]) {
			t.Fatalf("σ[%d] differs across goroutines: %v vs %v",
				i, results[0].S[i], results[1].S[i])
		}
	}
}

// The iteration loop must be allocation-free after warm-up: doubling
// MaxSteps (with K = MaxSteps so no convergence check fires early and the
// matrix is small enough that every kernel stays serial) must not grow the
// per-call allocation count by more than a constant — the extra steps
// themselves allocate nothing.
func TestLanczosStepsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randomSparse(rng, 64, 48, 0.2)
	op := OpCSR(a)

	allocs := func(steps int) float64 {
		opts := Options{K: steps, MaxSteps: steps, Tol: 1e-10, Seed: 5}
		return testing.AllocsPerRun(10, func() {
			// ErrNotConverged is expected: K = MaxSteps on purpose, so the
			// only convergence check is the final one.
			if _, err := TruncatedSVD(op, opts); err != nil && err != ErrNotConverged {
				t.Fatal(err)
			}
		})
	}
	small := allocs(16)
	large := allocs(40)
	// Warm-up (bases, workspace) and the final materialization allocate; 24
	// extra iterations must not. Slack of 4 covers the larger projected-SVD
	// scratch in the final extraction.
	if large > small+4 {
		t.Fatalf("allocation count grows with steps: %v at 16 steps, %v at 40", small, large)
	}
}

// Acceptance-criterion benchmark: allocations per build, reported so the
// per-step zero-alloc claim is visible in `go test -bench`.
func BenchmarkBlockedBuildK16(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	a := randomSparse(rng, 400, 300, 0.05)
	op := OpCSR(a)
	opts := Options{K: 16, Seed: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fixed 64-step budget (default MaxSteps): both paths do identical
		// iteration work whether or not the residuals pass, which is what a
		// time comparison wants.
		if _, err := TruncatedSVD(op, opts); err != nil && err != ErrNotConverged {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceBuildK16(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	a := randomSparse(rng, 400, 300, 0.05)
	op := OpCSR(a)
	opts := Options{K: 16, Seed: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TruncatedSVDReference(op, opts); err != nil && err != ErrNotConverged {
			b.Fatal(err)
		}
	}
}

// The block-operator fast path must agree with the per-column fallback.
func TestApplyBlockMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := randomSparse(rng, 30, 20, 0.3)
	op := OpCSR(a).(BlockOperator)

	x := dense.New(20, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	fast := op.ApplyBlock(x)
	slow := applyBlock(plainOp{op}, x)
	if !fast.Equal(slow, 1e-12) {
		t.Fatal("ApplyBlock disagrees with per-column fallback")
	}

	y := dense.New(30, 5)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	fastT := op.ApplyTBlock(y)
	slowT := applyTBlock(plainOp{op}, y)
	if !fastT.Equal(slowT, 1e-12) {
		t.Fatal("ApplyTBlock disagrees with per-column fallback")
	}
}

// plainOp hides the BlockOperator methods so the fallback path runs.
type plainOp struct{ o Operator }

func (p plainOp) Dims() (int, int)      { return p.o.Dims() }
func (p plainOp) Apply(x, y []float64)  { p.o.Apply(x, y) }
func (p plainOp) ApplyT(x, y []float64) { p.o.ApplyT(x, y) }
