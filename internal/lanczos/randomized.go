package lanczos

import (
	"math/rand"

	"repro/internal/dense"
)

// RandomizedOptions configures RandomizedSVD.
type RandomizedOptions struct {
	// K is the target rank.
	K int
	// Oversample is the extra sketch width (default 8).
	Oversample int
	// PowerIters applies (AAᵀ)^q to sharpen the sketch spectrum (default 2).
	PowerIters int
	// Seed drives the Gaussian test matrix.
	Seed int64
}

// RandomizedSVD approximates the K largest singular triplets by Gaussian
// sketching with power iteration (Halko–Martinsson–Tropp). The paper lists
// "computing the truncated SVD of extremely large sparse matrices" as an
// open computational issue (§5.6); randomized projection is the modern
// answer, included here as the forward-looking ablation against Lanczos:
// it trades a fixed, small number of passes over A for slightly lower
// accuracy on tightly clustered spectra.
//
// Every multiply against A is blocked: the whole l-column sketch moves
// through the operator in one pass (BlockOperator fast path — for CSR that
// is one sweep over the nonzeros per stage instead of l separate matvec
// sweeps).
func RandomizedSVD(a Operator, opts RandomizedOptions) *Result {
	m, n := a.Dims()
	if opts.K <= 0 {
		opts.K = 1
	}
	if opts.Oversample <= 0 {
		opts.Oversample = 8
	}
	if opts.PowerIters < 0 {
		opts.PowerIters = 0
	} else if opts.PowerIters == 0 {
		opts.PowerIters = 2
	}
	l := minInt(opts.K+opts.Oversample, minInt(m, n))
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))

	matvecs := 0
	// Ω ~ N(0,1)^{n×l}, filled column-by-column so the rng draw sequence —
	// and therefore every result for a given seed — is unchanged from the
	// per-column implementation this replaced.
	omega := dense.New(n, l)
	for c := 0; c < l; c++ {
		for i := 0; i < n; i++ {
			omega.Set(i, c, rng.NormFloat64())
		}
	}
	// Y = A·Ω in one blocked pass.
	y := applyBlock(a, omega)
	matvecs += l
	// Power iteration with QR re-normalization between passes to avoid the
	// sketch collapsing onto the dominant singular direction.
	for q := 0; q < opts.PowerIters; q++ {
		y = dense.GramSchmidt(y)
		z := dense.GramSchmidt(applyTBlock(a, y))
		matvecs += l
		y = applyBlock(a, z)
		matvecs += l
	}
	q := dense.GramSchmidt(y)

	// B = Qᵀ·A, computed as (Aᵀ·Q)ᵀ — one blocked adjoint pass, l×n.
	b := applyTBlock(a, q).T()
	matvecs += l
	f := dense.SVD(b)
	k := minInt(opts.K, len(f.S))
	u := dense.Mul(q, f.U.Slice(0, l, 0, k))
	s := make([]float64, k)
	copy(s, f.S[:k])
	return &Result{
		U:         u,
		S:         s,
		V:         f.V.Slice(0, n, 0, k),
		Steps:     l,
		Converged: true,
		MatVecs:   matvecs,
	}
}
