package lanczos

import (
	"math/rand"

	"repro/internal/dense"
)

// RandomizedOptions configures RandomizedSVD.
type RandomizedOptions struct {
	// K is the target rank.
	K int
	// Oversample is the extra sketch width (default 8).
	Oversample int
	// PowerIters applies (AAᵀ)^q to sharpen the sketch spectrum (default 2).
	PowerIters int
	// Seed drives the Gaussian test matrix.
	Seed int64
}

// RandomizedSVD approximates the K largest singular triplets by Gaussian
// sketching with power iteration (Halko–Martinsson–Tropp). The paper lists
// "computing the truncated SVD of extremely large sparse matrices" as an
// open computational issue (§5.6); randomized projection is the modern
// answer, included here as the forward-looking ablation against Lanczos:
// it trades a fixed, small number of passes over A for slightly lower
// accuracy on tightly clustered spectra.
func RandomizedSVD(a Operator, opts RandomizedOptions) *Result {
	m, n := a.Dims()
	if opts.K <= 0 {
		opts.K = 1
	}
	if opts.Oversample <= 0 {
		opts.Oversample = 8
	}
	if opts.PowerIters < 0 {
		opts.PowerIters = 0
	} else if opts.PowerIters == 0 {
		opts.PowerIters = 2
	}
	l := minInt(opts.K+opts.Oversample, minInt(m, n))
	rng := rand.New(rand.NewSource(opts.Seed + 0x5eed))

	matvecs := 0
	// Y = A·Ω, Ω ~ N(0,1)^{n×l}.
	y := dense.New(m, l)
	x := make([]float64, n)
	col := make([]float64, m)
	for c := 0; c < l; c++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a.Apply(x, col)
		matvecs++
		y.SetCol(c, col)
	}
	// Power iteration with QR re-normalization between passes to avoid the
	// sketch collapsing onto the dominant singular direction.
	for q := 0; q < opts.PowerIters; q++ {
		y = dense.GramSchmidt(y)
		z := dense.New(n, l)
		zc := make([]float64, n)
		for c := 0; c < l; c++ {
			a.ApplyT(y.Col(c), zc)
			matvecs++
			z.SetCol(c, zc)
		}
		z = dense.GramSchmidt(z)
		for c := 0; c < l; c++ {
			a.Apply(z.Col(c), col)
			matvecs++
			y.SetCol(c, col)
		}
	}
	q := dense.GramSchmidt(y)

	// B = Qᵀ·A is l×n: row i of B is Aᵀ·q_i.
	b := dense.New(l, n)
	bt := make([]float64, n)
	for i := 0; i < l; i++ {
		a.ApplyT(q.Col(i), bt)
		matvecs++
		b.Row(i) // ensure bounds
		copy(b.Row(i), bt)
	}
	f := dense.SVD(b)
	k := minInt(opts.K, len(f.S))
	u := dense.Mul(q, f.U.Slice(0, l, 0, k))
	s := make([]float64, k)
	copy(s, f.S[:k])
	return &Result{
		U:         u,
		S:         s,
		V:         f.V.Slice(0, n, 0, k),
		Steps:     l,
		Converged: true,
		MatVecs:   matvecs,
	}
}
