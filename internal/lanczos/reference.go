package lanczos

import (
	"math"
	"math/rand"

	"repro/internal/dense"
)

// This file preserves the pre-blocked Golub–Kahan solver exactly as it
// shipped in the seed: slice-of-slice bases, serial per-vector
// reorthogonalization sweeps, two fresh vector allocations per step, and a
// full Ritz-vector materialization at every convergence check. It is the
// frozen baseline that the blocked build path is property-tested and
// benchmarked against (cmd/lsibench -buildperf); it is not used by any
// production caller.

// TruncatedSVDReference computes the K largest singular triplets of A with
// the seed (pre-blocked) implementation. Same contract as TruncatedSVD.
func TruncatedSVDReference(a Operator, opts Options) (*Result, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: dense.New(m, 0), V: dense.New(n, 0), Converged: true}, nil
	}
	opts.fill(m, n)
	k := opts.K
	steps := opts.MaxSteps
	rng := rand.New(rand.NewSource(opts.Seed + 0x1db))

	// Lanczos bases, stored row-per-vector for cache-friendly
	// reorthogonalization sweeps.
	us := make([][]float64, 0, steps) // each length m
	vs := make([][]float64, 0, steps) // each length n
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps)

	// Start inside the row space of A: v₁ ∝ Aᵀu₀ for random u₀.
	v := make([]float64, n)
	a.ApplyT(randomUnit(rng, m), v)
	if dense.Normalize(v) == 0 {
		return &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: 1}, nil
	}
	vs = append(vs, v)

	tmpM := make([]float64, m)
	tmpN := make([]float64, n)
	matvecs := 0

	checkEvery := maxInt(1, k/4)

	breakdown := false
	var lastResult *Result
	for j := 0; j < steps; j++ {
		// u_j = A v_j − β_{j−1} u_{j−1}
		a.Apply(vs[j], tmpM)
		matvecs++
		u := append([]float64(nil), tmpM...)
		if j > 0 {
			dense.Axpy(-betas[j-1], us[j-1], u)
		}
		if opts.Reorth == FullReorth {
			reorthogonalize(u, us)
		}
		alpha := dense.Normalize(u)
		if alpha <= 1e-300 {
			breakdown = true
			break
		}
		us = append(us, u)
		alphas = append(alphas, alpha)

		// v_{j+1} = Aᵀ u_j − α_j v_j
		a.ApplyT(u, tmpN)
		matvecs++
		vNext := append([]float64(nil), tmpN...)
		dense.Axpy(-alpha, vs[j], vNext)
		if opts.Reorth == FullReorth {
			reorthogonalize(vNext, vs)
		}
		beta := dense.Normalize(vNext)
		betas = append(betas, beta)
		if beta <= 1e-300 {
			breakdown = true
			break
		}
		vs = append(vs, vNext)

		// Convergence check on the projected problem.
		if j+1 >= k && ((j+1)%checkEvery == 0 || j+1 == steps) {
			res, done := extractReference(us, vs[:len(us)], alphas, betas, k, opts.Tol, false)
			res.MatVecs = matvecs
			lastResult = res
			if done {
				res.Converged = true
				return res, nil
			}
		}
	}

	exact := breakdown || len(us) >= minInt(m, n)
	if len(us) == 0 {
		z := &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: matvecs}
		return z, nil
	}
	res, done := extractReference(us, vs[:len(us)], alphas, betas, minInt(k, len(us)), opts.Tol, exact)
	res.MatVecs = matvecs
	if done || exact {
		res.Converged = true
		return res, nil
	}
	if lastResult != nil && len(lastResult.S) >= len(res.S) {
		res = lastResult
	}
	return res, ErrNotConverged
}

// reorthogonalize removes the components of v along every basis vector,
// with a second pass for numerical safety (the "twice is enough" rule).
// Serial modified Gram–Schmidt — also used by the Gram-matrix solver.
func reorthogonalize(v []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			dense.Axpy(-dense.Dot(b, v), b, v)
		}
	}
}

// extractReference solves the small projected SVD and maps Ritz vectors
// back to the full space column-by-column with per-vector Axpy sweeps —
// the seed extraction retained for the baseline.
func extractReference(us, vs [][]float64, alphas, betas []float64, k int, tol float64, exact bool) (*Result, bool) {
	j := len(us)
	b := dense.New(j, j)
	for i := 0; i < j; i++ {
		b.Set(i, i, alphas[i])
		if i+1 < j {
			b.Set(i, i+1, betas[i])
		}
	}
	f := dense.SVD(b)
	if k > j {
		k = j
	}

	m := len(us[0])
	n := len(vs[0])
	u := dense.New(m, k)
	v := dense.New(n, k)
	s := make([]float64, k)
	copy(s, f.S[:k])

	// U_out = [u_1 … u_j]·P_k ; V_out = [v_1 … v_j]·Q_k.
	ucol := make([]float64, m)
	vcol := make([]float64, n)
	for c := 0; c < k; c++ {
		for i := range ucol {
			ucol[i] = 0
		}
		for i := range vcol {
			vcol[i] = 0
		}
		for r := 0; r < j; r++ {
			if pu := f.U.At(r, c); pu != 0 {
				dense.Axpy(pu, us[r], ucol)
			}
			if pv := f.V.At(r, c); pv != 0 {
				dense.Axpy(pv, vs[r], vcol)
			}
		}
		u.SetCol(c, ucol)
		v.SetCol(c, vcol)
	}

	res := &Result{U: u, S: s, V: v, Steps: j}
	if exact {
		return res, true
	}
	betaLast := 0.0
	if len(betas) >= j {
		betaLast = betas[j-1]
	}
	sigma1 := 1.0
	if len(f.S) > 0 && f.S[0] > 0 {
		sigma1 = f.S[0]
	}
	for i := 0; i < k; i++ {
		if betaLast*math.Abs(f.U.At(j-1, i)) > tol*sigma1 {
			return res, false
		}
	}
	return res, true
}
