package lanczos

import (
	"math"
	"math/rand"

	"repro/internal/dense"
)

// TruncatedSVDGram computes the K largest singular triplets by Lanczos
// tridiagonalization of the Gram matrix AᵀA — the exact formulation of
// SVDPACKC's las2 ("single-vector Lanczos algorithm on AᵀA", the solver the
// paper used for its TREC runs). Each step costs one Ax and one Aᵀx; the
// projected problem is symmetric tridiagonal and is solved with the
// implicit-QL eigensolver; left vectors are recovered as uᵢ = A·vᵢ/σᵢ,
// "the additional multiplication by G required to extract the left singular
// vector" in §4.2's cost model.
//
// Compared to the bidiagonalization in TruncatedSVD, the Gram route squares
// the condition number (σ below √ε·σ₁ lose all accuracy) — which is why
// both are provided and cross-tested. For LSI's k largest triplets the two
// agree to machine precision.
func TruncatedSVDGram(a Operator, opts Options) (*Result, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: dense.New(m, 0), V: dense.New(n, 0), Converged: true}, nil
	}
	opts.fill(m, n)
	k := opts.K
	// The Lanczos basis lives on the smaller side; work with Aᵀ if needed
	// so the tridiagonal problem has the smaller dimension.
	if n > m {
		res, err := TruncatedSVDGram(transposeOp{a}, opts)
		if err != nil {
			return nil, err
		}
		res.U, res.V = res.V, res.U
		return res, nil
	}
	// Now n ≤ m: Lanczos on AᵀA in R^n... (dims already favorable).
	steps := opts.MaxSteps
	rng := rand.New(rand.NewSource(opts.Seed + 0x97a3))

	vs := make([][]float64, 0, steps)
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps) // betas[j] couples v_j and v_{j+1}

	// Start in the row space (see TruncatedSVD).
	v := make([]float64, n)
	a.ApplyT(randomUnit(rng, m), v)
	if dense.Normalize(v) == 0 {
		return &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: 1}, nil
	}
	vs = append(vs, v)

	tmpM := make([]float64, m)
	w := make([]float64, n)
	matvecs := 1
	breakdown := false

	for j := 0; j < steps; j++ {
		// w = AᵀA v_j
		a.Apply(vs[j], tmpM)
		a.ApplyT(tmpM, w)
		matvecs += 2
		alpha := dense.Dot(vs[j], w)
		alphas = append(alphas, alpha)
		wc := append([]float64(nil), w...)
		dense.Axpy(-alpha, vs[j], wc)
		if j > 0 {
			dense.Axpy(-betas[j-1], vs[j-1], wc)
		}
		if opts.Reorth == FullReorth {
			reorthogonalize(wc, vs)
		}
		beta := dense.Normalize(wc)
		if beta <= 1e-300 {
			breakdown = true
			break
		}
		betas = append(betas, beta)
		if j+1 < steps {
			vs = append(vs, wc)
		}
	}

	j := len(alphas)
	exact := breakdown || j >= n
	lam, y, err := dense.EigSymTridiagonal(alphas, betas[:minInt(len(betas), j-1)], true)
	if err != nil {
		return nil, err
	}
	if k > j {
		k = j
	}
	// Largest k eigenvalues are at the tail (ascending order).
	uOut := dense.New(m, k)
	vOut := dense.New(n, k)
	s := make([]float64, k)
	vcol := make([]float64, n)
	converged := true
	betaLast := 0.0
	if len(betas) >= j && j > 0 {
		betaLast = betas[j-1]
	}
	lamMax := math.Abs(lam[len(lam)-1])
	if lamMax == 0 {
		lamMax = 1
	}
	for c := 0; c < k; c++ {
		src := len(lam) - 1 - c
		l := lam[src]
		if l < 0 {
			l = 0
		}
		s[c] = math.Sqrt(l)
		for i := range vcol {
			vcol[i] = 0
		}
		for r := 0; r < j; r++ {
			if yc := y.At(r, src); yc != 0 {
				dense.Axpy(yc, vs[minInt(r, len(vs)-1)], vcol)
			}
		}
		// Ritz residual for the eigenpair: β_j·|y[last]|.
		if !exact && betaLast*math.Abs(y.At(j-1, src)) > opts.Tol*lamMax {
			converged = false
		}
		vOut.SetCol(c, vcol)
		// u = A v / σ.
		a.Apply(vcol, tmpM)
		matvecs++
		if s[c] > 1e-300 {
			uc := append([]float64(nil), tmpM...)
			dense.ScaleVec(1/s[c], uc)
			uOut.SetCol(c, uc)
		}
	}
	res := &Result{U: uOut, S: s, V: vOut, Steps: j, Converged: converged || exact, MatVecs: matvecs}
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// transposeOp flips an operator's Apply/ApplyT.
type transposeOp struct{ a Operator }

func (t transposeOp) Dims() (int, int) {
	m, n := t.a.Dims()
	return n, m
}
func (t transposeOp) Apply(x, y []float64)  { t.a.ApplyT(x, y) }
func (t transposeOp) ApplyT(x, y []float64) { t.a.Apply(x, y) }

// SubspaceIteration computes the K largest singular triplets by the
// subspace (simultaneous) iteration method — the sis algorithm of SVDPACK.
// It repeatedly applies AᵀA to an n×(K+oversample) block, orthonormalizing
// between applications, then solves the small Rayleigh–Ritz problem
// H = (AX)ᵀ(AX). Simpler and more regular than Lanczos (all passes are
// blocked mat-mats, friendly to parallel kernels) but needs more passes for
// clustered spectra.
func SubspaceIteration(a Operator, opts Options, oversample, iters int) *Result {
	m, n := a.Dims()
	if opts.K <= 0 {
		opts.K = 1
	}
	if oversample <= 0 {
		oversample = 6
	}
	if iters <= 0 {
		iters = 30
	}
	l := minInt(opts.K+oversample, minInt(m, n))
	rng := rand.New(rand.NewSource(opts.Seed + 0x515))

	x := dense.New(n, l)
	col := make([]float64, n)
	tmpM := make([]float64, m)
	for c := 0; c < l; c++ {
		a.ApplyT(randomUnit(rng, m), col)
		x.SetCol(c, append([]float64(nil), col...))
	}
	dense.GramSchmidt(x)
	matvecs := l

	for it := 0; it < iters; it++ {
		for c := 0; c < l; c++ {
			a.Apply(x.Col(c), tmpM)
			a.ApplyT(tmpM, col)
			matvecs += 2
			x.SetCol(c, append([]float64(nil), col...))
		}
		dense.GramSchmidt(x)
	}

	// Rayleigh–Ritz: W = A X (m×l), H = WᵀW, eig via SVD of W.
	w := dense.New(m, l)
	for c := 0; c < l; c++ {
		a.Apply(x.Col(c), tmpM)
		matvecs++
		w.SetCol(c, append([]float64(nil), tmpM...))
	}
	f := dense.SVD(w)
	k := minInt(opts.K, len(f.S))
	s := make([]float64, k)
	copy(s, f.S[:k])
	return &Result{
		U:         f.U.Slice(0, m, 0, k),
		S:         s,
		V:         dense.Mul(x, f.V.Slice(0, l, 0, k)),
		Steps:     iters,
		Converged: true,
		MatVecs:   matvecs,
	}
}
