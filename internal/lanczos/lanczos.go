// Package lanczos computes truncated singular value decompositions of
// large sparse matrices by Golub–Kahan–Lanczos bidiagonalization, the same
// algorithm family as the SVDPACKC las2 solver the paper used for its TREC
// runs (§5.3). "The bulk of LSI processing time is spent in computing the
// truncated SVD of the large sparse term by document matrices" (§1) — this
// package is that bulk.
//
// The solver works against an abstract Operator so it can run on
// sparse.CSR, dense.Matrix, or composites (A_k | D) without materializing
// anything; its per-iteration cost is one Ax, one Aᵀx, and the
// reorthogonalization sweeps, exactly the cost model of Table 7.
//
// The build path is blocked: the Lanczos bases live in contiguous
// row-major dense.Matrix blocks, each two-pass reorthogonalization is a
// pair of Level-2 kernels (c = B·v, v ← v − Bᵀ·c) that parallelize with a
// worker-count-independent reduction order, the Ritz mapping is one tiled
// gemm per side, and all per-step workspace is preallocated so the
// iteration loop performs no heap allocations after warm-up. The seed
// implementation is preserved as TruncatedSVDReference for property tests
// and the -buildperf benchmark.
package lanczos

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Operator is a linear map with access to its adjoint — everything the
// bidiagonalization needs.
type Operator interface {
	// Dims returns (rows, cols) of the operator.
	Dims() (m, n int)
	// Apply computes y = A·x (len(x)=cols, len(y)=rows).
	Apply(x, y []float64)
	// ApplyT computes y = Aᵀ·x (len(x)=rows, len(y)=cols).
	ApplyT(x, y []float64)
}

// BlockOperator is an Operator that can apply itself to a whole block of
// vectors at once — one pass over the matrix instead of one per vector.
// The randomized and subspace solvers use it for their power iterations;
// plain Operators fall back to column-at-a-time application.
type BlockOperator interface {
	Operator
	// ApplyBlock returns A·X for X cols×l (columns are vectors).
	ApplyBlock(x *dense.Matrix) *dense.Matrix
	// ApplyTBlock returns Aᵀ·X for X rows×l.
	ApplyTBlock(x *dense.Matrix) *dense.Matrix
}

// csrOp adapts sparse.CSR to Operator.
type csrOp struct{ m *sparse.CSR }

func (o csrOp) Dims() (int, int)      { return o.m.Rows, o.m.Cols }
func (o csrOp) Apply(x, y []float64)  { o.m.MulVec(x, y) }
func (o csrOp) ApplyT(x, y []float64) { o.m.MulVecT(x, y) }
func (o csrOp) ApplyBlock(x *dense.Matrix) *dense.Matrix {
	return &dense.Matrix{Rows: o.m.Rows, Cols: x.Cols, Data: o.m.MulDense(x.Data, x.Cols)}
}
func (o csrOp) ApplyTBlock(x *dense.Matrix) *dense.Matrix {
	return &dense.Matrix{Rows: o.m.Cols, Cols: x.Cols, Data: o.m.MulDenseT(x.Data, x.Cols)}
}

// OpCSR wraps a sparse matrix as an Operator.
func OpCSR(m *sparse.CSR) Operator { return csrOp{m} }

// denseOp adapts dense.Matrix to Operator. Apply/ApplyT write straight
// into the caller's buffer — no intermediate allocation.
type denseOp struct{ m *dense.Matrix }

func (o denseOp) Dims() (int, int)                          { return o.m.Rows, o.m.Cols }
func (o denseOp) Apply(x, y []float64)                      { dense.MulVecInto(o.m, x, y) }
func (o denseOp) ApplyT(x, y []float64)                     { dense.MulVecTInto(o.m, x, y) }
func (o denseOp) ApplyBlock(x *dense.Matrix) *dense.Matrix  { return dense.Mul(o.m, x) }
func (o denseOp) ApplyTBlock(x *dense.Matrix) *dense.Matrix { return dense.MulT(o.m, x) }

// OpDense wraps a dense matrix as an Operator.
func OpDense(m *dense.Matrix) Operator { return denseOp{m} }

// applyBlock computes A·X, using the block fast path when available.
func applyBlock(a Operator, x *dense.Matrix) *dense.Matrix {
	if bo, ok := a.(BlockOperator); ok {
		return bo.ApplyBlock(x)
	}
	m, _ := a.Dims()
	y := dense.New(m, x.Cols)
	xc := make([]float64, x.Rows)
	yc := make([]float64, m)
	for c := 0; c < x.Cols; c++ {
		for i := 0; i < x.Rows; i++ {
			xc[i] = x.At(i, c)
		}
		a.Apply(xc, yc)
		y.SetCol(c, yc)
	}
	return y
}

// applyTBlock computes Aᵀ·X, using the block fast path when available.
func applyTBlock(a Operator, x *dense.Matrix) *dense.Matrix {
	if bo, ok := a.(BlockOperator); ok {
		return bo.ApplyTBlock(x)
	}
	_, n := a.Dims()
	y := dense.New(n, x.Cols)
	xc := make([]float64, x.Rows)
	yc := make([]float64, n)
	for c := 0; c < x.Cols; c++ {
		for i := 0; i < x.Rows; i++ {
			xc[i] = x.At(i, c)
		}
		a.ApplyT(xc, yc)
		y.SetCol(c, yc)
	}
	return y
}

// Reorth selects the reorthogonalization policy.
type Reorth int

const (
	// FullReorth orthogonalizes every new Lanczos vector against the whole
	// basis (classical Gram–Schmidt, second pass applied adaptively).
	// Always accurate; O(j·n) extra per step.
	FullReorth Reorth = iota
	// NoReorth runs the textbook three-term recurrence untouched. Fast but
	// loses orthogonality and produces spurious duplicate Ritz values; kept
	// for the ablation benchmark.
	NoReorth
)

// Options configures TruncatedSVD.
type Options struct {
	// K is the number of singular triplets wanted (the paper uses 100–300).
	K int
	// MaxSteps caps the bidiagonalization length. 0 means
	// min(min(m,n), max(4K, K+32)).
	MaxSteps int
	// Tol is the convergence tolerance on the Ritz residual relative to
	// σ₁ (default 1e-10).
	Tol float64
	// Reorth selects the reorthogonalization policy (default FullReorth).
	Reorth Reorth
	// Seed drives the random starting vector; fixed default for
	// reproducibility.
	Seed int64
}

func (o *Options) fill(m, n int) {
	if o.K <= 0 {
		o.K = 1
	}
	if o.K > minInt(m, n) {
		o.K = minInt(m, n)
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = minInt(minInt(m, n), maxInt(4*o.K, o.K+32))
	}
	if o.MaxSteps < o.K {
		o.MaxSteps = o.K
	}
	if o.MaxSteps > minInt(m, n) {
		o.MaxSteps = minInt(m, n)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
}

// Result is a truncated SVD: A ≈ U·diag(S)·Vᵀ with k columns.
type Result struct {
	U *dense.Matrix // m×k left singular vectors (term vectors in LSI)
	S []float64     // k singular values, descending
	V *dense.Matrix // n×k right singular vectors (document vectors)
	// Steps is the bidiagonalization length actually used.
	Steps int
	// Converged reports whether all K residuals met Tol (an exact-length
	// factorization, Steps == min(m,n), is always marked converged).
	Converged bool
	// MatVecs counts operator applications (Ax plus Aᵀx), the Table 7 cost
	// driver.
	MatVecs int
}

// Factors converts the result to dense.SVDFactors for interop.
func (r *Result) Factors() *dense.SVDFactors {
	return &dense.SVDFactors{U: r.U, S: r.S, V: r.V}
}

var ErrNotConverged = errors.New("lanczos: not converged within MaxSteps")

// reorthEta is the Daniel–Gragg–Kaufman criterion for the adaptive second
// Gram–Schmidt pass: if one pass left at least 1/√2 of the vector's norm,
// the projection was benign and the pass is not repeated; otherwise heavy
// cancellation occurred and a second (rarely, third) pass runs. This keeps
// the basis orthogonal to machine precision at roughly half the sweeps of
// an unconditional two-pass scheme.
const reorthEta = 0.70710678118654752

// reorthBlocked orthogonalizes v against the rows of basis with classical
// Gram–Schmidt expressed as two Level-2 kernels: c = B·v, then
// v ← v − Bᵀ·c. coef is caller-owned workspace of length basis.Rows. The
// pass repeats (up to twice more) only while the DGK criterion detects
// heavy cancellation.
//
//lsilint:noalloc
func reorthBlocked(basis *dense.Matrix, v, coef []float64) {
	if basis.Rows == 0 {
		return
	}
	prev := dense.Norm2(v)
	for pass := 0; pass < 3; pass++ {
		// The blocked matvecs spawn worker goroutines above the parallel
		// threshold — a per-block launch amortized over the whole Level-2
		// kernel, not a per-element allocation.
		dense.MulVecInto(basis, v, coef)         //lsilint:ignore noalloctrans
		dense.MulVecTAddInto(-1, basis, coef, v) //lsilint:ignore noalloctrans
		nrm := dense.Norm2(v)
		if nrm >= reorthEta*prev {
			return
		}
		prev = nrm
	}
}

// bidiagStep advances the Golub–Kahan recurrence by one step, writing
// u_j and v_{j+1} directly into rows j of ub and j+1 of vb:
//
//	u_j = A·v_j − β_{j−1}·u_{j−1}, reorthogonalized, normalized
//	v_{j+1} = Aᵀ·u_j − α_j·v_j, same treatment
//
// It returns (α_j, β_j); when α_j underflows, β_j is 0 and the second
// matvec never ran (the caller's MatVecs accounting relies on this).
// uview/vview are reusable window headers and coef is scratch of length
// ≥ j+1, all caller-owned so the step itself stays allocation-free.
//
//lsilint:noalloc
func bidiagStep(a Operator, ub, vb, uview, vview *dense.Matrix, coef []float64, betaPrev float64, j int, reorth Reorth) (alpha, beta float64) {
	// The Operator methods dispatch through the interface, which the
	// transitive check cannot see through; both implementations (sparse
	// CSR and the dense mirror) write into caller-owned buffers and are
	// covered by their own noalloc annotations and benchmarks.
	m, n := a.Dims() //lsilint:ignore noalloctrans
	urow := ub.Row(j)
	a.Apply(vb.Row(j), urow) //lsilint:ignore noalloctrans
	if j > 0 {
		dense.Axpy(-betaPrev, ub.Row(j-1), urow)
	}
	if reorth == FullReorth && j > 0 {
		uview.Rows, uview.Data = j, ub.Data[:j*m]
		reorthBlocked(uview, urow, coef[:j])
	}
	alpha = dense.Normalize(urow)
	if alpha <= 1e-300 {
		return alpha, 0
	}

	vrow := vb.Row(j + 1)
	a.ApplyT(urow, vrow) //lsilint:ignore noalloctrans
	dense.Axpy(-alpha, vb.Row(j), vrow)
	if reorth == FullReorth {
		vview.Rows, vview.Data = j+1, vb.Data[:(j+1)*n]
		reorthBlocked(vview, vrow, coef[:j+1])
	}
	beta = dense.Normalize(vrow)
	return alpha, beta
}

// TruncatedSVD computes the K largest singular triplets of A.
//
// It runs Golub–Kahan bidiagonalization A·V_j = U_j·B_j,
// Aᵀ·U_j = V_j·B_jᵀ + β_j v_{j+1} e_jᵀ, keeping both Lanczos bases in
// contiguous row-major blocks so reorthogonalization runs as blocked gemv
// pairs. Every Options.K/4 steps it computes the dense SVD of the small
// projected bidiagonal B_j (reusing one buffer) and checks the K-th Ritz
// residual β_j·|p_K[j]| against Tol·σ₁ from B_j's left factor alone; the
// full-space Ritz vectors are materialized — one tiled gemm per side —
// only once the residuals actually pass (or the recurrence runs out).
//
// If convergence is not reached, the best available estimate is returned
// together with ErrNotConverged so callers can retry with larger MaxSteps.
func TruncatedSVD(a Operator, opts Options) (*Result, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: dense.New(m, 0), V: dense.New(n, 0), Converged: true}, nil
	}
	opts.fill(m, n)
	k := opts.K
	steps := opts.MaxSteps
	rng := rand.New(rand.NewSource(opts.Seed + 0x1db))

	// Contiguous Lanczos bases: row j of ub/vb is u_j/v_j. Preallocated at
	// the recurrence cap so the iteration loop never grows them; uview and
	// vview are reusable window headers over the filled prefixes.
	ub := dense.New(steps, m)
	vb := dense.New(steps+1, n)
	uview := &dense.Matrix{Cols: m}
	vview := &dense.Matrix{Cols: n}
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps)
	coef := make([]float64, steps+1) // reorthogonalization coefficients

	// Reused buffer for the projected bidiagonal matrix B_j.
	var bbuf []float64
	bmat := &dense.Matrix{}
	projected := func(j int) *dense.SVDFactors {
		if cap(bbuf) < j*j {
			bbuf = make([]float64, j*j)
		}
		data := bbuf[:j*j]
		for i := range data {
			data[i] = 0
		}
		for i := 0; i < j; i++ {
			data[i*j+i] = alphas[i]
			if i+1 < j {
				data[i*j+i+1] = betas[i]
			}
		}
		bmat.Rows, bmat.Cols, bmat.Data = j, j, data
		return dense.SVD(bmat)
	}

	// Start inside the row space of A: v₁ ∝ Aᵀu₀ for random u₀. A plain
	// random v₁ carries a null-space component that can never be purged by
	// the recurrence; starting in the row space guarantees breakdown at
	// rank(A) steps with an exact factorization.
	v0 := vb.Row(0)
	a.ApplyT(randomUnit(rng, m), v0)
	matvecs := 1
	if dense.Normalize(v0) == 0 {
		// Aᵀ annihilated a random vector: treat A as (numerically) zero.
		return &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: matvecs}, nil
	}

	checkEvery := maxInt(1, k/4)
	nu := 0 // completed basis vectors on each side
	for j := 0; j < steps; j++ {
		betaPrev := 0.0
		if j > 0 {
			betaPrev = betas[j-1]
		}
		alpha, beta := bidiagStep(a, ub, vb, uview, vview, coef, betaPrev, j, opts.Reorth)
		matvecs++ // A·v_j
		if alpha <= 1e-300 {
			// Invariant subspace: the operator has rank ≤ j. Everything we
			// can get is already in hand.
			break
		}
		matvecs++ // Aᵀ·u_j
		nu = j + 1
		alphas = append(alphas, alpha)
		betas = append(betas, beta)
		if beta <= 1e-300 {
			// Exact invariant subspace on the right: factorization is exact
			// with j+1 steps.
			break
		}

		// Amortized convergence check: SVD of the small projected problem
		// only — residuals come from the last row of its left factor, and
		// no full-space Ritz vector is touched unless they all pass.
		if j+1 >= k && ((j+1)%checkEvery == 0 || j+1 == steps) {
			f := projected(nu)
			if ritzConverged(f, nu, k, betas[nu-1], opts.Tol) {
				res := materializeRitz(ub, vb, f, nu, k, m, n)
				res.Converged = true
				res.MatVecs = matvecs
				return res, nil
			}
		}
	}

	// Ran out of steps or hit an invariant subspace. If the basis spans
	// the whole smaller dimension, or a breakdown occurred (nu < steps),
	// the factorization is exact.
	if nu == 0 {
		// A is (numerically) zero.
		return &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: matvecs}, nil
	}
	exact := nu < steps || nu >= minInt(m, n)
	kk := minInt(k, nu)
	f := projected(nu)
	betaLast := 0.0
	if len(betas) >= nu {
		betaLast = betas[nu-1]
	}
	done := exact || ritzConverged(f, nu, kk, betaLast, opts.Tol)
	res := materializeRitz(ub, vb, f, nu, kk, m, n)
	res.MatVecs = matvecs
	if done {
		res.Converged = true
		return res, nil
	}
	return res, ErrNotConverged
}

// ritzConverged checks the K Ritz residuals of the projected factorization
// f (of the j×j bidiagonal B_j) against tol·σ₁. Residual of triplet i is
// β_j·|U_B[j−1, i]| — last row of the small left factor only, no
// full-space work.
func ritzConverged(f *dense.SVDFactors, j, k int, betaLast, tol float64) bool {
	sigma1 := 1.0
	if len(f.S) > 0 && f.S[0] > 0 {
		sigma1 = f.S[0]
	}
	for i := 0; i < k; i++ {
		if betaLast*math.Abs(f.U.At(j-1, i)) > tol*sigma1 {
			return false
		}
	}
	return true
}

// materializeRitz maps the projected singular vectors back to the full
// space: U_out = [u_1 … u_j]ᵀ-block · P_k and likewise for V — one tiled
// parallel gemm per side instead of k·j per-column Axpy sweeps.
func materializeRitz(ub, vb *dense.Matrix, f *dense.SVDFactors, j, k, m, n int) *Result {
	if k > j {
		k = j
	}
	s := make([]float64, k)
	copy(s, f.S[:k])
	pu := f.U.Slice(0, j, 0, k)
	pv := f.V.Slice(0, j, 0, k)
	uBasis := &dense.Matrix{Rows: j, Cols: m, Data: ub.Data[:j*m]}
	vBasis := &dense.Matrix{Rows: j, Cols: n, Data: vb.Data[:j*n]}
	return &Result{
		U:     dense.MulT(uBasis, pu), // (j×m)ᵀ·(j×k) = m×k
		S:     s,
		V:     dense.MulT(vBasis, pv), // (j×n)ᵀ·(j×k) = n×k
		Steps: j,
	}
}

func randomUnit(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if dense.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Verify returns max over the k triplets of ‖A vᵢ − σᵢ uᵢ‖ / σ₁ — a direct
// a-posteriori accuracy check used by tests and the harness.
func Verify(a Operator, r *Result) float64 {
	m, _ := a.Dims()
	if len(r.S) == 0 {
		return 0
	}
	worst := 0.0
	y := make([]float64, m)
	for i := 0; i < len(r.S); i++ {
		a.Apply(r.V.Col(i), y)
		u := r.U.Col(i)
		for p := range y {
			y[p] -= r.S[i] * u[p]
		}
		res := dense.Norm2(y) / maxFloat(r.S[0], 1e-300)
		if res > worst {
			worst = res
		}
	}
	return worst
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
