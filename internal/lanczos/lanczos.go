// Package lanczos computes truncated singular value decompositions of
// large sparse matrices by Golub–Kahan–Lanczos bidiagonalization, the same
// algorithm family as the SVDPACKC las2 solver the paper used for its TREC
// runs (§5.3). "The bulk of LSI processing time is spent in computing the
// truncated SVD of the large sparse term by document matrices" (§1) — this
// package is that bulk.
//
// The solver works against an abstract Operator so it can run on
// sparse.CSR, dense.Matrix, or composites (A_k | D) without materializing
// anything; its per-iteration cost is one Ax, one Aᵀx, and the
// reorthogonalization sweeps, exactly the cost model of Table 7.
package lanczos

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Operator is a linear map with access to its adjoint — everything the
// bidiagonalization needs.
type Operator interface {
	// Dims returns (rows, cols) of the operator.
	Dims() (m, n int)
	// Apply computes y = A·x (len(x)=cols, len(y)=rows).
	Apply(x, y []float64)
	// ApplyT computes y = Aᵀ·x (len(x)=rows, len(y)=cols).
	ApplyT(x, y []float64)
}

// csrOp adapts sparse.CSR to Operator.
type csrOp struct{ m *sparse.CSR }

func (o csrOp) Dims() (int, int)      { return o.m.Rows, o.m.Cols }
func (o csrOp) Apply(x, y []float64)  { o.m.MulVec(x, y) }
func (o csrOp) ApplyT(x, y []float64) { o.m.MulVecT(x, y) }

// OpCSR wraps a sparse matrix as an Operator.
func OpCSR(m *sparse.CSR) Operator { return csrOp{m} }

// denseOp adapts dense.Matrix to Operator.
type denseOp struct{ m *dense.Matrix }

func (o denseOp) Dims() (int, int) { return o.m.Rows, o.m.Cols }
func (o denseOp) Apply(x, y []float64) {
	copy(y, dense.MulVec(o.m, x))
}
func (o denseOp) ApplyT(x, y []float64) {
	copy(y, dense.MulVecT(o.m, x))
}

// OpDense wraps a dense matrix as an Operator.
func OpDense(m *dense.Matrix) Operator { return denseOp{m} }

// Reorth selects the reorthogonalization policy.
type Reorth int

const (
	// FullReorth orthogonalizes every new Lanczos vector against the whole
	// basis (two passes). Always accurate; O(j·n) extra per step.
	FullReorth Reorth = iota
	// NoReorth runs the textbook three-term recurrence untouched. Fast but
	// loses orthogonality and produces spurious duplicate Ritz values; kept
	// for the ablation benchmark.
	NoReorth
)

// Options configures TruncatedSVD.
type Options struct {
	// K is the number of singular triplets wanted (the paper uses 100–300).
	K int
	// MaxSteps caps the bidiagonalization length. 0 means
	// min(min(m,n), max(4K, K+32)).
	MaxSteps int
	// Tol is the convergence tolerance on the Ritz residual relative to
	// σ₁ (default 1e-10).
	Tol float64
	// Reorth selects the reorthogonalization policy (default FullReorth).
	Reorth Reorth
	// Seed drives the random starting vector; fixed default for
	// reproducibility.
	Seed int64
}

func (o *Options) fill(m, n int) {
	if o.K <= 0 {
		o.K = 1
	}
	if o.K > minInt(m, n) {
		o.K = minInt(m, n)
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = minInt(minInt(m, n), maxInt(4*o.K, o.K+32))
	}
	if o.MaxSteps < o.K {
		o.MaxSteps = o.K
	}
	if o.MaxSteps > minInt(m, n) {
		o.MaxSteps = minInt(m, n)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
}

// Result is a truncated SVD: A ≈ U·diag(S)·Vᵀ with k columns.
type Result struct {
	U *dense.Matrix // m×k left singular vectors (term vectors in LSI)
	S []float64     // k singular values, descending
	V *dense.Matrix // n×k right singular vectors (document vectors)
	// Steps is the bidiagonalization length actually used.
	Steps int
	// Converged reports whether all K residuals met Tol (an exact-length
	// factorization, Steps == min(m,n), is always marked converged).
	Converged bool
	// MatVecs counts operator applications (Ax plus Aᵀx), the Table 7 cost
	// driver.
	MatVecs int
}

// Factors converts the result to dense.SVDFactors for interop.
func (r *Result) Factors() *dense.SVDFactors {
	return &dense.SVDFactors{U: r.U, S: r.S, V: r.V}
}

var ErrNotConverged = errors.New("lanczos: not converged within MaxSteps")

// TruncatedSVD computes the K largest singular triplets of A.
//
// It runs Golub–Kahan bidiagonalization A·V_j = U_j·B_j,
// Aᵀ·U_j = V_j·B_jᵀ + β_j v_{j+1} e_jᵀ, computes the dense SVD of the small
// bidiagonal B_j each sweep, and stops when the K-th Ritz residual
// β_j·|p_K[j]| falls below Tol·σ₁. With Options.Reorth == FullReorth the
// Lanczos bases keep orthogonality to machine precision, which is what
// las2-style single-vector Lanczos achieves through selective
// reorthogonalization.
//
// If convergence is not reached, the best available estimate is returned
// together with ErrNotConverged so callers can retry with larger MaxSteps.
func TruncatedSVD(a Operator, opts Options) (*Result, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return &Result{U: dense.New(m, 0), V: dense.New(n, 0), Converged: true}, nil
	}
	opts.fill(m, n)
	k := opts.K
	steps := opts.MaxSteps
	rng := rand.New(rand.NewSource(opts.Seed + 0x1db))

	// Lanczos bases, stored row-per-vector for cache-friendly
	// reorthogonalization sweeps.
	us := make([][]float64, 0, steps) // each length m
	vs := make([][]float64, 0, steps) // each length n
	alphas := make([]float64, 0, steps)
	betas := make([]float64, 0, steps)

	// Start inside the row space of A: v₁ ∝ Aᵀu₀ for random u₀. A plain
	// random v₁ carries a null-space component that can never be purged by
	// the recurrence; starting in the row space guarantees breakdown at
	// rank(A) steps with an exact factorization.
	v := make([]float64, n)
	a.ApplyT(randomUnit(rng, m), v)
	if dense.Normalize(v) == 0 {
		// Aᵀ annihilated a random vector: treat A as (numerically) zero.
		return &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: 1}, nil
	}
	vs = append(vs, v)

	tmpM := make([]float64, m)
	tmpN := make([]float64, n)
	matvecs := 0

	checkEvery := maxInt(1, k/4)

	breakdown := false
	var lastResult *Result
	for j := 0; j < steps; j++ {
		// u_j = A v_j − β_{j−1} u_{j−1}
		a.Apply(vs[j], tmpM)
		matvecs++
		u := append([]float64(nil), tmpM...)
		if j > 0 {
			dense.Axpy(-betas[j-1], us[j-1], u)
		}
		if opts.Reorth == FullReorth {
			reorthogonalize(u, us)
		}
		alpha := dense.Normalize(u)
		if alpha <= 1e-300 {
			// Invariant subspace: the operator has rank ≤ j. Everything we
			// can get is already in hand.
			breakdown = true
			break
		}
		us = append(us, u)
		alphas = append(alphas, alpha)

		// v_{j+1} = Aᵀ u_j − α_j v_j
		a.ApplyT(u, tmpN)
		matvecs++
		vNext := append([]float64(nil), tmpN...)
		dense.Axpy(-alpha, vs[j], vNext)
		if opts.Reorth == FullReorth {
			reorthogonalize(vNext, vs)
		}
		beta := dense.Normalize(vNext)
		betas = append(betas, beta)
		if beta <= 1e-300 {
			// Exact invariant subspace on the right: factorization is exact
			// with j+1 steps.
			breakdown = true
			break
		}
		vs = append(vs, vNext)

		// Convergence check on the projected problem.
		if j+1 >= k && ((j+1)%checkEvery == 0 || j+1 == steps) {
			res, done := extract(a, us, vs[:len(us)], alphas, betas, k, opts.Tol, false)
			res.MatVecs = matvecs
			lastResult = res
			if done {
				res.Converged = true
				return res, nil
			}
		}
	}

	// Ran out of steps (or hit an invariant subspace). If the basis spans
	// the whole smaller dimension, or a breakdown occurred, the
	// factorization is exact.
	exact := breakdown || len(us) >= minInt(m, n)
	if len(us) == 0 {
		// A is (numerically) zero.
		z := &Result{U: dense.New(m, 0), S: nil, V: dense.New(n, 0), Converged: true, MatVecs: matvecs}
		return z, nil
	}
	res, done := extract(a, us, vs[:len(us)], alphas, betas, minInt(k, len(us)), opts.Tol, exact)
	res.MatVecs = matvecs
	if done || exact {
		res.Converged = true
		return res, nil
	}
	if lastResult != nil && len(lastResult.S) >= len(res.S) {
		res = lastResult
	}
	return res, ErrNotConverged
}

// reorthogonalize removes the components of v along every basis vector,
// with a second pass for numerical safety (the "twice is enough" rule).
func reorthogonalize(v []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			dense.Axpy(-dense.Dot(b, v), b, v)
		}
	}
}

// extract solves the small projected SVD and maps Ritz vectors back to the
// full space. Returns the rank-k result and whether all k residuals
// converged.
func extract(a Operator, us, vs [][]float64, alphas, betas []float64, k int, tol float64, exact bool) (*Result, bool) {
	j := len(us)
	// Build the (upper) bidiagonal projected matrix B: diag = alphas,
	// superdiag = betas[0..j-2].
	b := dense.New(j, j)
	for i := 0; i < j; i++ {
		b.Set(i, i, alphas[i])
		if i+1 < j {
			b.Set(i, i+1, betas[i])
		}
	}
	f := dense.SVD(b)
	if k > j {
		k = j
	}

	m := len(us[0])
	n := len(vs[0])
	u := dense.New(m, k)
	v := dense.New(n, k)
	s := make([]float64, k)
	copy(s, f.S[:k])

	// U_out = [u_1 … u_j]·P_k ; V_out = [v_1 … v_j]·Q_k.
	ucol := make([]float64, m)
	vcol := make([]float64, n)
	for c := 0; c < k; c++ {
		for i := range ucol {
			ucol[i] = 0
		}
		for i := range vcol {
			vcol[i] = 0
		}
		for r := 0; r < j; r++ {
			if pu := f.U.At(r, c); pu != 0 {
				dense.Axpy(pu, us[r], ucol)
			}
			if pv := f.V.At(r, c); pv != 0 {
				dense.Axpy(pv, vs[r], vcol)
			}
		}
		u.SetCol(c, ucol)
		v.SetCol(c, vcol)
	}

	res := &Result{U: u, S: s, V: v, Steps: j}
	if exact {
		return res, true
	}
	// Residual of triplet i: β_j·|P[j-1, i]| where β_j is the last beta.
	betaLast := 0.0
	if len(betas) >= j {
		betaLast = betas[j-1]
	}
	sigma1 := 1.0
	if len(f.S) > 0 && f.S[0] > 0 {
		sigma1 = f.S[0]
	}
	for i := 0; i < k; i++ {
		if betaLast*math.Abs(f.U.At(j-1, i)) > tol*sigma1 {
			return res, false
		}
	}
	return res, true
}

func randomUnit(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if dense.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Verify returns max over the k triplets of ‖A vᵢ − σᵢ uᵢ‖ / σ₁ — a direct
// a-posteriori accuracy check used by tests and the harness.
func Verify(a Operator, r *Result) float64 {
	m, _ := a.Dims()
	if len(r.S) == 0 {
		return 0
	}
	worst := 0.0
	y := make([]float64, m)
	for i := 0; i < len(r.S); i++ {
		a.Apply(r.V.Col(i), y)
		u := r.U.Col(i)
		for p := range y {
			y[p] -= r.S[i] * u[p]
		}
		res := dense.Norm2(y) / maxFloat(r.S[0], 1e-300)
		if res > worst {
			worst = res
		}
	}
	return worst
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
