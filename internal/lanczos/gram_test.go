package lanczos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestTruncatedSVDGramMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randomSparse(rng, 50, 35, 0.2)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	for _, k := range []int{1, 4, 8} {
		res, err := TruncatedSVDGram(OpCSR(a), Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := 0; i < k; i++ {
			if math.Abs(res.S[i]-ref.S[i]) > 1e-7*(1+ref.S[0]) {
				t.Fatalf("k=%d σ%d: gram %v dense %v", k, i, res.S[i], ref.S[i])
			}
		}
		if v := Verify(OpCSR(a), res); v > 1e-6 {
			t.Fatalf("k=%d residual %v", k, v)
		}
	}
}

func TestTruncatedSVDGramWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randomSparse(rng, 12, 80, 0.3)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	res, err := TruncatedSVDGram(OpCSR(a), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(res.S[i]-ref.S[i]) > 1e-7*(1+ref.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], ref.S[i])
		}
	}
	if res.U.Rows != 12 || res.V.Rows != 80 {
		t.Fatalf("U %dx%d V %dx%d", res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols)
	}
}

// The two Lanczos formulations (bidiagonalization vs Gram tridiagonal) must
// agree — they are different factorizations of the same Krylov space.
func TestGramAgreesWithBidiagonalization(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := randomSparse(rng, 60, 40, 0.15)
	b1, err := TruncatedSVD(OpCSR(a), Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TruncatedSVDGram(OpCSR(a), Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if math.Abs(b1.S[i]-b2.S[i]) > 1e-7*(1+b1.S[0]) {
			t.Fatalf("σ%d: bidiag %v gram %v", i, b1.S[i], b2.S[i])
		}
	}
}

func TestTruncatedSVDGramZeroMatrix(t *testing.T) {
	res, err := TruncatedSVDGram(OpCSR(randomSparse(rand.New(rand.NewSource(1)), 5, 4, 0)), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 0 {
		t.Fatalf("zero matrix S = %v", res.S)
	}
}

func TestTruncatedSVDGramExactRank(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := knownSpectrum(rng, 20, 15, []float64{4, 2})
	res, err := TruncatedSVDGram(OpDense(a), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-4) > 1e-7 || math.Abs(res.S[1]-2) > 1e-7 {
		t.Fatalf("S = %v", res.S)
	}
}

func TestSubspaceIterationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	want := []float64{30, 12, 6, 2.5, 1, 0.3}
	a := knownSpectrum(rng, 70, 50, want)
	res := SubspaceIteration(OpDense(a), Options{K: 3, Seed: 1}, 6, 40)
	for i := 0; i < 3; i++ {
		if math.Abs(res.S[i]-want[i]) > 1e-5*want[0] {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], want[i])
		}
	}
	if v := Verify(OpDense(a), res); v > 1e-5 {
		t.Fatalf("residual %v", v)
	}
	if e := dense.OrthogonalityError(res.V); e > 1e-8 {
		t.Fatalf("V orthogonality %v", e)
	}
}

func TestSubspaceIterationSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a := randomSparse(rng, 80, 60, 0.1)
	ref := dense.SVDJacobi(dense.NewFromRows(a.Dense()))
	res := SubspaceIteration(OpCSR(a), Options{K: 4, Seed: 2}, 8, 60)
	for i := 0; i < 4; i++ {
		if math.Abs(res.S[i]-ref.S[i]) > 1e-3*(1+ref.S[0]) {
			t.Fatalf("σ%d = %v want %v", i, res.S[i], ref.S[i])
		}
	}
}

func TestAllFourSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := randomSparse(rng, 90, 70, 0.12)
	op := OpCSR(a)
	const k = 5
	bidiag, err := TruncatedSVD(op, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	gram, err := TruncatedSVDGram(op, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	randz := RandomizedSVD(op, RandomizedOptions{K: k, Seed: 3, PowerIters: 4, Oversample: 12})
	sis := SubspaceIteration(op, Options{K: k, Seed: 3}, 10, 80)
	for i := 0; i < k; i++ {
		base := bidiag.S[i]
		for name, other := range map[string]float64{
			"gram": gram.S[i], "randomized": randz.S[i], "subspace": sis.S[i],
		} {
			if math.Abs(other-base) > 5e-3*(1+bidiag.S[0]) {
				t.Fatalf("σ%d %s = %v vs bidiag %v", i, name, other, base)
			}
		}
	}
}

func BenchmarkGramLanczosK10(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomSparse(rng, 5000, 1000, 0.01)
	op := OpCSR(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// See BenchmarkLanczosK10: clustered bulk spectrum needs headroom.
		if _, err := TruncatedSVDGram(op, Options{K: 10, MaxSteps: 250}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubspaceIterationK10(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomSparse(rng, 5000, 1000, 0.01)
	op := OpCSR(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubspaceIteration(op, Options{K: 10, Seed: int64(i)}, 8, 20)
	}
}
