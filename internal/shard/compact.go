// Coordinated cross-shard compaction.
//
// A fold-in appends rows without touching the basis, so shards drift
// apart only in the harmless sense of accumulating non-orthogonal rows.
// An SVD-update (core.UpdateDocs) is different: it re-diagonalizes, so
// if each shard updated independently each would end up scoring in its
// own rotated latent space and cross-shard scores would stop being
// comparable — exactness dies. The router therefore runs compaction as
// one global plan applied locally:
//
//  1. Freeze every shard (engine.BeginExternalCompaction): each hands
//     back its pure-SVD base (shared U/S across shards by construction)
//     and its pending fold-ins, and keeps serving its current snapshot.
//  2. Order the union of pending documents by global submission ordinal
//     — exactly the fold order a single engine over the concatenated
//     corpus would have used — and compute ONE core.PlanDocsUpdate from
//     it: new U, new S, a k×k' rotation for existing rows, and the k'
//     coordinates of the pending rows.
//  3. Each shard rotates its own V block. Row rotation is row-local and
//     dense.Mul is per-row deterministic, so a shard's rotated block is
//     bit-identical to the corresponding rows of the rotated global V.
//  4. Resolve fixSigns globally: each block reports, per column, its
//     largest-|entry| candidate tagged with a canonical row key (base
//     rows first by ordinal, then pending rows by ordinal — the single
//     engine's V row order); core.CombineSignFlips picks the same
//     winner the single-model scan would, every shard flips the same
//     columns.
//  5. Each shard assembles [rotated base ; its share of VNew in its own
//     fold order], applies the plan against its base, and lands it
//     (engine.FinishExternalCompaction) — which re-folds any documents
//     that arrived during the window onto the NEW basis, bumps the
//     coordinate epoch, and rebuilds the scoring cache and IVF index,
//     exactly like a native compaction.
//
// Failure handling: any error before step 5 aborts every frozen shard
// back to normal operation with nothing changed. The plan itself never
// mutates shard state until Finish.
package shard

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/engine"
)

// pendRow locates one pending document inside the frozen states: which
// shard holds it, at which local queue position, and its global
// submission ordinal.
type pendRow struct {
	shard, local int
	ord          int64
}

// pendBlockOffset ranks every pending row's canonical sign key after
// every base row's, matching the single engine's V layout (base rows
// first, then pending in fold order). A document can be pending with a
// LOWER ordinal than some base document — it arrived during a previous
// compaction window and was re-folded as leftover — so plain ordinal
// order over the union would be wrong.
const pendBlockOffset = int64(1) << 40

// Compact runs one coordinated compaction cycle synchronously and
// returns once every shard serves the updated basis (or nothing changed:
// zero pending documents is a no-op). Concurrent calls serialize; the
// background monitor uses this same entry point.
func (r *Router) Compact() error {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	r.compacting.Store(true)
	defer r.compacting.Store(false)

	// 1. Freeze everything, or nothing.
	states := make([]*engine.ExternalCompaction, len(r.shards))
	abort := func() {
		for s, st := range states {
			if st != nil {
				r.shards[s].AbortExternalCompaction()
			}
		}
	}
	for s, e := range r.shards {
		st, err := e.BeginExternalCompaction()
		if err != nil {
			abort()
			return err
		}
		states[s] = st
	}
	liveTotal, deadPendTotal, deadBaseTotal := 0, 0, 0
	for _, st := range states {
		deadBaseTotal += len(st.DeadBaseRows)
		for _, d := range st.DeadPending {
			if d {
				deadPendTotal++
			}
		}
		liveTotal += len(st.Pending)
	}
	liveTotal -= deadPendTotal
	if liveTotal == 0 && deadPendTotal == 0 && deadBaseTotal == 0 {
		abort()
		return nil
	}

	// 2a. Global downdate plan: when tombstoned base rows exist and enough
	// live rows remain globally, ONE core.PlanDocsDowndate over the
	// ordinal-ordered live base rows folds them out; every shard applies
	// the same plan to its own live rows (row-local, bit-identical at any
	// shard count). A degenerate downdate leaves the rows tombstoned.
	bases := make([]*core.Model, len(states))
	for s, st := range states {
		bases[s] = st.Base
	}
	downdated := false
	if deadBaseTotal > 0 {
		dd, err := r.downdateBases(states)
		switch {
		case err == nil:
			bases = dd
			downdated = true
		case errors.Is(err, core.ErrDowndateDegenerate):
			// Keep serving through tombstones; the update below still runs.
		default:
			abort()
			return err
		}
	}

	// 2b. Global pending order = submission ordinal order over the LIVE
	// pending entries (dead ones are dropped, never absorbed), and one
	// plan under the configured strategy.
	pend := make([]pendRow, 0, liveTotal)
	for s, st := range states {
		for i, d := range st.Pending {
			if !dead(st.DeadPending, i) {
				pend = append(pend, pendRow{shard: s, local: i, ord: int64(r.ordOf(d.ID))})
			}
		}
	}
	if len(pend) == 0 {
		// Nothing to absorb: land the (possibly downdated) bases as they
		// are — the cycle only dropped dead pending entries or folded out
		// dead base rows.
		return r.land(states, bases, downdated, deadBaseTotal, 0)
	}
	sortPend(pend)
	docs := make([]corpus.Document, len(pend))
	// globalRow[s][i] is shard s's i-th pending document's row in VNew
	// (-1 for dead entries, which have no row).
	globalRow := make([][]int, len(states))
	for s, st := range states {
		globalRow[s] = make([]int, len(st.Pending))
		for i := range globalRow[s] {
			globalRow[s][i] = -1
		}
	}
	for g, p := range pend {
		docs[g] = states[p.shard].Pending[p.local]
		globalRow[p.shard][p.local] = g
	}
	opts := core.UpdateOptions{Strategy: r.cfg.Engine.CompactionStrategy, GKRank: r.cfg.Engine.GKRank}
	plan, err := bases[0].PlanDocsUpdateOpts(r.coll.DocVectors(docs), opts)
	if err != nil {
		abort()
		return err
	}

	// 3+4. Per-shard rotation and global sign resolution. Tombstoned base
	// rows (present only when the downdate was degenerate) rotate with
	// their block but are excluded from sign candidates: their registry
	// ordinals are gone, and leaving them out keeps the flip decision a
	// function of live rows only — identical at every shard count.
	rots := make([]*dense.Matrix, len(states))
	cands := make([][]core.SignCandidate, 0, len(states)+1)
	for s, st := range states {
		rots[s] = plan.RotateDocs(bases[s].V)
		liveDocs, liveRows := liveBase(st, downdated)
		ords := make([]int64, len(liveDocs))
		for i, d := range liveDocs {
			ords[i] = int64(r.ordOf(d.ID))
		}
		cands = append(cands, core.SignCandidates(gatherRows(rots[s], liveRows), ords))
	}
	newOrds := make([]int64, len(pend))
	for g, p := range pend {
		newOrds[g] = pendBlockOffset + p.ord
	}
	cands = append(cands, core.SignCandidates(plan.VNew, newOrds))
	flip := core.CombineSignFlips(cands...)
	plan.ApplySigns(flip)

	// 5. Assemble and land per shard.
	for s := range states {
		dense.FlipColumns(rots[s], flip)
		mine := dense.New(countLive(globalRow[s]), plan.VNew.Cols)
		j := 0
		for _, g := range globalRow[s] {
			if g >= 0 {
				copy(mine.Row(j), plan.VNew.Row(g))
				j++
			}
		}
		bases[s] = plan.Apply(bases[s], rots[s].AugmentRows(mine))
	}
	return r.land(states, bases, downdated, deadBaseTotal, len(pend))
}

// dead reports mask[i], tolerating a short or nil mask.
func dead(mask []bool, i int) bool { return i < len(mask) && mask[i] }

func countLive(globalRow []int) int {
	n := 0
	for _, g := range globalRow {
		if g >= 0 {
			n++
		}
	}
	return n
}

// liveBase lists shard st's live base documents and their local rows in
// the (possibly downdated) base: after a downdate the dead rows are
// already gone, so every row is live; otherwise the dead rows are still
// present and are filtered out.
func liveBase(st *engine.ExternalCompaction, downdated bool) ([]corpus.Document, []int) {
	if downdated || len(st.DeadBaseRows) == 0 {
		if downdated && len(st.DeadBaseRows) > 0 {
			docs := make([]corpus.Document, 0, len(st.BaseDocs)-len(st.DeadBaseRows))
			rows := make([]int, 0, cap(docs))
			j := 0
			for i, d := range st.BaseDocs {
				if j < len(st.DeadBaseRows) && st.DeadBaseRows[j] == i {
					j++
					continue
				}
				rows = append(rows, len(docs))
				docs = append(docs, d)
			}
			return docs, rows
		}
		rows := make([]int, len(st.BaseDocs))
		for i := range rows {
			rows[i] = i
		}
		return st.BaseDocs, rows
	}
	docs := make([]corpus.Document, 0, len(st.BaseDocs)-len(st.DeadBaseRows))
	rows := make([]int, 0, len(st.BaseDocs)-len(st.DeadBaseRows))
	j := 0
	for i, d := range st.BaseDocs {
		if j < len(st.DeadBaseRows) && st.DeadBaseRows[j] == i {
			j++
			continue
		}
		docs = append(docs, d)
		rows = append(rows, i)
	}
	return docs, rows
}

// gatherRows copies the listed rows of m into a fresh matrix (identity
// fast path when every row is listed in order).
func gatherRows(m *dense.Matrix, rows []int) *dense.Matrix {
	if len(rows) == m.Rows {
		return m
	}
	out := dense.New(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// downdateBases computes one global downdate plan over the ordinal-
// ordered live base rows of every shard and applies it per shard,
// returning the downdated bases. Sign resolution uses each row's
// position in the global live ordering as its canonical key — the same
// convention core.DowndateDocs uses on a single model.
func (r *Router) downdateBases(states []*engine.ExternalCompaction) ([]*core.Model, error) {
	type liveRef struct {
		shard, liveIdx int
		row            int
		ord            int64
	}
	var refs []liveRef
	localRows := make([][]int, len(states))
	for s, st := range states {
		j := 0
		for i, d := range st.BaseDocs {
			if j < len(st.DeadBaseRows) && st.DeadBaseRows[j] == i {
				j++
				continue
			}
			refs = append(refs, liveRef{shard: s, liveIdx: len(localRows[s]), row: i, ord: int64(r.ordOf(d.ID))})
			localRows[s] = append(localRows[s], i)
		}
	}
	// Ordinal sort (insertion sort, same as sortPend: sets are modest and
	// nearly sorted already).
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].ord < refs[j-1].ord; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
	k := states[0].Base.V.Cols
	glive := dense.New(len(refs), k)
	pos := make([][]int64, len(states))
	for s := range states {
		pos[s] = make([]int64, len(localRows[s]))
	}
	for g, ref := range refs {
		copy(glive.Row(g), states[ref.shard].Base.V.Row(ref.row))
		pos[ref.shard][ref.liveIdx] = int64(g)
	}
	plan, err := states[0].Base.PlanDocsDowndate(glive)
	if err != nil {
		return nil, err
	}
	rots := make([]*dense.Matrix, len(states))
	cands := make([][]core.SignCandidate, len(states))
	for s, st := range states {
		rots[s] = plan.RotateDocs(gatherRows(st.Base.V, localRows[s]))
		cands[s] = core.SignCandidates(rots[s], pos[s])
	}
	flip := core.CombineSignFlips(cands...)
	plan.ApplySigns(flip)
	out := make([]*core.Model, len(states))
	for s, st := range states {
		dense.FlipColumns(rots[s], flip)
		out[s] = plan.Apply(st.Base, rots[s])
	}
	return out, nil
}

// land finishes every shard with its final model. Past the first
// successful Finish there is no abort path for earlier shards (they
// already landed, which is fine — the basis is shared either way); the
// rest abort back to their frozen-but-serving state on error.
func (r *Router) land(states []*engine.ExternalCompaction, models []*core.Model, downdated bool, deadBase, absorbed int) error {
	for s, st := range states {
		if err := r.shards[s].FinishExternalCompaction(models[s], len(st.Pending), downdated); err != nil {
			for t := s + 1; t < len(states); t++ {
				r.shards[t].AbortExternalCompaction()
			}
			return err
		}
	}
	if deadBase > 0 && !downdated {
		// The fold-out couldn't run (too few live rows globally): stop the
		// monitor's tombstone trigger from spinning until activity changes
		// the geometry.
		r.deadStuck.Store(true)
	}
	r.compactions.Add(1)
	r.cfg.Logf("shard: coordinated compaction absorbed %d documents (folded out %d tombstones) across %d shards",
		absorbed, deadBase+func() int {
			n := 0
			for _, st := range states {
				for _, d := range st.DeadPending {
					if d {
						n++
					}
				}
			}
			return n
		}(), len(r.shards))
	return nil
}

// sortPend orders pending rows by global submission ordinal (insertion
// sort: pending sets are small — bounded by shards × queue capacity).
func sortPend(p []pendRow) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j].ord < p[j-1].ord; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// orthogonality is the GLOBAL ‖VᵀV − I‖_F over the conceptual
// concatenated document matrix, assembled from per-shard Gram blocks:
// VᵀV = Σ_s V_sᵀV_s. Matches dense.OrthogonalityError on the
// concatenation without materializing it.
func (r *Router) orthogonality(snaps []*engine.Snapshot) float64 {
	var g *dense.Matrix
	for _, sn := range snaps {
		gs := dense.MulT(sn.Model.V, sn.Model.V)
		if g == nil {
			g = gs
			continue
		}
		for i := range g.Data {
			g.Data[i] += gs.Data[i]
		}
	}
	if g == nil {
		return 0
	}
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Cols+i] -= 1
	}
	return g.FrobeniusNorm()
}

// monitor drives threshold-triggered compaction, mirroring the single
// engine's maybeCompact but over the global orthogonality measure.
func (r *Router) monitor() {
	defer close(r.monitorDone)
	ticker := time.NewTicker(r.checkInterval())
	defer ticker.Stop()
	for {
		select {
		case <-r.monitorStop:
			return
		case <-ticker.C:
			snaps := r.snapshots()
			folded, tombs := 0, 0
			for _, sn := range snaps {
				folded += sn.Model.FoldedDocs()
				tombs += sn.Tombstones()
			}
			// Tombstones force a cycle (deletes should not wait for
			// orthogonality drift) unless a previous cycle proved the
			// fold-out degenerate; fold-ins go through the drift threshold.
			needDead := tombs > 0 && !r.deadStuck.Load()
			if !needDead && folded == 0 {
				continue
			}
			if !needDead && r.orthogonality(snaps) <= r.cfg.CompactThreshold {
				continue
			}
			if err := r.Compact(); err != nil {
				r.cfg.Logf("shard: coordinated compaction failed: %v", err)
			}
		}
	}
}

func (r *Router) checkInterval() time.Duration {
	if r.cfg.CompactCheck > 0 {
		return r.cfg.CompactCheck
	}
	d := 2 * r.cfg.Engine.BatchTick
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}
