// Coordinated cross-shard compaction.
//
// A fold-in appends rows without touching the basis, so shards drift
// apart only in the harmless sense of accumulating non-orthogonal rows.
// An SVD-update (core.UpdateDocs) is different: it re-diagonalizes, so
// if each shard updated independently each would end up scoring in its
// own rotated latent space and cross-shard scores would stop being
// comparable — exactness dies. The router therefore runs compaction as
// one global plan applied locally:
//
//  1. Freeze every shard (engine.BeginExternalCompaction): each hands
//     back its pure-SVD base (shared U/S across shards by construction)
//     and its pending fold-ins, and keeps serving its current snapshot.
//  2. Order the union of pending documents by global submission ordinal
//     — exactly the fold order a single engine over the concatenated
//     corpus would have used — and compute ONE core.PlanDocsUpdate from
//     it: new U, new S, a k×k' rotation for existing rows, and the k'
//     coordinates of the pending rows.
//  3. Each shard rotates its own V block. Row rotation is row-local and
//     dense.Mul is per-row deterministic, so a shard's rotated block is
//     bit-identical to the corresponding rows of the rotated global V.
//  4. Resolve fixSigns globally: each block reports, per column, its
//     largest-|entry| candidate tagged with a canonical row key (base
//     rows first by ordinal, then pending rows by ordinal — the single
//     engine's V row order); core.CombineSignFlips picks the same
//     winner the single-model scan would, every shard flips the same
//     columns.
//  5. Each shard assembles [rotated base ; its share of VNew in its own
//     fold order], applies the plan against its base, and lands it
//     (engine.FinishExternalCompaction) — which re-folds any documents
//     that arrived during the window onto the NEW basis, bumps the
//     coordinate epoch, and rebuilds the scoring cache and IVF index,
//     exactly like a native compaction.
//
// Failure handling: any error before step 5 aborts every frozen shard
// back to normal operation with nothing changed. The plan itself never
// mutates shard state until Finish.
package shard

import (
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/engine"
)

// pendRow locates one pending document inside the frozen states: which
// shard holds it, at which local queue position, and its global
// submission ordinal.
type pendRow struct {
	shard, local int
	ord          int64
}

// pendBlockOffset ranks every pending row's canonical sign key after
// every base row's, matching the single engine's V layout (base rows
// first, then pending in fold order). A document can be pending with a
// LOWER ordinal than some base document — it arrived during a previous
// compaction window and was re-folded as leftover — so plain ordinal
// order over the union would be wrong.
const pendBlockOffset = int64(1) << 40

// Compact runs one coordinated compaction cycle synchronously and
// returns once every shard serves the updated basis (or nothing changed:
// zero pending documents is a no-op). Concurrent calls serialize; the
// background monitor uses this same entry point.
func (r *Router) Compact() error {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	r.compacting.Store(true)
	defer r.compacting.Store(false)

	// 1. Freeze everything, or nothing.
	states := make([]*engine.ExternalCompaction, len(r.shards))
	abort := func() {
		for s, st := range states {
			if st != nil {
				r.shards[s].AbortExternalCompaction()
			}
		}
	}
	for s, e := range r.shards {
		st, err := e.BeginExternalCompaction()
		if err != nil {
			abort()
			return err
		}
		states[s] = st
	}
	total := 0
	for _, st := range states {
		total += len(st.Pending)
	}
	if total == 0 {
		abort()
		return nil
	}

	// 2. Global pending order = submission ordinal order, and one plan.
	pend := make([]pendRow, 0, total)
	for s, st := range states {
		for i, d := range st.Pending {
			pend = append(pend, pendRow{shard: s, local: i, ord: int64(r.ordOf(d.ID))})
		}
	}
	sortPend(pend)
	docs := make([]corpus.Document, total)
	// globalRow[s][i] is shard s's i-th pending document's row in VNew.
	globalRow := make([][]int, len(states))
	for s, st := range states {
		globalRow[s] = make([]int, len(st.Pending))
	}
	for g, p := range pend {
		docs[g] = states[p.shard].Pending[p.local]
		globalRow[p.shard][p.local] = g
	}
	plan, err := states[0].Base.PlanDocsUpdate(r.coll.DocVectors(docs))
	if err != nil {
		abort()
		return err
	}

	// 3+4. Per-shard rotation and global sign resolution.
	rots := make([]*dense.Matrix, len(states))
	cands := make([][]core.SignCandidate, 0, len(states)+1)
	for s, st := range states {
		rots[s] = plan.RotateDocs(st.Base.V)
		ords := make([]int64, len(st.BaseDocs))
		for i, d := range st.BaseDocs {
			ords[i] = int64(r.ordOf(d.ID))
		}
		cands = append(cands, core.SignCandidates(rots[s], ords))
	}
	newOrds := make([]int64, total)
	for g, p := range pend {
		newOrds[g] = pendBlockOffset + p.ord
	}
	cands = append(cands, core.SignCandidates(plan.VNew, newOrds))
	flip := core.CombineSignFlips(cands...)
	plan.ApplySigns(flip)

	// 5. Assemble and land per shard.
	for s, st := range states {
		dense.FlipColumns(rots[s], flip)
		mine := dense.New(len(st.Pending), plan.VNew.Cols)
		for i := range st.Pending {
			copy(mine.Row(i), plan.VNew.Row(globalRow[s][i]))
		}
		model := plan.Apply(st.Base, rots[s].AugmentRows(mine))
		if err := r.shards[s].FinishExternalCompaction(model, len(st.Pending)); err != nil {
			// Past the point of no return for earlier shards (they already
			// landed, which is fine — the basis is shared either way); the
			// rest abort back to their frozen-but-serving state.
			for t := s + 1; t < len(states); t++ {
				r.shards[t].AbortExternalCompaction()
			}
			return err
		}
	}
	r.compactions.Add(1)
	r.cfg.Logf("shard: coordinated compaction absorbed %d documents across %d shards", total, len(r.shards))
	return nil
}

// sortPend orders pending rows by global submission ordinal (insertion
// sort: pending sets are small — bounded by shards × queue capacity).
func sortPend(p []pendRow) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j].ord < p[j-1].ord; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// orthogonality is the GLOBAL ‖VᵀV − I‖_F over the conceptual
// concatenated document matrix, assembled from per-shard Gram blocks:
// VᵀV = Σ_s V_sᵀV_s. Matches dense.OrthogonalityError on the
// concatenation without materializing it.
func (r *Router) orthogonality(snaps []*engine.Snapshot) float64 {
	var g *dense.Matrix
	for _, sn := range snaps {
		gs := dense.MulT(sn.Model.V, sn.Model.V)
		if g == nil {
			g = gs
			continue
		}
		for i := range g.Data {
			g.Data[i] += gs.Data[i]
		}
	}
	if g == nil {
		return 0
	}
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Cols+i] -= 1
	}
	return g.FrobeniusNorm()
}

// monitor drives threshold-triggered compaction, mirroring the single
// engine's maybeCompact but over the global orthogonality measure.
func (r *Router) monitor() {
	defer close(r.monitorDone)
	ticker := time.NewTicker(r.checkInterval())
	defer ticker.Stop()
	for {
		select {
		case <-r.monitorStop:
			return
		case <-ticker.C:
			snaps := r.snapshots()
			folded := 0
			for _, sn := range snaps {
				folded += sn.Model.FoldedDocs()
			}
			if folded == 0 {
				continue
			}
			if r.orthogonality(snaps) <= r.cfg.CompactThreshold {
				continue
			}
			if err := r.Compact(); err != nil {
				r.cfg.Logf("shard: coordinated compaction failed: %v", err)
			}
		}
	}
}

func (r *Router) checkInterval() time.Duration {
	if r.cfg.CompactCheck > 0 {
		return r.cfg.CompactCheck
	}
	d := 2 * r.cfg.Engine.BatchTick
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}
