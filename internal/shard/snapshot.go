// Persistent snapshots of the whole serving tier: SaveSnapshot writes
// one snapfile container holding every shard's model, scoring-cache
// arrays and registry state; Restore reassembles a Router from it
// without recomputing an SVD, a mirror, a quantized tier or a cluster
// index — the -load-model path, whose startup cost is O(header + JSON
// state), not O(corpus).
//
// What is saved per shard: the LSI model (U, Σ, V, global weights), the
// document list with global submission ordinals, tombstoned rows, the
// generation and auto-ID counters, and the rank engine's derived arrays
// (float32 mirror, int8 tier, residuals, IVF index) via rank.Parts.
// What is deliberately NOT saved: the float64 normalized document cache
// (renormalized from V at load — bit-identical and cheaper than paging
// 8 bytes/coordinate), and the term–document count matrix (the serving
// path never reads it; queries and fold-ins only need the vocabulary).
//
// Save runs a coordinated compaction first (best-effort), so the
// persisted bases are pure SVD wherever feasible and a restored router
// regains automatic compaction.
//
// The shard count is part of the format: documents are placed by ID
// hash and round-robin, so a container can only be restored onto the
// same number of shards it was saved from.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dense"
	"repro/internal/engine"
	"repro/internal/rank"
	"repro/internal/snapfile"
	"repro/internal/text"
)

// snapshotVersion is the router-snapshot layout version, independent of
// the container format version (snapfile.Version).
const snapshotVersion = 1

// maxSnapshotShards keeps every section name within snapfile's 16-byte
// limit ("s999/members" is the longest stem).
const maxSnapshotShards = 1000

// routerMeta is the JSON "meta" section.
type routerMeta struct {
	Version  int            `json:"version"`
	Shards   int            `json:"shards"`
	NextOrd  int64          `json:"nextOrd"`
	NextAuto int64          `json:"nextAuto"`
	Opts     savedParseOpts `json:"opts"`
}

// savedParseOpts is text.ParseOptions in serializable form. The
// stopword set is stored expanded (fill() has already resolved the
// default list), so restore does not depend on the built-in list being
// identical across versions.
type savedParseOpts struct {
	MinDocs        int               `json:"minDocs"`
	MinLength      int               `json:"minLength"`
	IncludeBigrams bool              `json:"includeBigrams,omitempty"`
	Stopwords      []string          `json:"stopwords"`
	Aliases        map[string]string `json:"aliases,omitempty"`
}

func saveParseOpts(o text.ParseOptions) savedParseOpts {
	words := make([]string, 0, len(o.Stopwords))
	for w, on := range o.Stopwords {
		if on {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	return savedParseOpts{
		MinDocs:        o.MinDocs,
		MinLength:      o.MinLength,
		IncludeBigrams: o.IncludeBigrams,
		Stopwords:      words,
		Aliases:        o.Aliases,
	}
}

func (s savedParseOpts) parseOptions() text.ParseOptions {
	stop := make(map[string]bool, len(s.Stopwords))
	for _, w := range s.Stopwords {
		stop[w] = true
	}
	return text.ParseOptions{
		MinDocs:        s.MinDocs,
		MinLength:      s.MinLength,
		IncludeBigrams: s.IncludeBigrams,
		Stopwords:      stop,
		Aliases:        s.Aliases,
	}
}

// savedDoc is one document row: its identity, raw text, and global
// submission ordinal (-1 for tombstoned rows, whose ordinal was
// released at delete time).
type savedDoc struct {
	ID   string `json:"id"`
	Text string `json:"text"`
	Ord  int64  `json:"ord"`
}

// shardState is the JSON "s<i>/state" section: the per-shard counters
// and the shapes of the binary rank/IVF sections.
type shardState struct {
	Gen    uint64 `json:"gen"`
	NextID int    `json:"nextID"`
	Dead   []int  `json:"dead,omitempty"`
	Rank   struct {
		Rows      int     `json:"rows"`
		Cols      int     `json:"cols"`
		MaxEps    float64 `json:"maxEps"`
		MaxEps8   float64 `json:"maxEps8"`
		HasMirror bool    `json:"hasMirror"`
		HasQ8     bool    `json:"hasQ8"`
	} `json:"rank"`
	IVF *struct {
		Rows   int `json:"rows"`
		Dim    int `json:"dim"`
		NProbe int `json:"nprobe"`
	} `json:"ivf,omitempty"`
}

// SaveSnapshot persists the tier to path. It first runs a coordinated
// compaction (best-effort: a tier whose initial model already contained
// folded rows has no SVD base and is saved as-is), then captures every
// shard's frozen state and writes one container. The router must be
// quiesced — no concurrent Submit/Delete — which is the state the
// -save-model shutdown path calls it in (after http.Server.Shutdown,
// before Close).
func (r *Router) SaveSnapshot(path string) error {
	if len(r.shards) > maxSnapshotShards {
		return fmt.Errorf("shard: %d shards exceed snapshot limit %d", len(r.shards), maxSnapshotShards)
	}
	if err := r.Compact(); err != nil && !errors.Is(err, engine.ErrNoBase) {
		return fmt.Errorf("shard: pre-save compaction: %w", err)
	}
	sections := make([]snapfile.Section, 0, 2+14*len(r.shards))
	meta := routerMeta{
		Version:  snapshotVersion,
		Shards:   len(r.shards),
		NextOrd:  r.nextOrd.Load(),
		NextAuto: r.nextAuto.Load(),
		Opts:     saveParseOpts(r.coll.ParseOptions()),
	}
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	vocabRaw, err := json.Marshal(r.coll.Vocab.Terms)
	if err != nil {
		return err
	}
	sections = append(sections,
		snapfile.Section{Name: "meta", Data: metaRaw},
		snapfile.Section{Name: "vocab", Data: vocabRaw})
	for s, e := range r.shards {
		snap, nextID, err := e.FreezeForSnapshot()
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		ss, err := r.shardSections(s, snap, nextID)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		sections = append(sections, ss...)
	}
	return snapfile.Write(path, sections)
}

// shardSections flattens one shard's frozen snapshot.
func (r *Router) shardSections(s int, snap *engine.Snapshot, nextID int) ([]snapfile.Section, error) {
	prefix := fmt.Sprintf("s%d/", s)
	var st shardState
	st.Gen = snap.Gen
	st.NextID = nextID
	docs := make([]savedDoc, len(snap.Docs))
	for i, d := range snap.Docs {
		ord := int64(-1)
		if !snap.Dead.Has(i) {
			v, ok := r.ids.Load(d.ID)
			if !ok {
				return nil, fmt.Errorf("live document %q missing from registry (router not quiesced?)", d.ID)
			}
			ent := v.(idEntry)
			if ent.shard != s {
				return nil, fmt.Errorf("live document %q registered on shard %d but stored on %d", d.ID, ent.shard, s)
			}
			ord = ent.ord
		} else {
			st.Dead = append(st.Dead, i)
		}
		docs[i] = savedDoc{ID: d.ID, Text: d.Text, Ord: ord}
	}
	docsRaw, err := json.Marshal(docs)
	if err != nil {
		return nil, err
	}
	p := snap.Eng.Parts()
	st.Rank.Rows, st.Rank.Cols = p.Rows, p.Cols
	st.Rank.MaxEps, st.Rank.MaxEps8 = p.MaxEps, p.MaxEps8
	st.Rank.HasMirror, st.Rank.HasQ8 = p.Mirror != nil, p.Q8 != nil
	if p.IVF != nil {
		st.IVF = &struct {
			Rows   int `json:"rows"`
			Dim    int `json:"dim"`
			NProbe int `json:"nprobe"`
		}{Rows: p.IVF.Rows, Dim: p.IVF.Dim, NProbe: p.IVF.NProbe}
	}
	stateRaw, err := json.Marshal(&st)
	if err != nil {
		return nil, err
	}
	model, err := snap.Model.SnapshotSections(prefix)
	if err != nil {
		return nil, err
	}
	sections := append([]snapfile.Section{
		{Name: prefix + "state", Data: stateRaw},
		{Name: prefix + "docs", Data: docsRaw},
	}, model...)
	if p.Mirror != nil {
		sections = append(sections,
			snapfile.Section{Name: prefix + "mirror", Data: snapfile.F32Bytes(p.Mirror)},
			snapfile.Section{Name: prefix + "eps", Data: snapfile.F64Bytes(p.Eps)})
	}
	if p.Q8 != nil {
		sections = append(sections,
			snapfile.Section{Name: prefix + "q8", Data: snapfile.I8Bytes(p.Q8)},
			snapfile.Section{Name: prefix + "scale", Data: snapfile.F64Bytes(p.Scale)},
			snapfile.Section{Name: prefix + "eps8", Data: snapfile.F64Bytes(p.Eps8)})
	}
	if p.IVF != nil {
		sections = append(sections,
			snapfile.Section{Name: prefix + "cents", Data: snapfile.F64Bytes(p.IVF.Cents)},
			snapfile.Section{Name: prefix + "radius", Data: snapfile.F64Bytes(p.IVF.Radius)},
			snapfile.Section{Name: prefix + "counts", Data: snapfile.I32Bytes(p.IVF.MemberCounts)},
			snapfile.Section{Name: prefix + "members", Data: snapfile.I32Bytes(p.IVF.Members)})
	}
	return sections, nil
}

// Restore reassembles a Router from a SaveSnapshot container. cfg is
// the runtime configuration (engine knobs, compaction threshold);
// cfg.Shards must be zero (accept the saved count) or equal to it —
// document placement is shard-count-dependent, so restoring onto a
// different count would strand documents on the wrong shards.
//
// The returned snapfile.File backs the restored engines' mirror,
// quantized-tier and factor arrays (memory-mapped where the platform
// supports it — cold rows page in on first touch). It must stay open
// for the router's lifetime; closing it unmaps memory the engines are
// still reading.
//
// verify=false is the O(1) path: the container header and section table
// are checksummed, payloads are validated structurally (shapes, index
// ranges, finiteness of the scalars load-bearing for correctness) but
// not re-hashed. verify=true additionally CRC-checks every payload,
// which reads the whole file — linear in corpus size, for operators who
// want bit-rot detection over instant startup.
func Restore(path string, cfg Config, verify bool) (*Router, *snapfile.File, error) {
	f, err := snapfile.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if verify {
		if err := f.VerifyAll(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	r, err := restoreFrom(f, cfg)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// Collection exposes the router's global collection (its vocabulary is
// what query parsing needs; after Restore it carries no documents —
// per-shard collections own those).
func (r *Router) Collection() *corpus.Collection { return r.coll }

func snapJSON(f *snapfile.File, name string, v any) error {
	b, ok := f.Section(name)
	if !ok {
		return fmt.Errorf("shard: snapshot missing section %q", name)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("shard: section %q: %w", name, err)
	}
	return nil
}

func snapF64(f *snapfile.File, name string, want int) ([]float64, error) {
	b, ok := f.Section(name)
	if !ok {
		return nil, fmt.Errorf("shard: snapshot missing section %q", name)
	}
	xs, err := snapfile.F64(b)
	if err == nil && len(xs) != want {
		err = fmt.Errorf("%d values, state says %d", len(xs), want)
	}
	if err != nil {
		return nil, fmt.Errorf("shard: section %q: %w", name, err)
	}
	return xs, nil
}

func restoreFrom(f *snapfile.File, cfg Config) (*Router, error) {
	var meta routerMeta
	if err := snapJSON(f, "meta", &meta); err != nil {
		return nil, err
	}
	if meta.Version != snapshotVersion {
		return nil, fmt.Errorf("shard: snapshot version %d, this binary reads %d", meta.Version, snapshotVersion)
	}
	if meta.Shards <= 0 || meta.Shards > maxSnapshotShards {
		return nil, fmt.Errorf("shard: corrupt snapshot shard count %d", meta.Shards)
	}
	if cfg.Shards != 0 && cfg.Shards != meta.Shards {
		return nil, fmt.Errorf("shard: snapshot was saved with %d shards, cannot restore onto %d (placement is shard-count-dependent)",
			meta.Shards, cfg.Shards)
	}
	cfg.Shards = meta.Shards
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var terms []string
	if err := snapJSON(f, "vocab", &terms); err != nil {
		return nil, err
	}
	opts := meta.Opts.parseOptions()
	vocab := text.NewVocabularyFromTerms(terms, opts)

	engCfg := cfg.Engine
	engCfg.CompactThreshold = 0 // shards never compact independently

	r := &Router{cfg: cfg, coll: corpus.Restore(nil, vocab, opts)}
	r.nextOrd.Store(meta.NextOrd)
	r.nextAuto.Store(meta.NextAuto)
	engines := make([]*engine.Engine, meta.Shards)
	closeAll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		for _, e := range engines {
			if e != nil {
				_ = e.Close(ctx)
			}
		}
	}
	for s := range engines {
		eng, err := r.restoreShard(f, s, vocab, opts, engCfg)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		engines[s] = eng
	}
	r.shards = engines
	if cfg.CompactThreshold > 0 {
		r.monitorStop = make(chan struct{})
		r.monitorDone = make(chan struct{})
		go r.monitor()
	}
	return r, nil
}

// restoreShard rebuilds one shard: model sections attach (mmap views),
// the normalized float64 cache is recomputed from V — the one array
// cheaper to rebuild than to store — the rank tiers attach as views,
// and the engine resumes with its persisted counters. Registry entries
// for the shard's live documents are seeded as a side effect.
func (r *Router) restoreShard(f *snapfile.File, s int, vocab *text.Vocabulary,
	opts text.ParseOptions, engCfg engine.Config) (*engine.Engine, error) {
	prefix := fmt.Sprintf("s%d/", s)
	var st shardState
	if err := snapJSON(f, prefix+"state", &st); err != nil {
		return nil, err
	}
	var saved []savedDoc
	if err := snapJSON(f, prefix+"docs", &saved); err != nil {
		return nil, err
	}
	model, err := core.ModelFromSnapshot(f, prefix)
	if err != nil {
		return nil, err
	}
	if model.NumDocs() != len(saved) {
		return nil, fmt.Errorf("model has %d rows, docs section %d", model.NumDocs(), len(saved))
	}
	if st.Rank.Rows != model.NumDocs() || st.Rank.Cols != model.K {
		return nil, fmt.Errorf("rank state %dx%d does not match model %dx%d",
			st.Rank.Rows, st.Rank.Cols, model.NumDocs(), model.K)
	}

	docs := make([]corpus.Document, len(saved))
	deadSet := make(map[int]struct{}, len(st.Dead))
	for _, row := range st.Dead {
		if row < 0 || row >= len(saved) {
			return nil, fmt.Errorf("dead row %d outside [0, %d)", row, len(saved))
		}
		deadSet[row] = struct{}{}
	}
	for i, d := range saved {
		docs[i] = corpus.Document{ID: d.ID, Text: d.Text}
		_, dead := deadSet[i]
		if dead != (d.Ord < 0) {
			return nil, fmt.Errorf("row %d: dead=%v but ord=%d", i, dead, d.Ord)
		}
		if !dead {
			if _, dup := r.ids.LoadOrStore(d.ID, idEntry{ord: d.Ord, shard: s}); dup {
				return nil, fmt.Errorf("live document ID %q appears twice in snapshot", d.ID)
			}
		}
	}

	// The normalized float64 cache: unit-normalize a private clone of V —
	// the exact operation rank.NewEngine performed originally, so the
	// restored rows are bit-identical to the saved engine's.
	norm := model.V.Clone()
	for i := 0; i < norm.Rows; i++ {
		dense.Normalize(norm.Row(i))
	}

	parts := &rank.Parts{Rows: st.Rank.Rows, Cols: st.Rank.Cols,
		MaxEps: st.Rank.MaxEps, MaxEps8: st.Rank.MaxEps8}
	n := st.Rank.Rows * st.Rank.Cols
	if st.Rank.HasMirror {
		b, ok := f.Section(prefix + "mirror")
		if !ok {
			return nil, fmt.Errorf("missing section %q", prefix+"mirror")
		}
		if parts.Mirror, err = snapfile.F32(b); err != nil || len(parts.Mirror) != n {
			return nil, fmt.Errorf("section %q: %d values, want %d (%v)", prefix+"mirror", len(parts.Mirror), n, err)
		}
		if parts.Eps, err = snapF64(f, prefix+"eps", st.Rank.Rows); err != nil {
			return nil, err
		}
	}
	if st.Rank.HasQ8 {
		b, ok := f.Section(prefix + "q8")
		if !ok {
			return nil, fmt.Errorf("missing section %q", prefix+"q8")
		}
		if parts.Q8 = snapfile.I8(b); len(parts.Q8) != n {
			return nil, fmt.Errorf("section %q: %d values, want %d", prefix+"q8", len(parts.Q8), n)
		}
		if parts.Scale, err = snapF64(f, prefix+"scale", st.Rank.Rows); err != nil {
			return nil, err
		}
		if parts.Eps8, err = snapF64(f, prefix+"eps8", st.Rank.Rows); err != nil {
			return nil, err
		}
	}
	if st.IVF != nil {
		b, ok := f.Section(prefix + "counts")
		if !ok {
			return nil, fmt.Errorf("missing section %q", prefix+"counts")
		}
		counts, err := snapfile.I32(b)
		if err != nil {
			return nil, fmt.Errorf("section %q: %w", prefix+"counts", err)
		}
		mb, ok := f.Section(prefix + "members")
		if !ok {
			return nil, fmt.Errorf("missing section %q", prefix+"members")
		}
		members, err := snapfile.I32(mb)
		if err != nil {
			return nil, fmt.Errorf("section %q: %w", prefix+"members", err)
		}
		cents, err := snapF64(f, prefix+"cents", len(counts)*st.IVF.Dim)
		if err != nil {
			return nil, err
		}
		radius, err := snapF64(f, prefix+"radius", len(counts))
		if err != nil {
			return nil, err
		}
		parts.IVF = &rank.IVFParts{Rows: st.IVF.Rows, Dim: st.IVF.Dim, NProbe: st.IVF.NProbe,
			Cents: cents, Radius: radius, MemberCounts: counts, Members: members}
	}
	prebuilt, err := rank.EngineFromParts(norm, parts)
	if err != nil {
		return nil, err
	}

	engCfg.Prebuilt = prebuilt
	engCfg.InitialGen = st.Gen
	engCfg.RestoredDead = st.Dead
	engCfg.RestoredNextID = st.NextID
	return engine.New(corpus.Restore(docs, vocab, opts), model, engCfg)
}
