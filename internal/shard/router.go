// Package shard is the scatter–gather serving tier: a Router owns N
// engine.Engine shards — each with its own snapshot pointer, fold-in
// queue, scoring cache, IVF index and compaction lifecycle — behind one
// submit/search surface, scaling update and query work across shards
// without giving up exactness.
//
// The exactness argument has three legs:
//
//   - Placement never changes coordinates. Folding a document in is a
//     projection q̂ = qᵀU_kΣ_k⁻¹ that depends only on the shared term
//     basis (U, S), the global weights and the weighting scheme — all
//     identical across shards by construction — so a document's vector
//     is bit-identical no matter which shard folds it, in which batch.
//   - Per-shard top-k is exact. The PR 5/6 screening and cluster-pruning
//     machinery certifies each shard's local top-k byte-exact against a
//     plain float64 scan of that shard's rows.
//   - The merge is exact. Each shard returns its local top-k under the
//     total order (score desc, doc asc); the global top-k is a subset of
//     the union of local top-ks, so rank.MergeTopK — sort the union,
//     truncate — returns exactly the top-k a single engine over the
//     concatenated corpus would, with the global submission ordinal
//     standing in for the single engine's row index as tie-break.
//
// Compaction is the one operation that cannot be per-shard-independent:
// an SVD-update re-diagonalizes the basis, and N independent updates
// would leave shards scoring in N different latent spaces. The Router
// therefore coordinates: it freezes every shard, computes ONE update
// plan (core.PlanDocsUpdate) over the globally ordered pending set, and
// every shard applies that plan to its own rows — bit-identical to a
// single engine compacting the concatenated corpus (see compact.go).
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/rank"
)

// Config parameterizes the router. The zero value gets one shard and the
// engine defaults.
type Config struct {
	// Shards is the number of engine shards (default 1). Construction
	// fails when there are more shards than initial documents.
	Shards int
	// Engine is the per-shard engine configuration. Its CompactThreshold
	// is ignored: shards must never compact independently (each
	// SVD-update rotates the latent basis, and independently rotated
	// shards stop being score-comparable), so the router zeroes it and
	// drives compaction itself via CompactThreshold below.
	Engine engine.Config
	// CompactThreshold is the global document-orthogonality loss
	// (‖VᵀV − I‖_F over the conceptual concatenated V) above which the
	// router runs a coordinated compaction; 0 disables the monitor
	// (explicit Compact calls still work).
	CompactThreshold float64
	// CompactCheck is how often the monitor evaluates the threshold
	// (default 2×BatchTick, clamped to [1ms, 1s]).
	CompactCheck time.Duration
	// Logf receives diagnostics (default: discard).
	Logf func(format string, args ...any)
}

// Hit is one merged search result.
type Hit struct {
	ID    string
	Text  string
	Score float64
	// Shard is the shard the document lives on.
	Shard int
}

// QueueFullError reports backpressure from the single shard that owns
// the submitted document — other shards' queues are irrelevant to this
// submission, so Retry-After accounting is per-shard by construction.
// It unwraps to engine.ErrQueueFull.
type QueueFullError struct {
	Shard    int
	Depth    int
	Capacity int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("shard %d: fold-in queue full (%d/%d)", e.Shard, e.Depth, e.Capacity)
}

func (e *QueueFullError) Unwrap() error { return engine.ErrQueueFull }

// ShardStats is one shard's engine stats plus its index.
type ShardStats struct {
	Shard int
	engine.Stats
}

// Stats aggregates the tier for /stats and /metrics: sums and maxima
// over shards at the top, the full per-shard blocks underneath.
type Stats struct {
	Shards          int
	Generations     []uint64
	Documents       int
	FoldedDocuments int
	QueueDepth      int
	// Tombstones counts deleted-but-present rows across shards; the next
	// coordinated compaction folds them out.
	Tombstones int
	// Compactions counts completed coordinated compactions; Compacting
	// reports one in flight.
	Compactions int64
	Compacting  bool
	Screening   bool
	// MirrorMaxEps is the worst per-row mirror residual across shards.
	MirrorMaxEps       float64
	IVFClusters        int
	IVFUnclusteredTail int
	IVFRebuilds        int64
	Queries            int64
	RescoreCandidates  int64
	ClustersScanned    int64
	ScannedRows        int64
	PerShard           []ShardStats
}

// Router owns the shards and the cross-shard bookkeeping: the global ID
// registry (duplicate detection across shards + the merge tie-break
// ordinal), the auto-ID counter, and the coordinated compactor.
type Router struct {
	cfg    Config
	coll   *corpus.Collection
	shards []*engine.Engine

	// ids maps document ID → idEntry: the cross-shard duplicate gate, the
	// merge tie-break ordinal, and the owner shard a delete routes to.
	// Deletion releases the entry, so a deleted ID can be resubmitted (it
	// gets a fresh ordinal).
	ids sync.Map
	// nextOrd is the next global submission ordinal; ordinals of rejected
	// submissions are burned, which is fine — only the relative order
	// matters.
	nextOrd atomic.Int64
	// nextAuto numbers auto-assigned "doc-N" IDs globally, so shards can
	// never collide.
	nextAuto atomic.Int64
	// rr is the round-robin cursor for placing auto-ID submissions.
	rr atomic.Int64

	closeMu sync.RWMutex
	//lsilint:guardedby closeMu
	closed bool

	// compactMu serializes coordinated compactions; compacting mirrors it
	// for Stats.
	compactMu   sync.Mutex
	compacting  atomic.Bool
	compactions atomic.Int64

	// deadStuck is set when a compaction cycle left dead base rows in
	// place (globally degenerate downdate); the monitor then stops forcing
	// tombstone-triggered cycles until new activity changes the geometry.
	deadStuck atomic.Bool

	monitorStop chan struct{}
	monitorDone chan struct{}
}

// idEntry is the registry record for one live document: its global
// submission ordinal (the merge tie-break) and the shard that owns it
// (where a delete must route — derivable from the ID hash for
// user-supplied IDs, but not for round-robin-placed auto IDs).
type idEntry struct {
	ord   int64
	shard int
}

// New splits the corpus round-robin across cfg.Shards engines — shard s
// owns initial documents s, s+N, s+2N, … — and starts them. The model
// must have been built from the collection; each shard serves a
// DocSubsetView sharing the model's term basis, so queries project
// identically everywhere. The caller must not mutate coll or model
// afterwards.
func New(coll *corpus.Collection, model *core.Model, cfg Config) (*Router, error) {
	if model.NumDocs() != coll.Size() {
		return nil, fmt.Errorf("shard: model has %d docs, collection %d", model.NumDocs(), coll.Size())
	}
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if n > coll.Size() {
		return nil, fmt.Errorf("shard: %d shards for %d documents", n, coll.Size())
	}
	cfg.Shards = n
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	engCfg := cfg.Engine
	// Shards never compact on their own: one shard rotating its basis
	// alone would break cross-shard score comparability. The router's
	// monitor drives the coordinated equivalent.
	engCfg.CompactThreshold = 0

	idx := make([][]int, n)
	for j := 0; j < coll.Size(); j++ {
		idx[j%n] = append(idx[j%n], j)
	}
	r := &Router{cfg: cfg, coll: coll}
	for j, d := range coll.Docs {
		r.ids.Store(d.ID, idEntry{ord: int64(j), shard: j % n})
	}
	r.nextOrd.Store(int64(coll.Size()))
	r.nextAuto.Store(int64(coll.Size()))

	engines := make([]*engine.Engine, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			engines[s], errs[s] = engine.New(coll.Subset(idx[s]), model.DocSubsetView(idx[s]), engCfg)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			for _, e := range engines {
				if e != nil {
					_ = e.Close(ctx)
				}
			}
			cancel()
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	r.shards = engines
	if cfg.CompactThreshold > 0 {
		r.monitorStop = make(chan struct{})
		r.monitorDone = make(chan struct{})
		go r.monitor()
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes one underlying engine for read-side wiring (snapshots,
// stats). Submitting to it directly would bypass the global ID registry —
// always go through Router.Submit.
func (r *Router) Shard(s int) *engine.Engine { return r.shards[s] }

// Generations returns the current per-shard generation vector without
// running a query.
func (r *Router) Generations() []uint64 { return generations(r.snapshots()) }

// Orthogonality returns the global ‖VᵀV − I‖_F across all shards — the
// §4.3 fold-in distortion measure the compaction monitor watches,
// identical to the single-engine DocOrthogonality on the concatenation.
func (r *Router) Orthogonality() float64 { return r.orthogonality(r.snapshots()) }

// ShardSnapshot returns shard s's current serving snapshot — one atomic
// load, the same guarantee as engine.Snapshot. Endpoints that only need
// the shared term basis (e.g. /terms) read shard 0.
func (r *Router) ShardSnapshot(s int) *engine.Snapshot { return r.shards[s].Snapshot() }

// snapshots loads one snapshot per shard. Loads are independent (shards
// publish independently), but each load is immutable, so a result set is
// fully determined by the generation vector it was computed from.
func (r *Router) snapshots() []*engine.Snapshot {
	snaps := make([]*engine.Snapshot, len(r.shards))
	for s, e := range r.shards {
		snaps[s] = e.Snapshot()
	}
	return snaps
}

func generations(snaps []*engine.Snapshot) []uint64 {
	gens := make([]uint64, len(snaps))
	for s, sn := range snaps {
		gens[s] = sn.Gen
	}
	return gens
}

// hashShard places a user-supplied ID on its stable owner shard.
func hashShard(id string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// Submit routes one document to its owner shard — stable FNV hash for
// user IDs, round-robin for auto-assigned IDs — and waits like
// engine.Submit does. Duplicate user IDs are rejected against the
// global registry (409 on ANY shard, not just the owner); auto IDs come
// from a global counter and can never collide across shards. The
// returned shard index is where the document landed (-1 when it was
// rejected before routing).
func (r *Router) Submit(ctx context.Context, doc corpus.Document) (id string, shard int, err error) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if r.closed {
		return "", -1, engine.ErrClosed
	}
	if doc.ID == "" {
		shard = int((r.rr.Add(1) - 1) % int64(len(r.shards)))
		for {
			doc.ID = fmt.Sprintf("doc-%d", r.nextAuto.Add(1)-1)
			if _, taken := r.ids.LoadOrStore(doc.ID, idEntry{ord: r.nextOrd.Add(1) - 1, shard: shard}); !taken {
				break
			}
			// A user already took this name: burn the number (and the
			// ordinal) and keep counting — same skip-over semantics as the
			// single engine's auto-assignment.
		}
	} else {
		shard = hashShard(doc.ID, len(r.shards))
		if _, dup := r.ids.LoadOrStore(doc.ID, idEntry{ord: r.nextOrd.Add(1) - 1, shard: shard}); dup {
			return "", -1, fmt.Errorf("%w: %q", engine.ErrDuplicateID, doc.ID)
		}
	}
	if _, serr := r.shards[shard].Submit(ctx, doc); serr != nil {
		if errors.Is(serr, context.Canceled) || errors.Is(serr, context.DeadlineExceeded) {
			// Accepted by the shard; it will fold in and survive Close's
			// drain, so the registration stands.
			return doc.ID, shard, serr
		}
		// Rejected before acceptance: roll the registration back so the
		// ID can be retried.
		r.ids.Delete(doc.ID)
		if errors.Is(serr, engine.ErrQueueFull) {
			st := r.shards[shard].Stats()
			return "", shard, &QueueFullError{
				Shard: shard, Depth: st.QueueDepth, Capacity: r.shards[shard].QueueCapacity(),
			}
		}
		return "", shard, serr
	}
	r.deadStuck.Store(false)
	return doc.ID, shard, nil
}

// Delete routes a tombstone to the shard that owns the named document and
// waits like engine.Delete does. On success (or on a context expiry — the
// delete was accepted and will apply) the ID is released from the global
// registry, so it can be resubmitted as a fresh document with a fresh
// ordinal. Unknown IDs return engine.ErrUnknownID. The returned shard is
// the owner (-1 when the ID was unknown to the registry).
func (r *Router) Delete(ctx context.Context, id string) (shard int, err error) {
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if r.closed {
		return -1, engine.ErrClosed
	}
	v, ok := r.ids.Load(id)
	if !ok {
		return -1, fmt.Errorf("%w: %q", engine.ErrUnknownID, id)
	}
	ent := v.(idEntry)
	derr := r.shards[ent.shard].Delete(ctx, id)
	switch {
	case derr == nil, errors.Is(derr, context.Canceled), errors.Is(derr, context.DeadlineExceeded):
		// Applied (or accepted: the tombstone rides the queue and survives
		// Close's drain). Release the registration either way.
		r.ids.Delete(id)
		r.deadStuck.Store(false)
		return ent.shard, derr
	case errors.Is(derr, engine.ErrQueueFull):
		st := r.shards[ent.shard].Stats()
		return ent.shard, &QueueFullError{
			Shard: ent.shard, Depth: st.QueueDepth, Capacity: r.shards[ent.shard].QueueCapacity(),
		}
	}
	// ErrUnknownID from the engine (a concurrent delete won the race) or
	// ErrClosed: the registry entry, if any remains, belongs to whoever
	// owns the ID now.
	return ent.shard, derr
}

// ordOf returns a document's global submission ordinal — the merge
// tie-break. Unknown IDs (can only happen for hand-built snapshots) rank
// last.
func (r *Router) ordOf(id string) int {
	if v, ok := r.ids.Load(id); ok {
		return int(v.(idEntry).ord)
	}
	return int(int64(1) << 62)
}

// Search fans the raw query out to every shard concurrently, merges the
// per-shard exact top-n under (score desc, global ordinal asc), and
// returns the merged top-n with the per-shard generation vector that
// fully determines it. Results are byte-identical to a single engine
// over the same corpus (parity-pinned).
func (r *Router) Search(raw []float64, n int) ([]Hit, []uint64) {
	snaps := r.snapshots()
	gens := generations(snaps)
	if len(snaps) == 1 {
		return r.hitsFromShard(snaps[0], 0, snaps[0].RankTop(raw, n)), gens
	}
	perShard := make([][]core.Ranked, len(snaps))
	var wg sync.WaitGroup
	for s := range snaps {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			perShard[s] = snaps[s].RankTop(raw, n)
		}(s)
	}
	wg.Wait()
	return r.merge(snaps, perShard, n), gens
}

// SearchBatch scatters the WHOLE batch to every shard — each shard runs
// its own TopKBatch so the gemm tiling over the batch is preserved —
// then merges per query row. Identical results to calling Search per
// query.
func (r *Router) SearchBatch(raws [][]float64, n int) ([][]Hit, []uint64) {
	snaps := r.snapshots()
	gens := generations(snaps)
	if len(raws) == 0 {
		return nil, gens
	}
	if len(snaps) == 1 {
		ranked := snaps[0].RankBatch(raws, n)
		out := make([][]Hit, len(ranked))
		for q, row := range ranked {
			out[q] = r.hitsFromShard(snaps[0], 0, row)
		}
		return out, gens
	}
	perShard := make([][][]core.Ranked, len(snaps))
	var wg sync.WaitGroup
	for s := range snaps {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			perShard[s] = snaps[s].RankBatch(raws, n)
		}(s)
	}
	wg.Wait()
	out := make([][]Hit, len(raws))
	rows := make([][]core.Ranked, len(snaps))
	for q := range raws {
		for s := range snaps {
			rows[s] = perShard[s][q]
		}
		out[q] = r.merge(snaps, rows, n)
	}
	return out, gens
}

// hitsFromShard is the single-shard fast path: no ordinal translation —
// the shard's own (score desc, local row asc) order IS the global order.
func (r *Router) hitsFromShard(snap *engine.Snapshot, s int, ranked []core.Ranked) []Hit {
	out := make([]Hit, len(ranked))
	for i, rk := range ranked {
		doc := snap.Doc(rk.Doc)
		out[i] = Hit{ID: doc.ID, Text: doc.Text, Score: rk.Score, Shard: s}
	}
	return out
}

// merge translates each shard's local rows to (global ordinal, score)
// items and merges them through rank.MergeTopK — the same helper the
// in-engine selector barrier uses — under the same strict total order.
//
// A doc can be missing from the ID registry while still visible here: a
// concurrent delete releases the registry entry, but a reader holding the
// pre-delete snapshot legitimately serves the row for a little longer.
// Those transient rows get unique synthetic ordinals past every real one —
// they must never alias each other in byOrd (two docs collapsing onto one
// hit breaks the merged order), and their relative tie-break is moot: the
// next snapshot excludes them entirely.
func (r *Router) merge(snaps []*engine.Snapshot, perShard [][]core.Ranked, n int) []Hit {
	lists := make([][]rank.Item, len(perShard))
	byOrd := make(map[int]Hit, n*len(perShard))
	unreg := int(int64(1) << 62)
	for s, ranked := range perShard {
		items := make([]rank.Item, len(ranked))
		for i, rk := range ranked {
			doc := snaps[s].Doc(rk.Doc)
			ord := r.ordOf(doc.ID)
			if _, taken := byOrd[ord]; taken && ord >= int(int64(1)<<62) {
				unreg++
				ord = unreg
			}
			items[i] = rank.Item{Doc: ord, Score: rk.Score}
			byOrd[ord] = Hit{ID: doc.ID, Text: doc.Text, Score: rk.Score, Shard: s}
		}
		lists[s] = items
	}
	merged := rank.MergeTopK(n, lists...)
	out := make([]Hit, len(merged))
	for i, it := range merged {
		out[i] = byOrd[it.Doc]
	}
	return out
}

// Stats aggregates every shard's pipeline stats.
func (r *Router) Stats() Stats {
	st := Stats{
		Shards:      len(r.shards),
		Compactions: r.compactions.Load(),
		Compacting:  r.compacting.Load(),
		Screening:   true,
		PerShard:    make([]ShardStats, len(r.shards)),
	}
	st.Generations = make([]uint64, len(r.shards))
	for s, e := range r.shards {
		es := e.Stats()
		st.PerShard[s] = ShardStats{Shard: s, Stats: es}
		st.Generations[s] = es.Generation
		st.Documents += es.Documents
		st.FoldedDocuments += es.FoldedDocuments
		st.Tombstones += es.Tombstones
		st.QueueDepth += es.QueueDepth
		st.IVFClusters += es.IVFClusters
		st.IVFUnclusteredTail += es.IVFUnclusteredTail
		st.IVFRebuilds += es.IVFRebuilds
		st.Queries += es.Queries
		st.RescoreCandidates += es.RescoreCandidates
		st.ClustersScanned += es.ClustersScanned
		st.ScannedRows += es.ScannedRows
		st.Screening = st.Screening && es.Screening
		if es.MirrorMaxEps > st.MirrorMaxEps {
			st.MirrorMaxEps = es.MirrorMaxEps
		}
	}
	return st
}

// Close stops accepting submissions, settles the compaction monitor,
// then drains every shard in parallel — the drain ordering documented in
// docs/SERVING.md: no new work, no half-landed coordinated compaction,
// then per-shard queue drains (every acknowledged document is in some
// shard's final snapshot). Idempotent; ctx bounds the wait.
func (r *Router) Close(ctx context.Context) error {
	r.closeMu.Lock()
	already := r.closed
	r.closed = true
	r.closeMu.Unlock()
	if !already && r.monitorStop != nil {
		close(r.monitorStop)
		<-r.monitorDone
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for s, e := range r.shards {
		wg.Add(1)
		go func(s int, e *engine.Engine) {
			defer wg.Done()
			errs[s] = e.Close(ctx)
		}(s, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
