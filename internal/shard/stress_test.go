package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
)

// TestStressShardedScatterGather is the sharded counterpart of the
// engine's snapshot-isolation stress: three shards, racing submitters
// (user-ID and auto-ID mixed, plus deliberate duplicates), reader
// goroutines hammering merged Search/SearchBatch, and a hair-trigger
// monitor forcing coordinated compactions mid-flight. Run under -race
// (make stress) this demonstrates that:
//
//   - the merged result for a given per-shard generation VECTOR is
//     byte-stable: any two reads that observed the same vector got
//     identical hits, even while compactions were landing on some shards
//     and not others,
//   - each shard's generation is monotone from every reader's view and
//     merged hits are sorted and internally consistent,
//   - ≥2 coordinated compactions complete while submissions race, and
//   - Close drains: every acknowledged document — including a final
//     fire-and-forget burst still sitting in the queues — is present in
//     exactly one shard's final snapshot.
func TestStressShardedScatterGather(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	synth := corpus.GenerateSynth(corpus.SynthOptions{Seed: 9, Docs: 40, Topics: 5})
	coll := synth.Collection
	model, err := core.BuildCollection(coll, core.Config{K: 6, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(coll, model, Config{
		Shards: 3,
		Engine: engine.Config{
			QueueSize: 1024,
			BatchTick: 200 * time.Microsecond,
		},
		CompactThreshold: 1e-9, // every fold crosses it: maximum churn
		CompactCheck:     200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 3
		docsPerWrite = 20
		readers      = 4
		reads        = 120
	)
	queries := make([][]float64, 0, 3)
	for _, q := range synth.Queries[:3] {
		queries = append(queries, coll.QueryVector(q.Text))
	}

	// Acknowledged IDs: Submit returned nil (folded) — plus, later, the
	// fire-and-forget burst. Every one must survive Close.
	var ackMu sync.Mutex
	acked := make(map[string]bool)

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctx := context.Background()
			for i := 0; i < docsPerWrite; i++ {
				doc := corpus.Document{Text: coll.Docs[(w*docsPerWrite+i)%coll.Size()].Text}
				if i%2 == 0 {
					doc.ID = fmt.Sprintf("w%d-%02d", w, i)
				}
				id, _, err := r.Submit(ctx, doc)
				if err != nil {
					t.Errorf("writer %d submit %d: %v", w, i, err)
					return
				}
				ackMu.Lock()
				acked[id] = true
				ackMu.Unlock()
				// Duplicates must be rejected globally no matter which
				// shard owns the original.
				if doc.ID != "" {
					if _, _, err := r.Submit(ctx, doc); !errors.Is(err, engine.ErrDuplicateID) {
						t.Errorf("writer %d: duplicate %q: %v", w, doc.ID, err)
						return
					}
				}
			}
		}(w)
	}

	// Per-generation-vector result pinning for the merged search.
	var pinMu sync.Mutex
	pinned := make(map[string][]string)

	var readerWG sync.WaitGroup
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			lastGens := make([]uint64, r.Shards())
			for i := 0; i < reads; i++ {
				if i%3 == 2 {
					rows, _ := r.SearchBatch(queries, 5)
					if len(rows) != len(queries) {
						t.Errorf("reader %d: batch size %d", g, len(rows))
						return
					}
					continue
				}
				hits, gens := r.Search(queries[i%len(queries)], 8)
				for s, gen := range gens {
					if gen < lastGens[s] {
						t.Errorf("reader %d: shard %d generation went backwards %d -> %d", g, s, lastGens[s], gen)
						return
					}
					lastGens[s] = gen
				}
				keys := make([]string, 0, len(hits))
				for j, h := range hits {
					if h.ID == "" || h.Shard < 0 || h.Shard >= r.Shards() {
						t.Errorf("reader %d: malformed hit %+v", g, h)
						return
					}
					if j > 0 && hits[j-1].Score < h.Score {
						t.Errorf("reader %d: merged scores not sorted", g)
						return
					}
					keys = append(keys, fmt.Sprintf("%s:%x", h.ID, h.Score))
				}
				if i%len(queries) == 0 {
					vec := fmt.Sprint(gens)
					pinMu.Lock()
					if prev, ok := pinned[vec]; ok {
						if !reflect.DeepEqual(prev, keys) {
							t.Errorf("reader %d: generation vector %s results diverged\n got %v\nwant %v", g, vec, keys, prev)
						}
					} else {
						pinned[vec] = keys
					}
					pinMu.Unlock()
				}
			}
		}(g)
	}
	readerWG.Wait()
	writerWG.Wait()

	// Let the pipeline settle: everything folded, then absorbed by the
	// monitor's coordinated compactions.
	streamed := writers * docsPerWrite
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := r.Stats()
		if st.Documents == coll.Size()+streamed && st.QueueDepth == 0 &&
			!st.Compacting && st.Compactions >= 2 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Final fire-and-forget burst, then an immediate Close: the drain must
	// publish every one of these before the routers' engines stop.
	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	const burst = 12
	for i := 0; i < burst; i++ {
		id, _, err := r.Submit(expired, corpus.Document{ID: fmt.Sprintf("burst-%02d", i), Text: coll.Docs[i].Text})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("burst submit %d: %v", i, err)
		}
		acked[id] = true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Every acknowledged document is in exactly one shard's final
	// snapshot, alongside the seed corpus, with no extras.
	seen := make(map[string]int)
	total := 0
	for s := 0; s < r.Shards(); s++ {
		snap := r.ShardSnapshot(s)
		total += snap.NumDocs()
		for j := 0; j < snap.NumDocs(); j++ {
			seen[snap.Doc(j).ID]++
		}
	}
	if total != coll.Size()+streamed+burst {
		t.Fatalf("final corpus has %d documents, want %d", total, coll.Size()+streamed+burst)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("id %s appears %d times across shards", id, n)
		}
	}
	for id := range acked {
		if seen[id] != 1 {
			t.Fatalf("acknowledged id %s lost in drain", id)
		}
	}
}

// TestStressShardedDeleteTraffic adds racing deletes to the sharded
// stress: writers stream documents (handing every user-ID one straight to
// a deleter, so deletes hit documents still mid-flight through fold-in
// and compaction absorption), the hair-trigger monitor keeps coordinated
// compactions — now including downdate fold-outs — landing underneath,
// and readers hammer the merged search throughout. The final Close drains
// a fire-and-forget burst of submits AND deletes; the ending snapshots
// must account for every tombstone: no confirmed-deleted document is live
// anywhere, every surviving acknowledged document is live exactly once.
func TestStressShardedDeleteTraffic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	synth := corpus.GenerateSynth(corpus.SynthOptions{Seed: 11, Docs: 40, Topics: 5})
	coll := synth.Collection
	model, err := core.BuildCollection(coll, core.Config{K: 6, Method: core.MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(coll, model, Config{
		Shards: 3,
		Engine: engine.Config{
			QueueSize: 1024,
			BatchTick: 200 * time.Microsecond,
		},
		CompactThreshold: 1e-9,
		CompactCheck:     200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 3
		docsPerWrite = 20
		readers      = 3
		reads        = 100
	)
	queries := make([][]float64, 0, 3)
	for _, q := range synth.Queries[:3] {
		queries = append(queries, coll.QueryVector(q.Text))
	}

	var ackMu sync.Mutex
	acked := make(map[string]bool)
	deleted := make(map[string]bool)

	toDelete := make(chan string, writers*docsPerWrite)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctx := context.Background()
			for i := 0; i < docsPerWrite; i++ {
				doc := corpus.Document{Text: coll.Docs[(w*docsPerWrite+i)%coll.Size()].Text}
				if i%2 == 0 {
					doc.ID = fmt.Sprintf("w%d-%02d", w, i)
				}
				id, _, err := r.Submit(ctx, doc)
				if err != nil {
					t.Errorf("writer %d submit %d: %v", w, i, err)
					return
				}
				ackMu.Lock()
				acked[id] = true
				ackMu.Unlock()
				if i%2 == 0 {
					// Hand it to the deleter immediately: the row may still be
					// mid-flight through a compaction's frozen pending list.
					toDelete <- id
				}
			}
		}(w)
	}
	var deleterWG sync.WaitGroup
	deleterWG.Add(1)
	go func() {
		defer deleterWG.Done()
		ctx := context.Background()
		for id := range toDelete {
			if _, err := r.Delete(ctx, id); err != nil {
				t.Errorf("delete %s: %v", id, err)
				return
			}
			ackMu.Lock()
			deleted[id] = true
			ackMu.Unlock()
		}
	}()

	var readerWG sync.WaitGroup
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			for i := 0; i < reads; i++ {
				hits, _ := r.Search(queries[i%len(queries)], 8)
				for j, h := range hits {
					if h.ID == "" || h.Shard < 0 || h.Shard >= r.Shards() {
						t.Errorf("reader %d: malformed hit %+v", g, h)
						return
					}
					if j > 0 && hits[j-1].Score < h.Score {
						t.Errorf("reader %d: merged scores not sorted", g)
						return
					}
				}
			}
		}(g)
	}
	readerWG.Wait()
	writerWG.Wait()
	close(toDelete)
	deleterWG.Wait()

	// Settle: all fold-ins absorbed and every tombstone folded out by the
	// monitor's coordinated compactions.
	streamed := writers * docsPerWrite
	wantLive := coll.Size() + streamed - len(deleted)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := r.Stats()
		if st.Documents == wantLive && st.Tombstones == 0 && st.QueueDepth == 0 &&
			!st.Compacting && st.Compactions >= 2 && st.FoldedDocuments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not settle: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Fire-and-forget burst: submits immediately chased by deletes of half
	// of them, all still queued when Close's drain runs.
	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	const burst = 12
	for i := 0; i < burst; i++ {
		id := fmt.Sprintf("burst-%02d", i)
		if _, _, err := r.Submit(expired, corpus.Document{ID: id, Text: coll.Docs[i].Text}); !errors.Is(err, context.Canceled) {
			t.Fatalf("burst submit %d: %v", i, err)
		}
		acked[id] = true
		if i%2 == 1 {
			if _, err := r.Delete(expired, id); !errors.Is(err, context.Canceled) {
				t.Fatalf("burst delete %d: %v", i, err)
			}
			deleted[id] = true
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The drain accounted for every tombstone: deleted documents are never
	// live, surviving acknowledged documents are live exactly once.
	live := make(map[string]int)
	for s := 0; s < r.Shards(); s++ {
		snap := r.ShardSnapshot(s)
		for j := 0; j < snap.NumDocs(); j++ {
			id := snap.Doc(j).ID
			if snap.Dead.Has(j) {
				if !deleted[id] {
					t.Fatalf("shard %d: live doc %s tombstoned", s, id)
				}
				continue
			}
			live[id]++
		}
	}
	for id := range deleted {
		if live[id] != 0 {
			t.Fatalf("deleted id %s still live", id)
		}
	}
	for id := range acked {
		if deleted[id] {
			continue
		}
		if live[id] != 1 {
			t.Fatalf("acknowledged id %s live %d times, want 1", id, live[id])
		}
	}
}
